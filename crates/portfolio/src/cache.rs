//! Canonical-spec result cache.
//!
//! Two specifications that are output permutations of each other have the
//! same output-permutation synthesis answer up to relabeling, so a batch
//! run only needs to synthesize one representative per equivalence class.
//! The cache keys every request by its **canonical form**: the
//! lexicographically minimal row table over all `n!` output permutations.
//! A hit replays the stored [`PermutedSynthesisResult`] with the
//! permutations composed, so the returned circuits realize the *requested*
//! specification exactly as a fresh run would (same minimal depth — both
//! answers are minimal over the same equivalence class).
//!
//! The canonicalization itself is `O(n! · 2ⁿ)` row comparisons — trivial
//! next to one synthesis run at the `n ≤ 8` sizes exact synthesis handles.

use qsyn_core::permuted::{
    permute_spec, synthesize_with_output_permutation, PermutedSynthesisResult,
};
use qsyn_core::{SynthesisError, SynthesisOptions};
use qsyn_revlogic::Spec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A specification reduced to its output-permutation equivalence class.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CanonicalSpec {
    /// The canonical representative: `permute_spec(spec, witness)`.
    pub spec: Spec,
    /// The permutation taking the original spec to the representative.
    pub witness: Vec<u32>,
}

/// All permutations of `0..n` in lexicographic order (identity first).
fn permutations(n: u32) -> Vec<Vec<u32>> {
    let mut all: Vec<Vec<u32>> = vec![Vec::new()];
    for _ in 0..n {
        all = all
            .into_iter()
            .flat_map(|prefix| {
                (0..n).filter_map(move |v| {
                    if prefix.contains(&v) {
                        None
                    } else {
                        let mut next = prefix.clone();
                        next.push(v);
                        Some(next)
                    }
                })
            })
            .collect();
    }
    all
}

/// Canonicalizes `spec` under output permutation: among all `n!` permuted
/// row tables, the lexicographically minimal one (comparing `(value, care)`
/// row-wise) is the class representative. Equivalent specs — and only
/// those — map to the same representative.
pub fn canonicalize(spec: &Spec) -> CanonicalSpec {
    let mut best: Option<CanonicalSpec> = None;
    for p in permutations(spec.lines()) {
        let Ok(permuted) = permute_spec(spec, &p) else {
            continue;
        };
        let key =
            |s: &Spec| -> Vec<(u32, u32)> { s.rows().iter().map(|r| (r.value, r.care)).collect() };
        let better = match &best {
            None => true,
            Some(b) => key(&permuted) < key(&b.spec),
        };
        if better {
            best = Some(CanonicalSpec {
                spec: permuted,
                witness: p,
            });
        }
    }
    best.expect("identity permutation always yields a candidate")
}

/// In-process memo table over canonical specs; see the module docs.
///
/// One cache instance assumes one fixed synthesis configuration (library,
/// engine, budgets): entries are keyed by the canonical spec only. Use
/// separate caches for separate configurations.
///
/// Concurrent misses on the same class may both compute (the map lock is
/// *not* held during synthesis); one result wins, which is harmless since
/// both are minimal.
#[derive(Debug, Default)]
pub struct SpecCache {
    entries: Mutex<HashMap<Vec<(u32, u32)>, PermutedSynthesisResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SpecCache {
    /// An empty cache.
    pub fn new() -> SpecCache {
        SpecCache::default()
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct equivalence classes stored.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Output-permutation synthesis of `spec` through the cache, computing
    /// with `compute` (called on the **canonical representative**) on a
    /// miss. Errors are not cached — a budget or cancellation failure on
    /// one job must not poison the class for later, better-budgeted
    /// requests.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns on a miss.
    pub fn get_or_compute<F>(
        &self,
        spec: &Spec,
        compute: F,
    ) -> Result<PermutedSynthesisResult, SynthesisError>
    where
        F: FnOnce(&Spec) -> Result<PermutedSynthesisResult, SynthesisError>,
    {
        let canonical = canonicalize(spec);
        let key: Vec<(u32, u32)> = canonical
            .spec
            .rows()
            .iter()
            .map(|r| (r.value, r.care))
            .collect();
        let cached = self.entries.lock().expect("cache lock").get(&key).cloned();
        let stored = match cached {
            Some(stored) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                stored
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let fresh = compute(&canonical.spec)?;
                self.entries
                    .lock()
                    .expect("cache lock")
                    .insert(key, fresh.clone());
                fresh
            }
        };
        // The stored circuits satisfy permute_spec(canonical, q); canonical
        // line i carries spec line j's function for i = witness[j]. So the
        // circuit output driving spec line j is r[j] = q[witness[j]].
        let q = &stored.permutation;
        let permutation: Vec<u32> = canonical.witness.iter().map(|&i| q[i as usize]).collect();
        Ok(PermutedSynthesisResult {
            result: stored.result,
            permutation,
            // Probe accounting belongs to the run that actually searched;
            // replays (and the winning member) report the stored counters.
            stats: stored.stats,
        })
    }

    /// [`get_or_compute`](Self::get_or_compute) with the stock
    /// [`synthesize_with_output_permutation`] as the compute function.
    ///
    /// # Errors
    ///
    /// As for [`synthesize_with_output_permutation`].
    pub fn synthesize(
        &self,
        spec: &Spec,
        options: &SynthesisOptions,
    ) -> Result<PermutedSynthesisResult, SynthesisError> {
        self.get_or_compute(spec, |canonical| {
            synthesize_with_output_permutation(canonical, options)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_core::Engine;
    use qsyn_revlogic::{benchmarks, GateLibrary, Permutation};

    fn opts() -> SynthesisOptions {
        SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_depth(8)
    }

    /// Simulating the returned circuit through the returned permutation
    /// must reproduce the requested spec on every cared bit.
    fn assert_realizes_via_permutation(spec: &Spec, r: &PermutedSynthesisResult) {
        let c = &r.result.solutions().circuits()[0];
        for row in 0..spec.num_rows() as u32 {
            let out = c.simulate(row);
            let sr = spec.row(row);
            for (j, &p) in r.permutation.iter().enumerate() {
                let bit = 1u32 << j;
                if sr.care & bit != 0 {
                    assert_eq!((out >> p) & 1, (sr.value >> j) & 1, "row {row} line {j}");
                }
            }
        }
    }

    #[test]
    fn canonical_form_is_permutation_invariant() {
        let spec = Spec::from_permutation(&Permutation::from_map(3, vec![1, 0, 3, 2, 5, 4, 7, 6]));
        let base = canonicalize(&spec);
        for p in permutations(3) {
            let moved = permute_spec(&spec, &p).unwrap();
            let c = canonicalize(&moved);
            assert_eq!(c.spec.rows(), base.spec.rows(), "permutation {p:?}");
        }
    }

    #[test]
    fn canonicalize_never_conflates_inequivalent_specs() {
        // Every 2-line reversible function: 4! = 24 permutation specs. Two
        // specs share a canonical form iff one is an output permutation of
        // the other.
        let all: Vec<Spec> = permutations(4)
            .into_iter()
            .map(|m| Spec::from_permutation(&Permutation::from_map(2, m)))
            .collect();
        for a in &all {
            for b in &all {
                let equivalent = permutations(2)
                    .iter()
                    .any(|p| permute_spec(a, p).unwrap().rows() == b.rows());
                let same_canon = canonicalize(a).spec.rows() == canonicalize(b).spec.rows();
                assert_eq!(equivalent, same_canon);
            }
        }
    }

    #[test]
    fn hit_replays_to_the_requested_spec() {
        let cache = SpecCache::new();
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![2, 0, 3, 1]));
        let first = cache.synthesize(&spec, &opts()).unwrap();
        assert_realizes_via_permutation(&spec, &first);
        assert_eq!(cache.stats(), (0, 1));
        // Ask again with a permuted variant of the same class: must hit and
        // still satisfy the *new* request.
        let moved = permute_spec(&spec, &[1, 0]).unwrap();
        let second = cache.synthesize(&moved, &opts()).unwrap();
        assert_realizes_via_permutation(&moved, &second);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(first.result.depth(), second.result.depth());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn depth_matches_uncached_synthesis() {
        let cache = SpecCache::new();
        for seed in 0..4u64 {
            let spec = Spec::from_permutation(&benchmarks::random_permutation(3, seed));
            let cached = cache.synthesize(&spec, &opts()).unwrap();
            let direct = synthesize_with_output_permutation(&spec, &opts()).unwrap();
            assert_eq!(cached.result.depth(), direct.result.depth(), "seed {seed}");
            assert_realizes_via_permutation(&spec, &cached);
        }
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = SpecCache::new();
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![3, 0, 1, 2]));
        let tiny = opts().with_max_depth(0);
        assert!(cache.synthesize(&spec, &tiny).is_err());
        assert_eq!(cache.len(), 0);
        // The same class then succeeds with a sane budget.
        let ok = cache.synthesize(&spec, &opts()).unwrap();
        assert_realizes_via_permutation(&spec, &ok);
        assert_eq!(cache.len(), 1);
    }
}
