//! Engine racing: run several synthesis attempts on worker threads, keep
//! the first one that *proves* a minimal result, cancel the rest.
//!
//! Iterative deepening makes every engine's first SAT answer minimal, so
//! whichever engine answers first is as good as any other — the only thing
//! racing changes is the wall clock. Each racer gets its own
//! [`CancelToken`]; the moment a winner is in, the supervisor cancels the
//! losers, and the tokens are polled inside the engines' per-depth inner
//! loops (between BDD levels, between solver conflict chunks), so losers
//! stop promptly instead of running their depth to completion.
//!
//! [`race`] is generic over what the racers actually run — the engine
//! portfolio ([`race_engines`], [`race_engines_permuted`]) is just the
//! common instantiation, and tests can inject scripted racers to observe
//! cancellation deterministically.

use qsyn_core::permuted::{synthesize_with_output_permutation_in, PermutedSynthesisResult};
use qsyn_core::{
    synthesize_in, CancelToken, Engine, SynthesisError, SynthesisOptions, SynthesisResult,
    SynthesisSession,
};
use qsyn_revlogic::Spec;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One competitor in a [`race`]: a label and the closure to run. The
/// closure receives the racer's private [`CancelToken`] and must poll it
/// (directly, or by threading it into [`SynthesisOptions`]) to honour
/// cancellation.
pub struct Racer<T> {
    label: String,
    run: Box<dyn FnOnce(CancelToken) -> Result<T, SynthesisError> + Send>,
}

impl<T> Racer<T> {
    /// A racer running `run` under the given display label.
    pub fn new<F>(label: impl Into<String>, run: F) -> Racer<T>
    where
        F: FnOnce(CancelToken) -> Result<T, SynthesisError> + Send + 'static,
    {
        Racer {
            label: label.into(),
            run: Box::new(run),
        }
    }
}

/// How one racer ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RacerOutcome {
    /// Produced the first successful result.
    Won,
    /// Observed its cancellation token and stopped
    /// ([`SynthesisError::Cancelled`]).
    Cancelled,
    /// Succeeded, but after the winner (its result is discarded).
    FinishedLate,
    /// Failed with a real error (budget, depth limit, …).
    Failed(SynthesisError),
    /// Panicked; the panic was contained and did not take down the race.
    Panicked,
}

/// Per-racer report, in the order the racers were supplied.
#[derive(Clone, Debug)]
pub struct RacerReport {
    /// The racer's label.
    pub label: String,
    /// How it ended.
    pub outcome: RacerOutcome,
    /// Wall-clock time until it ended.
    pub elapsed: Duration,
}

/// A decided race: the winning result plus what happened to everyone.
#[derive(Clone, Debug)]
pub struct RaceResult<T> {
    /// The first successful result.
    pub winner: T,
    /// Label of the racer that produced it.
    pub winner_label: String,
    /// One report per racer, in input order.
    pub reports: Vec<RacerReport>,
}

/// A race nobody won.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaceError {
    /// Called with an empty racer list.
    NoRacers,
    /// Every racer failed; the per-racer errors (a panic is reported as
    /// `None`), in input order.
    AllFailed(Vec<(String, Option<SynthesisError>)>),
}

impl std::fmt::Display for RaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaceError::NoRacers => write!(f, "race started with no racers"),
            RaceError::AllFailed(fails) => {
                write!(f, "every racer failed:")?;
                for (label, err) in fails {
                    match err {
                        Some(e) => write!(f, " [{label}: {e}]")?,
                        None => write!(f, " [{label}: panicked]")?,
                    }
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RaceError {}

impl RaceError {
    /// Collapses a lost race into the most informative single engine error:
    /// the first non-[`Cancelled`](SynthesisError::Cancelled) racer error,
    /// falling back to any racer error, then to an internal-invariant
    /// report when every racer panicked (or there were none). Lets callers
    /// that treat the race as "just another engine" (the batch scheduler,
    /// the cache compute hook) keep a single error type.
    #[must_use]
    pub fn into_synthesis_error(self) -> SynthesisError {
        let fallback = SynthesisError::Internal {
            what: "portfolio race ended with no reportable error",
        };
        match self {
            RaceError::NoRacers => fallback,
            RaceError::AllFailed(fails) => {
                let mut errors = fails.into_iter().filter_map(|(_, e)| e);
                match errors.next() {
                    None => fallback,
                    Some(first) => {
                        if matches!(first, SynthesisError::Cancelled { .. }) {
                            errors
                                .find(|e| !matches!(e, SynthesisError::Cancelled { .. }))
                                .unwrap_or(first)
                        } else {
                            first
                        }
                    }
                }
            }
        }
    }
}

/// Runs all racers concurrently and returns the first success; the
/// remaining racers are cancelled through their tokens and joined before
/// returning, so no racer outlives the call.
///
/// A racer that panics is contained ([`RacerOutcome::Panicked`]) and simply
/// cannot win.
///
/// # Errors
///
/// [`RaceError::NoRacers`] for an empty field; [`RaceError::AllFailed`]
/// when every racer errored or panicked.
pub fn race<T: Send + 'static>(racers: Vec<Racer<T>>) -> Result<RaceResult<T>, RaceError> {
    if racers.is_empty() {
        return Err(RaceError::NoRacers);
    }
    let labels: Vec<String> = racers.iter().map(|r| r.label.clone()).collect();
    let tokens: Vec<CancelToken> = racers.iter().map(|_| CancelToken::new()).collect();
    let (tx, rx) = mpsc::channel();
    let start = Instant::now();
    let handles: Vec<_> = racers
        .into_iter()
        .zip(&tokens)
        .enumerate()
        .map(|(idx, (racer, token))| {
            let tx = tx.clone();
            let token = token.clone();
            std::thread::spawn(move || {
                let run = racer.run;
                let verdict = catch_unwind(AssertUnwindSafe(move || run(token)));
                // The receiver hangs up once all messages are in; a failed
                // send can only mean the supervisor itself panicked.
                let _ = tx.send((idx, verdict, start.elapsed()));
            })
        })
        .collect();
    drop(tx);

    let mut winner: Option<(usize, T)> = None;
    let mut outcomes: Vec<Option<(RacerOutcome, Duration)>> = labels.iter().map(|_| None).collect();
    for (idx, verdict, elapsed) in rx {
        let outcome = match verdict {
            Ok(Ok(result)) => {
                if winner.is_none() {
                    winner = Some((idx, result));
                    // The race is decided: stop everyone else promptly.
                    for (i, t) in tokens.iter().enumerate() {
                        if i != idx {
                            t.cancel();
                        }
                    }
                    RacerOutcome::Won
                } else {
                    RacerOutcome::FinishedLate
                }
            }
            Ok(Err(SynthesisError::Cancelled { .. })) => RacerOutcome::Cancelled,
            Ok(Err(e)) => RacerOutcome::Failed(e),
            Err(_panic) => RacerOutcome::Panicked,
        };
        outcomes[idx] = Some((outcome, elapsed));
    }
    for h in handles {
        let _ = h.join();
    }

    let reports: Vec<RacerReport> = labels
        .into_iter()
        .zip(outcomes)
        .map(|(label, o)| {
            let (outcome, elapsed) = o.expect("every racer reports exactly once");
            RacerReport {
                label,
                outcome,
                elapsed,
            }
        })
        .collect();
    match winner {
        Some((idx, result)) => Ok(RaceResult {
            winner: result,
            winner_label: reports[idx].label.clone(),
            reports,
        }),
        None => Err(RaceError::AllFailed(
            reports
                .into_iter()
                .map(|r| {
                    let err = match r.outcome {
                        RacerOutcome::Failed(e) => Some(e),
                        _ => None,
                    };
                    (r.label, err)
                })
                .collect(),
        )),
    }
}

/// The engines entered into a portfolio race, in report order.
pub const RACE_ENGINES: [Engine; 3] = [Engine::Bdd, Engine::Sat, Engine::Qbf];

/// Races the three engines on one specification with plain (identity
/// output) synthesis. `options.engine` is ignored — each racer runs its own
/// engine; everything else (library, budgets, `time_budget`) applies to
/// every racer. An already-supplied cancel token in `options` still works:
/// cancelling it stops the whole race.
///
/// # Errors
///
/// See [`race`].
pub fn race_engines(
    spec: &Spec,
    options: &SynthesisOptions,
) -> Result<RaceResult<SynthesisResult>, RaceError> {
    race(entrants(spec, options, |spec, options, session| {
        synthesize_in(&spec, &options, session)
    }))
}

/// Races the three engines on output-permutation synthesis
/// (`qsyn_core::synthesize_with_output_permutation`); otherwise as
/// [`race_engines`].
///
/// # Errors
///
/// See [`race`].
pub fn race_engines_permuted(
    spec: &Spec,
    options: &SynthesisOptions,
) -> Result<RaceResult<PermutedSynthesisResult>, RaceError> {
    race(entrants(spec, options, |spec, options, session| {
        synthesize_with_output_permutation_in(&spec, &options, session)
    }))
}

/// Builds one racer per engine in [`RACE_ENGINES`], each running `f` on a
/// clone of the options with that engine selected and the racer's token
/// chained onto any caller-supplied one. Every racer owns a private
/// [`SynthesisSession`] for the attempt — sessions are thread-local by
/// design, and the loser's pooled managers are freed with it when the
/// racer is cancelled.
fn entrants<T, F>(spec: &Spec, options: &SynthesisOptions, f: F) -> Vec<Racer<T>>
where
    T: Send + 'static,
    F: Fn(Spec, SynthesisOptions, &mut SynthesisSession) -> Result<T, SynthesisError>
        + Clone
        + Send
        + 'static,
{
    RACE_ENGINES
        .iter()
        .map(|&engine| {
            let spec = spec.clone();
            let options = options.clone();
            let f = f.clone();
            Racer::new(engine.to_string(), move |token: CancelToken| {
                // The engine polls one token that trips when either the
                // race decides against this racer or the caller cancels
                // the whole run.
                let merged = CancelToken::merged([&token, &options.cancel]);
                let opts = options.with_engine(engine).with_cancel_token(merged);
                f(spec, opts, &mut SynthesisSession::new())
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_revlogic::{benchmarks, GateLibrary, Permutation};

    fn opts() -> SynthesisOptions {
        SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd)
    }

    /// A racer that only ever exits through its cancellation token — the
    /// deterministic way to observe loser cancellation.
    fn blocked_racer(label: &str) -> Racer<u32> {
        Racer::new(label, |token: CancelToken| loop {
            token.check(7)?;
            std::thread::sleep(Duration::from_millis(1));
        })
    }

    #[test]
    fn first_success_wins_and_losers_are_cancelled() {
        let fast = Racer::new("fast", |_token| Ok(42u32));
        let r = race(vec![blocked_racer("stuck"), fast]).unwrap();
        assert_eq!(r.winner, 42);
        assert_eq!(r.winner_label, "fast");
        assert_eq!(r.reports.len(), 2);
        assert_eq!(r.reports[0].outcome, RacerOutcome::Cancelled);
        assert_eq!(r.reports[1].outcome, RacerOutcome::Won);
    }

    #[test]
    fn panicking_racer_cannot_win_and_is_contained() {
        let bomb: Racer<u32> = Racer::new("bomb", |_token| panic!("boom"));
        let slow = Racer::new("slow", |token: CancelToken| {
            std::thread::sleep(Duration::from_millis(5));
            token.check(0)?;
            Ok(7u32)
        });
        let r = race(vec![bomb, slow]).unwrap();
        assert_eq!(r.winner, 7);
        assert_eq!(r.reports[0].outcome, RacerOutcome::Panicked);
    }

    #[test]
    fn all_failures_are_collected() {
        let a: Racer<u32> = Racer::new("a", |_| {
            Err(SynthesisError::DepthLimitReached { max_depth: 1 })
        });
        let b: Racer<u32> = Racer::new("b", |_| panic!("dead"));
        let err = race(vec![a, b]).unwrap_err();
        match err {
            RaceError::AllFailed(fails) => {
                assert_eq!(fails.len(), 2);
                assert_eq!(
                    fails[0],
                    (
                        "a".to_string(),
                        Some(SynthesisError::DepthLimitReached { max_depth: 1 })
                    )
                );
                assert_eq!(fails[1], ("b".to_string(), None));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn empty_race_is_an_error() {
        assert_eq!(race::<u32>(vec![]).unwrap_err(), RaceError::NoRacers);
    }

    #[test]
    fn engine_race_agrees_with_single_engine() {
        let spec = benchmarks::spec_3_17();
        let raced = race_engines(&spec, &opts()).unwrap();
        assert_eq!(raced.winner.depth(), 6, "3_17's known minimal MCT depth");
        assert!(spec.is_realized_by(&raced.winner.solutions().circuits()[0]));
        assert_eq!(raced.reports.len(), 3);
        assert!(raced.reports.iter().any(|r| r.outcome == RacerOutcome::Won));
    }

    #[test]
    fn permuted_engine_race_finds_free_swap() {
        let spec = Spec::from_permutation(&Permutation::from_fn(2, |v| ((v & 1) << 1) | (v >> 1)));
        let raced = race_engines_permuted(&spec, &opts()).unwrap();
        assert_eq!(raced.winner.result.depth(), 0);
        assert!(!raced.winner.is_identity_permutation());
    }
}
