//! Crash-safe batch journaling.
//!
//! `qsyn batch --journal path` appends one JSONL record per **completed**
//! job — its canonical-spec key, the displayed result fields, and an
//! FNV-1a digest of the result — fsync'd (`File::sync_data`) per record,
//! so a killed batch loses at most the record being written. A later run
//! with `--resume` reads the journal back, skips every job whose key is
//! present, and replays the stored row into the merged report
//! bit-identically (including the recorded elapsed time).
//!
//! # Format
//!
//! One JSON object per line, written by [`render_record`] and parsed by
//! [`parse_record`]:
//!
//! ```json
//! {"key":"0:ham3:5bd5…","name":"ham3","depth":5,"solutions":"24",
//!  "permutation":"[0, 1, 2]","elapsed_ns":10731042,"digest":"9f0a…"}
//! ```
//!
//! The reader is **torn-write tolerant**: a malformed line (the usual
//! cause is the crash interrupting an append mid-line) is skipped and
//! every well-formed line stands — including records a resumed run
//! appended *after* the torn one, which [`JournalWriter::open`] places on
//! a fresh line by repairing the missing newline. A job dropped this way
//! is simply re-run — correctness never depends on the journal being
//! complete. Keys repeat when a journal accumulates several runs; the
//! last record for a key wins.
//!
//! The key is `index:name:spec-digest` — the job's input position and
//! name pin the row (a batch can list the same benchmark twice), and the
//! canonical-spec digest guards against resuming against an *edited* job
//! list where index `i` now means a different function.

use crate::cache::canonicalize;
use qsyn_revlogic::Spec;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// One completed job, as journaled; carries everything the batch table
/// needs to reprint the row without re-running the job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// `index:name:spec-digest`; see the module docs.
    pub key: String,
    /// The job's name, as supplied to the batch.
    pub name: String,
    /// Minimal gate count found.
    pub depth: u32,
    /// The solution count, in its display form (may exceed `u64`).
    pub solutions: String,
    /// The output permutation, in its display form (e.g. `[0, 2, 1]`).
    pub permutation: String,
    /// Wall-clock time of the original run, in nanoseconds.
    pub elapsed_ns: u64,
    /// FNV-1a digest over the result's semantic content (depth, solution
    /// count, permutation, best circuit), hex-encoded. The chaos harness
    /// compares these across fault schedules.
    pub digest: String,
}

/// The journal key for job `index` named `name` over `spec`.
///
/// Uses the **canonical** spec (the output-permutation class
/// representative), so the key is stable under cosmetic relabelings of
/// the input file.
pub fn job_key(index: usize, name: &str, spec: &Spec) -> String {
    let canonical = canonicalize(spec);
    let mut h = Fnv1a::new();
    for row in canonical.spec.rows() {
        h.write_u32(row.value);
        h.write_u32(row.care);
    }
    format!("{index}:{name}:{:016x}", h.finish())
}

/// Incremental 64-bit FNV-1a hasher for result digests and spec keys.
#[derive(Clone, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a `u32` (little-endian) into the digest.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

/// Append-only journal writer; every [`append`](Self::append) is flushed
/// and fsync'd before returning, so a completed job survives a crash
/// immediately after its report lands.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Opens (creating if absent) `path` for appending. A journal whose
    /// last append was torn by a crash (no trailing newline) is repaired
    /// with a newline first, so the next record starts on its own line
    /// instead of merging with the torn bytes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn open(path: &Path) -> std::io::Result<JournalWriter> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        if file.metadata()?.len() > 0 {
            let mut last = [0u8; 1];
            file.seek(SeekFrom::End(-1))?;
            file.read_exact(&mut last)?;
            if last[0] != b'\n' {
                // Append mode: the write lands at the end regardless of
                // the read position.
                file.write_all(b"\n")?;
            }
        }
        Ok(JournalWriter { file })
    }

    /// Appends one record and syncs it to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error (the record may be partially
    /// written, which a later reader tolerates).
    pub fn append(&mut self, record: &JournalRecord) -> std::io::Result<()> {
        let mut line = render_record(record);
        line.push('\n');
        // One write call for the whole line keeps torn records to crash
        // windows only, not interleaving (appends are serialized by the
        // caller's lock anyway).
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

/// Reads every well-formed record from `path`, skipping malformed lines
/// (see the module docs); a missing file is an empty journal.
///
/// # Errors
///
/// Propagates I/O errors other than the file not existing.
pub fn read_journal(path: &Path) -> std::io::Result<Vec<JournalRecord>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        // A torn append (or any corruption) invalidates that line only:
        // its job simply re-runs. Records appended by a resumed run land
        // *after* the torn line ([`JournalWriter::open`] repairs the
        // missing newline), so they must still be read.
        if let Some(r) = parse_record(line) {
            records.push(r);
        }
    }
    Ok(records)
}

/// Serializes `record` as one JSON line (no trailing newline).
pub fn render_record(r: &JournalRecord) -> String {
    format!(
        "{{\"key\":{},\"name\":{},\"depth\":{},\"solutions\":{},\"permutation\":{},\"elapsed_ns\":{},\"digest\":{}}}",
        json_string(&r.key),
        json_string(&r.name),
        r.depth,
        json_string(&r.solutions),
        json_string(&r.permutation),
        r.elapsed_ns,
        json_string(&r.digest),
    )
}

/// Parses one line written by [`render_record`]; `None` on any
/// malformation (truncation, bad escapes, missing fields).
pub fn parse_record(line: &str) -> Option<JournalRecord> {
    let line = line.trim();
    if !line.starts_with('{') || !line.ends_with('}') {
        return None;
    }
    Some(JournalRecord {
        key: string_field(line, "key")?,
        name: string_field(line, "name")?,
        depth: u32::try_from(number_field(line, "depth")?).ok()?,
        solutions: string_field(line, "solutions")?,
        permutation: string_field(line, "permutation")?,
        elapsed_ns: number_field(line, "elapsed_ns")?,
        digest: string_field(line, "digest")?,
    })
}

/// Minimal JSON string escaping (quote, backslash, control characters) —
/// names come from benchmark tables and file stems, so this is already
/// more than the data needs.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Extracts the string value of `"field":"…"` from `line`, unescaping.
pub fn string_field(line: &str, field: &str) -> Option<String> {
    let marker = format!("\"{field}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).map(|_| chars.next().unwrap_or('x')).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// Extracts the numeric value of `"field":123` from `line`.
pub fn number_field(line: &str, field: &str) -> Option<u64> {
    let marker = format!("\"{field}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_revlogic::Permutation;

    fn record(i: u64) -> JournalRecord {
        JournalRecord {
            key: format!("{i}:job{i}:00000000deadbeef"),
            name: format!("job{i}"),
            depth: 4 + i as u32,
            solutions: "24".to_string(),
            permutation: "[0, 2, 1]".to_string(),
            elapsed_ns: 1_000_000 + i,
            digest: format!("{i:016x}"),
        }
    }

    #[test]
    fn records_round_trip() {
        for i in 0..5 {
            let r = record(i);
            assert_eq!(parse_record(&render_record(&r)), Some(r));
        }
        // Escaping round-trips too.
        let odd = JournalRecord {
            name: "we\"ird\\na\tme".to_string(),
            ..record(0)
        };
        assert_eq!(parse_record(&render_record(&odd)), Some(odd));
    }

    #[test]
    fn writer_appends_and_reader_replays_in_order() {
        let dir = std::env::temp_dir().join(format!("qsyn-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::open(&path).unwrap();
            for i in 0..3 {
                w.append(&record(i)).unwrap();
            }
        }
        // A second opening appends, not truncates.
        JournalWriter::open(&path)
            .unwrap()
            .append(&record(3))
            .unwrap();
        let back = read_journal(&path).unwrap();
        assert_eq!(back, (0..4).map(record).collect::<Vec<_>>());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_final_record_is_ignored_not_fatal() {
        let full = render_record(&record(0));
        let torn = render_record(&record(1));
        for cut in [1, torn.len() / 2, torn.len() - 1] {
            let text = format!("{full}\n{}", &torn[..cut]);
            let dir = std::env::temp_dir();
            let path = dir.join(format!(
                "qsyn-journal-torn-{}-{cut}.jsonl",
                std::process::id()
            ));
            std::fs::write(&path, text).unwrap();
            let back = read_journal(&path).unwrap();
            assert_eq!(back, vec![record(0)], "cut at {cut}");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn corrupt_middle_line_drops_only_that_record() {
        let text = format!(
            "{}\nthis is not json\n{}\n",
            render_record(&record(0)),
            render_record(&record(2))
        );
        let path =
            std::env::temp_dir().join(format!("qsyn-journal-mid-{}.jsonl", std::process::id()));
        std::fs::write(&path, text).unwrap();
        let back = read_journal(&path).unwrap();
        assert_eq!(
            back,
            vec![record(0), record(2)],
            "well-formed records around the corruption survive"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appends_after_a_torn_record_start_on_a_fresh_line() {
        let path = std::env::temp_dir().join(format!(
            "qsyn-journal-torn-append-{}.jsonl",
            std::process::id()
        ));
        let torn = render_record(&record(1));
        // A crash mid-append leaves a record with no trailing newline.
        std::fs::write(
            &path,
            format!("{}\n{}", render_record(&record(0)), &torn[..torn.len() / 2]),
        )
        .unwrap();
        JournalWriter::open(&path)
            .unwrap()
            .append(&record(2))
            .unwrap();
        let back = read_journal(&path).unwrap();
        assert_eq!(
            back,
            vec![record(0), record(2)],
            "torn line skipped, append read"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_journal_is_empty() {
        let path = std::env::temp_dir().join("qsyn-journal-definitely-missing.jsonl");
        let _ = std::fs::remove_file(&path);
        assert_eq!(read_journal(&path).unwrap(), Vec::new());
    }

    #[test]
    fn job_key_pins_index_name_and_function() {
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![1, 0, 3, 2]));
        let other = Spec::from_permutation(&Permutation::from_map(2, vec![3, 0, 1, 2]));
        let k = job_key(0, "a", &spec);
        assert_eq!(k, job_key(0, "a", &spec), "deterministic");
        assert_ne!(k, job_key(1, "a", &spec), "index matters");
        assert_ne!(k, job_key(0, "b", &spec), "name matters");
        assert_ne!(k, job_key(0, "a", &other), "function matters");
    }
}
