//! Batch synthesis: a bounded work queue feeding a fixed worker pool.
//!
//! The scheduler owns the concurrency story so the synthesis code doesn't
//! have to: jobs are pushed into a bounded [`WorkQueue`], `--jobs N` worker
//! threads drain it, each job runs under its own [`CancelToken`] (armed
//! with the per-job deadline when one is configured), and a panicking job
//! marks *that job* failed without poisoning the queue or taking down its
//! worker. Results come back in input order regardless of completion
//! order, so a parallel batch is byte-for-byte comparable to a sequential
//! one.

use qsyn_core::{CancelToken, SessionStats, SynthesisError, SynthesisSession};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A bounded multi-producer multi-consumer queue with explicit shutdown.
///
/// `push` blocks while the queue is at capacity; `pop` blocks while it is
/// empty and not closed. After [`close`](Self::close), pushes are rejected
/// and pops drain the remainder, then return `None`.
#[derive(Debug)]
pub struct WorkQueue<T> {
    state: Mutex<QueueState<T>>,
    /// Signals consumers (items available / closed).
    can_pop: Condvar,
    /// Signals producers (capacity available / closed).
    can_push: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> WorkQueue<T> {
    /// A queue holding at most `capacity` items (at least 1).
    pub fn bounded(capacity: usize) -> WorkQueue<T> {
        WorkQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            can_pop: Condvar::new(),
            can_push: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks until there is room, then enqueues `item`. Returns the item
    /// back when the queue has been closed in the meantime.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.can_pop.notify_one();
                return Ok(());
            }
            state = self.can_push.wait(state).expect("queue lock");
        }
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed *and* drained (returning `None`).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.can_push.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.can_pop.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: pending items still drain, further pushes fail,
    /// and blocked consumers wake up once the queue empties.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.can_pop.notify_all();
        self.can_push.notify_all();
    }
}

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Worker threads (at least 1).
    pub workers: usize,
    /// Wall-clock deadline per job, enforced through the job's token.
    pub per_job_timeout: Option<Duration>,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            workers: 1,
            per_job_timeout: None,
        }
    }
}

/// How one job ended.
#[derive(Clone, Debug)]
pub enum JobStatus<R> {
    /// The job function returned a value.
    Done(R),
    /// The job function returned an error (including
    /// [`SynthesisError::Cancelled`] after a shutdown and
    /// [`SynthesisError::BudgetExceeded`] after its deadline).
    Failed(SynthesisError),
    /// The job function panicked; the payload's message when it was a
    /// string. Other jobs are unaffected.
    Panicked(String),
}

impl<R> JobStatus<R> {
    /// The result, if the job succeeded.
    pub fn result(&self) -> Option<&R> {
        match self {
            JobStatus::Done(r) => Some(r),
            _ => None,
        }
    }
}

/// Per-job report, in input order.
#[derive(Clone, Debug)]
pub struct JobReport<R> {
    /// The job's name, as supplied.
    pub name: String,
    /// How it ended.
    pub status: JobStatus<R>,
    /// Wall-clock time the job spent in its worker.
    pub elapsed: Duration,
}

/// A finished batch: one report per job **in input order**, plus the
/// session counters summed over every worker.
#[derive(Clone, Debug)]
pub struct BatchOutcome<R> {
    /// Per-job reports, in input order.
    pub reports: Vec<JobReport<R>>,
    /// BDD manager pool counters aggregated across all worker sessions
    /// (jobs, managers, resets, peak live nodes, cache traffic, GC work).
    pub session_stats: SessionStats,
}

/// Runs `run` over all `jobs` on `config.workers` threads and returns one
/// report per job **in input order**. `run` receives the job's payload,
/// its cancellation token and the worker's [`SynthesisSession`]; honour
/// the token to make deadlines and shutdown effective mid-job. Each worker
/// owns one session for its whole lifetime, so BDD managers (and their
/// warmed unique/computed tables) are recycled from job to job instead of
/// rebuilt; the aggregated counters come back in
/// [`BatchOutcome::session_stats`]. `shutdown`, when supplied, aborts the
/// batch gracefully once it is cancelled: queued jobs are dropped
/// (reported as [`SynthesisError::Cancelled`]) and running jobs see their
/// tokens trip.
pub fn run_batch<J, R, F>(
    jobs: Vec<(String, J)>,
    config: &BatchConfig,
    shutdown: Option<&CancelToken>,
    run: F,
) -> BatchOutcome<R>
where
    J: Send,
    R: Send,
    F: Fn(&J, &CancelToken, &mut SynthesisSession) -> Result<R, SynthesisError> + Sync,
{
    let total = jobs.len();
    let workers = config.workers.max(1).min(total.max(1));
    // Bounded at the worker count: the feeder stays a few jobs ahead of
    // the pool without materializing the whole batch in the queue.
    let queue: WorkQueue<(usize, String, J)> = WorkQueue::bounded(workers);
    let reports: Mutex<Vec<Option<JobReport<R>>>> = Mutex::new((0..total).map(|_| None).collect());
    let session_totals: Mutex<SessionStats> = Mutex::new(SessionStats::default());
    let default_token = CancelToken::new();
    let shutdown = shutdown.unwrap_or(&default_token);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut session = SynthesisSession::new();
                while let Some((idx, name, job)) = queue.pop() {
                    let start = Instant::now();
                    let token = CancelToken::merged([shutdown]);
                    if let Some(deadline) = config.per_job_timeout {
                        token.set_deadline(start + deadline);
                    }
                    let status = if token.is_cancelled() {
                        JobStatus::Failed(SynthesisError::Cancelled { depth: 0 })
                    } else {
                        match catch_unwind(AssertUnwindSafe(|| run(&job, &token, &mut session))) {
                            Ok(Ok(result)) => JobStatus::Done(result),
                            Ok(Err(e)) => JobStatus::Failed(e),
                            Err(payload) => JobStatus::Panicked(panic_message(payload.as_ref())),
                        }
                    };
                    reports.lock().expect("reports lock")[idx] = Some(JobReport {
                        name,
                        status,
                        elapsed: start.elapsed(),
                    });
                }
                session_totals
                    .lock()
                    .expect("session stats lock")
                    .merge(&session.stats());
            });
        }
        // Feed from this thread; with the bounded queue this blocks until
        // workers free up, which is exactly the backpressure we want.
        for (idx, (name, job)) in jobs.into_iter().enumerate() {
            if shutdown.is_cancelled() {
                reports.lock().expect("reports lock")[idx] = Some(JobReport {
                    name,
                    status: JobStatus::Failed(SynthesisError::Cancelled { depth: 0 }),
                    elapsed: Duration::ZERO,
                });
                continue;
            }
            if let Err((_, name, _)) = queue.push((idx, name, job)) {
                reports.lock().expect("reports lock")[idx] = Some(JobReport {
                    name,
                    status: JobStatus::Failed(SynthesisError::Cancelled { depth: 0 }),
                    elapsed: Duration::ZERO,
                });
            }
        }
        queue.close();
    });

    BatchOutcome {
        reports: reports
            .into_inner()
            .expect("reports lock")
            .into_iter()
            .map(|r| r.expect("every job reported"))
            .collect(),
        session_stats: session_totals.into_inner().expect("session stats lock"),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn config(workers: usize) -> BatchConfig {
        BatchConfig {
            workers,
            per_job_timeout: None,
        }
    }

    #[test]
    fn results_keep_input_order_across_workers() {
        // Reverse-sorted sleep times force out-of-order completion.
        let jobs: Vec<(String, u64)> = (0..8u64)
            .map(|i| (format!("job{i}"), (8 - i) * 2))
            .collect();
        let outcome = run_batch(jobs, &config(4), None, |&ms, _, _| {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(ms)
        });
        let reports = outcome.reports;
        assert_eq!(reports.len(), 8);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.name, format!("job{i}"));
            assert_eq!(r.status.result(), Some(&((8 - i as u64) * 2)));
        }
    }

    #[test]
    fn worker_pool_is_actually_bounded() {
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let jobs: Vec<(String, ())> = (0..12).map(|i| (format!("j{i}"), ())).collect();
        run_batch(jobs, &config(3), None, |(), _, _| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(3));
            live.fetch_sub(1, Ordering::SeqCst);
            Ok(())
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn a_panicking_job_fails_alone() {
        let jobs: Vec<(String, u32)> = (0..6).map(|i| (format!("j{i}"), i)).collect();
        let outcome = run_batch(jobs, &config(2), None, |&i, _, _| {
            if i == 2 {
                panic!("job {i} exploded");
            }
            Ok(i * 10)
        });
        for (i, r) in outcome.reports.iter().enumerate() {
            if i == 2 {
                match &r.status {
                    JobStatus::Panicked(msg) => assert!(msg.contains("exploded")),
                    other => panic!("expected panic report, got {other:?}"),
                }
            } else {
                assert_eq!(r.status.result(), Some(&(i as u32 * 10)));
            }
        }
    }

    #[test]
    fn per_job_deadline_arms_the_token() {
        let cfg = BatchConfig {
            workers: 2,
            per_job_timeout: Some(Duration::ZERO),
        };
        let outcome = run_batch(
            vec![("t".to_string(), ())],
            &cfg,
            None,
            |(), token: &CancelToken, _session: &mut SynthesisSession| {
                token.check(3)?;
                Ok(())
            },
        );
        assert!(matches!(
            outcome.reports[0].status,
            JobStatus::Failed(SynthesisError::BudgetExceeded {
                depth: 3,
                resource: qsyn_core::Resource::WallClock,
                ..
            })
        ));
    }

    #[test]
    fn shutdown_cancels_running_and_queued_jobs() {
        let shutdown = CancelToken::new();
        let started = AtomicUsize::new(0);
        // 1 worker, several jobs: the first job triggers shutdown itself,
        // so later jobs never run.
        let trigger = shutdown.clone();
        let jobs: Vec<(String, usize)> = (0..5).map(|i| (format!("j{i}"), i)).collect();
        let outcome = run_batch(jobs, &config(1), Some(&shutdown), move |&i, token, _| {
            started.fetch_add(1, Ordering::SeqCst);
            if i == 0 {
                trigger.cancel();
            }
            token.check(0)?;
            Ok(i)
        });
        let reports = outcome.reports;
        assert!(matches!(
            reports[0].status,
            JobStatus::Failed(SynthesisError::Cancelled { .. })
        ));
        let cancelled = reports
            .iter()
            .filter(|r| {
                matches!(
                    r.status,
                    JobStatus::Failed(SynthesisError::Cancelled { .. })
                )
            })
            .count();
        assert_eq!(cancelled, 5, "every job observed the shutdown");
    }

    #[test]
    fn queue_drains_after_close_and_rejects_new_pushes() {
        let q: WorkQueue<u32> = WorkQueue::bounded(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bounded_push_blocks_until_a_pop() {
        let q: WorkQueue<u32> = WorkQueue::bounded(1);
        q.push(1).unwrap();
        std::thread::scope(|s| {
            let pusher = s.spawn(|| q.push(2).unwrap());
            std::thread::sleep(Duration::from_millis(5));
            assert!(!pusher.is_finished(), "push must block at capacity");
            assert_eq!(q.pop(), Some(1));
            pusher.join().unwrap();
        });
        assert_eq!(q.pop(), Some(2));
    }
}
