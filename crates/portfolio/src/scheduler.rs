//! Batch synthesis: a bounded work queue feeding a fixed worker pool.
//!
//! The scheduler owns the concurrency story so the synthesis code doesn't
//! have to: jobs are pushed into a bounded [`WorkQueue`], `--jobs N` worker
//! threads drain it, each job runs under its own [`CancelToken`] (armed
//! with the per-job deadline when one is configured), and a panicking job
//! marks *that job* failed without poisoning the queue or taking down its
//! worker. Results come back in input order regardless of completion
//! order, so a parallel batch is byte-for-byte comparable to a sequential
//! one.
//!
//! # Supervision
//!
//! With a [`RetryPolicy`] in the [`BatchConfig`], the scheduler is also
//! the supervisor: a budget-tripped attempt is re-run with escalated
//! budgets and degraded down the policy's engine ladder, a panicked
//! attempt is re-run unchanged, and the job's report says how it
//! recovered ([`JobStatus::Degraded`]). A panicking attempt's BDD manager
//! is quarantined by the session pool (drop-during-unwind, see
//! `qsyn_core::ManagerPool`), so recovery never recycles wreckage into
//! the next attempt.

use qsyn_core::retry::{classify, FailureKind};
use qsyn_core::{
    Attempt, CancelToken, Engine, RetryPolicy, SessionStats, SynthesisError, SynthesisSession,
};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, Once};
use std::time::{Duration, Instant};

/// A bounded multi-producer multi-consumer queue with explicit shutdown.
///
/// `push` blocks while the queue is at capacity; `pop` blocks while it is
/// empty and not closed. After [`close`](Self::close), pushes are rejected
/// and pops drain the remainder, then return `None`.
#[derive(Debug)]
pub struct WorkQueue<T> {
    state: Mutex<QueueState<T>>,
    /// Signals consumers (items available / closed).
    can_pop: Condvar,
    /// Signals producers (capacity available / closed).
    can_push: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> WorkQueue<T> {
    /// A queue holding at most `capacity` items (at least 1).
    pub fn bounded(capacity: usize) -> WorkQueue<T> {
        WorkQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            can_pop: Condvar::new(),
            can_push: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks until there is room, then enqueues `item`. Returns the item
    /// back when the queue has been closed in the meantime.
    ///
    /// `concheck` treats `queue.push` as a blocking operation
    /// (receiver-qualified): never call it while holding another lock.
    /// `try_push` is the non-blocking admission-control alternative.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.can_pop.notify_one();
                return Ok(());
            }
            state = self.can_push.wait(state).expect("queue lock");
        }
    }

    /// Non-blocking [`push`](Self::push): enqueues `item` only when there
    /// is room right now, handing it back otherwise. The admission-control
    /// primitive for serving layers — a full queue is an *overloaded*
    /// signal to bounce back to the client, not a reason to park its
    /// connection thread on the producer condvar.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        self.can_pop.notify_one();
        Ok(())
    }

    /// Items currently queued (racy by nature; for stats and tests).
    pub fn pending(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed *and* drained (returning `None`).
    ///
    /// Like [`push`](Self::push), `queue.pop` is a `concheck`-qualified
    /// blocking operation: workers call it lock-free at the top of their
    /// loop.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.can_push.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.can_pop.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: pending items still drain, further pushes fail,
    /// and blocked consumers wake up once the queue empties.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.can_pop.notify_all();
        self.can_push.notify_all();
    }
}

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Worker threads (at least 1).
    pub workers: usize,
    /// Wall-clock deadline per job attempt, enforced through the job's
    /// token (retried attempts get a fresh deadline, scaled by the retry
    /// policy's escalation).
    pub per_job_timeout: Option<Duration>,
    /// Recovery plan for budget-tripped and panicked jobs;
    /// [`RetryPolicy::none`] (the default) preserves the old
    /// fail-on-first-error behaviour.
    pub retry: RetryPolicy,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            workers: 1,
            per_job_timeout: None,
            retry: RetryPolicy::none(),
        }
    }
}

/// How one job ended.
#[derive(Clone, Debug)]
pub enum JobStatus<R> {
    /// The job function returned a value on its first attempt.
    Done(R),
    /// The job recovered: it returned a value, but only after retries
    /// and/or degradation down the engine ladder.
    Degraded {
        /// The recovered result.
        result: R,
        /// Attempts run, including the successful one.
        attempts: u32,
        /// Engines the degradation ladder routed retries through, in
        /// order; empty when the retries kept the job's own engine.
        ladder_path: Vec<Engine>,
    },
    /// The job function returned an error (including
    /// [`SynthesisError::Cancelled`] after a shutdown and
    /// [`SynthesisError::BudgetExceeded`] after its deadline), and the
    /// retry policy — if any — was exhausted or did not apply.
    Failed(SynthesisError),
    /// The job function panicked on its last attempt. Other jobs are
    /// unaffected.
    Panicked {
        /// The panic payload's message, when it was a string.
        message: String,
        /// `file:line:column` of the panic site, captured by the worker
        /// panic hook.
        location: Option<String>,
        /// A captured backtrace, when `RUST_BACKTRACE` is set (and not
        /// `0`) in the environment.
        backtrace: Option<String>,
    },
}

impl<R> JobStatus<R> {
    /// The result, if the job produced one (cleanly or after recovery).
    pub fn result(&self) -> Option<&R> {
        match self {
            JobStatus::Done(r) => Some(r),
            JobStatus::Degraded { result, .. } => Some(result),
            _ => None,
        }
    }
}

/// Per-job report, in input order.
#[derive(Clone, Debug)]
pub struct JobReport<R> {
    /// The job's name, as supplied.
    pub name: String,
    /// How it ended.
    pub status: JobStatus<R>,
    /// Wall-clock time the job spent in its worker, summed over all
    /// attempts (including retry backoff).
    pub elapsed: Duration,
    /// Attempts run (1 for a job that settled on its first try).
    pub attempts: u32,
}

/// A finished batch: one report per job **in input order**, plus the
/// session counters summed over every worker.
#[derive(Clone, Debug)]
pub struct BatchOutcome<R> {
    /// Per-job reports, in input order.
    pub reports: Vec<JobReport<R>>,
    /// BDD manager pool counters aggregated across all worker sessions
    /// (jobs, managers, resets, peak live nodes, cache traffic, GC work).
    pub session_stats: SessionStats,
}

/// Runs `run` over all `jobs` on `config.workers` threads and returns one
/// report per job **in input order**. `run` receives the job's payload,
/// its cancellation token, the worker's [`SynthesisSession`] and the
/// current [`Attempt`] (number, budget scale, engine override — apply it
/// to the job's options so retries actually escalate); honour the token
/// to make deadlines and shutdown effective mid-job. Each worker owns one
/// session for its whole lifetime, so BDD managers (and their warmed
/// unique/computed tables) are recycled from job to job instead of
/// rebuilt; the aggregated counters come back in
/// [`BatchOutcome::session_stats`]. `shutdown`, when supplied, aborts the
/// batch gracefully once it is cancelled: queued jobs are dropped
/// (reported as [`SynthesisError::Cancelled`]), running jobs see their
/// tokens trip, and no retries are scheduled.
pub fn run_batch<J, R, F>(
    jobs: Vec<(String, J)>,
    config: &BatchConfig,
    shutdown: Option<&CancelToken>,
    run: F,
) -> BatchOutcome<R>
where
    J: Send,
    R: Send,
    F: Fn(&J, &CancelToken, &mut SynthesisSession, &Attempt) -> Result<R, SynthesisError> + Sync,
{
    let total = jobs.len();
    let workers = config.workers.max(1).min(total.max(1));
    // Bounded at the worker count: the feeder stays a few jobs ahead of
    // the pool without materializing the whole batch in the queue.
    let queue: WorkQueue<(usize, String, J)> = WorkQueue::bounded(workers);
    let reports: Mutex<Vec<Option<JobReport<R>>>> = Mutex::new((0..total).map(|_| None).collect());
    let session_totals: Mutex<SessionStats> = Mutex::new(SessionStats::default());
    let default_token = CancelToken::new();
    let shutdown = shutdown.unwrap_or(&default_token);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                install_worker_panic_hook();
                let mut session = SynthesisSession::new();
                while let Some((idx, name, job)) = queue.pop() {
                    let start = Instant::now();
                    let (status, attempts) =
                        supervise_job(&job, config, shutdown, &mut session, &run);
                    reports.lock().expect("reports lock")[idx] = Some(JobReport {
                        name,
                        status,
                        elapsed: start.elapsed(),
                        attempts,
                    });
                }
                session_totals
                    .lock()
                    .expect("session stats lock")
                    .merge(&session.stats());
            });
        }
        // Feed from this thread; with the bounded queue this blocks until
        // workers free up, which is exactly the backpressure we want.
        for (idx, (name, job)) in jobs.into_iter().enumerate() {
            if shutdown.is_cancelled() {
                reports.lock().expect("reports lock")[idx] = Some(JobReport {
                    name,
                    status: JobStatus::Failed(SynthesisError::Cancelled { depth: 0 }),
                    elapsed: Duration::ZERO,
                    attempts: 0,
                });
                continue;
            }
            if let Err((_, name, _)) = queue.push((idx, name, job)) {
                reports.lock().expect("reports lock")[idx] = Some(JobReport {
                    name,
                    status: JobStatus::Failed(SynthesisError::Cancelled { depth: 0 }),
                    elapsed: Duration::ZERO,
                    attempts: 0,
                });
            }
        }
        queue.close();
    });

    BatchOutcome {
        reports: reports
            .into_inner()
            .expect("reports lock")
            .into_iter()
            .map(|r| r.expect("every job reported"))
            .collect(),
        session_stats: session_totals.into_inner().expect("session stats lock"),
    }
}

/// One job under supervision: runs attempts per the config's retry
/// policy until one settles, returning the final status and the attempt
/// count. A panicking attempt's manager is quarantined by the session
/// pool's drop-during-unwind path before the panic reaches the
/// `catch_unwind` here.
fn supervise_job<J, R, F>(
    job: &J,
    config: &BatchConfig,
    shutdown: &CancelToken,
    session: &mut SynthesisSession,
    run: &F,
) -> (JobStatus<R>, u32)
where
    F: Fn(&J, &CancelToken, &mut SynthesisSession, &Attempt) -> Result<R, SynthesisError> + Sync,
{
    let policy = &config.retry;
    let mut attempt = policy.first();
    let mut ladder_path: Vec<Engine> = Vec::new();
    loop {
        if shutdown.is_cancelled() {
            return (
                JobStatus::Failed(SynthesisError::Cancelled { depth: 0 }),
                attempt.number,
            );
        }
        let backoff = policy.backoff_before(&attempt);
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        if let Some(engine) = attempt.engine {
            if ladder_path.last() != Some(&engine) {
                ladder_path.push(engine);
            }
        }
        // Every attempt gets a fresh token: the previous attempt's
        // deadline (possibly already expired) must not leak forward.
        let token = CancelToken::merged([shutdown]);
        if let Some(deadline) = config.per_job_timeout {
            token.set_deadline(Instant::now() + attempt.scale_duration(deadline));
        }
        let end = run_one_attempt(job, &token, session, &attempt, run);
        let failure = match &end {
            AttemptEnd::Ok(_) => None,
            AttemptEnd::Err(e) => Some(classify(e)),
            AttemptEnd::Panic { .. } => Some(FailureKind::Panic),
        };
        match failure.and_then(|f| policy.next(&attempt, f)) {
            Some(next) => {
                session.pool().note_retry();
                attempt = next;
            }
            None => {
                let attempts = attempt.number;
                let status = match end {
                    AttemptEnd::Ok(result) if attempts > 1 => JobStatus::Degraded {
                        result,
                        attempts,
                        ladder_path,
                    },
                    AttemptEnd::Ok(result) => JobStatus::Done(result),
                    AttemptEnd::Err(e) => JobStatus::Failed(e),
                    AttemptEnd::Panic {
                        message,
                        location,
                        backtrace,
                    } => JobStatus::Panicked {
                        message,
                        location,
                        backtrace,
                    },
                };
                return (status, attempts);
            }
        }
    }
}

/// How a single attempt ended (panics caught and contextualized).
enum AttemptEnd<R> {
    Ok(R),
    Err(SynthesisError),
    Panic {
        message: String,
        location: Option<String>,
        backtrace: Option<String>,
    },
}

fn run_one_attempt<J, R, F>(
    job: &J,
    token: &CancelToken,
    session: &mut SynthesisSession,
    attempt: &Attempt,
    run: &F,
) -> AttemptEnd<R>
where
    F: Fn(&J, &CancelToken, &mut SynthesisSession, &Attempt) -> Result<R, SynthesisError> + Sync,
{
    if token.is_cancelled() {
        return AttemptEnd::Err(SynthesisError::Cancelled { depth: 0 });
    }
    WORKER_PANIC_CONTEXT.with(|flag| flag.set(true));
    let caught = catch_unwind(AssertUnwindSafe(|| {
        // Fault-plane site `scheduler.worker`, polled once per attempt: a
        // panic fault crashes the attempt (inside the catch so the worker
        // survives), a cancel fault expires the attempt's deadline so the
        // job trips its wall-clock budget at the next governor check.
        if let Some(kind) = qsyn_faults::hit(qsyn_faults::Site::SchedulerWorker) {
            match kind {
                qsyn_faults::FaultKind::Panic => {
                    panic!("fault-plane: injected panic at scheduler.worker")
                }
                _ => token.set_deadline(Instant::now()),
            }
        }
        run(job, token, session, attempt)
    }));
    WORKER_PANIC_CONTEXT.with(|flag| flag.set(false));
    match caught {
        Ok(Ok(result)) => AttemptEnd::Ok(result),
        Ok(Err(e)) => AttemptEnd::Err(e),
        Err(payload) => {
            let context = LAST_PANIC
                .with(|slot| slot.borrow_mut().take())
                .unwrap_or_default();
            AttemptEnd::Panic {
                message: panic_message(payload.as_ref()),
                location: context.location,
                backtrace: context.backtrace,
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Context the worker panic hook captures at panic time — `catch_unwind`
/// only sees the payload, by which point the location and stack are gone.
#[derive(Debug, Default)]
struct PanicContext {
    location: Option<String>,
    backtrace: Option<String>,
}

thread_local! {
    /// `true` while this thread is inside a supervised attempt, so the
    /// global hook knows to capture context (and suppress the default
    /// stderr print — the panic is reported through the job's status).
    static WORKER_PANIC_CONTEXT: Cell<bool> = const { Cell::new(false) };
    /// Context of the most recent supervised panic on this thread.
    static LAST_PANIC: RefCell<Option<PanicContext>> = const { RefCell::new(None) };
}

static INSTALL_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that records the panic
/// location — and a backtrace when `RUST_BACKTRACE` is set and not `0` —
/// for panics inside supervised attempts, delegating every other panic
/// to the previously installed hook.
fn install_worker_panic_hook() {
    INSTALL_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if WORKER_PANIC_CONTEXT.with(|flag| flag.get()) {
                let location = info
                    .location()
                    .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()));
                let backtrace = std::env::var_os("RUST_BACKTRACE")
                    .filter(|v| v != "0")
                    .map(|_| std::backtrace::Backtrace::force_capture().to_string());
                LAST_PANIC.with(|slot| {
                    *slot.borrow_mut() = Some(PanicContext {
                        location,
                        backtrace,
                    })
                });
            } else {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn config(workers: usize) -> BatchConfig {
        BatchConfig {
            workers,
            per_job_timeout: None,
            retry: RetryPolicy::none(),
        }
    }

    #[test]
    fn results_keep_input_order_across_workers() {
        // Reverse-sorted sleep times force out-of-order completion.
        let jobs: Vec<(String, u64)> = (0..8u64)
            .map(|i| (format!("job{i}"), (8 - i) * 2))
            .collect();
        let outcome = run_batch(jobs, &config(4), None, |&ms, _, _, _| {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(ms)
        });
        let reports = outcome.reports;
        assert_eq!(reports.len(), 8);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.name, format!("job{i}"));
            assert_eq!(r.status.result(), Some(&((8 - i as u64) * 2)));
        }
    }

    #[test]
    fn worker_pool_is_actually_bounded() {
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let jobs: Vec<(String, ())> = (0..12).map(|i| (format!("j{i}"), ())).collect();
        run_batch(jobs, &config(3), None, |(), _, _, _| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(3));
            live.fetch_sub(1, Ordering::SeqCst);
            Ok(())
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn a_panicking_job_fails_alone() {
        let jobs: Vec<(String, u32)> = (0..6).map(|i| (format!("j{i}"), i)).collect();
        let outcome = run_batch(jobs, &config(2), None, |&i, _, _, _| {
            if i == 2 {
                panic!("job {i} exploded");
            }
            Ok(i * 10)
        });
        for (i, r) in outcome.reports.iter().enumerate() {
            if i == 2 {
                match &r.status {
                    JobStatus::Panicked {
                        message, location, ..
                    } => {
                        assert!(message.contains("exploded"));
                        let loc = location.as_deref().expect("hook captured the site");
                        assert!(loc.contains("scheduler.rs"), "got location {loc}");
                    }
                    other => panic!("expected panic report, got {other:?}"),
                }
            } else {
                assert_eq!(r.status.result(), Some(&(i as u32 * 10)));
            }
        }
    }

    #[test]
    fn budget_tripped_jobs_recover_down_the_ladder() {
        let cfg = BatchConfig {
            workers: 2,
            per_job_timeout: None,
            retry: RetryPolicy {
                backoff: Duration::ZERO,
                ..RetryPolicy::escalating(3, vec![Engine::Sat])
            },
        };
        let jobs: Vec<(String, u32)> = (0..4).map(|i| (format!("j{i}"), i)).collect();
        let outcome = run_batch(jobs, &cfg, None, |&i, _, _, attempt: &Attempt| {
            // Odd jobs trip their budget until the ladder degrades them.
            if i % 2 == 1 && attempt.engine != Some(Engine::Sat) {
                return Err(SynthesisError::BudgetExceeded {
                    depth: 1,
                    resource: qsyn_core::Resource::BddNodes,
                    spent: 9,
                    limit: 9,
                });
            }
            Ok(i)
        });
        for (i, r) in outcome.reports.iter().enumerate() {
            assert_eq!(r.status.result(), Some(&(i as u32)), "job {i} recovered");
            if i % 2 == 1 {
                match &r.status {
                    JobStatus::Degraded {
                        attempts,
                        ladder_path,
                        ..
                    } => {
                        assert_eq!(*attempts, 2);
                        assert_eq!(ladder_path, &vec![Engine::Sat]);
                    }
                    other => panic!("expected degraded report, got {other:?}"),
                }
                assert_eq!(r.attempts, 2);
            } else {
                assert!(matches!(r.status, JobStatus::Done(_)));
                assert_eq!(r.attempts, 1);
            }
        }
        assert_eq!(outcome.session_stats.retries, 2, "one retry per odd job");
    }

    #[test]
    fn panicked_attempts_are_retried_and_quarantined() {
        let cfg = BatchConfig {
            workers: 1,
            per_job_timeout: None,
            retry: RetryPolicy {
                backoff: Duration::ZERO,
                ..RetryPolicy::escalating(2, vec![])
            },
        };
        let outcome = run_batch(
            vec![("flaky".to_string(), ())],
            &cfg,
            None,
            |(), _, session: &mut SynthesisSession, attempt: &Attempt| {
                // Hold a pooled manager across the panic: the unwind must
                // quarantine it, not recycle it into the retry.
                let pool = session.pool();
                let mut m = pool.checkout(3);
                let a = m.var(0);
                let _ = m.var(1);
                let _ = m.and(a, a);
                if attempt.number == 1 {
                    panic!("first attempt crashes");
                }
                Ok(m.stats().resets)
            },
        );
        let r = &outcome.reports[0];
        match &r.status {
            JobStatus::Degraded {
                result, attempts, ..
            } => {
                assert_eq!(*attempts, 2);
                assert_eq!(
                    *result, 0,
                    "retry got a fresh manager, not the quarantined one"
                );
            }
            other => panic!("expected recovery, got {other:?}"),
        }
        assert_eq!(outcome.session_stats.quarantined, 1);
        assert_eq!(outcome.session_stats.retries, 1);
    }

    #[test]
    fn exhausted_retries_report_the_last_error() {
        let cfg = BatchConfig {
            workers: 1,
            per_job_timeout: None,
            retry: RetryPolicy {
                backoff: Duration::ZERO,
                ..RetryPolicy::escalating(2, vec![])
            },
        };
        let outcome = run_batch(
            vec![("doomed".to_string(), ())],
            &cfg,
            None,
            |(), _, _, _| -> Result<(), SynthesisError> {
                Err(SynthesisError::BudgetExceeded {
                    depth: 0,
                    resource: qsyn_core::Resource::SatConflicts,
                    spent: 1,
                    limit: 1,
                })
            },
        );
        let r = &outcome.reports[0];
        assert!(matches!(r.status, JobStatus::Failed(_)));
        assert_eq!(r.attempts, 2, "both attempts were spent");
    }

    #[test]
    fn per_job_deadline_arms_the_token() {
        let cfg = BatchConfig {
            workers: 2,
            per_job_timeout: Some(Duration::ZERO),
            retry: RetryPolicy::none(),
        };
        let outcome = run_batch(
            vec![("t".to_string(), ())],
            &cfg,
            None,
            |(), token: &CancelToken, _session: &mut SynthesisSession, _: &Attempt| {
                token.check(3)?;
                Ok(())
            },
        );
        assert!(matches!(
            outcome.reports[0].status,
            JobStatus::Failed(SynthesisError::BudgetExceeded {
                depth: 3,
                resource: qsyn_core::Resource::WallClock,
                ..
            })
        ));
    }

    #[test]
    fn shutdown_cancels_running_and_queued_jobs() {
        let shutdown = CancelToken::new();
        let started = AtomicUsize::new(0);
        // 1 worker, several jobs: the first job triggers shutdown itself,
        // so later jobs never run.
        let trigger = shutdown.clone();
        let jobs: Vec<(String, usize)> = (0..5).map(|i| (format!("j{i}"), i)).collect();
        let outcome = run_batch(jobs, &config(1), Some(&shutdown), move |&i, token, _, _| {
            started.fetch_add(1, Ordering::SeqCst);
            if i == 0 {
                trigger.cancel();
            }
            token.check(0)?;
            Ok(i)
        });
        let reports = outcome.reports;
        assert!(matches!(
            reports[0].status,
            JobStatus::Failed(SynthesisError::Cancelled { .. })
        ));
        let cancelled = reports
            .iter()
            .filter(|r| {
                matches!(
                    r.status,
                    JobStatus::Failed(SynthesisError::Cancelled { .. })
                )
            })
            .count();
        assert_eq!(cancelled, 5, "every job observed the shutdown");
    }

    #[test]
    fn queue_drains_after_close_and_rejects_new_pushes() {
        let q: WorkQueue<u32> = WorkQueue::bounded(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn try_push_bounces_on_full_or_closed_instead_of_blocking() {
        let q: WorkQueue<u32> = WorkQueue::bounded(2);
        assert_eq!(q.pending(), 0);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pending(), 2);
        // Full: the item comes straight back (no blocking, no enqueue).
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        q.close();
        assert_eq!(q.try_push(4), Err(4));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bounded_push_blocks_until_a_pop() {
        let q: WorkQueue<u32> = WorkQueue::bounded(1);
        q.push(1).unwrap();
        std::thread::scope(|s| {
            let pusher = s.spawn(|| q.push(2).unwrap());
            std::thread::sleep(Duration::from_millis(5));
            assert!(!pusher.is_finished(), "push must block at capacity");
            assert_eq!(q.pop(), Some(1));
            pusher.join().unwrap();
        });
        assert_eq!(q.pop(), Some(2));
    }
}
