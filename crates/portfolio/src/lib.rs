//! Engine portfolio on top of `qsyn-core`: race the BDD/SAT/QBF engines on
//! one specification, schedule whole benchmark batches across a worker
//! pool, and memoize results by canonical spec.
//!
//! Three independent pieces, composable but not entangled:
//!
//! * [`mod@race`] — spawn one thread per engine with per-racer
//!   [`CancelToken`](qsyn_core::CancelToken)s; the first engine to *prove*
//!   a minimal circuit wins and the losers are cancelled mid-depth.
//! * [`scheduler`] — a bounded work queue plus a fixed `--jobs N` worker
//!   pool with per-job deadlines, graceful shutdown, panic isolation, and
//!   input-ordered reports.
//! * [`cache`] — a memo table keyed by the spec's canonical form under
//!   output permutation; an equivalent request is answered by permuting the
//!   stored result instead of re-synthesizing.
//! * [`journal`] — crash-safe batch resume: fsync'd JSONL records of
//!   completed jobs, replayed by `qsyn batch --resume`.
//!
//! Everything is built on `std::thread`/`std::sync` only.

#![warn(missing_docs)]

pub mod cache;
pub mod journal;
pub mod race;
pub mod scheduler;

pub use cache::{canonicalize, CanonicalSpec, SpecCache};
pub use journal::{job_key, read_journal, Fnv1a, JournalRecord, JournalWriter};
pub use race::{
    race, race_engines, race_engines_permuted, RaceError, RaceResult, Racer, RacerOutcome,
    RacerReport, RACE_ENGINES,
};
pub use scheduler::{run_batch, BatchConfig, BatchOutcome, JobReport, JobStatus, WorkQueue};
