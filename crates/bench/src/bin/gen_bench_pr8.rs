//! Emits `BENCH_pr8.json` — the tracked A/B trajectory of the PR 8
//! permutation-space pruning (`qsyn-core::permuted`).
//!
//! Each fast Table 1 job is synthesized twice over all output
//! permutations:
//!
//! * **pruned** — the production path: conjugation-class
//!   canonicalization, transferred depth floors, lazily built probe
//!   engines, first-SAT sibling cancellation; and
//! * **brute** — the pre-PR 8 reference (`n!` engines from depth 0,
//!   kept `#[doc(hidden)]` as the validation oracle).
//!
//! Both must agree on minimal depth and winning permutation — output
//! relabeling freedom is a correctness feature, so the A/B is an oracle
//! check, not just a speed report. Gated by `--check BENCH_pr8.json`:
//! per-job depth, solution count, winning permutation, probe-space
//! counters (`n!`, classes, engines built, probes run, floor skips) and
//! the blowup invariant `probes_run < n! * (depth + 1)` on every job
//! with 4 or more lines. All of those are deterministic for a fixed
//! spec + options. Wall-clock (both paths) is recorded for the report
//! but never gated — CI runners swing 2x; the *counters* are the
//! acceptance criterion.
//!
//! ```text
//! cargo run --release -p qsyn-bench --bin gen_bench_pr8              # regenerate
//! cargo run --release -p qsyn-bench --bin gen_bench_pr8 -- --check BENCH_pr8.json
//! ```

use qsyn_core::permuted::{
    synthesize_with_output_permutation_brute_in, synthesize_with_output_permutation_in,
};
use qsyn_core::{Engine, SynthesisOptions, SynthesisSession};
use qsyn_revlogic::{benchmarks, GateLibrary};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// The fast Table 1 jobs — every one completes in seconds under both
/// paths, so the brute oracle stays affordable. `3_17` is the 3-line
/// control; the six 4-line jobs carry the `probes_run < n!(d+1)` gate.
const JOBS: &[&str] = &[
    "3_17",
    "rd32-v0",
    "rd32-v1",
    "decod24-v0",
    "decod24-v1",
    "decod24-v2",
    "decod24-v3",
];

fn options() -> SynthesisOptions {
    SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_depth(16)
}

struct JobRow {
    name: String,
    lines: u32,
    depth: u32,
    solutions: u128,
    permutation: String,
    permutations: u64,
    classes: u64,
    engines_built: u64,
    probes_run: u64,
    floor_skips: u64,
    /// Recorded, never gated.
    pruned_ms: f64,
    brute_ms: f64,
}

fn measure() -> Vec<JobRow> {
    let opts = options();
    let mut rows = Vec::new();
    for &name in JOBS {
        let spec = benchmarks::by_name(name)
            .unwrap_or_else(|| panic!("{name}: unknown benchmark"))
            .spec;

        let mut session = SynthesisSession::new();
        let started = Instant::now();
        let pruned = synthesize_with_output_permutation_in(&spec, &opts, &mut session)
            .unwrap_or_else(|e| panic!("{name}: pruned synthesis failed: {e}"));
        let pruned_ms = started.elapsed().as_secs_f64() * 1e3;

        let mut session = SynthesisSession::new();
        let started = Instant::now();
        let brute = synthesize_with_output_permutation_brute_in(&spec, &opts, &mut session)
            .unwrap_or_else(|e| panic!("{name}: brute synthesis failed: {e}"));
        let brute_ms = started.elapsed().as_secs_f64() * 1e3;

        // The oracle check proper: identical minimal depth and identical
        // winning permutation (both paths share the lexicographic,
        // identity-first tie-break).
        assert_eq!(
            pruned.result.depth(),
            brute.result.depth(),
            "{name}: pruned and brute minimal depths diverged"
        );
        assert_eq!(
            pruned.permutation, brute.permutation,
            "{name}: pruned and brute winning permutations diverged"
        );
        assert_eq!(
            pruned.result.solutions().count(),
            brute.result.solutions().count(),
            "{name}: solution counts diverged"
        );

        let s = pruned.stats;
        let depth = pruned.result.depth();
        if spec.lines() >= 4 {
            let blind = s.permutations * (u64::from(depth) + 1);
            assert!(
                s.probes_run < blind,
                "{name}: pruned path ran {} probes, not under the blind {blind}",
                s.probes_run
            );
        }
        rows.push(JobRow {
            name: name.to_string(),
            lines: spec.lines(),
            depth,
            solutions: pruned.result.solutions().count(),
            permutation: format!("{:?}", pruned.permutation),
            permutations: s.permutations,
            classes: s.classes,
            engines_built: s.engines_built,
            probes_run: s.probes_run,
            floor_skips: s.depth_floor_skips,
            pruned_ms,
            brute_ms,
        });
    }
    rows
}

fn report_json(rows: &[JobRow]) -> String {
    let mut out = String::from("{\n  \"generated_by\": \"gen_bench_pr8\",\n  \"jobs\": [\n");
    for (i, j) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"name\": \"{}\", \"lines\": {}, \"depth\": {}, \"solutions\": {}, \"permutation\": \"{}\", \"permutations\": {}, \"classes\": {}, \"engines_built\": {}, \"probes_run\": {}, \"floor_skips\": {}, \"pruned_ms\": {:.3}, \"brute_ms\": {:.3} }}{}",
            j.name,
            j.lines,
            j.depth,
            j.solutions,
            j.permutation,
            j.permutations,
            j.classes,
            j.engines_built,
            j.probes_run,
            j.floor_skips,
            j.pruned_ms,
            j.brute_ms,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Deterministic metrics scraped back out of a committed report:
/// `name` → everything but the wall-clock columns.
type BaselineRow = (u32, u32, u128, String, u64, u64, u64, u64, u64);

fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let marker = format!("\"{name}\": ");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', ' ', '}']).next()
    }
}

fn parse_baseline(text: &str) -> HashMap<String, BaselineRow> {
    let mut jobs = HashMap::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("{ \"name\":") {
            continue;
        }
        let num = |n: &str| field(line, n).and_then(|v| v.parse::<u64>().ok());
        if let (
            Some(name),
            Some(lines),
            Some(depth),
            Some(solutions),
            Some(permutation),
            Some(permutations),
            Some(classes),
            Some(engines),
            Some(probes),
            Some(skips),
        ) = (
            field(line, "name"),
            num("lines"),
            num("depth"),
            field(line, "solutions").and_then(|v| v.parse::<u128>().ok()),
            field(line, "permutation"),
            num("permutations"),
            num("classes"),
            num("engines_built"),
            num("probes_run"),
            num("floor_skips"),
        ) {
            jobs.insert(
                name.to_string(),
                (
                    lines as u32,
                    depth as u32,
                    solutions,
                    permutation.to_string(),
                    permutations,
                    classes,
                    engines,
                    probes,
                    skips,
                ),
            );
        }
    }
    jobs
}

fn check(rows: &[JobRow], baseline: &HashMap<String, BaselineRow>) -> bool {
    let mut failed = false;
    for j in rows {
        let Some(b) = baseline.get(&j.name) else {
            println!("{}: not in baseline, skipping", j.name);
            continue;
        };
        let got = (
            j.lines,
            j.depth,
            j.solutions,
            j.permutation.clone(),
            j.permutations,
            j.classes,
            j.engines_built,
            j.probes_run,
            j.floor_skips,
        );
        if got != *b {
            println!("REGRESSION {}: {got:?} vs baseline {b:?}", j.name);
            failed = true;
        }
    }
    !failed
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => baseline_path = Some(args.next().expect("--check needs a file")),
            "-o" | "--output" => out_path = Some(args.next().expect("-o needs a file")),
            other => panic!("unknown option `{other}`"),
        }
    }

    let rows = measure();
    println!("PR 8 permutation pruning A/B ({} jobs)", rows.len());
    for j in &rows {
        println!(
            "  {}: depth {}, {} -> {} classes, {} probes (+{} floor skips), pruned {:.0}ms vs brute {:.0}ms",
            j.name,
            j.depth,
            j.permutations,
            j.classes,
            j.probes_run,
            j.floor_skips,
            j.pruned_ms,
            j.brute_ms
        );
    }

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).expect("read baseline");
        if !check(&rows, &parse_baseline(&text)) {
            println!("\nbench-smoke: FAILED against {path}");
            std::process::exit(1);
        }
        println!("\nbench-smoke: ok against {path}");
    } else {
        let path = out_path.unwrap_or_else(|| "BENCH_pr8.json".to_string());
        std::fs::write(&path, report_json(&rows)).expect("write report");
        println!("\nwrote {path}");
    }
}
