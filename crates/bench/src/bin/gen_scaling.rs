//! Encoding-size scaling — the paper's central claim made measurable:
//! the QBF formulation encodes the cascade **once** (polynomial in `d` and
//! `|G|`, plus the unavoidable `2ⁿ·n` specification minterms), while the
//! row-wise SAT encoding of \[9\]/\[22\] duplicates the cascade for each of
//! the `2ⁿ` truth-table rows.
//!
//! Two series are printed:
//!
//! 1. instance size vs line count `n` at fixed depth `d` (QBF vs SAT),
//! 2. per-depth wall-clock of the BDD engine on a reference benchmark
//!    (the iterative checks of Figure 1).
//!
//! ```text
//! cargo run --release -p qsyn-bench --bin gen_scaling
//! ```

use qsyn_bench::format_secs;
use qsyn_core::{synthesize, Engine, GateLibrary, QbfEngine, SatEngine, SynthesisOptions};
use qsyn_revlogic::{benchmarks::random_permutation, Spec};

fn main() {
    let d = 3;
    println!("Series 1: encoding size at depth d = {d} (MCT library, random spec)");
    println!(
        "{:>2} {:>6} | {:>10} {:>12} | {:>10} {:>12} | {:>14}",
        "n", "rows", "QBF vars", "QBF clauses", "SAT vars", "SAT clauses", "clause ratio"
    );
    for n in 2..=6u32 {
        let spec = Spec::from_permutation(&random_permutation(n, 7));
        let options = SynthesisOptions::new(GateLibrary::mct(), Engine::Qbf);
        let qbf_engine = QbfEngine::new(&spec, &options);
        let instance = qbf_engine.instance(d);
        let (qv, qc) = (instance.num_vars(), instance.matrix().len());

        let sat_options =
            SynthesisOptions::new(GateLibrary::mct(), Engine::Sat).with_conflict_limit(0); // encode only; bail immediately
        let mut sat_engine = SatEngine::new(&spec, &sat_options);
        let _ = sat_engine.solve_depth(d); // runs out of budget after encoding
        let (sv, sc) = sat_engine.last_instance_size();

        println!(
            "{:>2} {:>6} | {:>10} {:>12} | {:>10} {:>12} | {:>14.2}",
            n,
            1u64 << n,
            qv,
            qc,
            sv,
            sc,
            sc as f64 / qc as f64
        );
    }
    println!();
    println!("Expected shape: the SAT/QBF clause ratio grows with 2^n — the QBF");
    println!("instance encodes the network once, the SAT instance once per row.");
    println!();

    println!("Series 2: per-depth time of the BDD engine on 3_17 (Figure 1 loop)");
    let bench = qsyn_revlogic::benchmarks::by_name("3_17").expect("known benchmark");
    let result = synthesize(
        &bench.spec,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
    )
    .expect("3_17 synthesizes");
    println!("{:>5} {:>12} {:>10}", "d", "outcome", "time");
    for (d, t) in result.depth_times().iter().enumerate() {
        let outcome = if d as u32 == result.depth() {
            "SAT"
        } else {
            "unsat"
        };
        println!("{:>5} {:>12} {:>10}", d, outcome, format_secs(*t));
    }
    println!(
        "minimal depth {} found in {} total",
        result.depth(),
        format_secs(result.total_time())
    );
}
