//! Emits `BENCH_pr6.json` — the tracked trajectory of the PR 6 serving
//! subsystem (`qsyn-store` circuit database + `qsyn-serve` daemon core).
//!
//! The workload drives an in-process [`ServeCore`] backed by a
//! throw-away disk store through three phases:
//!
//! 1. **cold** — an empty store; every class misses, synthesizes once,
//!    and is written through. A fourth job is an output-permuted twin of
//!    `3_17` and must hit the class the original just stored.
//! 2. **warm** — the same four requests again on the live core; all of
//!    them must answer from the index without an engine.
//! 3. **restart** — the core is dropped, the store file reopened (its
//!    bytes must be untouched by the reopen) and a fresh core must serve
//!    all four requests with **zero** engine invocations.
//!
//! Gated by `--check BENCH_pr6.json`: per-job depth / solution count /
//! quantum cost / cold-phase provenance, and the full counter block of
//! every phase (requests, hits, misses, in-flight dedups, engine
//! invocations, store records). Wall-clock latencies are recorded for
//! the report but never gated — CI runners swing 2×; the *counters* are
//! the acceptance criterion ("a repeat answers from the store without
//! spawning an engine") and those are exact.
//!
//! ```text
//! cargo run --release -p qsyn-bench --bin gen_bench_pr6              # regenerate
//! cargo run --release -p qsyn-bench --bin gen_bench_pr6 -- --check BENCH_pr6.json
//! ```

use qsyn_core::permuted::permute_spec;
use qsyn_revlogic::{benchmarks, Spec};
use qsyn_serve::{ServeConfig, ServeCore, Source};
use qsyn_store::Store;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// The request trajectory, in order. `3_17-twin` is `3_17` with its
/// output lines rotated — a distinct spec in the same equivalence class,
/// so in the cold phase it must be served from the record `3_17` wrote.
const JOBS: &[&str] = &["rd32-v0", "3_17", "3_17-twin", "decod24-v0"];

/// Classes the trajectory contains (the twin collapses onto `3_17`).
const CLASSES: u64 = 3;

fn jobs() -> Vec<(String, Spec)> {
    JOBS.iter()
        .map(|&name| {
            let spec = match name {
                "3_17-twin" => {
                    let base = benchmarks::by_name("3_17").expect("known benchmark");
                    permute_spec(&base.spec, &[1, 2, 0]).expect("valid permutation")
                }
                _ => benchmarks::by_name(name).expect("known benchmark").spec,
            };
            (name.to_string(), spec)
        })
        .collect()
}

/// One phase's exact counter block.
#[derive(Debug)]
struct Phase {
    label: &'static str,
    requests: u64,
    hits: u64,
    misses: u64,
    inflight_dedup: u64,
    engine_invocations: u64,
    store_records: u64,
    /// Recorded, never gated.
    elapsed_ms: f64,
}

struct JobRow {
    name: String,
    depth: u32,
    solutions: u128,
    quantum_cost: u64,
    cold_source: &'static str,
}

struct Report {
    jobs: Vec<JobRow>,
    phases: Vec<Phase>,
    /// Final warm-core latency percentiles (µs bucket bounds; recorded,
    /// never gated).
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
}

fn config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_capacity: 16,
        ..ServeConfig::default()
    }
}

fn phase_of(label: &'static str, core: &ServeCore, elapsed_ms: f64) -> Phase {
    let s = core.snapshot();
    Phase {
        label,
        requests: s.requests,
        hits: s.hits,
        misses: s.misses,
        inflight_dedup: s.inflight_dedup,
        engine_invocations: s.engine_invocations,
        store_records: s.store_records,
        elapsed_ms,
    }
}

fn measure() -> Report {
    let dir = std::env::temp_dir().join(format!("qsyn-bench-pr6-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("trajectory.store");
    let _ = std::fs::remove_file(&path);
    let jobs = jobs();

    // Phase 1: cold — empty store, every class synthesizes once.
    let store = Store::open(&path).expect("open fresh store");
    assert!(store.is_empty(), "fresh store must be empty");
    let core = ServeCore::start(&config(), Some(store));
    let started = Instant::now();
    let mut rows = Vec::new();
    for (name, spec) in &jobs {
        let served = core
            .request(name, spec)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        rows.push(JobRow {
            name: name.clone(),
            depth: served.record.depth,
            solutions: served.record.solution_count,
            quantum_cost: served.record.quantum_cost,
            cold_source: served.source.as_str(),
        });
    }
    let cold = phase_of("cold", &core, started.elapsed().as_secs_f64() * 1e3);
    assert_eq!(
        rows[2].cold_source,
        Source::Store.as_str(),
        "the 3_17 twin must hit the class 3_17 stored"
    );

    // Phase 2: warm — repeats on the live core, no engine.
    let started = Instant::now();
    for (name, spec) in &jobs {
        let served = core
            .request(name, spec)
            .unwrap_or_else(|e| panic!("warm {name}: {e}"));
        assert_eq!(
            served.source,
            Source::Store,
            "warm {name} must answer from the store"
        );
    }
    let warm = phase_of("warm", &core, started.elapsed().as_secs_f64() * 1e3);
    let final_warm = core.snapshot();
    drop(core);

    // Phase 3: restart — reopen must leave the file's bytes untouched
    // and serve every request without an engine.
    let bytes_before = std::fs::read(&path).expect("read store file");
    let store = Store::open(&path).expect("reopen store");
    assert_eq!(store.truncated_tail_bytes(), 0, "clean file, no torn tail");
    let bytes_after = std::fs::read(&path).expect("re-read store file");
    assert_eq!(
        bytes_before, bytes_after,
        "reopen must not rewrite the store"
    );
    assert_eq!(store.len() as u64, CLASSES);
    let core = ServeCore::start(&config(), Some(store));
    let started = Instant::now();
    for (i, (name, spec)) in jobs.iter().enumerate() {
        let served = core
            .request(name, spec)
            .unwrap_or_else(|e| panic!("restart {name}: {e}"));
        assert_eq!(
            served.source,
            Source::Store,
            "restart {name} must answer from the reopened store"
        );
        assert_eq!(
            (served.record.depth, served.record.solution_count),
            (rows[i].depth, rows[i].solutions),
            "restart {name} must replay the identical record"
        );
    }
    let restart = phase_of("restart", &core, started.elapsed().as_secs_f64() * 1e3);
    assert_eq!(
        restart.engine_invocations, 0,
        "restart must not run an engine"
    );
    drop(core);
    let _ = std::fs::remove_dir_all(&dir);

    Report {
        jobs: rows,
        phases: vec![cold, warm, restart],
        p50_us: final_warm.p50_us,
        p90_us: final_warm.p90_us,
        p99_us: final_warm.p99_us,
    }
}

fn report_json(r: &Report) -> String {
    let mut out = String::from("{\n  \"generated_by\": \"gen_bench_pr6\",\n  \"jobs\": [\n");
    for (i, j) in r.jobs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"name\": \"{}\", \"depth\": {}, \"solutions\": {}, \"quantum_cost\": {}, \"cold_source\": \"{}\" }}{}",
            j.name,
            j.depth,
            j.solutions,
            j.quantum_cost,
            j.cold_source,
            if i + 1 == r.jobs.len() { "" } else { "," }
        );
    }
    out.push_str("  ],\n  \"phases\": [\n");
    for (i, p) in r.phases.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"phase\": \"{}\", \"requests\": {}, \"hits\": {}, \"misses\": {}, \"inflight_dedup\": {}, \"engine_invocations\": {}, \"store_records\": {}, \"elapsed_ms\": {:.3} }}{}",
            p.label,
            p.requests,
            p.hits,
            p.misses,
            p.inflight_dedup,
            p.engine_invocations,
            p.store_records,
            p.elapsed_ms,
            if i + 1 == r.phases.len() { "" } else { "," }
        );
    }
    let _ = writeln!(
        out,
        "  ],\n  \"latency\": {{ \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {} }}\n}}",
        r.p50_us, r.p90_us, r.p99_us
    );
    out
}

/// Deterministic metrics scraped back out of a committed report.
struct Baseline {
    /// `name` → `(depth, solutions, quantum_cost, cold_source)`.
    jobs: HashMap<String, (u32, u128, u64, String)>,
    /// `phase` → counter block (elapsed zeroed; it is never compared).
    phases: HashMap<String, Phase>,
}

fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let marker = format!("\"{name}\": ");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', ' ', '}']).next()
    }
}

fn parse_baseline(text: &str) -> Baseline {
    let mut jobs = HashMap::new();
    let mut phases = HashMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("{ \"name\":") {
            if let (Some(name), Some(d), Some(s), Some(q), Some(src)) = (
                field(line, "name"),
                field(line, "depth").and_then(|v| v.parse().ok()),
                field(line, "solutions").and_then(|v| v.parse().ok()),
                field(line, "quantum_cost").and_then(|v| v.parse().ok()),
                field(line, "cold_source"),
            ) {
                jobs.insert(name.to_string(), (d, s, q, src.to_string()));
            }
        } else if line.starts_with("{ \"phase\":") {
            let num = |n: &str| field(line, n).and_then(|v| v.parse().ok());
            if let (
                Some(label),
                Some(requests),
                Some(hits),
                Some(misses),
                Some(dedup),
                Some(engine),
                Some(records),
            ) = (
                field(line, "phase"),
                num("requests"),
                num("hits"),
                num("misses"),
                num("inflight_dedup"),
                num("engine_invocations"),
                num("store_records"),
            ) {
                phases.insert(
                    label.to_string(),
                    Phase {
                        label: "",
                        requests,
                        hits,
                        misses,
                        inflight_dedup: dedup,
                        engine_invocations: engine,
                        store_records: records,
                        elapsed_ms: 0.0,
                    },
                );
            }
        }
    }
    Baseline { jobs, phases }
}

fn check(report: &Report, baseline: &Baseline) -> bool {
    let mut failed = false;
    for j in &report.jobs {
        let Some((bd, bs, bq, bsrc)) = baseline.jobs.get(&j.name) else {
            println!("{}: not in baseline, skipping", j.name);
            continue;
        };
        if (j.depth, j.solutions, j.quantum_cost, j.cold_source) != (*bd, *bs, *bq, bsrc.as_str()) {
            println!(
                "REGRESSION {}: depth {} / {} solutions / qc {} / {} vs baseline {} / {} / {} / {}",
                j.name, j.depth, j.solutions, j.quantum_cost, j.cold_source, bd, bs, bq, bsrc
            );
            failed = true;
        }
    }
    for p in &report.phases {
        let Some(b) = baseline.phases.get(p.label) else {
            println!("phase {}: not in baseline, skipping", p.label);
            continue;
        };
        let got = (
            p.requests,
            p.hits,
            p.misses,
            p.inflight_dedup,
            p.engine_invocations,
            p.store_records,
        );
        let want = (
            b.requests,
            b.hits,
            b.misses,
            b.inflight_dedup,
            b.engine_invocations,
            b.store_records,
        );
        if got != want {
            println!("REGRESSION phase {}: {got:?} vs baseline {want:?}", p.label);
            failed = true;
        }
    }
    !failed
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => baseline_path = Some(args.next().expect("--check needs a file")),
            "-o" | "--output" => out_path = Some(args.next().expect("-o needs a file")),
            other => panic!("unknown option `{other}`"),
        }
    }

    let report = measure();
    println!(
        "PR 6 serve/store trajectory ({} requests x 3 phases)",
        JOBS.len()
    );
    for j in &report.jobs {
        println!(
            "  {}: {} gates, {} solutions, quantum cost {} (cold: {})",
            j.name, j.depth, j.solutions, j.quantum_cost, j.cold_source
        );
    }
    for p in &report.phases {
        println!(
            "  {}: {} requests, {} hits, {} misses, {} engine invocations, {} records ({:.1}ms)",
            p.label,
            p.requests,
            p.hits,
            p.misses,
            p.engine_invocations,
            p.store_records,
            p.elapsed_ms
        );
    }
    println!(
        "  warm latency: p50 <= {}us, p90 <= {}us, p99 <= {}us (recorded, never gated)",
        report.p50_us, report.p90_us, report.p99_us
    );

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).expect("read baseline");
        if !check(&report, &parse_baseline(&text)) {
            println!("\nbench-smoke: FAILED against {path}");
            std::process::exit(1);
        }
        println!("\nbench-smoke: ok against {path}");
    } else {
        let path = out_path.unwrap_or_else(|| "BENCH_pr6.json".to_string());
        std::fs::write(&path, report_json(&report)).expect("write report");
        println!("\nwrote {path}");
    }
}
