//! Ablations of the design choices called out in `DESIGN.md`:
//!
//! * **A — variable order**: `X,Y` (the paper's fixed order) vs `Y,X`
//!   (predicted to blow the BDD up, Section 5.2),
//! * **B — incremental `F_d`**: carrying the cascade BDD across depth
//!   iterations vs rebuilding it from scratch each depth,
//! * **C — gate-select encoding** in the SAT baseline: one-hot \[9\] vs
//!   binary \[22\]-style.
//!
//! ```text
//! cargo run --release -p qsyn-bench --bin gen_ablations
//! ```

use qsyn_bench::{format_secs, run_budgeted, timeout_from_env, RunOutcome};
use qsyn_core::{BddEngine, Engine, GateLibrary, SatSelectEncoding, SynthesisOptions, VarOrder};
use qsyn_revlogic::benchmarks;
use std::time::Duration;

const ABLATION_BENCHES: &[&str] = &["3_17", "rd32-v0", "decod24-v0", "mod5d1"];

fn cell(out: &RunOutcome, budget: Duration) -> String {
    out.time_cell(budget)
}

fn main() {
    let budget = timeout_from_env();

    println!("Ablation A: BDD variable order X,Y vs Y,X (time and peak BDD nodes)");
    println!(
        "{:<12} {:>2} {:>10} {:>12} {:>10} {:>12}",
        "BENCH", "D", "X,Y time", "X,Y nodes", "Y,X time", "Y,X nodes"
    );
    for name in ABLATION_BENCHES {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        let mut cells = Vec::new();
        let mut depth_cell = "-".to_string();
        for order in [VarOrder::XThenY, VarOrder::YThenX] {
            let options = SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd)
                .with_var_order(order)
                .with_time_budget(budget);
            // Drive the engine manually so the node count is observable.
            let mut engine = BddEngine::new(&bench.spec, &options);
            let start = std::time::Instant::now();
            let mut solved = None;
            for d in 0..=options.max_depth {
                if start.elapsed() > budget {
                    break;
                }
                match engine.solve_depth(d) {
                    Ok(Some(s)) => {
                        solved = Some((d, s));
                        break;
                    }
                    Ok(None) => {}
                    Err(_) => break,
                }
            }
            let time = start.elapsed();
            let nodes = engine.bdd_nodes();
            match &solved {
                Some((d, _)) => {
                    depth_cell = d.to_string();
                    cells.push(format!("{:>10} {:>12}", format_secs(time), nodes));
                }
                None => {
                    cells.push(format!(
                        "{:>10} {:>12}",
                        format!(">{}s", budget.as_secs()),
                        nodes
                    ));
                }
            }
        }
        println!("{:<12} {:>2} {} {}", name, depth_cell, cells[0], cells[1]);
    }
    println!("Expected: the Y,X order needs strictly more nodes and time (the sub-");
    println!("diagrams over X enumerate every function synthesizable with <= d gates).");
    println!();

    println!("Ablation B: incremental F_d vs rebuild-per-depth (BDD engine)");
    println!(
        "{:<12} {:>12} {:>14}",
        "BENCH", "incremental", "from-scratch"
    );
    for name in ABLATION_BENCHES {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        let inc = run_budgeted(
            &bench.spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
            budget,
        );
        let scratch = run_budgeted(
            &bench.spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_incremental(false),
            budget,
        );
        println!(
            "{:<12} {:>12} {:>14}",
            name,
            cell(&inc, budget),
            cell(&scratch, budget)
        );
    }
    println!("Expected: rebuilding pays the cascade construction once per depth and");
    println!("loses node/cache sharing across iterations.");
    println!();

    println!("Ablation C: SAT baseline select encoding, one-hot [9] vs binary [22]");
    println!("{:<12} {:>12} {:>12}", "BENCH", "one-hot", "binary");
    for name in ABLATION_BENCHES {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        let one_hot = run_budgeted(
            &bench.spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Sat)
                .with_sat_encoding(SatSelectEncoding::OneHot),
            budget,
        );
        let binary = run_budgeted(
            &bench.spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Sat)
                .with_sat_encoding(SatSelectEncoding::Binary),
            budget,
        );
        println!(
            "{:<12} {:>12} {:>12}",
            name,
            cell(&one_hot, budget),
            cell(&binary, budget)
        );
    }
}
