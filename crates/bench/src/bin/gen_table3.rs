//! Regenerates **Table 3** of the paper: synthesis with extended gate
//! libraries (MCT+MCF, MCT+P, MCT+MCF+P) on the BDD engine. Richer
//! libraries reduce the minimal gate count for several functions at the
//! price of larger universal gates (larger |G| ⇒ more select variables).
//!
//! ```text
//! cargo run --release -p qsyn-bench --bin gen_table3
//! QSYN_FULL=1 QSYN_TIMEOUT=2000 cargo run --release -p qsyn-bench --bin gen_table3
//! ```

use qsyn_bench::{bench_names, is_complete_bench, qc_cell, run_budgeted, timeout_from_env};
use qsyn_core::{Engine, GateLibrary, SynthesisOptions};
use qsyn_revlogic::benchmarks;

fn main() {
    let budget = timeout_from_env();
    let libraries = [
        GateLibrary::mct_mcf(),
        GateLibrary::mct_peres(),
        GateLibrary::all(),
    ];
    println!(
        "Table 3: Synthesis Results Using other Gate Libraries (BDD engine, timeout {}s)",
        budget.as_secs()
    );
    println!();
    print!("{:<12}", "BENCH");
    for lib in libraries {
        print!(" | {:>2} {:>9} {:>8} {:>11}", "D", "TIME", "#SOL", "QC");
        print!("  [{}]", lib.label());
    }
    println!();
    let mut section = "";
    for name in bench_names() {
        let header = if is_complete_bench(name) {
            "COMPLETELY SPECIFIED FUNCTIONS"
        } else {
            "INCOMPLETELY SPECIFIED FUNCTIONS"
        };
        if header != section {
            section = header;
            println!("--- {section}");
        }
        let bench = benchmarks::by_name(name).expect("known benchmark");
        print!("{name:<12}");
        for lib in libraries {
            let out = run_budgeted(
                &bench.spec,
                &SynthesisOptions::new(lib, Engine::Bdd).with_max_solutions(200_000),
                budget,
            );
            match out.result() {
                Some(r) => {
                    let sols = r.solutions();
                    let sol_cell = if sols.is_exhaustive() {
                        sols.count().to_string()
                    } else {
                        format!("{}*", sols.count())
                    };
                    print!(
                        " | {:>2} {:>9} {:>8} {:>11}",
                        r.depth(),
                        out.time_cell(budget),
                        sol_cell,
                        qc_cell(sols.quantum_cost_range()),
                    );
                }
                None => print!(
                    " | {:>2} {:>9} {:>8} {:>11}",
                    "-",
                    out.time_cell(budget),
                    "-",
                    "-"
                ),
            }
        }
        println!();
    }
    println!();
    println!("Expected shape (paper): extended libraries never increase D and often");
    println!("decrease it (e.g. hwb4 11 -> 8 with Peres gates); runtimes grow with |G|");
    println!("except where the smaller D saves whole depth iterations.");
}
