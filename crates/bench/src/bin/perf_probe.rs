//! Single-benchmark probe: synthesize one function with one engine and
//! library, printing depth, solution count, quantum-cost range and time.
//!
//! ```text
//! perf_probe <benchmark> [mct|mct+mcf|mct+p|all] [bdd|qbf|sat]
//! ```

use qsyn_core::{synthesize, Engine, GateLibrary, SynthesisOptions};
use qsyn_revlogic::benchmarks;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("3_17");
    let library = match args.get(2).map(String::as_str).unwrap_or("mct") {
        "mct" => GateLibrary::mct(),
        "mct+mcf" => GateLibrary::mct_mcf(),
        "mct+p" => GateLibrary::mct_peres(),
        "all" => GateLibrary::all(),
        other => {
            eprintln!("unknown library {other}");
            std::process::exit(2);
        }
    };
    let engine = match args.get(3).map(String::as_str).unwrap_or("bdd") {
        "bdd" => Engine::Bdd,
        "qbf" => Engine::Qbf,
        "sat" => Engine::Sat,
        other => {
            eprintln!("unknown engine {other}");
            std::process::exit(2);
        }
    };
    let b = benchmarks::by_name(name).expect("benchmark exists");
    let t = Instant::now();
    let r = synthesize(
        &b.spec,
        &SynthesisOptions::new(library, engine).with_max_solutions(100_000),
    );
    match r {
        Ok(r) => println!(
            "{name} [{}/{engine:?}]: D={} #SOL={} QC={:?} time={:?}",
            library.label(),
            r.depth(),
            r.solutions().count(),
            r.solutions().quantum_cost_range(),
            t.elapsed()
        ),
        Err(e) => println!(
            "{name} [{}/{engine:?}]: error {e} after {:?}",
            library.label(),
            t.elapsed()
        ),
    }
}
