//! Regenerates **Table 2** of the paper: the BDD approach finds *all*
//! minimal Toffoli networks in one step, so the number of solutions and
//! the min–max quantum-cost spread can be reported and the cheapest
//! realization chosen.
//!
//! ```text
//! cargo run --release -p qsyn-bench --bin gen_table2
//! QSYN_FULL=1 QSYN_TIMEOUT=2000 cargo run --release -p qsyn-bench --bin gen_table2
//! ```

use qsyn_bench::{bench_names, is_complete_bench, qc_cell, run_budgeted, timeout_from_env};
use qsyn_core::{Engine, GateLibrary, SynthesisOptions};
use qsyn_revlogic::benchmarks;

fn main() {
    let budget = timeout_from_env();
    println!(
        "Table 2: Quantum costs of networks (BDD engine, MCT library, timeout {}s)",
        budget.as_secs()
    );
    println!();
    println!(
        "{:<12} {:>2} {:>10} {:>10} {:>12}",
        "BENCH", "D", "TIME", "#SOL", "QC(min..max)"
    );
    let mut section = "";
    for name in bench_names() {
        let header = if is_complete_bench(name) {
            "COMPLETELY SPECIFIED FUNCTIONS"
        } else {
            "INCOMPLETELY SPECIFIED FUNCTIONS"
        };
        if header != section {
            section = header;
            println!("--- {section}");
        }
        let bench = benchmarks::by_name(name).expect("known benchmark");
        let out = run_budgeted(
            &bench.spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_solutions(200_000),
            budget,
        );
        match out.result() {
            Some(r) => {
                let sols = r.solutions();
                let sol_cell = if sols.is_exhaustive() {
                    sols.count().to_string()
                } else {
                    format!("{}*", sols.count())
                };
                println!(
                    "{:<12} {:>2} {:>10} {:>10} {:>12}",
                    name,
                    r.depth(),
                    out.time_cell(budget),
                    sol_cell,
                    qc_cell(sols.quantum_cost_range()),
                );
            }
            None => println!(
                "{:<12} {:>2} {:>10} {:>10} {:>12}",
                name,
                "-",
                out.time_cell(budget),
                "-",
                "-"
            ),
        }
    }
    println!();
    println!("* = quantum-cost statistics over the enumerated prefix (solution list");
    println!("    truncated at 200000; the count itself is exact).");
    println!("Expected shape (paper): large #SOL with a wide QC spread on the harder");
    println!("functions — picking the best realization saves up to ~2x in quantum cost.");
}
