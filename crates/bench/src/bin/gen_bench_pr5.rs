//! Emits `BENCH_pr5.json` — the tracked benchmark trajectory of the PR 5
//! robustness work (deterministic fault-injection plane, supervised
//! retry, crash-safe batch resume).
//!
//! The headline guard: compiling the fault plane in (`--features faults`)
//! but leaving it *disarmed* must cost the hot paths less than
//! [`OVERHEAD_BAR_PCT`] percent. Every injection site is one relaxed
//! atomic load on the disarmed path, so the bar is generous; the guard
//! exists to catch a future site landing inside a tight inner loop.
//!
//! Because the plane is a compile-time feature, the comparison spans two
//! builds of this same binary. Both builds land on the same artifact
//! path, so the plain binary is copied aside and handed to the faults
//! build via `--ab`, which then *interleaves* samples of itself and the
//! plain binary — a 2% bar is below the drift between two measurement
//! windows minutes apart, and only paired sampling makes it meaningful:
//!
//! ```text
//! # 1. plane compiled out: write the reference timing, keep the binary
//! cargo run --release -p qsyn-bench --bin gen_bench_pr5
//! cp target/release/gen_bench_pr5 /tmp/gen_bench_pr5.plain
//! # 2. plane compiled in (disarmed): A/B-measure overhead, write BENCH_pr5.json
//! cargo run --release -p qsyn-bench --features faults --bin gen_bench_pr5 -- \
//!     --ab /tmp/gen_bench_pr5.plain
//! # CI regression gate (either build; deterministic metrics only)
//! cargo run --release -p qsyn-bench --bin gen_bench_pr5 -- --check BENCH_pr5.json
//! ```
//!
//! Without `--ab` the faults build falls back to the plain reference's
//! recorded wall clock and re-measures itself a few times before failing
//! the bar — usable, but exposed to cross-window drift.
//!
//! The faults build also records a deterministic *recovery* trajectory:
//! for each seed in `FAULT_SEEDS` it arms the plane, pushes a job
//! through the supervised batch scheduler, and records how many attempts
//! the retry policy needed and which faults fired. Those are exactly
//! reproducible (equal seeds give equal schedules) and are gated by
//! `--check` whenever the checking build has the plane compiled in.
//! Wall-clock numbers are recorded for the trajectory but never gated
//! (CI runners swing by 2×); the overhead bar is asserted only when
//! *generating* the baseline.

use qsyn_core::{synthesize_in, Engine, GateLibrary, SynthesisOptions, SynthesisSession};
use qsyn_revlogic::benchmarks;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// The workload: Table 1 functions spread over all three engines so every
/// injection site's disarmed check sits on a measured hot path (BDD
/// alloc + GC sweep, SAT propagation, QBF decision loop).
const TRAJECTORY: &[(&str, Engine)] = &[
    ("rd32-v0", Engine::Bdd),
    ("decod24-v0", Engine::Bdd),
    ("3_17", Engine::Bdd),
    ("rd32-v0", Engine::Sat),
    ("3_17", Engine::Qbf),
];

/// Rounds per trajectory entry in one timed batch.
const ROUNDS: usize = 6;

/// Timing repetitions; per-job minima over all runs are summed, which
/// filters scheduler noise spikes (results are identical across runs).
const RUNS: usize = 7;

/// Disabled-cost bar, in percent, asserted when generating the combined
/// baseline from the faults build.
const OVERHEAD_BAR_PCT: f64 = 2.0;

fn options(engine: Engine) -> SynthesisOptions {
    SynthesisOptions::new(GateLibrary::mct(), engine)
}

fn engine_name(e: Engine) -> &'static str {
    match e {
        Engine::Bdd => "bdd",
        Engine::Sat => "sat",
        Engine::Qbf => "qbf",
    }
}

/// `(depth, solutions)` per job, in job order.
type JobResults = Vec<(u32, u128)>;

/// Runs the timed batch once, one long-lived session, plane disarmed.
fn run_timed() -> (Vec<f64>, JobResults) {
    let mut session = SynthesisSession::new();
    let mut times = Vec::new();
    let mut results = Vec::new();
    for &(name, engine) in TRAJECTORY {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        let opts = options(engine);
        for _ in 0..ROUNDS {
            let start = Instant::now();
            let r = synthesize_in(&bench.spec, &opts, &mut session)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            times.push(start.elapsed().as_secs_f64() * 1e3);
            results.push((r.depth(), r.solutions().count()));
        }
    }
    (times, results)
}

/// One deterministic recovery measurement: seed, attempts the supervisor
/// needed, the final status label, and the fired `site kind` list.
struct Recovery {
    seed: u64,
    attempts: u32,
    outcome: &'static str,
    fired: String,
}

/// Arms the plane per seed and pushes one job through the supervised
/// scheduler. Single worker, so visit counts — and therefore the whole
/// schedule — are exactly reproducible.
#[cfg(feature = "faults")]
fn run_recovery() -> Vec<Recovery> {
    use qsyn_core::RetryPolicy;
    use qsyn_faults::FaultPlane;
    use qsyn_portfolio::{run_batch, BatchConfig, JobStatus};

    /// Seeds for the deterministic recovery trajectory.
    const FAULT_SEEDS: &[u64] = &[1, 2, 3, 4];
    /// Retry head-room: at most one one-shot fault per site can fire, so
    /// the supervisor needs at most `sites + 1` attempts.
    const MAX_ATTEMPTS: u32 = 8;

    let bench = benchmarks::by_name("rd32-v0").expect("known benchmark");
    let mut out = Vec::new();
    for &seed in FAULT_SEEDS {
        FaultPlane::arm(seed);
        let outcome = run_batch(
            vec![("rd32-v0".to_string(), bench.spec.clone())],
            &BatchConfig {
                workers: 1,
                per_job_timeout: None,
                retry: RetryPolicy::escalating(MAX_ATTEMPTS, Vec::new()),
            },
            None,
            |spec, _token, session, _attempt| synthesize_in(spec, &options(Engine::Bdd), session),
        );
        let fired: Vec<String> = FaultPlane::fired()
            .into_iter()
            .map(|(site, kind)| format!("{} {kind}", site.name()))
            .collect();
        FaultPlane::disarm();
        let report = &outcome.reports[0];
        let label = match &report.status {
            JobStatus::Done(_) => "done",
            JobStatus::Degraded { .. } => "recovered",
            JobStatus::Failed(_) => "failed",
            JobStatus::Panicked { .. } => "panicked",
        };
        assert!(
            matches!(
                report.status,
                JobStatus::Done(_) | JobStatus::Degraded { .. }
            ),
            "seed {seed}: supervisor must recover the job, got {label}"
        );
        out.push(Recovery {
            seed,
            attempts: report.attempts,
            outcome: label,
            fired: fired.join(", "),
        });
    }
    out
}

#[cfg(not(feature = "faults"))]
fn run_recovery() -> Vec<Recovery> {
    Vec::new()
}

fn min_into(acc: &mut Vec<f64>, run: &[f64]) {
    if acc.is_empty() {
        acc.extend_from_slice(run);
    } else {
        for (a, &t) in acc.iter_mut().zip(run) {
            *a = a.min(t);
        }
    }
}

struct Report {
    /// Per trajectory entry: `(name, engine, depth, solutions)`.
    per_bench: Vec<(&'static str, &'static str, u32, u128)>,
    time_ms: f64,
    /// Per-job minima, in job order (diagnostic printout only).
    per_entry_ms: Vec<f64>,
    recovery: Vec<Recovery>,
}

fn total_jobs() -> usize {
    TRAJECTORY.len() * ROUNDS
}

fn jobs_per_sec(time_ms: f64) -> f64 {
    total_jobs() as f64 / (time_ms / 1e3).max(1e-9)
}

fn faults_compiled() -> bool {
    cfg!(feature = "faults")
}

/// Measures the workload (min-of-RUNS) and pins down the deterministic
/// per-benchmark results.
fn measure() -> Report {
    let mut min_times = Vec::new();
    let mut pinned: Option<JobResults> = None;
    for _ in 0..RUNS {
        let (times, results) = run_timed();
        match &pinned {
            Some(p) => assert_eq!(*p, results, "timed runs must agree bit for bit"),
            None => pinned = Some(results),
        }
        min_into(&mut min_times, &times);
    }
    let results = pinned.expect("RUNS > 0");
    let per_bench = TRAJECTORY
        .iter()
        .enumerate()
        .map(|(i, &(name, engine))| {
            let (d, s) = results[i * ROUNDS];
            for round in 1..ROUNDS {
                assert_eq!(
                    results[i * ROUNDS + round],
                    (d, s),
                    "{name}: round diverged"
                );
            }
            (name, engine_name(engine), d, s)
        })
        .collect();
    Report {
        per_bench,
        time_ms: min_times.iter().sum(),
        per_entry_ms: min_times,
        recovery: run_recovery(),
    }
}

fn report_json(r: &Report, plain_ms: Option<f64>) -> String {
    let mut out = String::from("{\n  \"generated_by\": \"gen_bench_pr5\",\n");
    let _ = writeln!(out, "  \"faults_compiled\": {},", faults_compiled());
    let _ = writeln!(
        out,
        "  \"rounds\": {ROUNDS},\n  \"total_jobs\": {},\n  \"benchmarks\": [",
        total_jobs()
    );
    for (i, (name, engine, depth, solutions)) in r.per_bench.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"name\": \"{name}\", \"engine\": \"{engine}\", \"depth\": {depth}, \"solutions\": {solutions} }}{}",
            if i + 1 == r.per_bench.len() { "" } else { "," }
        );
    }
    out.push_str("  ],\n");
    match plain_ms {
        Some(plain) => {
            let overhead = (r.time_ms / plain.max(1e-9) - 1.0) * 100.0;
            let _ = writeln!(
                out,
                "  \"plain\": {{ \"time_ms\": {plain:.3}, \"jobs_per_sec\": {:.2} }},",
                jobs_per_sec(plain)
            );
            let _ = writeln!(
                out,
                "  \"disarmed\": {{ \"time_ms\": {:.3}, \"jobs_per_sec\": {:.2} }},",
                r.time_ms,
                jobs_per_sec(r.time_ms)
            );
            let _ = writeln!(out, "  \"overhead_pct\": {overhead:.3},");
        }
        None => {
            let _ = writeln!(
                out,
                "  \"plain\": {{ \"time_ms\": {:.3}, \"jobs_per_sec\": {:.2} }},",
                r.time_ms,
                jobs_per_sec(r.time_ms)
            );
        }
    }
    out.push_str("  \"recovery\": [\n");
    for (i, rec) in r.recovery.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"seed\": {}, \"attempts\": {}, \"outcome\": \"{}\", \"fired\": \"{}\" }}{}",
            rec.seed,
            rec.attempts,
            rec.outcome,
            rec.fired,
            if i + 1 == r.recovery.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Deterministic metrics scraped back out of a committed report.
struct Baseline {
    /// `name/engine` → `(depth, solutions)`.
    rows: HashMap<String, (u32, u128)>,
    /// `seed` → `(attempts, outcome, fired)`.
    recovery: HashMap<u64, (u32, String, String)>,
    plain_ms: Option<f64>,
}

fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let marker = format!("\"{name}\": ");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', ' ', '}']).next()
    }
}

fn parse_baseline(text: &str) -> Baseline {
    let mut rows = HashMap::new();
    let mut recovery = HashMap::new();
    let mut plain_ms = None;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("{ \"name\":") {
            if let (Some(name), Some(engine), Some(d), Some(s)) = (
                field(line, "name"),
                field(line, "engine"),
                field(line, "depth").and_then(|v| v.parse().ok()),
                field(line, "solutions").and_then(|v| v.parse().ok()),
            ) {
                rows.insert(format!("{name}/{engine}"), (d, s));
            }
        } else if line.starts_with("{ \"seed\":") {
            if let (Some(seed), Some(attempts), Some(outcome), Some(fired)) = (
                field(line, "seed").and_then(|v| v.parse().ok()),
                field(line, "attempts").and_then(|v| v.parse().ok()),
                field(line, "outcome"),
                field(line, "fired"),
            ) {
                recovery.insert(seed, (attempts, outcome.to_string(), fired.to_string()));
            }
        } else if line.starts_with("\"plain\":") {
            plain_ms = field(line, "time_ms").and_then(|v| v.parse().ok());
        }
    }
    Baseline {
        rows,
        recovery,
        plain_ms,
    }
}

fn check(report: &Report, baseline: &Baseline) -> bool {
    let mut failed = false;
    for (name, engine, depth, solutions) in &report.per_bench {
        let key = format!("{name}/{engine}");
        let Some(&(bd, bs)) = baseline.rows.get(&key) else {
            println!("{key}: not in baseline, skipping");
            continue;
        };
        if (*depth, *solutions) != (bd, bs) {
            println!("REGRESSION {key}: ({depth}, {solutions}) vs baseline ({bd}, {bs})");
            failed = true;
        }
    }
    if faults_compiled() {
        for rec in &report.recovery {
            let Some((ba, bo, bf)) = baseline.recovery.get(&rec.seed) else {
                println!("seed {}: not in baseline, skipping", rec.seed);
                continue;
            };
            if (rec.attempts, rec.outcome, rec.fired.as_str()) != (*ba, bo.as_str(), bf.as_str()) {
                println!(
                    "REGRESSION seed {}: {} attempts / {} / [{}] vs baseline {} / {} / [{}]",
                    rec.seed, rec.attempts, rec.outcome, rec.fired, ba, bo, bf
                );
                failed = true;
            }
        }
    } else {
        println!("fault plane compiled out: recovery trajectory not re-checked");
    }
    !failed
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut plain_path = "BENCH_pr5.plain.json".to_string();
    let mut ab_bin: Option<String> = None;
    let mut time_only = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => baseline_path = Some(args.next().expect("--check needs a file")),
            "-o" | "--output" => out_path = Some(args.next().expect("-o needs a file")),
            "--plain" => plain_path = args.next().expect("--plain needs a file"),
            "--ab" => ab_bin = Some(args.next().expect("--ab needs a binary path")),
            "--time-only" => time_only = true,
            other => panic!("unknown option `{other}`"),
        }
    }

    let mut report = measure();
    if time_only {
        // A/B probe mode: one machine-parsable line for the peer build.
        println!("time_ms: {:.3}", report.time_ms);
        return;
    }
    println!(
        "PR 5 fault-plane trajectory ({} jobs, plane {})",
        total_jobs(),
        if faults_compiled() {
            "compiled in, disarmed"
        } else {
            "compiled out"
        }
    );
    println!(
        "workload: {:>8.1}ms ({:>6.1} jobs/s)",
        report.time_ms,
        jobs_per_sec(report.time_ms)
    );
    for (i, (name, engine, _, _)) in report.per_bench.iter().enumerate() {
        println!(
            "  {name}/{engine}: {:>8.1}ms",
            report.per_entry_ms[i * ROUNDS..(i + 1) * ROUNDS]
                .iter()
                .sum::<f64>()
        );
    }
    for rec in &report.recovery {
        println!(
            "seed {}: {} ({} attempts) [{}]",
            rec.seed, rec.outcome, rec.attempts, rec.fired
        );
    }

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).expect("read baseline");
        if !check(&report, &parse_baseline(&text)) {
            println!("\nbench-smoke: FAILED against {path}");
            std::process::exit(1);
        }
        println!("\nbench-smoke: ok against {path}");
    } else if faults_compiled() {
        // Combined baseline: needs the plain build's reference timing.
        let text = std::fs::read_to_string(&plain_path).unwrap_or_else(|e| {
            panic!(
                "{plain_path}: {e}\nrun the plain build first: \
                 cargo run --release -p qsyn-bench --bin gen_bench_pr5"
            )
        });
        let plain = parse_baseline(&text);
        let mut plain_ms = plain.plain_ms.expect("plain reference has a time");
        for (name, engine, depth, solutions) in &report.per_bench {
            let key = format!("{name}/{engine}");
            if let Some(&(bd, bs)) = plain.rows.get(&key) {
                assert_eq!(
                    (*depth, *solutions),
                    (bd, bs),
                    "{key}: faults build result differs from plain build"
                );
            }
        }
        // The two timings come from separate processes (the plane is a
        // compile-time feature), and two measurement windows minutes apart
        // drift by more than the 2% bar. With `--ab` the plain binary was
        // preserved, so alternate samples of both builds inside one window
        // and compare min against min — paired weather, honest bar.
        if let Some(ab) = &ab_bin {
            const AB_PAIRS: usize = 3;
            let mut plain_best = f64::INFINITY;
            for pair in 1..=AB_PAIRS {
                let own = measure();
                if own.time_ms < report.time_ms {
                    report = own;
                }
                let out = std::process::Command::new(ab)
                    .arg("--time-only")
                    .output()
                    .unwrap_or_else(|e| panic!("--ab {ab}: {e}"));
                assert!(out.status.success(), "--ab {ab} exited with {}", out.status);
                let text = String::from_utf8_lossy(&out.stdout);
                let t: f64 = text
                    .lines()
                    .find_map(|l| l.strip_prefix("time_ms: "))
                    .expect("--ab binary must print `time_ms: `")
                    .trim()
                    .parse()
                    .expect("--ab time parses");
                plain_best = plain_best.min(t);
                println!(
                    "ab pair {pair}/{AB_PAIRS}: plain {t:.1}ms, disarmed {:.1}ms",
                    report.time_ms
                );
            }
            plain_ms = plain_best;
        }
        // Fallback without `--ab`: the recorded reference plus a few
        // self re-measures — a genuine regression shows in every sample,
        // a noisy window does not.
        let mut overhead = (report.time_ms / plain_ms.max(1e-9) - 1.0) * 100.0;
        if ab_bin.is_none() {
            const REMEASURES: usize = 2;
            for attempt in 1..=REMEASURES {
                if overhead < OVERHEAD_BAR_PCT {
                    break;
                }
                println!(
                    "overhead {overhead:.3}% over bar — re-measuring ({attempt}/{REMEASURES})"
                );
                let again = measure();
                if again.time_ms < report.time_ms {
                    report = again;
                }
                overhead = (report.time_ms / plain_ms.max(1e-9) - 1.0) * 100.0;
            }
        }
        println!("overhead: {overhead:>7.3}% (bar {OVERHEAD_BAR_PCT}%)");
        assert!(
            overhead < OVERHEAD_BAR_PCT,
            "disarmed fault plane costs {overhead:.3}%, bar is {OVERHEAD_BAR_PCT}%"
        );
        let path = out_path.unwrap_or_else(|| "BENCH_pr5.json".to_string());
        std::fs::write(&path, report_json(&report, Some(plain_ms))).expect("write report");
        println!("wrote {path}");
    } else {
        let path = out_path.unwrap_or_else(|| plain_path.clone());
        std::fs::write(&path, report_json(&report, None)).expect("write report");
        println!("wrote {path} (now rerun with --features faults to gate overhead)");
    }
}
