//! Regenerates **Table 1** of the paper: runtime comparison of the
//! SAT-based approaches (\[9\] and the improved encoding standing in for
//! SWORD \[22\]) against the two quantified approaches (QBF solver and BDD),
//! all with the multiple-control Toffoli library.
//!
//! ```text
//! cargo run --release -p qsyn-bench --bin gen_table1
//! QSYN_FULL=1 QSYN_TIMEOUT=2000 cargo run --release -p qsyn-bench --bin gen_table1
//! ```

use qsyn_bench::{
    bench_names, improvement_cell, is_complete_bench, run_budgeted, timeout_from_env,
};
use qsyn_core::{Engine, GateLibrary, SatSelectEncoding, SynthesisOptions};
use qsyn_revlogic::benchmarks;

fn main() {
    let budget = timeout_from_env();
    println!(
        "Table 1: Comparison to Previous Work (timeout {}s)",
        budget.as_secs()
    );
    println!("SAT SOLVER = row-wise one-hot encoding [9]; SWORD* = row-wise binary");
    println!("encoding standing in for the specialised SWORD prover [22] (see DESIGN.md).");
    println!();
    println!(
        "{:<12} {:>2} | {:>9} {:>9} | {:>9} {:>8} {:>8} | {:>9} {:>8} {:>8}",
        "BENCH", "D", "SAT", "SWORD*", "QBF", "IMPR_SAT", "IMPR_SW", "BDD", "IMPR_SAT", "IMPR_SW"
    );
    let mut section = "";
    for name in bench_names() {
        let header = if is_complete_bench(name) {
            "COMPLETELY SPECIFIED FUNCTIONS"
        } else {
            "INCOMPLETELY SPECIFIED FUNCTIONS"
        };
        if header != section {
            section = header;
            println!("--- {section}");
        }
        let bench = benchmarks::by_name(name).expect("known benchmark");
        let sat = run_budgeted(
            &bench.spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Sat)
                .with_sat_encoding(SatSelectEncoding::OneHot),
            budget,
        );
        let sword = run_budgeted(
            &bench.spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Sat)
                .with_sat_encoding(SatSelectEncoding::Binary),
            budget,
        );
        let qbf = run_budgeted(
            &bench.spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Qbf),
            budget,
        );
        let bdd = run_budgeted(
            &bench.spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
            budget,
        );
        let depth = [&sat, &sword, &qbf, &bdd]
            .iter()
            .find_map(|o| o.depth())
            .map_or("-".to_string(), |d| d.to_string());
        println!(
            "{:<12} {:>2} | {:>9} {:>9} | {:>9} {:>8} {:>8} | {:>9} {:>8} {:>8}",
            name,
            depth,
            sat.time_cell(budget),
            sword.time_cell(budget),
            qbf.time_cell(budget),
            improvement_cell(&sat, &qbf, budget),
            improvement_cell(&sword, &qbf, budget),
            bdd.time_cell(budget),
            improvement_cell(&sat, &bdd, budget),
            improvement_cell(&sword, &bdd, budget),
        );
    }
    println!();
    println!("Expected shape (paper): QBF beats plain SAT; BDD has the smallest total");
    println!("time on every non-trivial function.");
}
