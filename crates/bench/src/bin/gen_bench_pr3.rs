//! Emits `BENCH_pr3.json` — the tracked benchmark trajectory of the PR 3
//! BDD kernel overhaul (fused ∀-AND quantification, lossy computed table,
//! arena GC).
//!
//! For every small Table 1 function the binary synthesizes twice with the
//! BDD engine — once with the fused `check()` (default) and once with the
//! legacy build-then-quantify path — and records wall-clock time, peak
//! live nodes, computed-table hit rate and GC activity for each, plus the
//! headline ratios against the **seed engine** (the pre-overhaul kernel:
//! no garbage collection, unbounded hash-map op cache, build-then-quantify
//! only; see [`SEED_BASELINE`] for measurement provenance).
//!
//! ```text
//! cargo run --release -p qsyn-bench --bin gen_bench_pr3            # write BENCH_pr3.json
//! cargo run --release -p qsyn-bench --bin gen_bench_pr3 -- \
//!     --check BENCH_pr3.json                                       # CI regression gate
//! ```
//!
//! With `--check BASELINE` the binary still writes a fresh report (to
//! `BENCH_pr3.new.json`) but exits non-zero when any benchmark regressed
//! against the committed baseline. The gate compares only **deterministic**
//! metrics — minimal depth, solution count (exact match) and peak live
//! nodes (at most [`REGRESSION_TOLERANCE`]× the baseline) — because BDD
//! node trajectories are reproducible bit for bit while wall-clock on a
//! shared CI runner swings by 2×. Times are recorded for the trajectory
//! but never gated on.

use qsyn_bench::run_budgeted;
use qsyn_core::{Engine, GateLibrary, SynthesisOptions};
use qsyn_revlogic::benchmarks;
use std::collections::HashMap;
use std::time::Duration;

/// Benchmarks in the trajectory: every fast Table 1 function, including
/// all the 4-line ones the acceptance bar is measured on.
const TRAJECTORY: &[&str] = &["3_17", "rd32-v0", "rd32-v1", "decod24-v0", "decod24-v2"];

/// The seed kernel's numbers: `(name, time_ms, peak_nodes)`, measured by
/// driving the pre-overhaul `BddEngine` (commit `e248b84`, the tree as of
/// the engine-portfolio PR) on the same machine as the initial
/// `BENCH_pr3.json` — median wall clock of 3 runs, final arena node count
/// (the seed never frees a node, so final == peak, and it is exactly
/// reproducible). Times are honest same-machine medians but inherently
/// machine-bound; the peak node counts are machine-independent.
const SEED_BASELINE: &[(&str, f64, usize)] = &[
    ("3_17", 11.604, 32_065),
    ("rd32-v0", 17.598, 52_143),
    ("rd32-v1", 42.682, 101_568),
    ("decod24-v0", 66.976, 159_308),
    ("decod24-v2", 66.486, 158_895),
];

/// Peak live nodes may grow to `baseline * REGRESSION_TOLERANCE` before
/// the check fails (>25% regression).
const REGRESSION_TOLERANCE: f64 = 1.25;

/// Wall-clock runs per configuration; the fastest is recorded, which
/// filters scheduler noise (node counts are identical across runs).
const RUNS: usize = 3;

/// Per-run soft timeout. The trajectory functions all finish in well under
/// a second in release mode; the budget only matters on broken builds.
const BUDGET: Duration = Duration::from_secs(120);

struct Sample {
    time_ms: f64,
    depth: u32,
    solutions: u128,
    peak_live: usize,
    hit_rate: f64,
    gc_runs: u64,
}

struct Row {
    name: &'static str,
    fused: Sample,
    legacy: Sample,
    seed_time_ms: f64,
    seed_peak: usize,
}

impl Row {
    /// Seed wall clock over fused wall clock.
    fn speedup_vs_seed(&self) -> f64 {
        self.seed_time_ms / self.fused.time_ms.max(1e-6)
    }

    /// Seed peak nodes over fused peak live nodes (GC's headline win).
    fn peak_reduction_vs_seed(&self) -> f64 {
        self.seed_peak as f64 / (self.fused.peak_live as f64).max(1.0)
    }
}

fn measure(name: &'static str, fused: bool) -> Sample {
    let bench = benchmarks::by_name(name).expect("known benchmark");
    let options =
        SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_fused_quantification(fused);
    let mut best: Option<Sample> = None;
    for _ in 0..RUNS {
        let out = run_budgeted(&bench.spec, &options, BUDGET);
        let r = out.result().unwrap_or_else(|| {
            panic!("{name} must synthesize within {}s", BUDGET.as_secs());
        });
        let stats = r.bdd_stats().expect("BDD engine reports manager stats");
        let sample = Sample {
            time_ms: r.total_time().as_secs_f64() * 1e3,
            depth: r.depth(),
            solutions: r.solutions().count(),
            peak_live: stats.peak_live,
            hit_rate: stats.cache_hit_rate(),
            gc_runs: stats.gc_runs,
        };
        if best.as_ref().is_none_or(|b| sample.time_ms < b.time_ms) {
            best = Some(sample);
        }
    }
    best.expect("RUNS > 0")
}

fn sample_json(s: &Sample, indent: &str) -> String {
    format!(
        "{{\n{indent}  \"time_ms\": {:.3},\n{indent}  \"depth\": {},\n{indent}  \"solutions\": {},\n{indent}  \"peak_live_nodes\": {},\n{indent}  \"cache_hit_rate\": {:.4},\n{indent}  \"gc_runs\": {}\n{indent}}}",
        s.time_ms, s.depth, s.solutions, s.peak_live, s.hit_rate, s.gc_runs
    )
}

fn report_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"generated_by\": \"gen_bench_pr3\",\n");
    out.push_str("  \"library\": \"mct\",\n  \"engine\": \"bdd\",\n");
    out.push_str("  \"seed_commit\": \"e248b84\",\n  \"benchmarks\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", row.name));
        out.push_str(&format!(
            "      \"fused\": {},\n",
            sample_json(&row.fused, "      ")
        ));
        out.push_str(&format!(
            "      \"legacy\": {},\n",
            sample_json(&row.legacy, "      ")
        ));
        out.push_str(&format!(
            "      \"seed\": {{ \"time_ms\": {:.3}, \"peak_nodes\": {} }},\n",
            row.seed_time_ms, row.seed_peak
        ));
        out.push_str(&format!(
            "      \"speedup_vs_seed\": {:.3},\n",
            row.speedup_vs_seed()
        ));
        out.push_str(&format!(
            "      \"peak_reduction_vs_seed\": {:.3}\n",
            row.peak_reduction_vs_seed()
        ));
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Deterministic metrics of one baseline benchmark, scraped back out of a
/// report written by [`report_json`].
struct BaselineRow {
    depth: u32,
    solutions: u128,
    peak_live: usize,
}

/// Pulls the `fused` block's deterministic metrics per benchmark back out
/// of a committed report. The format is line-oriented by construction, so
/// a dependency-free scan suffices: the first `depth`/`solutions`/
/// `peak_live_nodes` lines after each `"name"` belong to the fused sample.
fn parse_baseline(text: &str) -> HashMap<String, BaselineRow> {
    let mut out = HashMap::new();
    let mut name: Option<String> = None;
    let mut depth: Option<u32> = None;
    let mut solutions: Option<u128> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            name = rest.strip_suffix("\",").map(str::to_string);
            depth = None;
            solutions = None;
        } else if let Some(rest) = line.strip_prefix("\"depth\": ") {
            if depth.is_none() {
                depth = rest.trim_end_matches(',').parse().ok();
            }
        } else if let Some(rest) = line.strip_prefix("\"solutions\": ") {
            if solutions.is_none() {
                solutions = rest.trim_end_matches(',').parse().ok();
            }
        } else if let Some(rest) = line.strip_prefix("\"peak_live_nodes\": ") {
            if let (Some(n), Some(d), Some(s), Ok(p)) = (
                name.take(),
                depth.take(),
                solutions.take(),
                rest.trim_end_matches(',').parse::<usize>(),
            ) {
                out.insert(
                    n,
                    BaselineRow {
                        depth: d,
                        solutions: s,
                        peak_live: p,
                    },
                );
            }
        }
    }
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => baseline_path = Some(args.next().expect("--check needs a file")),
            "-o" | "--output" => out_path = Some(args.next().expect("-o needs a file")),
            other => panic!("unknown option `{other}`"),
        }
    }

    let seed: HashMap<&str, (f64, usize)> =
        SEED_BASELINE.iter().map(|&(n, t, p)| (n, (t, p))).collect();

    println!("PR 3 kernel trajectory (fused ∀-AND + GC + lossy table vs seed kernel)");
    println!(
        "{:<12} | {:>9} {:>9} {:>9} {:>8} | {:>8} {:>9} {:>9}",
        "BENCH", "FUSED", "LEGACY", "SEED", "SPEEDUP", "PEAK_F", "PEAK_SEED", "PEAK_IMPR"
    );
    let mut rows = Vec::new();
    for &name in TRAJECTORY {
        let fused = measure(name, true);
        let legacy = measure(name, false);
        assert_eq!(
            (fused.depth, fused.solutions),
            (legacy.depth, legacy.solutions),
            "{name}: fused and legacy check() must agree bit for bit"
        );
        let &(seed_time_ms, seed_peak) = seed
            .get(name)
            .unwrap_or_else(|| panic!("{name} has no seed baseline"));
        let row = Row {
            name,
            fused,
            legacy,
            seed_time_ms,
            seed_peak,
        };
        println!(
            "{:<12} | {:>7.1}ms {:>7.1}ms {:>7.1}ms {:>7.2}x | {:>8} {:>9} {:>8.2}x",
            name,
            row.fused.time_ms,
            row.legacy.time_ms,
            row.seed_time_ms,
            row.speedup_vs_seed(),
            row.fused.peak_live,
            row.seed_peak,
            row.peak_reduction_vs_seed()
        );
        assert!(
            row.fused.peak_live < row.seed_peak,
            "{name}: peak live nodes must be strictly below the seed path"
        );
        rows.push(row);
    }

    let report = report_json(&rows);
    match baseline_path {
        None => {
            let path = out_path.unwrap_or_else(|| "BENCH_pr3.json".to_string());
            std::fs::write(&path, &report).expect("write report");
            println!("\nwrote {path}");
        }
        Some(path) => {
            let new_path = out_path.unwrap_or_else(|| "BENCH_pr3.new.json".to_string());
            std::fs::write(&new_path, &report).expect("write report");
            let text = std::fs::read_to_string(&path).expect("read baseline");
            let baseline = parse_baseline(&text);
            let mut failed = false;
            for row in &rows {
                let Some(base) = baseline.get(row.name) else {
                    println!("{}: not in baseline, skipping", row.name);
                    continue;
                };
                if (row.fused.depth, row.fused.solutions) != (base.depth, base.solutions) {
                    println!(
                        "REGRESSION {}: depth/solutions ({}, {}) vs baseline ({}, {})",
                        row.name, row.fused.depth, row.fused.solutions, base.depth, base.solutions
                    );
                    failed = true;
                }
                let cap = base.peak_live as f64 * REGRESSION_TOLERANCE;
                if row.fused.peak_live as f64 > cap {
                    println!(
                        "REGRESSION {}: peak live nodes {} vs baseline {} (>{:.0}% growth)",
                        row.name,
                        row.fused.peak_live,
                        base.peak_live,
                        (REGRESSION_TOLERANCE - 1.0) * 100.0
                    );
                    failed = true;
                }
            }
            if failed {
                println!("\nbench-smoke: FAILED against {path}");
                std::process::exit(1);
            }
            println!("\nbench-smoke: ok against {path} (fresh report in {new_path})");
        }
    }
}
