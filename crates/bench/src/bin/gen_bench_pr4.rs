//! Emits `BENCH_pr4.json` — the tracked benchmark trajectory of the PR 4
//! session refactor (recyclable BDD managers behind `SynthesisSession`,
//! unified `ResourceGovernor` budgets).
//!
//! The workload is a batch of Table 1 functions, [`ROUNDS`] jobs per
//! function (grouped by function, the order a batch scheduler with a
//! canonical-spec cache produces), run twice —
//!
//! * **recycled** — one [`SynthesisSession`] for the whole batch, so every
//!   job after the first checks a reset manager (with warmed unique/
//!   computed-table capacity) out of the pool instead of allocating one,
//! * **fresh** — the pre-refactor behaviour: a brand-new manager per job
//!   ([`synthesize`] builds a throwaway session internally).
//!
//! Both modes must agree bit for bit on every job's minimal depth and
//! solution count; the headline metric is the batch throughput ratio
//! (jobs/sec recycled over fresh), with the recycled session's manager
//! and reset counters recorded as exactly reproducible evidence that the
//! pool actually recycled.
//!
//! ```text
//! cargo run --release -p qsyn-bench --bin gen_bench_pr4            # write BENCH_pr4.json
//! cargo run --release -p qsyn-bench --bin gen_bench_pr4 -- \
//!     --check BENCH_pr4.json                                       # CI regression gate
//! ```
//!
//! With `--check BASELINE` the binary still writes a fresh report (to
//! `BENCH_pr4.new.json`) but exits non-zero when any benchmark's depth or
//! solution count, or the session's manager/reset counters, differ from
//! the committed baseline. Wall-clock throughput is recorded for the
//! trajectory but never gated on (CI runners swing by 2×); the ≥1.15×
//! speedup bar is asserted only when *generating* a baseline.

use qsyn_core::{synthesize, synthesize_in, Engine, GateLibrary, SynthesisOptions};
use qsyn_core::{SessionStats, SynthesisSession};
use qsyn_revlogic::benchmarks;
use std::collections::HashMap;
use std::time::Instant;

/// Benchmarks in the batch: 4-line Table 1 functions whose unique/
/// computed tables grow enough per job that warmed capacity matters. A
/// uniform line count means the one pooled manager's warmed tables fit
/// every job exactly.
const TRAJECTORY: &[&str] = &["rd32-v0", "decod24-v0"];

/// How many times the trajectory repeats in one batch. More rounds means
/// more recycled checkouts per allocated manager, which is the effect
/// under measurement.
const ROUNDS: usize = 10;

/// Timing repetitions. Each job is timed individually and the per-job
/// minimum over all runs is summed into the recorded batch time, which
/// filters scheduler noise spikes per job (depths, solution counts and
/// session counters are identical across runs).
const RUNS: usize = 7;

/// Throughput bar asserted at baseline-generation time: the recycled
/// session must push at least this many times the fresh-manager jobs/sec.
const SPEEDUP_BAR: f64 = 1.15;

fn options() -> SynthesisOptions {
    SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd)
}

/// `(depth, solutions)` per job, in job order.
type JobResults = Vec<(u32, u128)>;

/// Per-job wall time in milliseconds, in job order.
type JobTimes = Vec<f64>;

/// Runs the whole batch through one long-lived session.
fn run_recycled() -> (JobTimes, JobResults, SessionStats) {
    let opts = options();
    let mut session = SynthesisSession::new();
    let mut times = Vec::new();
    let mut results = Vec::new();
    for &name in TRAJECTORY {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        for _ in 0..ROUNDS {
            let start = Instant::now();
            let r = synthesize_in(&bench.spec, &opts, &mut session)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            times.push(start.elapsed().as_secs_f64() * 1e3);
            results.push((r.depth(), r.solutions().count()));
        }
    }
    (times, results, session.stats())
}

/// Runs the same batch with a throwaway manager per job.
fn run_fresh() -> (JobTimes, JobResults) {
    let opts = options();
    let mut times = Vec::new();
    let mut results = Vec::new();
    for &name in TRAJECTORY {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        for _ in 0..ROUNDS {
            let start = Instant::now();
            let r = synthesize(&bench.spec, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
            times.push(start.elapsed().as_secs_f64() * 1e3);
            results.push((r.depth(), r.solutions().count()));
        }
    }
    (times, results)
}

/// Element-wise minimum, accumulating into `acc`.
fn min_into(acc: &mut JobTimes, run: &[f64]) {
    if acc.is_empty() {
        acc.extend_from_slice(run);
    } else {
        for (a, &t) in acc.iter_mut().zip(run) {
            *a = a.min(t);
        }
    }
}

struct Report {
    /// Per unique benchmark: `(depth, solutions)`.
    per_bench: Vec<(&'static str, u32, u128)>,
    recycled_ms: f64,
    fresh_ms: f64,
    stats: SessionStats,
}

impl Report {
    fn total_jobs(&self) -> usize {
        TRAJECTORY.len() * ROUNDS
    }

    fn recycled_jobs_per_sec(&self) -> f64 {
        self.total_jobs() as f64 / (self.recycled_ms / 1e3).max(1e-9)
    }

    fn fresh_jobs_per_sec(&self) -> f64 {
        self.total_jobs() as f64 / (self.fresh_ms / 1e3).max(1e-9)
    }

    fn speedup(&self) -> f64 {
        self.fresh_ms / self.recycled_ms.max(1e-9)
    }
}

fn report_json(r: &Report) -> String {
    let mut out = String::from("{\n  \"generated_by\": \"gen_bench_pr4\",\n");
    out.push_str("  \"library\": \"mct\",\n  \"engine\": \"bdd\",\n");
    out.push_str(&format!(
        "  \"rounds\": {ROUNDS},\n  \"total_jobs\": {},\n  \"benchmarks\": [\n",
        r.total_jobs()
    ));
    for (i, (name, depth, solutions)) in r.per_bench.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"depth\": {depth}, \"solutions\": {solutions} }}{}\n",
            if i + 1 == r.per_bench.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"recycled\": {{ \"time_ms\": {:.3}, \"jobs_per_sec\": {:.2}, \"managers\": {}, \"resets\": {} }},\n",
        r.recycled_ms,
        r.recycled_jobs_per_sec(),
        r.stats.managers,
        r.stats.resets
    ));
    out.push_str(&format!(
        "  \"fresh\": {{ \"time_ms\": {:.3}, \"jobs_per_sec\": {:.2} }},\n",
        r.fresh_ms,
        r.fresh_jobs_per_sec()
    ));
    out.push_str(&format!("  \"speedup\": {:.3}\n}}\n", r.speedup()));
    out
}

/// Deterministic metrics scraped back out of a committed report: per-name
/// `(depth, solutions)` plus the session's `(managers, resets)`.
struct Baseline {
    rows: HashMap<String, (u32, u128)>,
    managers: Option<u64>,
    resets: Option<u64>,
}

fn parse_baseline(text: &str) -> Baseline {
    let mut rows = HashMap::new();
    let mut managers = None;
    let mut resets = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("{ \"name\": \"") {
            let mut name = None;
            let mut depth = None;
            let mut solutions = None;
            for (i, field) in rest
                .trim_end_matches(&[' ', '}', ','][..])
                .split(", ")
                .enumerate()
            {
                match (i, field.split_once(": ")) {
                    (0, _) => name = rest.split('"').next().map(str::to_string),
                    (_, Some(("\"depth\"", v))) => depth = v.parse().ok(),
                    (_, Some(("\"solutions\"", v))) => solutions = v.parse().ok(),
                    _ => {}
                }
            }
            if let (Some(n), Some(d), Some(s)) = (name, depth, solutions) {
                rows.insert(n, (d, s));
            }
        } else if let Some(rest) = line.strip_prefix("\"recycled\": {") {
            for field in rest.trim_end_matches(&['}', ','][..]).split(", ") {
                match field.split_once(": ") {
                    Some(("\"managers\"", v)) => {
                        managers = v.trim_end_matches('}').trim().parse().ok()
                    }
                    Some(("\"resets\"", v)) => resets = v.trim_end_matches('}').trim().parse().ok(),
                    _ => {}
                }
            }
        }
    }
    Baseline {
        rows,
        managers,
        resets,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => baseline_path = Some(args.next().expect("--check needs a file")),
            "-o" | "--output" => out_path = Some(args.next().expect("-o needs a file")),
            other => panic!("unknown option `{other}`"),
        }
    }

    let mut recycled_min = JobTimes::new();
    let mut fresh_min = JobTimes::new();
    let mut report: Option<Report> = None;
    for _ in 0..RUNS {
        let (recycled_times, recycled_results, stats) = run_recycled();
        let (fresh_times, fresh_results) = run_fresh();
        assert_eq!(
            recycled_results, fresh_results,
            "recycled and fresh batches must agree bit for bit"
        );
        min_into(&mut recycled_min, &recycled_times);
        min_into(&mut fresh_min, &fresh_times);
        let per_bench: Vec<(&'static str, u32, u128)> = TRAJECTORY
            .iter()
            .enumerate()
            .map(|(i, &name)| {
                let (d, s) = recycled_results[i * ROUNDS];
                // Every round reproduces the first round exactly.
                for round in 1..ROUNDS {
                    assert_eq!(
                        recycled_results[i * ROUNDS + round],
                        (d, s),
                        "{name}: round {round} diverged"
                    );
                }
                (name, d, s)
            })
            .collect();
        match &mut report {
            Some(r) => assert_eq!(r.stats, stats, "session counters must be reproducible"),
            None => {
                report = Some(Report {
                    per_bench,
                    recycled_ms: 0.0,
                    fresh_ms: 0.0,
                    stats,
                })
            }
        }
    }
    let mut report = report.expect("RUNS > 0");
    report.recycled_ms = recycled_min.iter().sum();
    report.fresh_ms = fresh_min.iter().sum();

    println!(
        "PR 4 batch session-recycling trajectory ({} jobs)",
        report.total_jobs()
    );
    println!(
        "recycled: {:>8.1}ms ({:>6.1} jobs/s, {} managers, {} resets)",
        report.recycled_ms,
        report.recycled_jobs_per_sec(),
        report.stats.managers,
        report.stats.resets
    );
    println!(
        "fresh:    {:>8.1}ms ({:>6.1} jobs/s)",
        report.fresh_ms,
        report.fresh_jobs_per_sec()
    );
    println!("speedup:  {:>8.3}x", report.speedup());
    assert!(
        report.stats.resets > 0,
        "the recycled batch must actually recycle managers"
    );

    let json = report_json(&report);
    match baseline_path {
        None => {
            assert!(
                report.speedup() >= SPEEDUP_BAR,
                "batch with session recycling must be >= {SPEEDUP_BAR}x fresh-manager throughput \
                 (got {:.3}x)",
                report.speedup()
            );
            let path = out_path.unwrap_or_else(|| "BENCH_pr4.json".to_string());
            std::fs::write(&path, &json).expect("write report");
            println!("\nwrote {path}");
        }
        Some(path) => {
            let new_path = out_path.unwrap_or_else(|| "BENCH_pr4.new.json".to_string());
            std::fs::write(&new_path, &json).expect("write report");
            let text = std::fs::read_to_string(&path).expect("read baseline");
            let baseline = parse_baseline(&text);
            let mut failed = false;
            for (name, depth, solutions) in &report.per_bench {
                let Some(&(bd, bs)) = baseline.rows.get(*name) else {
                    println!("{name}: not in baseline, skipping");
                    continue;
                };
                if (*depth, *solutions) != (bd, bs) {
                    println!(
                        "REGRESSION {name}: depth/solutions ({depth}, {solutions}) \
                         vs baseline ({bd}, {bs})"
                    );
                    failed = true;
                }
            }
            if let (Some(bm), Some(br)) = (baseline.managers, baseline.resets) {
                if (report.stats.managers, report.stats.resets) != (bm, br) {
                    println!(
                        "REGRESSION session counters: ({}, {}) managers/resets \
                         vs baseline ({bm}, {br})",
                        report.stats.managers, report.stats.resets
                    );
                    failed = true;
                }
            }
            if failed {
                println!("\nbench-smoke: FAILED against {path}");
                std::process::exit(1);
            }
            println!("\nbench-smoke: ok against {path} (fresh report in {new_path})");
        }
    }
}
