//! Benchmark harness regenerating the evaluation of *"Quantified Synthesis
//! of Reversible Logic"* (Wille et al., DATE 2008).
//!
//! The table-generator binaries mirror the paper's Tables 1–3:
//!
//! * `gen_table1` — runtime comparison of the SAT baseline, the improved
//!   SAT baseline (standing in for SWORD \[22\]), the QBF-solver approach and
//!   the BDD approach (all with the MCT library),
//! * `gen_table2` — `#SOL` and quantum-cost spread of the BDD engine's
//!   all-solutions output,
//! * `gen_table3` — extended gate libraries (MCT+MCF, MCT+P, MCT+MCF+P),
//! * `gen_ablations` — the design-choice ablations listed in `DESIGN.md`
//!   (variable order, incremental construction, select encoding).
//!
//! The per-run timeout defaults to [`DEFAULT_TIMEOUT_SECS`] seconds and can
//! be overridden with the `QSYN_TIMEOUT` environment variable (the paper
//! used 2000 s). Timeouts are *soft*: they are enforced between depth
//! iterations and through engine resource budgets, so a run can overshoot
//! by the cost of its last depth. `QSYN_FULL=1` switches from the quick
//! default subset to the paper's complete 19-benchmark suite.

#![warn(missing_docs)]

use qsyn_core::{synthesize, SynthesisError, SynthesisOptions, SynthesisResult};
use qsyn_revlogic::Spec;
use std::time::Duration;

/// Default soft timeout per synthesis run, in seconds.
pub const DEFAULT_TIMEOUT_SECS: u64 = 60;

/// Reads the per-run timeout from `QSYN_TIMEOUT` (seconds), falling back
/// to [`DEFAULT_TIMEOUT_SECS`].
pub fn timeout_from_env() -> Duration {
    std::env::var("QSYN_TIMEOUT")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map_or(
            Duration::from_secs(DEFAULT_TIMEOUT_SECS),
            Duration::from_secs,
        )
}

/// Outcome of one timed synthesis run.
#[derive(Debug)]
pub enum RunOutcome {
    /// Finished within budget.
    Solved(Box<SynthesisResult>),
    /// A budget (time, nodes, conflicts) ran out at the given depth.
    Out {
        /// Depth reached before running out.
        depth: u32,
        /// Which budget tripped.
        what: String,
    },
}

impl RunOutcome {
    /// Minimal depth if solved.
    pub fn depth(&self) -> Option<u32> {
        match self {
            RunOutcome::Solved(r) => Some(r.depth()),
            RunOutcome::Out { .. } => None,
        }
    }

    /// The full result if solved.
    pub fn result(&self) -> Option<&SynthesisResult> {
        match self {
            RunOutcome::Solved(r) => Some(r),
            RunOutcome::Out { .. } => None,
        }
    }

    /// `TIME` cell: seconds, with the paper's `>` marker on timeout.
    pub fn time_cell(&self, budget: Duration) -> String {
        match self {
            RunOutcome::Solved(r) => format_secs(r.total_time()),
            RunOutcome::Out { .. } => format!(">{}s", budget.as_secs()),
        }
    }

    /// Total time if solved.
    pub fn time(&self) -> Option<Duration> {
        match self {
            RunOutcome::Solved(r) => Some(r.total_time()),
            RunOutcome::Out { .. } => None,
        }
    }
}

/// Runs one synthesis with the soft timeout applied.
pub fn run_budgeted(spec: &Spec, options: &SynthesisOptions, budget: Duration) -> RunOutcome {
    let options = options.clone().with_time_budget(budget);
    match synthesize(spec, &options) {
        Ok(r) => RunOutcome::Solved(Box::new(r)),
        Err(SynthesisError::BudgetExceeded {
            depth, resource, ..
        }) => RunOutcome::Out {
            depth,
            what: match resource {
                qsyn_core::Resource::WallClock => "time".to_string(),
                other => other.to_string(),
            },
        },
        Err(e) => RunOutcome::Out {
            depth: e.depth().unwrap_or(0),
            what: e.to_string(),
        },
    }
}

/// Renders a duration the way the paper's tables do (`0.19s`, `32.22s`,
/// `<0.01s`).
pub fn format_secs(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 0.01 {
        "<0.01s".to_string()
    } else {
        format!("{secs:.2}s")
    }
}

/// `IMPR` cell: ratio `baseline / candidate` as the paper reports it
/// (`>x` when only the baseline timed out, `<1.00` when the candidate is
/// slower, `-` when both timed out).
pub fn improvement_cell(baseline: &RunOutcome, candidate: &RunOutcome, budget: Duration) -> String {
    match (baseline.time(), candidate.time()) {
        (Some(b), Some(c)) => {
            let ratio = b.as_secs_f64() / c.as_secs_f64().max(1e-9);
            if ratio < 1.0 {
                "<1.00".to_string()
            } else {
                format!("{ratio:.2}")
            }
        }
        (None, Some(c)) => {
            let ratio = budget.as_secs_f64() / c.as_secs_f64().max(1e-9);
            format!(">{ratio:.2}")
        }
        (Some(_), None) => "<1.00".to_string(),
        (None, None) => "-".to_string(),
    }
}

/// Quantum-cost cell `min..max` (or a single value when the range is
/// degenerate).
pub fn qc_cell(range: (u64, u64)) -> String {
    if range.0 == range.1 {
        format!("{}", range.0)
    } else {
        format!("{}..{}", range.0, range.1)
    }
}

/// Benchmark names the harness covers, in the paper's table order. The
/// quick default skips the multi-minute instances; `QSYN_FULL=1` runs the
/// paper's complete suite.
pub fn bench_names() -> Vec<&'static str> {
    let quick = vec![
        "mod5mils",
        "3_17",
        "mod5d1",
        "rd32-v0",
        "rd32-v1",
        "mod5-v0",
        "mod5-v1",
        "decod24-v0",
        "decod24-v1",
        "decod24-v2",
        "decod24-v3",
    ];
    let full = vec![
        "mod5mils",
        "graycode6",
        "3_17",
        "mod5d1",
        "mod5d2",
        "hwb4",
        "4_49",
        "rd32-v0",
        "rd32-v1",
        "mod5-v0",
        "mod5-v1",
        "decod24-v0",
        "decod24-v1",
        "decod24-v2",
        "decod24-v3",
        "alu-v0",
        "alu-v1",
        "alu-v2",
        "alu-v3",
    ];
    if std::env::var("QSYN_FULL").is_ok_and(|v| v == "1") {
        full
    } else {
        quick
    }
}

/// Splits the suite the way the paper's tables do.
pub fn is_complete_bench(name: &str) -> bool {
    qsyn_revlogic::benchmarks::by_name(name)
        .map(|b| b.kind == qsyn_revlogic::benchmarks::BenchmarkKind::Complete)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_core::{Engine, GateLibrary};
    use qsyn_revlogic::benchmarks;

    #[test]
    fn format_secs_matches_paper_style() {
        assert_eq!(format_secs(Duration::from_millis(2)), "<0.01s");
        assert_eq!(format_secs(Duration::from_millis(190)), "0.19s");
        assert_eq!(format_secs(Duration::from_secs(32)), "32.00s");
    }

    #[test]
    fn qc_cell_renders_ranges() {
        assert_eq!(qc_cell((14, 14)), "14");
        assert_eq!(qc_cell((32, 76)), "32..76");
    }

    #[test]
    fn run_budgeted_solves_fast_instance() {
        let spec = benchmarks::spec_3_17();
        let out = run_budgeted(
            &spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
            Duration::from_secs(120),
        );
        assert_eq!(out.depth(), Some(6));
        assert!(out.time().is_some());
        assert!(out.result().is_some());
    }

    #[test]
    fn run_budgeted_times_out_gracefully() {
        let spec = benchmarks::spec_hwb4();
        let out = run_budgeted(
            &spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
            Duration::ZERO,
        );
        assert!(out.depth().is_none());
        assert_eq!(out.time_cell(Duration::ZERO), ">0s");
    }

    #[test]
    fn improvement_cell_covers_all_cases() {
        let budget = Duration::from_secs(10);
        let timeout = RunOutcome::Out {
            depth: 0,
            what: "time".into(),
        };
        assert_eq!(improvement_cell(&timeout, &timeout, budget), "-");
        let spec = benchmarks::spec_3_17();
        let solved = run_budgeted(
            &spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
            Duration::from_secs(120),
        );
        assert!(improvement_cell(&timeout, &solved, budget).starts_with('>'));
        assert_eq!(improvement_cell(&solved, &timeout, budget), "<1.00");
        let self_ratio = improvement_cell(&solved, &solved, budget);
        assert!(self_ratio == "1.00" || self_ratio == "<1.00");
    }

    #[test]
    fn bench_names_resolve() {
        for name in bench_names() {
            assert!(benchmarks::by_name(name).is_some(), "{name}");
        }
        assert!(is_complete_bench("3_17"));
        assert!(!is_complete_bench("rd32-v0"));
        assert!(!is_complete_bench("nonexistent"));
    }
}
