//! Criterion bench for **Table 1**: per-engine synthesis time on the fast
//! benchmarks (MCT library). The `gen_table1` binary prints the full
//! paper-style table; this bench gives statistically robust timings for
//! the quick subset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsyn_core::{synthesize, Engine, GateLibrary, SatSelectEncoding, SynthesisOptions};
use qsyn_revlogic::benchmarks;

const FAST: &[&str] = &["3_17", "rd32-v0", "rd32-v1", "decod24-v0"];

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for name in FAST {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        let configs: [(&str, SynthesisOptions); 4] = [
            (
                "sat_onehot",
                SynthesisOptions::new(GateLibrary::mct(), Engine::Sat)
                    .with_sat_encoding(SatSelectEncoding::OneHot),
            ),
            (
                "sat_binary",
                SynthesisOptions::new(GateLibrary::mct(), Engine::Sat)
                    .with_sat_encoding(SatSelectEncoding::Binary),
            ),
            (
                "qbf",
                SynthesisOptions::new(GateLibrary::mct(), Engine::Qbf),
            ),
            (
                "bdd",
                SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
            ),
        ];
        for (engine_name, options) in configs {
            group.bench_with_input(
                BenchmarkId::new(engine_name, name),
                &options,
                |b, options| {
                    b.iter(|| {
                        let r = synthesize(&bench.spec, options).expect("synthesizes");
                        assert!(r.depth() > 0);
                        r.depth()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
