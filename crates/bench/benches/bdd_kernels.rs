//! Criterion bench for the PR 3 BDD kernel overhaul: the fused ∀-AND
//! `check()` against the legacy build-then-quantify path, plus a
//! manager-level microbench of `and_forall` against `forall(and(..))`.
//!
//! The `gen_bench_pr3` binary emits the tracked `BENCH_pr3.json`
//! trajectory; this bench gives statistically robust timings for the same
//! small Table 1 functions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsyn_bdd::Manager;
use qsyn_core::{synthesize, Engine, GateLibrary, SynthesisOptions};
use qsyn_revlogic::benchmarks;

const FAST: &[&str] = &["3_17", "rd32-v0", "rd32-v1", "decod24-v0"];

fn bench_fused_vs_legacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_kernels/check");
    group.sample_size(10);
    for name in FAST {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        let configs: [(&str, SynthesisOptions); 2] = [
            (
                "fused",
                SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
            ),
            (
                "legacy",
                SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd)
                    .with_fused_quantification(false),
            ),
        ];
        for (mode, options) in configs {
            group.bench_with_input(BenchmarkId::new(mode, name), &options, |b, options| {
                b.iter(|| {
                    let r = synthesize(&bench.spec, options).expect("synthesizes");
                    assert!(r.depth() > 0);
                    r.depth()
                })
            });
        }
    }
    group.finish();
}

/// A dense conjunction over shared variables, quantified over half of
/// them — the access pattern of `check()` boiled down to one manager call.
/// The operands form a variable matching with the quantified block on top
/// of the order, so the raw product is exponential in the block size while
/// the quantified result collapses — exactly the shape where fusing the ∧
/// into the ∀ descent avoids materializing the intermediate.
fn bench_and_forall_kernel(c: &mut Criterion) {
    const VARS: u32 = 20;
    let quantified: Vec<u32> = (0..VARS / 2).collect();
    let mut group = c.benchmark_group("bdd_kernels/and_forall");
    group.sample_size(20);
    group.bench_function("fused", |b| {
        b.iter(|| {
            let (mut m, f, g) = operands(VARS);
            m.and_forall(f, g, &quantified)
        })
    });
    group.bench_function("unfused", |b| {
        b.iter(|| {
            let (mut m, f, g) = operands(VARS);
            let fg = m.and(f, g);
            m.forall(fg, &quantified)
        })
    });
    group.finish();
}

fn operands(vars: u32) -> (Manager, qsyn_bdd::Bdd, qsyn_bdd::Bdd) {
    let mut m = Manager::new(vars);
    let mut f = qsyn_bdd::Bdd::ONE;
    let mut g = qsyn_bdd::Bdd::ZERO;
    let half = vars / 2;
    for v in 0..half {
        let x = m.var(v);
        let y = m.var(v + half);
        let xy = m.xor(x, y);
        f = m.and(f, xy);
        let and = m.and(x, y);
        g = m.or(g, and);
    }
    (m, f, g)
}

criterion_group!(benches, bench_fused_vs_legacy, bench_and_forall_kernel);
criterion_main!(benches);
