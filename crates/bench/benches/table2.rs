//! Criterion bench for **Table 2**: the all-solutions BDD sweep including
//! model counting, enumeration and quantum-cost ranking (the part previous
//! single-solution approaches cannot do at all).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsyn_core::{synthesize, Engine, GateLibrary, SynthesisOptions};
use qsyn_revlogic::benchmarks;

const FAST: &[&str] = &["3_17", "rd32-v1", "decod24-v0", "decod24-v3"];

fn bench_all_solutions(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for name in FAST {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        group.bench_with_input(
            BenchmarkId::new("bdd_all_solutions", name),
            &bench.spec,
            |b, spec| {
                b.iter(|| {
                    let r = synthesize(
                        spec,
                        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd)
                            .with_max_solutions(200_000),
                    )
                    .expect("synthesizes");
                    let (lo, hi) = r.solutions().quantum_cost_range();
                    assert!(lo <= hi);
                    (r.solutions().count(), lo, hi)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_all_solutions);
criterion_main!(benches);
