//! Criterion bench for the design-choice ablations (`DESIGN.md` §2):
//! variable order, incremental construction and SAT select encoding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsyn_core::{synthesize, Engine, GateLibrary, SatSelectEncoding, SynthesisOptions, VarOrder};
use qsyn_revlogic::benchmarks;

fn bench_var_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_var_order");
    group.sample_size(10);
    for name in ["3_17", "rd32-v0"] {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        for (label, order) in [
            ("x_then_y", VarOrder::XThenY),
            ("y_then_x", VarOrder::YThenX),
        ] {
            group.bench_with_input(BenchmarkId::new(label, name), &order, |b, &order| {
                b.iter(|| {
                    synthesize(
                        &bench.spec,
                        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd)
                            .with_var_order(order),
                    )
                    .expect("synthesizes")
                    .depth()
                })
            });
        }
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_incremental");
    group.sample_size(10);
    for name in ["3_17", "decod24-v0"] {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        for (label, incremental) in [("incremental", true), ("from_scratch", false)] {
            group.bench_with_input(
                BenchmarkId::new(label, name),
                &incremental,
                |b, &incremental| {
                    b.iter(|| {
                        synthesize(
                            &bench.spec,
                            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd)
                                .with_incremental(incremental),
                        )
                        .expect("synthesizes")
                        .depth()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_sat_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sat_encoding");
    group.sample_size(10);
    for name in ["3_17", "rd32-v0"] {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        for (label, enc) in [
            ("one_hot", SatSelectEncoding::OneHot),
            ("binary", SatSelectEncoding::Binary),
        ] {
            group.bench_with_input(BenchmarkId::new(label, name), &enc, |b, &enc| {
                b.iter(|| {
                    synthesize(
                        &bench.spec,
                        &SynthesisOptions::new(GateLibrary::mct(), Engine::Sat)
                            .with_sat_encoding(enc),
                    )
                    .expect("synthesizes")
                    .depth()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_var_order,
    bench_incremental,
    bench_sat_encoding
);
criterion_main!(benches);
