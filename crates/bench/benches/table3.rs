//! Criterion bench for **Table 3**: BDD synthesis under the extended gate
//! libraries. Larger |G| means more select variables per level; the bench
//! quantifies that cost on the quick subset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsyn_core::{synthesize, Engine, GateLibrary, SynthesisOptions};
use qsyn_revlogic::benchmarks;

const FAST: &[&str] = &["3_17", "rd32-v1", "decod24-v0"];

fn bench_libraries(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    for name in FAST {
        let bench = benchmarks::by_name(name).expect("known benchmark");
        for lib in [
            GateLibrary::mct(),
            GateLibrary::mct_mcf(),
            GateLibrary::mct_peres(),
            GateLibrary::all(),
        ] {
            group.bench_with_input(BenchmarkId::new(lib.label(), name), &lib, |b, &lib| {
                b.iter(|| {
                    let r = synthesize(
                        &bench.spec,
                        &SynthesisOptions::new(lib, Engine::Bdd).with_max_solutions(200_000),
                    )
                    .expect("synthesizes");
                    r.depth()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_libraries);
criterion_main!(benches);
