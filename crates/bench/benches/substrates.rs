//! Microbenchmarks of the substrates: BDD operations, CDCL solving and QBF
//! solving — the building blocks whose constants decide where the paper's
//! crossovers fall.

use criterion::{criterion_group, criterion_main, Criterion};
use qsyn_bdd::Manager;
use qsyn_qbf::{ExpansionSolver, QbfFormula, QdpllSolver, Quantifier};
use qsyn_sat::{CnfFormula, Lit, Solver};

/// n-queens as CNF — a classic CDCL workload.
fn queens_cnf(n: u32) -> CnfFormula {
    let var = |r: u32, c: u32| r * n + c;
    let mut f = CnfFormula::new(n * n);
    for r in 0..n {
        f.add_clause((0..n).map(|c| Lit::pos(var(r, c))));
        for c1 in 0..n {
            for c2 in (c1 + 1)..n {
                f.add_clause([Lit::neg(var(r, c1)), Lit::neg(var(r, c2))]);
            }
        }
    }
    for c in 0..n {
        for r1 in 0..n {
            for r2 in (r1 + 1)..n {
                f.add_clause([Lit::neg(var(r1, c)), Lit::neg(var(r2, c))]);
                let d = r2 - r1;
                if c + d < n {
                    f.add_clause([Lit::neg(var(r1, c)), Lit::neg(var(r2, c + d))]);
                }
                if c >= d {
                    f.add_clause([Lit::neg(var(r1, c)), Lit::neg(var(r2, c - d))]);
                }
            }
        }
    }
    f
}

fn bench_bdd_ops(c: &mut Criterion) {
    c.bench_function("bdd/build_16bit_adder_carry", |b| {
        b.iter(|| {
            // Carry chain of a 16-bit adder: classic BDD stress test.
            let mut m = Manager::new(32);
            let mut carry = m.zero();
            for i in 0..16 {
                let x = m.var(2 * i);
                let y = m.var(2 * i + 1);
                let xy = m.and(x, y);
                let xor = m.xor(x, y);
                let through = m.and(xor, carry);
                carry = m.or(xy, through);
            }
            assert!(m.node_count() > 16);
            m.node_count()
        })
    });
    c.bench_function("bdd/forall_quantification", |b| {
        let mut m = Manager::new(20);
        let mut f = m.one();
        for i in 0..10 {
            let x = m.var(i);
            let y = m.var(i + 10);
            let eq = m.xnor(x, y);
            f = m.and(f, eq);
        }
        let vars: Vec<u32> = (0..10).collect();
        b.iter(|| {
            m.clear_caches();
            m.forall(f, &vars)
        })
    });
}

fn bench_sat(c: &mut Criterion) {
    c.bench_function("sat/queens8_sat", |b| {
        let f = queens_cnf(8);
        b.iter(|| {
            let mut s = Solver::from_formula(&f);
            assert!(s.solve().is_sat());
        })
    });
    c.bench_function("sat/queens3_unsat", |b| {
        let f = queens_cnf(3);
        b.iter(|| {
            let mut s = Solver::from_formula(&f);
            assert!(!s.solve().is_sat());
        })
    });
}

fn bench_qbf(c: &mut Criterion) {
    // ∀x₁..x₆ ∃y₁..y₆ : yᵢ = xᵢ ⊕ x_{i+1 mod 6} — true, forces real search.
    let mut qbf = QbfFormula::new(12);
    qbf.add_block(Quantifier::Forall, 0..6);
    qbf.add_block(Quantifier::Exists, 6..12);
    for i in 0..6u32 {
        let x1 = i;
        let x2 = (i + 1) % 6;
        let y = 6 + i;
        qbf.add_clause([Lit::neg(y), Lit::pos(x1), Lit::pos(x2)]);
        qbf.add_clause([Lit::neg(y), Lit::neg(x1), Lit::neg(x2)]);
        qbf.add_clause([Lit::pos(y), Lit::neg(x1), Lit::pos(x2)]);
        qbf.add_clause([Lit::pos(y), Lit::pos(x1), Lit::neg(x2)]);
    }
    c.bench_function("qbf/qdpll_xor_game", |b| {
        b.iter(|| {
            let mut s = QdpllSolver::new(&qbf);
            assert!(s.solve());
        })
    });
    c.bench_function("qbf/expansion_xor_game", |b| {
        b.iter(|| {
            let mut s = ExpansionSolver::new(&qbf);
            assert!(s.solve());
        })
    });
}

criterion_group!(benches, bench_bdd_ops, bench_sat, bench_qbf);
criterion_main!(benches);
