//! Expansion-based QBF solving: eliminate universal variables by
//! Shannon expansion, then decide the remaining existential CNF with CDCL.
//!
//! `∀x Φ ≡ Φ[x=0] ∧ Φ[x=1]`, where existential variables *inner* to `x`
//! must be duplicated in one of the copies (their Skolem functions may
//! depend on `x`). Expanding innermost-first keeps the duplication scope
//! minimal. This is the "expand ∀, solve ∃ with SAT" family that skizzo's
//! symbolic skolemization [2, 3] belongs to.
//!
//! For the synthesis prefix `∃Y ∀X ∃A` this expands the `n` input variables
//! (duplicating only the Tseitin auxiliaries `A`), yielding `2^n` copies of
//! the cascade constraints — structurally the same growth as the row-wise
//! SAT encoding of \[9\], which is why the paper's BDD route wins.

use crate::formula::{QbfFormula, Quantifier};
use qsyn_sat::{CnfFormula, Lit, SolveResult, Solver};

/// Expansion-based QBF decision procedure; see the module docs.
pub struct ExpansionSolver {
    formula: QbfFormula,
    /// Conflict budget handed to the backend SAT solver, if any.
    budget: Option<u64>,
    /// Size of the expanded CNF after the last solve, for statistics.
    expanded_vars: u32,
    expanded_clauses: usize,
}

impl std::fmt::Debug for ExpansionSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExpansionSolver")
            .field("vars", &self.formula.num_vars())
            .finish_non_exhaustive()
    }
}

impl ExpansionSolver {
    /// Prepares a solver for `formula`.
    pub fn new(formula: &QbfFormula) -> ExpansionSolver {
        ExpansionSolver {
            formula: formula.clone(),
            budget: None,
            expanded_vars: 0,
            expanded_clauses: 0,
        }
    }

    /// Caps the conflicts of the backend SAT solve;
    /// [`solve_limited`](Self::solve_limited) returns `None` once exhausted.
    pub fn set_conflict_budget(&mut self, budget: u64) {
        self.budget = Some(budget);
    }

    /// Size `(vars, clauses)` of the expanded propositional CNF produced by
    /// the last solve call.
    pub fn expanded_size(&self) -> (u32, usize) {
        (self.expanded_vars, self.expanded_clauses)
    }

    /// Decides the formula.
    pub fn solve(&mut self) -> bool {
        self.solve_with_witness().is_some()
    }

    /// Fully expands the universal blocks and hands back the propositional
    /// CNF, for callers that want to drive the backend SAT solve themselves
    /// (e.g. in budget chunks with cancellation polls in between). The
    /// first `num_vars()` variables of the original formula keep their
    /// indices, so the prefix `model[..num_vars()]` of any model is the
    /// same witness [`solve_with_witness`](Self::solve_with_witness)
    /// returns. Also records [`expanded_size`](Self::expanded_size).
    pub fn expanded_cnf(&mut self) -> CnfFormula {
        let cnf = self.expand();
        self.expanded_vars = cnf.num_vars();
        self.expanded_clauses = cnf.len();
        cnf
    }

    /// Budgeted variant; `None` when the conflict budget is exhausted.
    /// `Some(result)` mirrors [`solve_with_witness`](Self::solve_with_witness).
    pub fn solve_limited(&mut self) -> Option<Option<Vec<bool>>> {
        let cnf = self.expanded_cnf();
        let mut solver = Solver::from_formula(&cnf);
        if let Some(b) = self.budget {
            solver.set_conflict_budget(b);
            match solver.solve_limited()? {
                SolveResult::Sat(model) => Some(Some(self.project_witness(&model))),
                SolveResult::Unsat => Some(None),
            }
        } else {
            match solver.solve() {
                SolveResult::Sat(model) => Some(Some(self.project_witness(&model))),
                SolveResult::Unsat => Some(None),
            }
        }
    }

    /// Decides the formula; on success returns an assignment to all
    /// variables **outside any universal scope** (free variables and the
    /// leading existential block) that witnesses satisfiability. Indexing
    /// follows the original formula's variables; entries for universally
    /// quantified or inner variables are reported as `false` and carry no
    /// meaning.
    pub fn solve_with_witness(&mut self) -> Option<Vec<bool>> {
        self.budget = None;
        self.solve_limited()
            .expect("unlimited solve cannot bail out")
    }

    fn project_witness(&self, model: &[bool]) -> Vec<bool> {
        // Original variables keep their indices in the expanded CNF; the
        // copies introduced by expansion live above them. Variables outside
        // any universal scope are never duplicated, so their model values
        // are a faithful witness.
        let n = self.formula.num_vars() as usize;
        model[..n].to_vec()
    }

    /// Fully expands all universal blocks, innermost-first.
    fn expand(&self) -> CnfFormula {
        let qmap = self.formula.quantifier_map();
        // Work on a mutable clause set plus a parallel "quantifier level"
        // table so fresh copies inherit their original's level.
        let mut clauses: Vec<Vec<Lit>> = self
            .formula
            .matrix()
            .clauses()
            .iter()
            .map(|c| c.lits().to_vec())
            .collect();
        let mut level: Vec<u32> = qmap.iter().map(|&(_, lvl)| lvl).collect();
        let mut quant: Vec<Quantifier> = qmap.iter().map(|&(q, _)| q).collect();
        let mut num_vars = self.formula.num_vars();

        // Innermost universal variable = max level among universals; repeat
        // until none remain.
        while let Some(u_level) = level
            .iter()
            .zip(&quant)
            .filter(|(_, q)| **q == Quantifier::Forall)
            .map(|(&lvl, _)| lvl)
            .max()
        {
            let u = level
                .iter()
                .zip(&quant)
                .position(|(&lvl, &q)| q == Quantifier::Forall && lvl == u_level)
                .expect("universal variable exists") as u32;
            // Existential variables strictly inner to u get copies in the
            // x=1 branch.
            let inner: Vec<u32> = (0..num_vars)
                .filter(|&v| quant[v as usize] == Quantifier::Exists && level[v as usize] > u_level)
                .collect();
            let mut copy_of = vec![None::<u32>; num_vars as usize];
            for &v in &inner {
                copy_of[v as usize] = Some(num_vars);
                level.push(level[v as usize]);
                quant.push(Quantifier::Exists);
                num_vars += 1;
            }
            let mut next: Vec<Vec<Lit>> = Vec::with_capacity(clauses.len() * 2);
            for c in &clauses {
                let mentions_u = c.iter().any(|l| l.var().0 == u);
                let mentions_inner = c.iter().any(|l| copy_of[l.var().index()].is_some());
                if !mentions_u && !mentions_inner {
                    next.push(c.clone());
                    continue;
                }
                // Branch u = 0: drop clauses containing ¬u, remove u literals.
                if !c.contains(&Lit::neg(u)) {
                    next.push(c.iter().filter(|l| l.var().0 != u).copied().collect());
                }
                // Branch u = 1: drop clauses containing u, remove ¬u,
                // rename inner existentials to their copies.
                if !c.contains(&Lit::pos(u)) {
                    next.push(
                        c.iter()
                            .filter(|l| l.var().0 != u)
                            .map(|l| match copy_of[l.var().index()] {
                                Some(cv) => Lit::new(cv, l.is_positive()),
                                None => *l,
                            })
                            .collect(),
                    );
                }
            }
            clauses = next;
            // u is now eliminated; mark it existential at an unused level so
            // it is skipped from further expansion (it no longer occurs).
            quant[u as usize] = Quantifier::Exists;
        }

        let mut cnf = CnfFormula::new(num_vars);
        for c in clauses {
            cnf.add_clause(c);
        }
        cnf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_clauses(q: &mut QbfFormula, a: u32, b: u32) {
        q.add_clause([Lit::pos(a), Lit::pos(b)]);
        q.add_clause([Lit::neg(a), Lit::neg(b)]);
    }

    #[test]
    fn forall_exists_xor_is_true() {
        let mut q = QbfFormula::new(2);
        q.add_block(Quantifier::Forall, [0]);
        q.add_block(Quantifier::Exists, [1]);
        xor_clauses(&mut q, 0, 1);
        assert!(ExpansionSolver::new(&q).solve());
    }

    #[test]
    fn exists_forall_xor_is_false() {
        let mut q = QbfFormula::new(2);
        q.add_block(Quantifier::Exists, [1]);
        q.add_block(Quantifier::Forall, [0]);
        xor_clauses(&mut q, 0, 1);
        assert!(!ExpansionSolver::new(&q).solve());
    }

    #[test]
    fn witness_projects_outer_block() {
        // ∃y ∀x (y ∨ x)(y ∨ ¬x): y must be 1.
        let mut q = QbfFormula::new(2);
        q.add_block(Quantifier::Exists, [0]);
        q.add_block(Quantifier::Forall, [1]);
        q.add_clause([Lit::pos(0), Lit::pos(1)]);
        q.add_clause([Lit::pos(0), Lit::neg(1)]);
        let w = ExpansionSolver::new(&q).solve_with_witness().unwrap();
        assert!(w[0]);
    }

    #[test]
    fn expansion_duplicates_only_inner_vars() {
        // ∃y ∀x ∃a: a = x ⊕ y, plus (a ∨ y). Expansion copies a once.
        let mut q = QbfFormula::new(3);
        q.add_block(Quantifier::Exists, [0]);
        q.add_block(Quantifier::Forall, [1]);
        q.add_block(Quantifier::Exists, [2]);
        // a = x ⊕ y  (4 clauses)
        q.add_clause([Lit::neg(2), Lit::pos(1), Lit::pos(0)]);
        q.add_clause([Lit::neg(2), Lit::neg(1), Lit::neg(0)]);
        q.add_clause([Lit::pos(2), Lit::neg(1), Lit::pos(0)]);
        q.add_clause([Lit::pos(2), Lit::pos(1), Lit::neg(0)]);
        q.add_clause([Lit::pos(2), Lit::pos(0)]);
        let mut s = ExpansionSolver::new(&q);
        let result = s.solve_with_witness();
        let (vars, _) = s.expanded_size();
        assert_eq!(vars, 4, "exactly one copy of `a` expected");
        // With y=1 every branch works: x=0 → a=1 (a∨y holds anyway).
        let w = result.expect("formula is true");
        assert!(w[0]);
    }

    #[test]
    fn two_universal_blocks() {
        // ∀x₁ ∃y ∀x₂ : (y ∨ x₂)(y ∨ ¬x₂) — y=1 works regardless of x₁.
        let mut q = QbfFormula::new(3);
        q.add_block(Quantifier::Forall, [0]);
        q.add_block(Quantifier::Exists, [1]);
        q.add_block(Quantifier::Forall, [2]);
        q.add_clause([Lit::pos(1), Lit::pos(2)]);
        q.add_clause([Lit::pos(1), Lit::neg(2)]);
        assert!(ExpansionSolver::new(&q).solve());
    }

    #[test]
    fn propositional_reduces_to_sat() {
        let mut q = QbfFormula::new(2);
        q.add_clause([Lit::pos(0)]);
        q.add_clause([Lit::neg(0), Lit::pos(1)]);
        let w = ExpansionSolver::new(&q).solve_with_witness().unwrap();
        assert!(w[0] && w[1]);
    }

    #[test]
    fn unsat_matrix_is_false() {
        let mut q = QbfFormula::new(1);
        q.add_block(Quantifier::Exists, [0]);
        q.add_clause([Lit::pos(0)]);
        q.add_clause([Lit::neg(0)]);
        assert!(!ExpansionSolver::new(&q).solve());
    }

    #[test]
    fn expanded_cnf_prefix_is_the_witness() {
        // ∃y ∀x (y ∨ x)(y ∨ ¬x): any model of the expansion sets y=1.
        let mut q = QbfFormula::new(2);
        q.add_block(Quantifier::Exists, [0]);
        q.add_block(Quantifier::Forall, [1]);
        q.add_clause([Lit::pos(0), Lit::pos(1)]);
        q.add_clause([Lit::pos(0), Lit::neg(1)]);
        let mut s = ExpansionSolver::new(&q);
        let cnf = s.expanded_cnf();
        assert_eq!(s.expanded_size(), (cnf.num_vars(), cnf.len()));
        match Solver::from_formula(&cnf).solve() {
            SolveResult::Sat(model) => assert!(model[0]),
            SolveResult::Unsat => panic!("formula is true"),
        }
    }

    #[test]
    fn budget_bails_out_or_completes() {
        let mut q = QbfFormula::new(2);
        q.add_block(Quantifier::Forall, [0]);
        q.add_block(Quantifier::Exists, [1]);
        xor_clauses(&mut q, 0, 1);
        let mut s = ExpansionSolver::new(&q);
        s.set_conflict_budget(1_000);
        // Tiny instance: completes within budget and agrees with solve().
        assert!(matches!(s.solve_limited(), Some(Some(_))));
    }
}
