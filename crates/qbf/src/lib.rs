//! Quantified Boolean formula (QBF) satisfiability.
//!
//! This crate plays the role of skizzo \[2\] in *"Quantified Synthesis of
//! Reversible Logic"* (Wille et al., DATE 2008): it decides prenex-CNF QBF
//! instances of the form the paper's Section 5.1 produces,
//! `∃Y ∀X ∃A . CNF(F_d = f)`.
//!
//! Two complete decision procedures are provided:
//!
//! * [`QdpllSolver`] — search-based QDPLL: branches in prefix order with
//!   unit propagation, **universal reduction** and pure-literal elimination.
//! * [`ExpansionSolver`] — expansion-based (the family skizzo's symbolic
//!   skolemization belongs to): universal variables are expanded
//!   innermost-first, duplicating inner existential variables, until a
//!   purely existential CNF remains, which is handed to the CDCL solver of
//!   [`qsyn_sat`]. This procedure also yields a **witness assignment** for
//!   the outermost existential block — exactly what the synthesis engine
//!   needs to reconstruct a circuit.
//!
//! # Example
//!
//! ```
//! use qsyn_qbf::{QbfFormula, Quantifier, ExpansionSolver, QdpllSolver};
//! use qsyn_sat::Lit;
//!
//! // ∃y ∀x . (y ∨ x) ∧ (y ∨ ¬x)  — true (pick y = 1).
//! let mut qbf = QbfFormula::new(2);
//! qbf.add_block(Quantifier::Exists, [0]);
//! qbf.add_block(Quantifier::Forall, [1]);
//! qbf.add_clause([Lit::pos(0), Lit::pos(1)]);
//! qbf.add_clause([Lit::pos(0), Lit::neg(1)]);
//!
//! assert!(QdpllSolver::new(&qbf).solve());
//! let witness = ExpansionSolver::new(&qbf).solve_with_witness().unwrap();
//! assert!(witness[0]); // y must be chosen true
//! ```

#![warn(missing_docs)]

mod expand;
mod formula;
pub mod qdimacs;
mod qdpll;

pub use expand::ExpansionSolver;
pub use formula::{QbfFormula, Quantifier};
pub use qdpll::QdpllSolver;

#[cfg(test)]
mod cross_tests;
