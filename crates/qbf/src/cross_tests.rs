//! Cross-checks: QDPLL vs expansion vs brute force vs a BDD evaluator, on
//! random prenex instances.

use crate::expand::ExpansionSolver;
use crate::formula::{QbfFormula, Quantifier};
use crate::qdpll::QdpllSolver;
use proptest::prelude::*;
use qsyn_sat::Lit;

/// Independent reference: evaluate the QBF with BDDs by building the matrix
/// and quantifying blocks innermost-first (free variables existentially
/// last).
fn bdd_eval(q: &QbfFormula) -> bool {
    let mut m = qsyn_bdd::Manager::new(q.num_vars());
    let mut matrix = m.one();
    for clause in q.matrix().clauses() {
        let mut cl = m.zero();
        for l in clause.lits() {
            let lit = m.literal(l.var().0, l.is_positive());
            cl = m.or(cl, lit);
        }
        matrix = m.and(matrix, cl);
    }
    for (quant, vars) in q.prefix().iter().rev() {
        matrix = match quant {
            Quantifier::Exists => m.exists(matrix, vars),
            Quantifier::Forall => m.forall(matrix, vars),
        };
    }
    let free = q.free_vars();
    matrix = m.exists(matrix, &free);
    matrix.is_one()
}

#[derive(Clone, Debug)]
struct RandomQbf {
    nvars: u32,
    block_pattern: Vec<(bool, u8)>, // (is_forall, size)
    clauses: Vec<Vec<(u32, bool)>>,
}

fn arb_qbf() -> impl Strategy<Value = RandomQbf> {
    (2u32..=7).prop_flat_map(|nvars| {
        let blocks = proptest::collection::vec((any::<bool>(), 1u8..=3), 1..=4);
        let clause = proptest::collection::vec((0..nvars, any::<bool>()), 1..=4);
        let clauses = proptest::collection::vec(clause, 1..=12);
        (blocks, clauses).prop_map(move |(block_pattern, clauses)| RandomQbf {
            nvars,
            block_pattern,
            clauses,
        })
    })
}

fn build(r: &RandomQbf) -> QbfFormula {
    let mut q = QbfFormula::new(r.nvars);
    let mut next = 0u32;
    for &(is_forall, size) in &r.block_pattern {
        let end = (next + u32::from(size)).min(r.nvars);
        let vars: Vec<u32> = (next..end).collect();
        next = end;
        let quant = if is_forall {
            Quantifier::Forall
        } else {
            Quantifier::Exists
        };
        q.add_block(quant, vars);
        if next == r.nvars {
            break;
        }
    }
    // Any leftover variables stay free.
    for c in &r.clauses {
        q.add_clause(c.iter().map(|&(v, s)| Lit::new(v, s)));
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn qdpll_agrees_with_brute_force(r in arb_qbf()) {
        let q = build(&r);
        prop_assert_eq!(QdpllSolver::new(&q).solve(), q.eval_brute_force());
    }

    #[test]
    fn expansion_agrees_with_brute_force(r in arb_qbf()) {
        let q = build(&r);
        prop_assert_eq!(ExpansionSolver::new(&q).solve(), q.eval_brute_force());
    }

    #[test]
    fn bdd_agrees_with_brute_force(r in arb_qbf()) {
        let q = build(&r);
        prop_assert_eq!(bdd_eval(&q), q.eval_brute_force());
    }

    #[test]
    fn all_three_solvers_agree(r in arb_qbf()) {
        let q = build(&r);
        let qdpll = QdpllSolver::new(&q).solve();
        let expansion = ExpansionSolver::new(&q).solve();
        let bdd = bdd_eval(&q);
        prop_assert_eq!(qdpll, expansion);
        prop_assert_eq!(qdpll, bdd);
    }

    #[test]
    fn expansion_witness_is_valid(r in arb_qbf()) {
        let q = build(&r);
        if let Some(w) = ExpansionSolver::new(&q).solve_with_witness() {
            // Substituting the witness for the outer variables (free + first
            // block if existential) must leave a true QBF over the rest.
            let outer: Vec<u32> = {
                let mut o = q.free_vars();
                if let Some((Quantifier::Exists, vars)) = q.prefix().first() {
                    o.extend(vars.iter().copied());
                }
                o
            };
            let mut fixed = QbfFormula::new(q.num_vars());
            for (quant, vars) in q.prefix() {
                let remaining: Vec<u32> =
                    vars.iter().copied().filter(|v| !outer.contains(v)).collect();
                fixed.add_block(*quant, remaining);
            }
            for c in q.matrix().clauses() {
                fixed.add_clause(c.lits().iter().copied());
            }
            for &v in &outer {
                fixed.add_clause([Lit::new(v, w[v as usize])]);
            }
            prop_assert!(fixed.eval_brute_force(), "witness fails");
        }
    }

    #[test]
    fn qdimacs_roundtrip_preserves_truth(r in arb_qbf()) {
        let q = build(&r);
        let text = crate::qdimacs::write_qdimacs(&q);
        let parsed = crate::qdimacs::parse_qdimacs(&text).unwrap();
        prop_assert_eq!(
            QdpllSolver::new(&parsed).solve(),
            QdpllSolver::new(&q).solve()
        );
    }
}
