//! QDIMACS reading and writing (the standard exchange format for
//! prenex-CNF QBF instances).

use crate::formula::{QbfFormula, Quantifier};
use qsyn_sat::Lit;

/// Error while parsing QDIMACS input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQdimacsError {
    /// 1-based line number where the problem was found.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseQdimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "qdimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseQdimacsError {}

/// Serializes a formula in QDIMACS format.
pub fn write_qdimacs(formula: &QbfFormula) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "p cnf {} {}\n",
        formula.num_vars(),
        formula.matrix().len()
    ));
    for (q, vars) in formula.prefix() {
        let tag = match q {
            Quantifier::Exists => 'e',
            Quantifier::Forall => 'a',
        };
        out.push(tag);
        for v in vars {
            out.push_str(&format!(" {}", v + 1));
        }
        out.push_str(" 0\n");
    }
    for c in formula.matrix().clauses() {
        for l in c.lits() {
            out.push_str(&format!("{l} "));
        }
        out.push_str("0\n");
    }
    out
}

/// Parses QDIMACS text.
///
/// # Errors
///
/// Returns [`ParseQdimacsError`] on malformed headers, quantifier lines
/// after the first clause, out-of-range variables, or unterminated lines.
pub fn parse_qdimacs(input: &str) -> Result<QbfFormula, ParseQdimacsError> {
    let mut formula: Option<QbfFormula> = None;
    let mut current: Vec<Lit> = Vec::new();
    let mut clauses_started = false;
    for (lineno, line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if formula.is_some() {
                return Err(ParseQdimacsError {
                    line: lineno,
                    message: "duplicate problem line".into(),
                });
            }
            let mut it = rest.split_whitespace();
            if it.next() != Some("cnf") {
                return Err(ParseQdimacsError {
                    line: lineno,
                    message: "expected `p cnf <vars> <clauses>`".into(),
                });
            }
            let nvars: u32 =
                it.next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ParseQdimacsError {
                        line: lineno,
                        message: "bad variable count".into(),
                    })?;
            formula = Some(QbfFormula::new(nvars));
            continue;
        }
        let f = formula.as_mut().ok_or_else(|| ParseQdimacsError {
            line: lineno,
            message: "content before problem line".into(),
        })?;
        let quantifier = match line.chars().next() {
            Some('e') => Some(Quantifier::Exists),
            Some('a') => Some(Quantifier::Forall),
            _ => None,
        };
        if let Some(q) = quantifier {
            if clauses_started {
                return Err(ParseQdimacsError {
                    line: lineno,
                    message: "quantifier line after clauses".into(),
                });
            }
            let mut vars = Vec::new();
            for tok in line[1..].split_whitespace() {
                let x: i64 = tok.parse().map_err(|_| ParseQdimacsError {
                    line: lineno,
                    message: format!("bad variable `{tok}`"),
                })?;
                if x == 0 {
                    break;
                }
                if x < 0 || x as u64 > u64::from(f.num_vars()) {
                    return Err(ParseQdimacsError {
                        line: lineno,
                        message: format!("variable {x} out of range"),
                    });
                }
                vars.push((x - 1) as u32);
            }
            f.add_block(q, vars);
            continue;
        }
        clauses_started = true;
        for tok in line.split_whitespace() {
            let x: i64 = tok.parse().map_err(|_| ParseQdimacsError {
                line: lineno,
                message: format!("bad literal `{tok}`"),
            })?;
            if x == 0 {
                f.add_clause(current.drain(..));
            } else {
                let var = x.unsigned_abs() - 1;
                if var >= u64::from(f.num_vars()) {
                    return Err(ParseQdimacsError {
                        line: lineno,
                        message: format!("variable {} out of range", x.abs()),
                    });
                }
                current.push(Lit::new(var as u32, x > 0));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseQdimacsError {
            line: input.lines().count(),
            message: "unterminated clause".into(),
        });
    }
    formula.ok_or(ParseQdimacsError {
        line: 0,
        message: "missing problem line".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut q = QbfFormula::new(3);
        q.add_block(Quantifier::Exists, [0]);
        q.add_block(Quantifier::Forall, [1, 2]);
        q.add_clause([Lit::pos(0), Lit::neg(1)]);
        q.add_clause([Lit::pos(2)]);
        let text = write_qdimacs(&q);
        let parsed = parse_qdimacs(&text).unwrap();
        assert_eq!(parsed, q);
    }

    #[test]
    fn parses_reference_instance() {
        let text = "c example\np cnf 3 2\ne 1 0\na 2 3 0\n1 -2 0\n-1 3 0\n";
        let q = parse_qdimacs(text).unwrap();
        assert_eq!(q.prefix().len(), 2);
        assert_eq!(q.prefix()[0], (Quantifier::Exists, vec![0]));
        assert_eq!(q.prefix()[1], (Quantifier::Forall, vec![1, 2]));
        assert_eq!(q.matrix().len(), 2);
    }

    #[test]
    fn rejects_quantifier_after_clause() {
        let text = "p cnf 2 1\n1 0\ne 2 0\n";
        let err = parse_qdimacs(text).unwrap_err();
        assert!(err.message.contains("after clauses"));
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(parse_qdimacs("p cnf 1 0\ne 2 0\n").is_err());
        assert!(parse_qdimacs("p cnf 1 1\n-5 0\n").is_err());
    }

    #[test]
    fn rejects_missing_header() {
        assert!(parse_qdimacs("e 1 0\n").is_err());
    }
}
