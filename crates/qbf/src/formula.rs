//! Prenex-CNF quantified Boolean formulas.

use qsyn_sat::{CnfFormula, Lit};

/// Quantifier kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Quantifier {
    /// Existential (`∃`).
    Exists,
    /// Universal (`∀`).
    Forall,
}

impl Quantifier {
    /// The dual quantifier.
    pub fn dual(self) -> Quantifier {
        match self {
            Quantifier::Exists => Quantifier::Forall,
            Quantifier::Forall => Quantifier::Exists,
        }
    }
}

impl std::fmt::Display for Quantifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Quantifier::Exists => write!(f, "∃"),
            Quantifier::Forall => write!(f, "∀"),
        }
    }
}

/// A QBF in prenex normal form: `Q₁V₁ … Q_tV_t . matrix` with the matrix in
/// CNF (Section 2.2 of the paper).
///
/// Variables of the matrix that appear in no block are *free* and treated
/// as outermost-existential by the solvers (the standard convention).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QbfFormula {
    prefix: Vec<(Quantifier, Vec<u32>)>,
    matrix: CnfFormula,
    bound: Vec<bool>,
}

impl QbfFormula {
    /// Creates a formula over `num_vars` variables with an empty prefix and
    /// matrix.
    pub fn new(num_vars: u32) -> QbfFormula {
        QbfFormula {
            prefix: Vec::new(),
            matrix: CnfFormula::new(num_vars),
            bound: vec![false; num_vars as usize],
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.matrix.num_vars()
    }

    /// Allocates a fresh (free) variable.
    pub fn new_var(&mut self) -> u32 {
        self.bound.push(false);
        self.matrix.new_var()
    }

    /// Appends a quantifier block (inner of all existing blocks). Adjacent
    /// blocks with the same quantifier are merged. Empty blocks are ignored.
    ///
    /// # Panics
    ///
    /// Panics if a variable is out of range or already bound.
    pub fn add_block<I: IntoIterator<Item = u32>>(&mut self, q: Quantifier, vars: I) {
        let vars: Vec<u32> = vars.into_iter().collect();
        if vars.is_empty() {
            return;
        }
        for &v in &vars {
            assert!(v < self.num_vars(), "variable {v} out of range");
            assert!(!self.bound[v as usize], "variable {v} already quantified");
            self.bound[v as usize] = true;
        }
        match self.prefix.last_mut() {
            Some((last_q, last_vars)) if *last_q == q => last_vars.extend(vars),
            _ => self.prefix.push((q, vars)),
        }
    }

    /// Adds a clause to the matrix (normalized; tautologies dropped).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.matrix.add_clause(lits);
    }

    /// The quantifier prefix, outermost block first.
    pub fn prefix(&self) -> &[(Quantifier, Vec<u32>)] {
        &self.prefix
    }

    /// The CNF matrix.
    pub fn matrix(&self) -> &CnfFormula {
        &self.matrix
    }

    /// `true` if `v` appears in some quantifier block.
    pub fn is_bound(&self, v: u32) -> bool {
        self.bound.get(v as usize).copied().unwrap_or(false)
    }

    /// Free variables (unbound), ascending.
    pub fn free_vars(&self) -> Vec<u32> {
        (0..self.num_vars())
            .filter(|&v| !self.is_bound(v))
            .collect()
    }

    /// Per-variable `(quantifier, block index)` with free variables mapped
    /// to an implicit outermost existential block `0`; bound blocks are
    /// shifted to `1..`. This is the normalized view the solvers work with.
    pub fn quantifier_map(&self) -> Vec<(Quantifier, u32)> {
        let mut map = vec![(Quantifier::Exists, 0u32); self.num_vars() as usize];
        for (i, (q, vars)) in self.prefix.iter().enumerate() {
            for &v in vars {
                map[v as usize] = (*q, i as u32 + 1);
            }
        }
        map
    }

    /// Variables in decision order: free variables first, then block by
    /// block in prefix order.
    pub fn decision_order(&self) -> Vec<u32> {
        let mut order = self.free_vars();
        for (_, vars) in &self.prefix {
            order.extend(vars.iter().copied());
        }
        order
    }

    /// Semantic truth of the formula by brute-force expansion — exponential,
    /// for testing and tiny instances only.
    ///
    /// # Panics
    ///
    /// Panics if the formula has more than 24 variables.
    pub fn eval_brute_force(&self) -> bool {
        assert!(self.num_vars() <= 24, "brute force limited to 24 variables");
        let order = self.decision_order();
        let qmap = self.quantifier_map();
        let mut assignment = vec![false; self.num_vars() as usize];
        self.brute(&order, &qmap, 0, &mut assignment)
    }

    fn brute(
        &self,
        order: &[u32],
        qmap: &[(Quantifier, u32)],
        pos: usize,
        assignment: &mut Vec<bool>,
    ) -> bool {
        if pos == order.len() {
            return self.matrix.eval(assignment);
        }
        let v = order[pos] as usize;
        let results = [false, true].map(|val| {
            assignment[v] = val;
            self.brute(order, qmap, pos + 1, assignment)
        });
        match qmap[v].0 {
            Quantifier::Exists => results[0] || results[1],
            Quantifier::Forall => results[0] && results[1],
        }
    }
}

impl std::fmt::Display for QbfFormula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (q, vars) in &self.prefix {
            write!(f, "{q}{{")?;
            for (i, v) in vars.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", v + 1)?;
            }
            write!(f, "}} ")?;
        }
        write!(f, ". {} clauses", self.matrix.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_merge_when_adjacent_same_quantifier() {
        let mut q = QbfFormula::new(4);
        q.add_block(Quantifier::Exists, [0]);
        q.add_block(Quantifier::Exists, [1]);
        q.add_block(Quantifier::Forall, [2]);
        assert_eq!(q.prefix().len(), 2);
        assert_eq!(q.prefix()[0].1, vec![0, 1]);
    }

    #[test]
    fn empty_blocks_are_ignored() {
        let mut q = QbfFormula::new(2);
        q.add_block(Quantifier::Forall, []);
        assert!(q.prefix().is_empty());
    }

    #[test]
    #[should_panic(expected = "already quantified")]
    fn double_binding_panics() {
        let mut q = QbfFormula::new(2);
        q.add_block(Quantifier::Exists, [0]);
        q.add_block(Quantifier::Forall, [0]);
    }

    #[test]
    fn free_vars_and_quantifier_map() {
        let mut q = QbfFormula::new(3);
        q.add_block(Quantifier::Forall, [1]);
        assert_eq!(q.free_vars(), vec![0, 2]);
        let map = q.quantifier_map();
        assert_eq!(map[0], (Quantifier::Exists, 0));
        assert_eq!(map[1], (Quantifier::Forall, 1));
        assert_eq!(map[2], (Quantifier::Exists, 0));
        assert_eq!(q.decision_order(), vec![0, 2, 1]);
    }

    #[test]
    fn brute_force_on_simple_formulas() {
        use qsyn_sat::Lit;
        // ∀x ∃y (x ⊕ y) — true: y = ¬x.
        let mut q = QbfFormula::new(2);
        q.add_block(Quantifier::Forall, [0]);
        q.add_block(Quantifier::Exists, [1]);
        q.add_clause([Lit::pos(0), Lit::pos(1)]);
        q.add_clause([Lit::neg(0), Lit::neg(1)]);
        assert!(q.eval_brute_force());

        // ∃y ∀x (x ⊕ y) — false.
        let mut q2 = QbfFormula::new(2);
        q2.add_block(Quantifier::Exists, [1]);
        q2.add_block(Quantifier::Forall, [0]);
        q2.add_clause([Lit::pos(0), Lit::pos(1)]);
        q2.add_clause([Lit::neg(0), Lit::neg(1)]);
        assert!(!q2.eval_brute_force());
    }

    #[test]
    fn quantifier_dual() {
        assert_eq!(Quantifier::Exists.dual(), Quantifier::Forall);
        assert_eq!(Quantifier::Forall.dual(), Quantifier::Exists);
    }

    #[test]
    fn display_renders_prefix() {
        let mut q = QbfFormula::new(2);
        q.add_block(Quantifier::Exists, [0]);
        q.add_block(Quantifier::Forall, [1]);
        let s = q.to_string();
        assert!(s.contains('∃') && s.contains('∀'));
    }
}
