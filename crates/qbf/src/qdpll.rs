//! Search-based QDPLL: DPLL branching in prefix order with unit
//! propagation, universal reduction and pure-literal elimination.
//!
//! Complete but exponential — this mirrors the behaviour the paper observes
//! for general-purpose QBF search on the synthesis encoding ("the
//! performance of the QBF solver approach is low"). The expansion solver in
//! [`crate::ExpansionSolver`] is the faster alternative.

use crate::formula::{QbfFormula, Quantifier};
use qsyn_sat::Lit;

/// Search-based QBF decision procedure; see the module docs.
pub struct QdpllSolver {
    clauses: Vec<Vec<Lit>>,
    /// `(quantifier, block)` per variable; free variables are block 0 ∃.
    qmap: Vec<(Quantifier, u32)>,
    /// Variables in decision order (outermost first).
    order: Vec<u32>,
    assign: Vec<Option<bool>>,
    /// Search statistics: decisions made.
    decisions: u64,
    /// Optional decision budget for bail-out.
    budget: Option<u64>,
}

impl std::fmt::Debug for QdpllSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QdpllSolver")
            .field("vars", &self.qmap.len())
            .field("clauses", &self.clauses.len())
            .finish_non_exhaustive()
    }
}

/// Result of simplification at a search node.
enum Status {
    /// All clauses satisfied.
    Sat,
    /// Some clause cannot be satisfied (after universal reduction).
    Conflict,
    /// Literal forced (existential unit or pure literal).
    Forced(Lit),
    /// No simplification applies; branch.
    Branch,
}

impl QdpllSolver {
    /// Prepares a solver for `formula`.
    pub fn new(formula: &QbfFormula) -> QdpllSolver {
        QdpllSolver {
            clauses: formula
                .matrix()
                .clauses()
                .iter()
                .map(|c| c.lits().to_vec())
                .collect(),
            qmap: formula.quantifier_map(),
            order: formula.decision_order(),
            assign: vec![None; formula.num_vars() as usize],
            decisions: 0,
            budget: None,
        }
    }

    /// Caps the number of decisions; [`solve_limited`](Self::solve_limited)
    /// returns `None` once exhausted.
    pub fn set_decision_budget(&mut self, budget: u64) {
        self.budget = Some(budget);
    }

    /// Decides the formula. `true` = satisfiable (valid).
    pub fn solve(&mut self) -> bool {
        self.budget = None;
        self.search().expect("unlimited search cannot bail out")
    }

    /// Budgeted variant; `None` when the decision budget is exhausted.
    pub fn solve_limited(&mut self) -> Option<bool> {
        self.search()
    }

    /// Number of decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    fn search(&mut self) -> Option<bool> {
        let mut trail: Vec<u32> = Vec::new();
        let result = loop {
            match self.simplify() {
                Status::Sat => break true,
                Status::Conflict => break false,
                Status::Forced(l) => {
                    self.assign[l.var().index()] = Some(l.is_positive());
                    trail.push(l.var().0);
                }
                Status::Branch => {
                    let Some(&v) = self
                        .order
                        .iter()
                        .find(|&&v| self.assign[v as usize].is_none())
                    else {
                        // Fully assigned and no conflict: matrix satisfied.
                        break true;
                    };
                    if let Some(b) = self.budget {
                        if self.decisions >= b {
                            self.unwind(&trail);
                            return None;
                        }
                    }
                    self.decisions += 1;
                    let quant = self.qmap[v as usize].0;
                    match self.branch(v, quant) {
                        Some(combined) => break combined,
                        None => {
                            self.unwind(&trail);
                            return None;
                        }
                    }
                }
            }
        };
        self.unwind(&trail);
        Some(result)
    }

    fn branch(&mut self, v: u32, quant: Quantifier) -> Option<bool> {
        let mut outcome = match quant {
            Quantifier::Exists => false,
            Quantifier::Forall => true,
        };
        for val in [false, true] {
            self.assign[v as usize] = Some(val);
            let sub = self.search();
            self.assign[v as usize] = None;
            let sub = sub?;
            match quant {
                Quantifier::Exists => {
                    outcome |= sub;
                    if outcome {
                        break;
                    }
                }
                Quantifier::Forall => {
                    outcome &= sub;
                    if !outcome {
                        break;
                    }
                }
            }
        }
        Some(outcome)
    }

    fn unwind(&mut self, trail: &[u32]) {
        for &v in trail {
            self.assign[v as usize] = None;
        }
    }

    /// One pass of clause analysis: detects satisfaction, conflicts (with
    /// universal reduction), existential units and pure literals.
    fn simplify(&self) -> Status {
        let nvars = self.assign.len();
        // Polarity occurrence bits for pure-literal detection, counted over
        // unsatisfied clauses only.
        let mut pos_occ = vec![false; nvars];
        let mut neg_occ = vec![false; nvars];
        let mut all_satisfied = true;
        for clause in &self.clauses {
            let mut satisfied = false;
            let mut unassigned: Vec<Lit> = Vec::new();
            for &l in clause {
                match self.assign[l.var().index()] {
                    Some(val) if l.apply(val) => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => unassigned.push(l),
                }
            }
            if satisfied {
                continue;
            }
            all_satisfied = false;
            // Universal reduction: a universal literal is kept only if an
            // existential literal with a strictly larger (inner) block
            // remains in the clause.
            let max_e_level = unassigned
                .iter()
                .filter(|l| self.qmap[l.var().index()].0 == Quantifier::Exists)
                .map(|l| self.qmap[l.var().index()].1)
                .max();
            let effective: Vec<Lit> = unassigned
                .iter()
                .copied()
                .filter(|l| {
                    let (q, lvl) = self.qmap[l.var().index()];
                    match q {
                        Quantifier::Exists => true,
                        Quantifier::Forall => max_e_level.is_some_and(|e| lvl < e),
                    }
                })
                .collect();
            if effective.is_empty() {
                return Status::Conflict;
            }
            if effective.len() == 1 {
                debug_assert_eq!(self.qmap[effective[0].var().index()].0, Quantifier::Exists);
                return Status::Forced(effective[0]);
            }
            for &l in &unassigned {
                if l.is_positive() {
                    pos_occ[l.var().index()] = true;
                } else {
                    neg_occ[l.var().index()] = true;
                }
            }
        }
        if all_satisfied {
            return Status::Sat;
        }
        // Pure literals: existential set to satisfy, universal to falsify.
        for v in 0..nvars {
            if self.assign[v].is_some() {
                continue;
            }
            let (pos, neg) = (pos_occ[v], neg_occ[v]);
            if pos == neg {
                continue; // both polarities or no occurrence
            }
            let lit_true_polarity = pos; // the polarity that occurs
            let (q, _) = self.qmap[v];
            let value = match q {
                Quantifier::Exists => lit_true_polarity,
                Quantifier::Forall => !lit_true_polarity,
            };
            return Status::Forced(Lit::new(v as u32, value));
        }
        Status::Branch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_sat::Lit;

    fn xor_clauses(q: &mut QbfFormula, a: u32, b: u32) {
        // clauses for a ⊕ b = 1
        q.add_clause([Lit::pos(a), Lit::pos(b)]);
        q.add_clause([Lit::neg(a), Lit::neg(b)]);
    }

    #[test]
    fn forall_exists_xor_is_true() {
        let mut q = QbfFormula::new(2);
        q.add_block(Quantifier::Forall, [0]);
        q.add_block(Quantifier::Exists, [1]);
        xor_clauses(&mut q, 0, 1);
        assert!(QdpllSolver::new(&q).solve());
    }

    #[test]
    fn exists_forall_xor_is_false() {
        let mut q = QbfFormula::new(2);
        q.add_block(Quantifier::Exists, [1]);
        q.add_block(Quantifier::Forall, [0]);
        xor_clauses(&mut q, 0, 1);
        assert!(!QdpllSolver::new(&q).solve());
    }

    #[test]
    fn propositional_formulas_reduce_to_sat() {
        // Free variables only: behaves like SAT.
        let mut q = QbfFormula::new(2);
        q.add_clause([Lit::pos(0), Lit::pos(1)]);
        q.add_clause([Lit::neg(0)]);
        assert!(QdpllSolver::new(&q).solve());
        q.add_clause([Lit::neg(1)]);
        assert!(!QdpllSolver::new(&q).solve());
    }

    #[test]
    fn empty_matrix_is_valid() {
        let mut q = QbfFormula::new(1);
        q.add_block(Quantifier::Forall, [0]);
        assert!(QdpllSolver::new(&q).solve());
    }

    #[test]
    fn universal_unit_clause_is_false() {
        // ∀x (x) — false.
        let mut q = QbfFormula::new(1);
        q.add_block(Quantifier::Forall, [0]);
        q.add_clause([Lit::pos(0)]);
        assert!(!QdpllSolver::new(&q).solve());
    }

    #[test]
    fn universal_reduction_drops_trailing_universals() {
        // ∃e ∀u (e ∨ u): reduces to ∃e (e) — true.
        let mut q = QbfFormula::new(2);
        q.add_block(Quantifier::Exists, [0]);
        q.add_block(Quantifier::Forall, [1]);
        q.add_clause([Lit::pos(0), Lit::pos(1)]);
        assert!(QdpllSolver::new(&q).solve());
        // ∀u ∃e clause (u) alone — false even with unrelated e.
        let mut q2 = QbfFormula::new(2);
        q2.add_block(Quantifier::Forall, [0]);
        q2.add_block(Quantifier::Exists, [1]);
        q2.add_clause([Lit::pos(0)]);
        assert!(!QdpllSolver::new(&q2).solve());
    }

    #[test]
    fn two_level_game_formula() {
        // ∀x₁ ∃y₁ ∀x₂ ∃y₂ : y₁ = x₁ and y₂ = x₁ ⊕ x₂.
        // vars: x1=0, y1=1, x2=2, y2=3.
        let mut q = QbfFormula::new(4);
        q.add_block(Quantifier::Forall, [0]);
        q.add_block(Quantifier::Exists, [1]);
        q.add_block(Quantifier::Forall, [2]);
        q.add_block(Quantifier::Exists, [3]);
        // y1 = x1
        q.add_clause([Lit::neg(0), Lit::pos(1)]);
        q.add_clause([Lit::pos(0), Lit::neg(1)]);
        // y2 = x1 ⊕ x2: encode y2 ⊕ (x1 ⊕ x2) = 0 → 4 clauses.
        q.add_clause([Lit::pos(3), Lit::neg(0), Lit::pos(2)]);
        q.add_clause([Lit::pos(3), Lit::pos(0), Lit::neg(2)]);
        q.add_clause([Lit::neg(3), Lit::pos(0), Lit::pos(2)]);
        q.add_clause([Lit::neg(3), Lit::neg(0), Lit::neg(2)]);
        assert!(QdpllSolver::new(&q).solve());

        // Swapping y1's block before x1 makes it false (y1 can no longer
        // depend on x1).
        let mut q2 = QbfFormula::new(4);
        q2.add_block(Quantifier::Exists, [1]);
        q2.add_block(Quantifier::Forall, [0, 2]);
        q2.add_block(Quantifier::Exists, [3]);
        q2.add_clause([Lit::neg(0), Lit::pos(1)]);
        q2.add_clause([Lit::pos(0), Lit::neg(1)]);
        assert!(!QdpllSolver::new(&q2).solve());
    }

    #[test]
    fn decision_budget_bails_out() {
        // A formula requiring at least one decision.
        let mut q = QbfFormula::new(3);
        q.add_block(Quantifier::Exists, [0, 1, 2]);
        q.add_clause([Lit::pos(0), Lit::pos(1), Lit::pos(2)]);
        q.add_clause([Lit::neg(0), Lit::pos(1), Lit::pos(2)]);
        q.add_clause([Lit::pos(0), Lit::neg(1), Lit::pos(2)]);
        q.add_clause([Lit::pos(0), Lit::pos(1), Lit::neg(2)]);
        q.add_clause([Lit::neg(0), Lit::neg(1), Lit::pos(2)]);
        let mut s = QdpllSolver::new(&q);
        s.set_decision_budget(0);
        assert_eq!(s.solve_limited(), None);
    }

    #[test]
    fn solver_is_reusable() {
        let mut q = QbfFormula::new(2);
        q.add_block(Quantifier::Forall, [0]);
        q.add_block(Quantifier::Exists, [1]);
        xor_clauses(&mut q, 0, 1);
        let mut s = QdpllSolver::new(&q);
        assert!(s.solve());
        assert!(s.solve());
    }
}
