//! The paper's benchmark functions (Tables 1–3), re-derived or substituted.
//!
//! The original evaluation uses RevLib \[23\], an online resource. Functions
//! with a public mathematical definition (`3_17`, `4_49`, `hwb4`,
//! `graycode6`, `rd32`, `decod24`, `4mod5`) are re-implemented from that
//! definition. The `mod5d1`/`mod5d2`/`mod5mils` and `alu` families are
//! **substituted** by deterministic arithmetic functions of matching line
//! count and comparable synthesis hardness — see `DESIGN.md` §4. Absolute
//! depths may differ from the paper's; `EXPERIMENTS.md` records measured
//! values.

use crate::embedding::Embedding;
use crate::permutation::Permutation;
use crate::spec::Spec;

/// Whether a benchmark is completely or incompletely specified (the two
/// halves of the paper's tables).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BenchmarkKind {
    /// Every output bit specified (a permutation).
    Complete,
    /// Don't-care outputs present (embedded irreversible function).
    Incomplete,
}

/// A named benchmark with its specification.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// RevLib-style name.
    pub name: &'static str,
    /// The function to synthesize.
    pub spec: Spec,
    /// Completely vs incompletely specified.
    pub kind: BenchmarkKind,
}

/// The full evaluation suite in the paper's table order.
pub fn suite() -> Vec<Benchmark> {
    let complete = [
        ("mod5mils", spec_mod5mils()),
        ("graycode6", spec_graycode6()),
        ("3_17", spec_3_17()),
        ("mod5d1", spec_mod5d1()),
        ("mod5d2", spec_mod5d2()),
        ("hwb4", spec_hwb4()),
        ("4_49", spec_4_49()),
    ];
    let incomplete = [
        ("rd32-v0", spec_rd32_v0()),
        ("rd32-v1", spec_rd32_v1()),
        ("mod5-v0", spec_4mod5_v0()),
        ("mod5-v1", spec_4mod5_v1()),
        ("decod24-v0", spec_decod24(0)),
        ("decod24-v1", spec_decod24(1)),
        ("decod24-v2", spec_decod24(2)),
        ("decod24-v3", spec_decod24(3)),
        ("alu-v0", spec_alu(0)),
        ("alu-v1", spec_alu(1)),
        ("alu-v2", spec_alu(2)),
        ("alu-v3", spec_alu(3)),
    ];
    complete
        .into_iter()
        .map(|(name, spec)| Benchmark {
            name,
            spec: spec.with_name(name),
            kind: BenchmarkKind::Complete,
        })
        .chain(incomplete.into_iter().map(|(name, spec)| Benchmark {
            name,
            spec: spec.with_name(name),
            kind: BenchmarkKind::Incomplete,
        }))
        .collect()
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    suite().into_iter().find(|b| b.name == name)
}

// ---------------------------------------------------------------------
// Completely specified functions.
// ---------------------------------------------------------------------

/// The canonical 3-line benchmark `3_17` (the "hardest" 3-variable
/// permutation of Miller/Maslov/Dueck; minimal MCT depth 6).
pub fn spec_3_17() -> Spec {
    Spec::from_permutation(&Permutation::from_map(3, vec![7, 1, 4, 3, 0, 2, 6, 5]))
}

/// The 4-line benchmark `4_49` as commonly reproduced in the exact
/// synthesis literature.
pub fn spec_4_49() -> Spec {
    Spec::from_permutation(&Permutation::from_map(
        4,
        vec![15, 1, 12, 3, 5, 6, 8, 7, 0, 10, 13, 9, 2, 4, 14, 11],
    ))
}

/// Hidden-weighted-bit function on `n` lines: the input vector rotated left
/// by its Hamming weight. Weight is rotation-invariant, so this is a
/// bijection.
///
/// # Panics
///
/// Panics if `n` is 0 or greater than 16.
pub fn hwb(n: u32) -> Permutation {
    assert!((1..=16).contains(&n), "line count out of range");
    Permutation::from_fn(n, |v| {
        let w = v.count_ones() % n;
        let mask = (1u32 << n) - 1;
        ((v << w) | (v >> (n - w))) & mask
    })
}

/// `hwb4`, the paper's hardest MCT instance (depth 11 there).
pub fn spec_hwb4() -> Spec {
    Spec::from_permutation(&hwb(4))
}

/// Binary-to-Gray-code converter on `n` lines: `gᵢ = bᵢ ⊕ bᵢ₊₁`, top bit
/// unchanged. Realizable with `n − 1` CNOTs.
///
/// # Panics
///
/// Panics if `n` is 0 or greater than 16.
pub fn graycode(n: u32) -> Permutation {
    assert!((1..=16).contains(&n), "line count out of range");
    Permutation::from_fn(n, |v| v ^ (v >> 1))
}

/// `graycode6` (6 lines, minimal MCT depth 5).
pub fn spec_graycode6() -> Spec {
    Spec::from_permutation(&graycode(6))
}

/// Substitute for RevLib's `mod5mils`: the +1 counter on 5 lines
/// (minimal MCT depth exactly 5 — one carry gate per line).
pub fn spec_mod5mils() -> Spec {
    Spec::from_permutation(&Permutation::from_fn(5, |v| (v + 1) & 0x1f))
}

/// Substitute for RevLib's `mod5d1`: multiply by 5 modulo 32 (5 is odd, so
/// this is a bijection; an in-place MCT realization with 7 gates exists).
pub fn spec_mod5d1() -> Spec {
    Spec::from_permutation(&Permutation::from_fn(5, |v| (v * 5) & 0x1f))
}

/// Substitute for RevLib's `mod5d2`: add 5 modulo 32 (an 8-gate MCT
/// realization exists: +4 on the upper bits, then +1).
pub fn spec_mod5d2() -> Spec {
    Spec::from_permutation(&Permutation::from_fn(5, |v| (v + 5) & 0x1f))
}

// ---------------------------------------------------------------------
// Incompletely specified functions (embedded irreversible functions).
// ---------------------------------------------------------------------

/// Weight of the 3 input bits as a 2-bit number `(carry, sum)`.
fn rd32_function(args: u32) -> u32 {
    args.count_ones()
}

/// `rd32-v0`: inputs on lines 1–3, constant 0 on line 4; sum on line 3,
/// carry on line 4.
pub fn spec_rd32_v0() -> Spec {
    Embedding {
        lines: 4,
        input_lines: vec![0, 1, 2],
        constants: vec![(3, false)],
        output_lines: vec![2, 3],
    }
    .embed(rd32_function)
    .expect("rd32-v0 embedding is realizable")
}

/// `rd32-v1`: same function, outputs swapped (carry on line 3, sum on
/// line 4) — a different embedding with different synthesis hardness.
pub fn spec_rd32_v1() -> Spec {
    Embedding {
        lines: 4,
        input_lines: vec![0, 1, 2],
        constants: vec![(3, false)],
        output_lines: vec![3, 2],
    }
    .embed(rd32_function)
    .expect("rd32-v1 embedding is realizable")
}

/// `f(x) = 1` iff the 4-bit input is divisible by 5 (i.e. `x ∈ {0, 5, 10, 15}`).
fn mod5_predicate(args: u32) -> u32 {
    u32::from(args.is_multiple_of(5))
}

/// `mod5-v0` (RevLib `4mod5-v0`): 4 inputs on lines 1–4, constant 0 on
/// line 5 carrying the output.
pub fn spec_4mod5_v0() -> Spec {
    Embedding {
        lines: 5,
        input_lines: vec![0, 1, 2, 3],
        constants: vec![(4, false)],
        output_lines: vec![4],
    }
    .embed(mod5_predicate)
    .expect("4mod5-v0 embedding is realizable")
}

/// `mod5-v1`: same predicate with the ancilla initialized to 1 — the
/// synthesized circuit must absorb the inverted constant.
pub fn spec_4mod5_v1() -> Spec {
    Embedding {
        lines: 5,
        input_lines: vec![0, 1, 2, 3],
        constants: vec![(4, true)],
        output_lines: vec![4],
    }
    .embed(mod5_predicate)
    .expect("4mod5-v1 embedding is realizable")
}

/// `decod24-v0..v3`: 2-to-4 one-hot decoder of inputs `a b` (lines 1–2)
/// onto all four lines; lines 3–4 enter as constants whose values
/// distinguish the four variants (`v0`: 00, `v1`: 10, `v2`: 01, `v3`: 11).
///
/// # Panics
///
/// Panics if `variant >= 4`.
pub fn spec_decod24(variant: u32) -> Spec {
    assert!(variant < 4, "decod24 has variants 0..=3");
    Embedding {
        lines: 4,
        input_lines: vec![0, 1],
        constants: vec![(2, variant & 1 == 1), (3, variant & 2 == 2)],
        output_lines: vec![0, 1, 2, 3],
    }
    .embed(|ab| 1 << ab)
    .expect("decod24 embedding is realizable")
}

/// `alu-v0..v3`: one-output ALU on 5 lines. Select bits `s₁ s₀` on lines
/// 1–2 pick one of four two-input operations applied to `a b` (lines 3–4);
/// the result lands on line 5 (constant 0 in). The four variants use
/// different operation tables.
///
/// # Panics
///
/// Panics if `variant >= 4`.
pub fn spec_alu(variant: u32) -> Spec {
    assert!(variant < 4, "alu has variants 0..=3");
    let ops: [fn(bool, bool) -> bool; 4] = match variant {
        0 => [|a, b| a && b, |a, b| a || b, |a, b| a != b, |a, _| !a],
        1 => [|a, b| a != b, |a, b| a && b, |_, b| !b, |a, b| a || b],
        2 => [|a, b| a || b, |a, _| !a, |a, b| a && b, |a, b| a != b],
        _ => [
            |a, b| !(a && b),
            |a, b| a != b,
            |a, b| a || b,
            |a, b| a && b,
        ],
    };
    Embedding {
        lines: 5,
        input_lines: vec![0, 1, 2, 3],
        constants: vec![(4, false)],
        output_lines: vec![4],
    }
    .embed(move |args| {
        let s = args & 0b11;
        let a = (args >> 2) & 1 == 1;
        let b = (args >> 3) & 1 == 1;
        u32::from(ops[s as usize](a, b))
    })
    .expect("alu embedding is realizable")
}

/// The +1 counter on `n` lines (minimal MCT depth exactly `n`: one carry
/// gate per line). Parameterized generator behind [`spec_mod5mils`].
///
/// # Panics
///
/// Panics if `n` is 0 or greater than 16.
pub fn increment(n: u32) -> Permutation {
    assert!((1..=16).contains(&n), "line count out of range");
    let mask = (1u32 << n) - 1;
    Permutation::from_fn(n, |v| (v + 1) & mask)
}

/// The `n`-line Toffoli benchmark (`tof_n`): one MCT gate with `n − 1`
/// controls — trivially depth 1 but with the widest single gate.
///
/// # Panics
///
/// Panics if `n` is 0 or greater than 16.
pub fn tof(n: u32) -> Permutation {
    assert!((1..=16).contains(&n), "line count out of range");
    let controls = (1u32 << (n - 1)) - 1; // lines 0..n-1
    Permutation::from_fn(n, |v| {
        if v & controls == controls {
            v ^ (1 << (n - 1))
        } else {
            v
        }
    })
}

/// A deterministic pseudo-random *incompletely specified* function:
/// starts from [`random_permutation`] (so it is always realizable) and
/// drops each output-bit constraint with probability
/// `1 − care_permille/1000`.
///
/// # Panics
///
/// Panics if `lines` is out of range or `care_permille > 1000`.
pub fn random_incomplete_spec(lines: u32, seed: u64, care_permille: u32) -> Spec {
    assert!(care_permille <= 1000, "care density is per-mille");
    let base = random_permutation(lines, seed);
    let mut state = seed ^ 0xdead_beef_cafe_f00d;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let rows = (0..1u32 << lines)
        .map(|i| {
            let value = base.image(i);
            let mut care = 0u32;
            for l in 0..lines {
                if (next() % 1000) < u64::from(care_permille) {
                    care |= 1 << l;
                }
            }
            crate::spec::SpecRow {
                value: value & care,
                care,
            }
        })
        .collect();
    Spec::new_incomplete(lines, rows).expect("relaxation of a bijection is realizable")
}

/// Deterministic pseudo-random reversible function, for workload
/// generation (Fisher–Yates over a splitmix64 stream).
///
/// # Panics
///
/// Panics if `lines` is 0 or greater than 16.
pub fn random_permutation(lines: u32, seed: u64) -> Permutation {
    assert!((1..=16).contains(&lines), "line count out of range");
    let mut state = seed;
    let mut next = move || {
        // splitmix64
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut map: Vec<u32> = (0..1u32 << lines).collect();
    for i in (1..map.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        map.swap(i, j);
    }
    Permutation::from_map(lines, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Spec;

    #[test]
    fn suite_has_the_papers_19_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 19);
        assert_eq!(
            s.iter()
                .filter(|b| b.kind == BenchmarkKind::Complete)
                .count(),
            7
        );
        for b in &s {
            assert_eq!(b.spec.name(), b.name);
        }
    }

    #[test]
    fn by_name_finds_benchmarks() {
        assert!(by_name("hwb4").is_some());
        assert!(by_name("alu-v2").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn complete_benchmarks_are_bijections() {
        for b in suite() {
            if b.kind == BenchmarkKind::Complete {
                let p = b
                    .spec
                    .as_permutation()
                    .unwrap_or_else(|| panic!("{} should be a complete bijection", b.name));
                assert!(p.is_bijective());
            } else {
                assert!(!b.spec.is_complete(), "{} should have don't-cares", b.name);
            }
        }
    }

    #[test]
    fn spec_3_17_is_an_involution_free_permutation() {
        let p = spec_3_17().as_permutation().unwrap();
        assert!(!p.is_identity());
        assert_eq!(p.image(0), 7);
        assert_eq!(p.image(4), 0);
    }

    #[test]
    fn hwb_rotates_by_weight() {
        let p = hwb(4);
        // weight(0b0011)=2 → rotate left 2 → 0b1100.
        assert_eq!(p.image(0b0011), 0b1100);
        // weight(0b0001)=1 → 0b0010.
        assert_eq!(p.image(0b0001), 0b0010);
        // weight 0 and weight n fixpoints.
        assert_eq!(p.image(0), 0);
        assert_eq!(p.image(0xf), 0xf);
        assert!(p.is_bijective());
        assert!(hwb(5).is_bijective());
    }

    #[test]
    fn graycode_matches_closed_form() {
        let p = graycode(6);
        for v in 0..64 {
            assert_eq!(p.image(v), v ^ (v >> 1));
        }
    }

    #[test]
    fn mod5_family_are_bijections_with_expected_action() {
        assert_eq!(spec_mod5mils().as_permutation().unwrap().image(31), 0);
        assert_eq!(spec_mod5d1().as_permutation().unwrap().image(7), 3); // 35 mod 32
        assert_eq!(spec_mod5d2().as_permutation().unwrap().image(30), 3); // 35 mod 32
    }

    #[test]
    fn rd32_counts_bits() {
        let s = spec_rd32_v0();
        // Row with inputs a=b=c=1 (0b0111), constant ok: weight 3 = 0b11 →
        // sum (bit 0 of weight) on line 2, carry on line 3.
        let r = s.row(0b0111);
        assert_eq!(r.care, 0b1100);
        assert_eq!(r.value, 0b1100);
        // v1 swaps the outputs.
        let r1 = spec_rd32_v1().row(0b0111);
        assert_eq!(r1.value, 0b1100); // both 1 here; try weight 1:
        let r0 = spec_rd32_v0().row(0b0001);
        let r1 = spec_rd32_v1().row(0b0001);
        assert_eq!(r0.value, 0b0100); // sum=1 on line 2
        assert_eq!(r1.value, 0b1000); // sum=1 on line 3
    }

    #[test]
    fn mod5_predicate_rows() {
        let s = spec_4mod5_v0();
        for x in 0u32..16 {
            let r = s.row(x); // constant line 4 = 0 rows
            assert_eq!(r.care, 0b1_0000);
            assert_eq!(r.value >> 4, u32::from(x % 5 == 0));
        }
        // Constant-violating rows are free.
        assert_eq!(s.row(0b1_0000).care, 0);
        // v1 rows live where line 5 = 1.
        let v1 = spec_4mod5_v1();
        assert_eq!(v1.row(0b0_0000).care, 0);
        assert_eq!(v1.row(0b1_0000).care, 0b1_0000);
        assert_eq!(v1.row(0b1_0000).value >> 4, 1); // 0 mod 5 == 0
    }

    #[test]
    fn decod24_is_one_hot() {
        for variant in 0..4 {
            let s = spec_decod24(variant);
            let c2 = variant & 1;
            let c3 = (variant >> 1) & 1;
            for ab in 0u32..4 {
                let row = ab | (c2 << 2) | (c3 << 3);
                let r = s.row(row);
                assert_eq!(r.care, 0b1111, "variant {variant} row {row}");
                assert_eq!(r.value, 1 << ab, "variant {variant} row {row}");
            }
        }
    }

    #[test]
    fn decod24_variants_differ() {
        let specs: Vec<Spec> = (0..4).map(spec_decod24).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(specs[i], specs[j]);
            }
        }
    }

    #[test]
    fn alu_variant0_op_table() {
        let s = spec_alu(0);
        // s=00 → AND, s=01 → OR, s=10 → XOR, s=11 → NOT a.
        let eval = |s1s0: u32, a: u32, b: u32| {
            let row = s1s0 | (a << 2) | (b << 3);
            s.row(row).value >> 4
        };
        assert_eq!(eval(0b00, 1, 1), 1);
        assert_eq!(eval(0b00, 1, 0), 0);
        assert_eq!(eval(0b01, 1, 0), 1);
        assert_eq!(eval(0b01, 0, 0), 0);
        assert_eq!(eval(0b10, 1, 1), 0);
        assert_eq!(eval(0b10, 0, 1), 1);
        assert_eq!(eval(0b11, 0, 1), 1);
        assert_eq!(eval(0b11, 1, 1), 0);
    }

    #[test]
    fn alu_variants_differ() {
        let specs: Vec<Spec> = (0..4).map(spec_alu).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(specs[i], specs[j]);
            }
        }
    }

    #[test]
    fn increment_wraps_around() {
        let p = increment(4);
        assert_eq!(p.image(0), 1);
        assert_eq!(p.image(15), 0);
        assert!(p.is_bijective());
        assert_eq!(spec_mod5mils().as_permutation().unwrap(), increment(5));
    }

    #[test]
    fn tof_is_one_wide_gate() {
        use crate::circuit::Circuit;
        use crate::gate::{Gate, LineSet};
        for n in 2..=5u32 {
            let p = tof(n);
            let controls: LineSet = (0..n - 1).collect();
            let c = Circuit::from_gates(n, [Gate::toffoli(controls, n - 1)]);
            assert_eq!(c.permutation(), p);
        }
    }

    #[test]
    fn random_incomplete_spec_is_deterministic_and_realizable() {
        let a = random_incomplete_spec(3, 5, 500);
        let b = random_incomplete_spec(3, 5, 500);
        assert_eq!(a.rows(), b.rows());
        assert!(!a.is_complete() || a.care_ratio() == 1.0);
        // The base permutation realizes it by construction — verify via a
        // circuit? The permutation itself must satisfy every cared bit.
        let base = random_permutation(3, 5);
        for i in 0..8u32 {
            let r = a.row(i);
            assert_eq!(base.image(i) & r.care, r.value & r.care, "row {i}");
        }
        // Extremes.
        assert!((random_incomplete_spec(3, 1, 1000)).is_complete());
        assert_eq!(random_incomplete_spec(3, 1, 0).care_ratio(), 0.0);
    }

    #[test]
    fn random_permutation_is_deterministic_and_bijective() {
        let p1 = random_permutation(4, 42);
        let p2 = random_permutation(4, 42);
        let p3 = random_permutation(4, 43);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert!(p1.is_bijective());
    }
}
