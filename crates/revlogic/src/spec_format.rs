//! RevLib-style `.spec` truth-table files for (incompletely specified)
//! reversible functions.
//!
//! Format (a small, self-describing subset of RevLib's specification
//! format):
//!
//! ```text
//! .version 2.0
//! .numvars 2
//! .begin
//! 00 01
//! 01 --
//! 10 1-
//! 11 0-
//! .end
//! ```
//!
//! Each body row is `input output`; the leftmost character is the highest
//! line (`xn`), matching the rendering of [`Spec`]'s `Display`. `-` marks a
//! don't-care output bit.

use crate::spec::{Spec, SpecError, SpecRow};

/// Error while parsing a `.spec` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    /// 1-based line number (0 for file-level problems).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            ".spec parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseSpecError {}

impl From<SpecError> for ParseSpecError {
    fn from(e: SpecError) -> ParseSpecError {
        ParseSpecError {
            line: 0,
            message: e.to_string(),
        }
    }
}

/// Serializes a spec as a `.spec` file.
pub fn write_spec(spec: &Spec) -> String {
    let n = spec.lines();
    let mut out = String::new();
    out.push_str(".version 2.0\n");
    out.push_str(&format!(".numvars {n}\n"));
    out.push_str(".begin\n");
    for i in 0..spec.num_rows() as u32 {
        let r = spec.row(i);
        for l in (0..n).rev() {
            out.push(if (i >> l) & 1 == 1 { '1' } else { '0' });
        }
        out.push(' ');
        for l in (0..n).rev() {
            let bit = 1u32 << l;
            if r.care & bit == 0 {
                out.push('-');
            } else if r.value & bit != 0 {
                out.push('1');
            } else {
                out.push('0');
            }
        }
        out.push('\n');
    }
    out.push_str(".end\n");
    out
}

/// Parses a `.spec` file.
///
/// # Errors
///
/// Returns [`ParseSpecError`] on malformed rows, duplicate or missing
/// inputs, or a table that is not reversibly realizable.
pub fn parse_spec(input: &str) -> Result<Spec, ParseSpecError> {
    let err = |line: usize, message: String| ParseSpecError { line, message };
    let mut numvars: Option<u32> = None;
    let mut rows: Vec<Option<SpecRow>> = Vec::new();
    let mut in_body = false;
    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut toks = rest.split_whitespace();
            match toks.next().unwrap_or("") {
                "version" => {}
                "numvars" => {
                    let n: u32 = toks
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(lineno, "bad .numvars".into()))?;
                    if n == 0 || n > 16 {
                        return Err(err(lineno, format!("unsupported line count {n}")));
                    }
                    numvars = Some(n);
                    rows = vec![None; 1 << n];
                }
                "begin" => {
                    if numvars.is_none() {
                        return Err(err(lineno, ".begin before .numvars".into()));
                    }
                    in_body = true;
                }
                "end" => in_body = false,
                other => return Err(err(lineno, format!("unknown directive .{other}"))),
            }
            continue;
        }
        if !in_body {
            return Err(err(lineno, "row outside .begin/.end".into()));
        }
        let n = numvars.expect("in_body implies numvars");
        let mut toks = line.split_whitespace();
        let (input_s, output_s) = match (toks.next(), toks.next(), toks.next()) {
            (Some(i), Some(o), None) => (i, o),
            _ => return Err(err(lineno, "expected `input output`".into())),
        };
        if input_s.len() != n as usize || output_s.len() != n as usize {
            return Err(err(lineno, "row width does not match .numvars".into()));
        }
        let mut row_index = 0u32;
        for ch in input_s.chars() {
            row_index = (row_index << 1)
                | match ch {
                    '0' => 0,
                    '1' => 1,
                    _ => return Err(err(lineno, format!("bad input bit `{ch}`"))),
                };
        }
        let mut value = 0u32;
        let mut care = 0u32;
        for ch in output_s.chars() {
            value <<= 1;
            care <<= 1;
            match ch {
                '0' => care |= 1,
                '1' => {
                    value |= 1;
                    care |= 1;
                }
                '-' => {}
                _ => return Err(err(lineno, format!("bad output bit `{ch}`"))),
            }
        }
        let slot = &mut rows[row_index as usize];
        if slot.is_some() {
            return Err(err(lineno, format!("duplicate row for input {input_s}")));
        }
        *slot = Some(SpecRow { value, care });
    }
    let n = numvars.ok_or_else(|| err(0, "missing .numvars".into()))?;
    // Missing rows default to fully unspecified.
    let rows: Vec<SpecRow> = rows
        .into_iter()
        .map(|r| r.unwrap_or(SpecRow { value: 0, care: 0 }))
        .collect();
    Ok(Spec::new_incomplete(n, rows)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::permutation::Permutation;

    #[test]
    fn roundtrip_complete_spec() {
        let s = Spec::from_permutation(&Permutation::from_map(2, vec![2, 0, 3, 1]));
        let text = write_spec(&s);
        let parsed = parse_spec(&text).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn roundtrip_incomplete_spec() {
        let s = benchmarks::spec_rd32_v0();
        let parsed = parse_spec(&write_spec(&s)).unwrap();
        assert_eq!(parsed.rows(), s.rows());
    }

    #[test]
    fn parses_dont_cares() {
        let text = ".numvars 1\n.begin\n0 1\n1 -\n.end\n";
        let s = parse_spec(text).unwrap();
        assert_eq!(s.row(0), SpecRow { value: 1, care: 1 });
        assert_eq!(s.row(1), SpecRow { value: 0, care: 0 });
    }

    #[test]
    fn missing_rows_default_to_dont_care() {
        let text = ".numvars 2\n.begin\n00 11\n.end\n";
        let s = parse_spec(text).unwrap();
        assert_eq!(s.row(0).care, 0b11);
        assert_eq!(s.row(3).care, 0);
    }

    #[test]
    fn leftmost_column_is_highest_line() {
        let text = ".numvars 2\n.begin\n01 10\n.end\n";
        let s = parse_spec(text).unwrap();
        // Input `01` = x2=0, x1=1 → row 1; output `10` = x2=1, x1=0.
        assert_eq!(
            s.row(1),
            SpecRow {
                value: 0b10,
                care: 0b11
            }
        );
    }

    #[test]
    fn rejects_duplicate_rows() {
        let text = ".numvars 1\n.begin\n0 1\n0 0\n.end\n";
        assert!(parse_spec(text).unwrap_err().message.contains("duplicate"));
    }

    #[test]
    fn rejects_bad_width() {
        let text = ".numvars 2\n.begin\n0 1\n.end\n";
        assert!(parse_spec(text).is_err());
    }

    #[test]
    fn rejects_unrealizable_table() {
        let text = ".numvars 1\n.begin\n0 1\n1 1\n.end\n";
        let e = parse_spec(text).unwrap_err();
        assert!(e.message.contains("distinct"));
    }

    #[test]
    fn whole_benchmark_suite_roundtrips() {
        for b in benchmarks::suite() {
            let parsed = parse_spec(&write_spec(&b.spec)).unwrap();
            assert_eq!(parsed.rows(), b.spec.rows(), "{}", b.name);
        }
    }
}
