//! Reversible functions as permutations of `{0, …, 2ⁿ−1}`.

/// A completely specified reversible function over `n` lines, stored as the
/// image vector of the permutation it induces on `{0, …, 2ⁿ−1}`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    lines: u32,
    map: Vec<u32>,
}

impl Permutation {
    /// The identity on `n` lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines > 16` (exact synthesis is far out of reach earlier).
    pub fn identity(lines: u32) -> Permutation {
        assert!(lines <= 16, "line count out of range");
        Permutation {
            lines,
            map: (0..1u32 << lines).collect(),
        }
    }

    /// Creates a permutation from its image vector (`map[i]` = output for
    /// input `i`).
    ///
    /// # Panics
    ///
    /// Panics if `map` does not describe a bijection on `{0, …, 2ⁿ−1}` with
    /// `map.len() == 2ⁿ`.
    pub fn from_map(lines: u32, map: Vec<u32>) -> Permutation {
        assert!(lines <= 16, "line count out of range");
        assert_eq!(map.len(), 1 << lines, "image vector has wrong length");
        let mut seen = vec![false; map.len()];
        for &v in &map {
            assert!((v as usize) < map.len(), "image {v} out of range");
            assert!(!seen[v as usize], "image {v} repeated: not a bijection");
            seen[v as usize] = true;
        }
        Permutation { lines, map }
    }

    /// Builds the permutation `i ↦ f(i)`, checking bijectivity.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not injective on `{0, …, 2ⁿ−1}`.
    pub fn from_fn(lines: u32, f: impl Fn(u32) -> u32) -> Permutation {
        let map = (0..1u32 << lines).map(f).collect();
        Permutation::from_map(lines, map)
    }

    /// Number of lines `n`.
    #[inline]
    pub fn lines(&self) -> u32 {
        self.lines
    }

    /// `2ⁿ`, the number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.map.len()
    }

    /// Image of input `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= 2ⁿ`.
    #[inline]
    pub fn image(&self, row: u32) -> u32 {
        self.map[row as usize]
    }

    /// The image vector.
    pub fn as_slice(&self) -> &[u32] {
        &self.map
    }

    /// Always `true` by construction; exposed for self-documenting call
    /// sites and tests.
    pub fn is_bijective(&self) -> bool {
        let mut seen = vec![false; self.map.len()];
        self.map.iter().all(|&v| {
            let hit = !seen[v as usize];
            seen[v as usize] = true;
            hit
        })
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0; self.map.len()];
        for (i, &v) in self.map.iter().enumerate() {
            inv[v as usize] = i as u32;
        }
        Permutation {
            lines: self.lines,
            map: inv,
        }
    }

    /// Composition `other ∘ self` — first apply `self`, then `other`.
    ///
    /// # Panics
    ///
    /// Panics if the line counts differ.
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.lines, other.lines, "line counts differ");
        Permutation {
            lines: self.lines,
            map: self.map.iter().map(|&v| other.map[v as usize]).collect(),
        }
    }

    /// `true` if this is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &v)| i as u32 == v)
    }

    /// Value of output line `l` for input `row`.
    pub fn output_bit(&self, row: u32, l: u32) -> bool {
        (self.image(row) >> l) & 1 == 1
    }
}

impl std::fmt::Debug for Permutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Permutation({} lines, {:?})", self.lines, self.map)
    }
}

impl std::fmt::Display for Permutation {
    /// Truth-table rendering, one `input -> output` pair per line (binary,
    /// line 1 = least significant bit, rightmost).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let w = self.lines as usize;
        for (i, &v) in self.map.iter().enumerate() {
            writeln!(f, "{i:0w$b} -> {v:0w$b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_every_row_to_itself() {
        let p = Permutation::identity(3);
        assert!(p.is_identity());
        assert!(p.is_bijective());
        assert_eq!(p.num_rows(), 8);
        for i in 0..8 {
            assert_eq!(p.image(i), i);
        }
    }

    #[test]
    fn from_map_accepts_bijections() {
        let p = Permutation::from_map(2, vec![3, 1, 0, 2]);
        assert_eq!(p.image(0), 3);
        assert!(!p.is_identity());
    }

    #[test]
    #[should_panic(expected = "not a bijection")]
    fn from_map_rejects_repeats() {
        let _ = Permutation::from_map(2, vec![0, 1, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn from_map_rejects_wrong_length() {
        let _ = Permutation::from_map(2, vec![0, 1, 2]);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_map(2, vec![2, 0, 3, 1]);
        assert!(p.then(&p.inverse()).is_identity());
        assert!(p.inverse().then(&p).is_identity());
    }

    #[test]
    fn then_applies_left_to_right() {
        let first = Permutation::from_fn(2, |v| v ^ 1); // flip bit 0
        let second = Permutation::from_fn(2, |v| v ^ 2); // flip bit 1
        let both = first.then(&second);
        assert_eq!(both.image(0), 3);
    }

    #[test]
    fn from_fn_builds_xor_permutation() {
        // y2 = x2 ⊕ x1 (CNOT from line 0 to line 1).
        let p = Permutation::from_fn(2, |v| {
            let b0 = v & 1;
            v ^ (b0 << 1)
        });
        assert_eq!(p.as_slice(), &[0, 3, 2, 1]);
        assert!(p.output_bit(1, 1));
        assert!(p.output_bit(1, 0));
    }

    #[test]
    fn display_shows_binary_rows() {
        let p = Permutation::identity(2);
        let s = p.to_string();
        assert!(s.contains("00 -> 00"));
        assert!(s.contains("11 -> 11"));
    }
}
