//! Property tests over random circuits and gate libraries.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::library::GateLibrary;
use crate::real;
use crate::spec::Spec;
use crate::spec_format;
use proptest::prelude::*;

const LINES: u32 = 4;

/// Strategy: a random gate from the full (mixed-polarity) library on
/// `LINES` lines.
fn arb_gate() -> impl Strategy<Value = Gate> {
    let gates = GateLibrary::all().with_mixed_polarity().enumerate(LINES);
    (0..gates.len()).prop_map(move |i| gates[i])
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(), 0..12).prop_map(|gates| Circuit::from_gates(LINES, gates))
}

proptest! {
    #[test]
    fn circuits_are_always_reversible(c in arb_circuit()) {
        let p = c.permutation();
        prop_assert!(p.is_bijective());
    }

    #[test]
    fn inverse_circuit_undoes_circuit(c in arb_circuit()) {
        let mut both = c.clone();
        both.extend_with(&c.inverse());
        prop_assert!(both.permutation().is_identity());
        // And the other way around.
        let mut reversed = c.inverse();
        reversed.extend_with(&c);
        prop_assert!(reversed.permutation().is_identity());
    }

    #[test]
    fn real_format_roundtrip(c in arb_circuit()) {
        let text = real::write_real(&c);
        let parsed = real::parse_real(&text).unwrap();
        prop_assert_eq!(&parsed, &c);
        prop_assert!(parsed.equivalent(&c));
    }

    #[test]
    fn spec_format_roundtrip_of_circuit_functions(c in arb_circuit()) {
        let spec = Spec::from_permutation(&c.permutation());
        let text = spec_format::write_spec(&spec);
        let parsed = spec_format::parse_spec(&text).unwrap();
        prop_assert_eq!(parsed.rows(), spec.rows());
        prop_assert!(parsed.is_realized_by(&c));
    }

    #[test]
    fn permutation_composition_matches_circuit_concatenation(
        c1 in arb_circuit(),
        c2 in arb_circuit(),
    ) {
        let mut cat = c1.clone();
        cat.extend_with(&c2);
        let composed = c1.permutation().then(&c2.permutation());
        prop_assert_eq!(cat.permutation(), composed);
    }

    #[test]
    fn quantum_cost_is_additive(c1 in arb_circuit(), c2 in arb_circuit()) {
        let mut cat = c1.clone();
        cat.extend_with(&c2);
        prop_assert_eq!(
            crate::cost::circuit_cost(&cat),
            crate::cost::circuit_cost(&c1) + crate::cost::circuit_cost(&c2)
        );
    }

    #[test]
    fn every_library_gate_is_an_involution_or_peres(g in arb_gate()) {
        // MCT and MCF are self-inverse; Peres gates are the only library
        // members with a longer inverse.
        let inv = g.inverse();
        match g {
            Gate::Peres { .. } => prop_assert_eq!(inv.len(), 2),
            _ => prop_assert_eq!(inv, vec![g]),
        }
    }

    #[test]
    fn gate_touches_only_its_lines(g in arb_gate(), state in 0u32..16) {
        let out = g.apply(state);
        let untouched = !g.lines().mask();
        prop_assert_eq!(state & untouched, out & untouched);
        // Controls are never modified.
        prop_assert_eq!(state & g.controls().mask(), out & g.controls().mask());
    }

    #[test]
    fn random_permutations_synthesizable_spec(seed in 0u64..10_000) {
        let p = crate::benchmarks::random_permutation(3, seed);
        let spec = Spec::from_permutation(&p);
        prop_assert!(spec.is_complete());
        prop_assert_eq!(spec.as_permutation().unwrap(), p);
    }
}
