//! Reversible gates: multiple-control Toffoli, multiple-control Fredkin and
//! Peres (Definition 1 of the paper).

/// A set of circuit lines, stored as a bit mask (line `i` ↔ bit `i`).
///
/// Circuits in this workspace have at most 32 lines — far beyond the reach
/// of exact synthesis, whose state space is `(2^n)!`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineSet(u32);

impl LineSet {
    /// The empty set.
    pub const EMPTY: LineSet = LineSet(0);

    /// Creates a set from a raw bit mask.
    pub fn from_mask(mask: u32) -> LineSet {
        LineSet(mask)
    }

    /// The raw bit mask.
    #[inline]
    pub fn mask(self) -> u32 {
        self.0
    }

    /// Number of lines in the set.
    #[inline]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// `true` if the set contains no lines.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` if the set contains `line`.
    #[inline]
    pub fn contains(self, line: u32) -> bool {
        line < 32 && self.0 & (1 << line) != 0
    }

    /// Returns the set with `line` added.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 32`.
    #[must_use]
    pub fn with(self, line: u32) -> LineSet {
        assert!(line < 32, "line index out of range");
        LineSet(self.0 | (1 << line))
    }

    /// Returns the set with `line` removed.
    #[must_use]
    pub fn without(self, line: u32) -> LineSet {
        LineSet(self.0 & !(1u32.checked_shl(line).unwrap_or(0)))
    }

    /// `true` if the two sets share no line.
    pub fn is_disjoint(self, other: LineSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates over the lines in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u32> {
        (0..32).filter(move |&i| self.contains(i))
    }

    /// Largest line index in the set, or `None` if empty.
    pub fn max_line(self) -> Option<u32> {
        (!self.is_empty()).then(|| 31 - self.0.leading_zeros())
    }
}

impl FromIterator<u32> for LineSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> LineSet {
        let mut s = LineSet::EMPTY;
        for line in iter {
            s = s.with(line);
        }
        s
    }
}

impl std::fmt::Display for LineSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, line) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "x{}", line + 1)?;
        }
        write!(f, "}}")
    }
}

/// A reversible gate `g(C, T)` with control lines `C` and target lines `T`
/// (Definition 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Gate {
    /// Multiple-control Toffoli: flips the target iff all positive controls
    /// are 1 **and** all negative controls are 0. With no controls this is
    /// NOT; with one positive control, CNOT.
    ///
    /// Negative (0-valued) controls are the mixed-polarity extension this
    /// research group introduced in follow-up work; the DATE 2008 libraries
    /// use positive controls only (see [`crate::GateLibrary`]).
    Toffoli {
        /// Positive control lines (may be empty).
        controls: LineSet,
        /// Negative control lines (may be empty; disjoint from `controls`).
        negative_controls: LineSet,
        /// Target line.
        target: u32,
    },
    /// Multiple-control Fredkin: swaps the two targets iff all controls
    /// are 1. With no controls this is SWAP.
    Fredkin {
        /// Control lines (may be empty).
        controls: LineSet,
        /// The two target lines (stored ordered low, high).
        targets: (u32, u32),
    },
    /// Peres gate with one control `c` and ordered targets `(t₁, t₂)`:
    /// maps `t₁ ↦ c ⊕ t₁` and `t₂ ↦ c·t₁ ⊕ t₂` (both reading the old `t₁`).
    Peres {
        /// Control line.
        control: u32,
        /// Ordered target lines.
        targets: (u32, u32),
    },
}

impl Gate {
    /// Multiple-control Toffoli gate with positive controls only.
    ///
    /// # Panics
    ///
    /// Panics if `target` is a control or out of range.
    pub fn toffoli(controls: LineSet, target: u32) -> Gate {
        Gate::toffoli_mixed(controls, LineSet::EMPTY, target)
    }

    /// Multiple-control Toffoli gate with mixed-polarity controls: the
    /// target flips iff every line in `controls` is 1 and every line in
    /// `negative_controls` is 0.
    ///
    /// # Panics
    ///
    /// Panics if the control sets overlap, or the target is a control or
    /// out of range.
    pub fn toffoli_mixed(controls: LineSet, negative_controls: LineSet, target: u32) -> Gate {
        assert!(target < 32, "target out of range");
        assert!(
            !controls.contains(target) && !negative_controls.contains(target),
            "target cannot be a control"
        );
        assert!(
            controls.is_disjoint(negative_controls),
            "a line cannot be both a positive and a negative control"
        );
        Gate::Toffoli {
            controls,
            negative_controls,
            target,
        }
    }

    /// NOT gate (Toffoli with no controls).
    pub fn not(target: u32) -> Gate {
        Gate::toffoli(LineSet::EMPTY, target)
    }

    /// CNOT gate (Toffoli with one control).
    pub fn cnot(control: u32, target: u32) -> Gate {
        Gate::toffoli(LineSet::EMPTY.with(control), target)
    }

    /// Multiple-control Fredkin gate. Target order is irrelevant (a swap is
    /// symmetric); targets are stored sorted.
    ///
    /// # Panics
    ///
    /// Panics if the targets coincide or overlap the controls.
    pub fn fredkin(controls: LineSet, t1: u32, t2: u32) -> Gate {
        assert!(t1 < 32 && t2 < 32, "target out of range");
        assert_ne!(t1, t2, "fredkin targets must differ");
        assert!(
            !controls.contains(t1) && !controls.contains(t2),
            "targets cannot be controls"
        );
        Gate::Fredkin {
            controls,
            targets: (t1.min(t2), t1.max(t2)),
        }
    }

    /// SWAP gate (Fredkin with no controls).
    pub fn swap(t1: u32, t2: u32) -> Gate {
        Gate::fredkin(LineSet::EMPTY, t1, t2)
    }

    /// Peres gate. Target order matters: `t1` receives `c ⊕ t₁`, `t2`
    /// receives `c·t₁ ⊕ t₂`.
    ///
    /// # Panics
    ///
    /// Panics if any two of the three lines coincide.
    pub fn peres(control: u32, t1: u32, t2: u32) -> Gate {
        assert!(control < 32 && t1 < 32 && t2 < 32, "line out of range");
        assert!(
            control != t1 && control != t2 && t1 != t2,
            "peres lines must be distinct"
        );
        Gate::Peres {
            control,
            targets: (t1, t2),
        }
    }

    /// All control lines (positive and negative).
    pub fn controls(&self) -> LineSet {
        match *self {
            Gate::Toffoli {
                controls,
                negative_controls,
                ..
            } => LineSet(controls.mask() | negative_controls.mask()),
            Gate::Fredkin { controls, .. } => controls,
            Gate::Peres { control, .. } => LineSet::EMPTY.with(control),
        }
    }

    /// The negative (0-valued) control lines; empty for every gate type
    /// except mixed-polarity Toffoli gates.
    pub fn negative_controls(&self) -> LineSet {
        match *self {
            Gate::Toffoli {
                negative_controls, ..
            } => negative_controls,
            Gate::Fredkin { .. } | Gate::Peres { .. } => LineSet::EMPTY,
        }
    }

    /// Target lines.
    pub fn targets(&self) -> LineSet {
        match *self {
            Gate::Toffoli { target, .. } => LineSet::EMPTY.with(target),
            Gate::Fredkin { targets, .. } | Gate::Peres { targets, .. } => {
                LineSet::EMPTY.with(targets.0).with(targets.1)
            }
        }
    }

    /// All lines touched by the gate (controls ∪ targets).
    pub fn lines(&self) -> LineSet {
        LineSet(self.controls().mask() | self.targets().mask())
    }

    /// Smallest line count a circuit containing this gate must have.
    pub fn min_lines(&self) -> u32 {
        self.lines().max_line().map_or(0, |m| m + 1)
    }

    /// Applies the gate to a state (bit `i` of `state` = value of line `i`).
    #[inline]
    pub fn apply(&self, state: u32) -> u32 {
        match *self {
            Gate::Toffoli {
                controls,
                negative_controls,
                target,
            } => {
                if state & controls.mask() == controls.mask()
                    && state & negative_controls.mask() == 0
                {
                    state ^ (1 << target)
                } else {
                    state
                }
            }
            Gate::Fredkin { controls, targets } => {
                if state & controls.mask() == controls.mask() {
                    let b1 = (state >> targets.0) & 1;
                    let b2 = (state >> targets.1) & 1;
                    if b1 != b2 {
                        state ^ (1 << targets.0) ^ (1 << targets.1)
                    } else {
                        state
                    }
                } else {
                    state
                }
            }
            Gate::Peres { control, targets } => {
                let c = (state >> control) & 1;
                let t1_old = (state >> targets.0) & 1;
                let mut out = state;
                out ^= c << targets.0;
                out ^= (c & t1_old) << targets.1;
                out
            }
        }
    }

    /// The inverse of this gate as a (short) cascade.
    ///
    /// MCT and MCF are self-inverse. The Peres gate is not; its inverse is
    /// returned as the equivalent two-Toffoli cascade
    /// `CNOT(c→t₁); Toffoli({c,t₁}→t₂)`.
    pub fn inverse(&self) -> Vec<Gate> {
        match *self {
            Gate::Toffoli { .. } | Gate::Fredkin { .. } => vec![*self],
            Gate::Peres { control, targets } => vec![
                Gate::cnot(control, targets.0),
                Gate::toffoli(LineSet::from_iter([control, targets.0]), targets.1),
            ],
        }
    }
}

impl std::fmt::Display for Gate {
    /// RevLib-style rendering: `t2 x1 x3`, `f3 x1 x2 x4`, `p3 x1 x2 x3`
    /// (controls first, then targets; 1-based names; negative controls are
    /// prefixed with `-`, e.g. `t2 -x1 x2`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<String> = Vec::new();
        let (kind, size) = match self {
            Gate::Toffoli {
                controls,
                negative_controls,
                target,
            } => {
                for l in 0..32 {
                    if controls.contains(l) {
                        names.push(format!("x{}", l + 1));
                    } else if negative_controls.contains(l) {
                        names.push(format!("-x{}", l + 1));
                    }
                }
                names.push(format!("x{}", target + 1));
                ('t', controls.len() + negative_controls.len() + 1)
            }
            Gate::Fredkin { controls, targets } => {
                names.extend(controls.iter().map(|l| format!("x{}", l + 1)));
                names.push(format!("x{}", targets.0 + 1));
                names.push(format!("x{}", targets.1 + 1));
                ('f', controls.len() + 2)
            }
            Gate::Peres { control, targets } => {
                names.push(format!("x{}", control + 1));
                names.push(format!("x{}", targets.0 + 1));
                names.push(format!("x{}", targets.1 + 1));
                ('p', 3)
            }
        };
        write!(f, "{kind}{size} {}", names.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineset_basics() {
        let s = LineSet::from_iter([0, 2, 5]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(2) && !s.contains(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 5]);
        assert_eq!(s.max_line(), Some(5));
        assert_eq!(LineSet::EMPTY.max_line(), None);
        assert!(s.without(2).is_disjoint(LineSet::from_iter([2])));
        assert_eq!(s.to_string(), "{x1,x3,x6}");
    }

    #[test]
    fn not_flips_unconditionally() {
        let g = Gate::not(1);
        assert_eq!(g.apply(0b000), 0b010);
        assert_eq!(g.apply(0b010), 0b000);
        assert_eq!(g.apply(0b111), 0b101);
    }

    #[test]
    fn cnot_flips_when_control_set() {
        let g = Gate::cnot(0, 2);
        assert_eq!(g.apply(0b001), 0b101);
        assert_eq!(g.apply(0b000), 0b000);
        assert_eq!(g.apply(0b101), 0b001);
    }

    #[test]
    fn toffoli_needs_all_controls() {
        let g = Gate::toffoli(LineSet::from_iter([0, 1]), 2);
        assert_eq!(g.apply(0b011), 0b111);
        assert_eq!(g.apply(0b001), 0b001);
        assert_eq!(g.apply(0b010), 0b010);
        assert_eq!(g.apply(0b111), 0b011);
    }

    #[test]
    fn fredkin_swaps_targets() {
        let g = Gate::fredkin(LineSet::from_iter([2]), 0, 1);
        assert_eq!(g.apply(0b101), 0b110); // control on: swap differing bits
        assert_eq!(g.apply(0b001), 0b001); // control off
        assert_eq!(g.apply(0b111), 0b111); // equal targets unchanged
    }

    #[test]
    fn swap_is_unconditional() {
        let g = Gate::swap(0, 2);
        assert_eq!(g.apply(0b001), 0b100);
        assert_eq!(g.apply(0b100), 0b001);
        assert_eq!(g.apply(0b010), 0b010);
    }

    #[test]
    fn peres_semantics_match_definition() {
        // Peres(c=0, t1=1, t2=2): t1 ^= c; t2 ^= c & old_t1.
        let g = Gate::peres(0, 1, 2);
        for state in 0u32..8 {
            let c = state & 1;
            let t1 = (state >> 1) & 1;
            let t2 = (state >> 2) & 1;
            let expected = c | ((t1 ^ c) << 1) | ((t2 ^ (c & t1)) << 2);
            assert_eq!(g.apply(state), expected, "state {state:03b}");
        }
    }

    #[test]
    fn peres_differs_by_target_order() {
        let g1 = Gate::peres(0, 1, 2);
        let g2 = Gate::peres(0, 2, 1);
        assert_ne!(g1, g2);
        // And they are functionally different.
        assert!((0..8).any(|s| g1.apply(s) != g2.apply(s)));
    }

    #[test]
    fn all_gates_are_bijective() {
        let gates = [
            Gate::not(0),
            Gate::cnot(1, 0),
            Gate::toffoli(LineSet::from_iter([0, 2]), 1),
            Gate::fredkin(LineSet::from_iter([0]), 1, 2),
            Gate::swap(1, 2),
            Gate::peres(2, 0, 1),
        ];
        for g in gates {
            let mut seen = std::collections::HashSet::new();
            for s in 0u32..8 {
                assert!(seen.insert(g.apply(s)), "{g} not injective");
            }
        }
    }

    #[test]
    fn inverse_undoes_gate() {
        let gates = [
            Gate::not(0),
            Gate::toffoli(LineSet::from_iter([0, 1]), 2),
            Gate::fredkin(LineSet::from_iter([2]), 0, 1),
            Gate::peres(0, 1, 2),
            Gate::peres(2, 1, 0),
        ];
        for g in gates {
            for s in 0u32..8 {
                let mut v = g.apply(s);
                for inv in g.inverse() {
                    v = inv.apply(v);
                }
                assert_eq!(v, s, "{g} inverse failed on {s:03b}");
            }
        }
    }

    #[test]
    fn controls_targets_lines() {
        let g = Gate::toffoli(LineSet::from_iter([0, 3]), 2);
        assert_eq!(g.controls(), LineSet::from_iter([0, 3]));
        assert_eq!(g.targets(), LineSet::from_iter([2]));
        assert_eq!(g.lines(), LineSet::from_iter([0, 2, 3]));
        assert_eq!(g.min_lines(), 4);
        let p = Gate::peres(1, 0, 2);
        assert_eq!(p.controls(), LineSet::from_iter([1]));
        assert_eq!(p.targets(), LineSet::from_iter([0, 2]));
    }

    #[test]
    fn display_revlib_style() {
        assert_eq!(Gate::not(0).to_string(), "t1 x1");
        assert_eq!(Gate::cnot(0, 1).to_string(), "t2 x1 x2");
        assert_eq!(
            Gate::toffoli(LineSet::from_iter([0, 1]), 2).to_string(),
            "t3 x1 x2 x3"
        );
        assert_eq!(
            Gate::fredkin(LineSet::from_iter([0]), 1, 2).to_string(),
            "f3 x1 x2 x3"
        );
        assert_eq!(Gate::peres(0, 1, 2).to_string(), "p3 x1 x2 x3");
    }

    #[test]
    #[should_panic(expected = "target cannot be a control")]
    fn toffoli_rejects_overlap() {
        let _ = Gate::toffoli(LineSet::from_iter([1]), 1);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn fredkin_rejects_equal_targets() {
        let _ = Gate::fredkin(LineSet::EMPTY, 1, 1);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn peres_rejects_duplicate_lines() {
        let _ = Gate::peres(1, 1, 2);
    }

    #[test]
    fn negative_controls_fire_on_zero() {
        // t2 -x1 x2: flips line 1 iff line 0 is 0.
        let g = Gate::toffoli_mixed(LineSet::EMPTY, LineSet::from_iter([0]), 1);
        assert_eq!(g.apply(0b00), 0b10);
        assert_eq!(g.apply(0b01), 0b01);
        assert_eq!(g.apply(0b10), 0b00);
        assert_eq!(g.apply(0b11), 0b11);
    }

    #[test]
    fn mixed_polarity_toffoli_semantics() {
        // flips line 2 iff line 0 = 1 and line 1 = 0.
        let g = Gate::toffoli_mixed(LineSet::from_iter([0]), LineSet::from_iter([1]), 2);
        for state in 0u32..8 {
            let fire = (state & 1 == 1) && (state & 2 == 0);
            let expected = if fire { state ^ 4 } else { state };
            assert_eq!(g.apply(state), expected, "state {state:03b}");
        }
        assert_eq!(g.controls(), LineSet::from_iter([0, 1]));
        assert_eq!(g.negative_controls(), LineSet::from_iter([1]));
    }

    #[test]
    fn mixed_polarity_toffoli_is_self_inverse() {
        let g = Gate::toffoli_mixed(LineSet::from_iter([2]), LineSet::from_iter([0]), 1);
        for s in 0u32..8 {
            assert_eq!(g.apply(g.apply(s)), s);
        }
        assert_eq!(g.inverse(), vec![g]);
    }

    #[test]
    fn mixed_polarity_display_marks_negatives() {
        let g = Gate::toffoli_mixed(LineSet::from_iter([2]), LineSet::from_iter([0]), 1);
        assert_eq!(g.to_string(), "t3 -x1 x3 x2");
    }

    #[test]
    #[should_panic(expected = "both a positive and a negative")]
    fn overlapping_polarities_panic() {
        let _ = Gate::toffoli_mixed(LineSet::from_iter([0]), LineSet::from_iter([0]), 1);
    }

    #[test]
    fn fredkin_target_order_is_normalized() {
        assert_eq!(
            Gate::fredkin(LineSet::EMPTY, 2, 1),
            Gate::fredkin(LineSet::EMPTY, 1, 2)
        );
    }
}
