//! Reversible logic: gates, circuits, specifications, costs and benchmarks.
//!
//! This crate provides the domain model of the `qsyn` workspace — the
//! RevLib-style infrastructure *"Quantified Synthesis of Reversible Logic"*
//! (Wille et al., DATE 2008) builds on:
//!
//! * [`Gate`] — multiple-control Toffoli (MCT), multiple-control Fredkin
//!   (MCF) and Peres gates (Definition 1 of the paper),
//! * [`Circuit`] — cascades of gates with simulation, inversion and
//!   permutation extraction,
//! * [`Spec`] — completely and incompletely specified reversible functions
//!   (truth tables with don't-care outputs, Definition 4),
//! * [`cost`] — quantum costs after Barenco et al. \[1\],
//! * [`GateLibrary`] — gate-set selection and exhaustive gate enumeration
//!   with the cardinalities of Theorem 1,
//! * [`real`] — RevLib `.real` circuit file I/O, [`spec_format`] —
//!   truth-table file I/O,
//! * [`benchmarks`] — the paper's evaluation functions (re-derived or
//!   substituted; see `DESIGN.md` §4),
//! * [`embedding`] — embedding irreversible functions into reversible
//!   specifications with constant inputs and garbage outputs \[12\].
//!
//! # Example
//!
//! ```
//! use qsyn_revlogic::{Circuit, Gate, LineSet};
//!
//! // A 3-line circuit: CNOT(a→b) followed by Toffoli(a,b→c).
//! let mut c = Circuit::new(3);
//! c.push(Gate::toffoli(LineSet::from_iter([0]), 1));
//! c.push(Gate::toffoli(LineSet::from_iter([0, 1]), 2));
//! assert_eq!(c.simulate(0b001), 0b111); // a=1 ⇒ b flips, then c flips
//! assert!(c.permutation().is_bijective());
//! ```

#![warn(missing_docs)]

pub mod benchmarks;
mod circuit;
pub mod cost;
pub mod embedding;
mod gate;
mod library;
pub mod ncv;
mod permutation;
pub mod qsim;
pub mod real;
mod spec;
pub mod spec_format;

#[cfg(test)]
mod prop_tests;

pub use circuit::Circuit;
pub use gate::{Gate, LineSet};
pub use library::GateLibrary;
pub use permutation::Permutation;
pub use spec::{Spec, SpecError, SpecRow};
