//! Completely and incompletely specified reversible functions.
//!
//! An incompletely specified function `f : Bⁿ → {0, 1, −}ⁿ` (Definition 4
//! of the paper) arises when a non-reversible function is embedded into a
//! reversible one: garbage outputs are don't-cares, and rows that violate
//! constant-input assumptions are entirely unconstrained \[12\].

use crate::circuit::Circuit;
use crate::permutation::Permutation;

/// Error constructing a [`Spec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// Row vector length is not `2ⁿ`.
    WrongRowCount {
        /// Expected number of rows (`2ⁿ`).
        expected: usize,
        /// Provided number of rows.
        got: usize,
    },
    /// A row's value or care mask uses bits above the line count.
    BitsOutOfRange {
        /// Offending row index.
        row: usize,
    },
    /// The care outputs are not extendable to any bijection: two rows agree
    /// on all outputs one of them cares about.
    NotReversiblyRealizable {
        /// First offending row.
        row_a: usize,
        /// Second offending row.
        row_b: usize,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::WrongRowCount { expected, got } => {
                write!(f, "expected {expected} rows, got {got}")
            }
            SpecError::BitsOutOfRange { row } => {
                write!(f, "row {row} uses bits beyond the line count")
            }
            SpecError::NotReversiblyRealizable { row_a, row_b } => {
                write!(f, "rows {row_a} and {row_b} cannot map to distinct outputs")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// One output row: the specified bits and which bits are specified.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpecRow {
    /// Output bits (only meaningful where `care` is set).
    pub value: u32,
    /// Bit `l` set ⇔ output line `l` is specified for this row.
    pub care: u32,
}

/// A (possibly incompletely specified) reversible function over `n` lines.
///
/// Row `i` gives the required output bits for input `i`; unspecified bits
/// (`care` = 0) are don't-cares. A completely specified spec is exactly a
/// [`Permutation`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Spec {
    lines: u32,
    rows: Vec<SpecRow>,
    name: String,
}

impl Spec {
    /// Completely specified function from a permutation.
    pub fn from_permutation(p: &Permutation) -> Spec {
        let mask = (1u32 << p.lines()) - 1;
        Spec {
            lines: p.lines(),
            rows: p
                .as_slice()
                .iter()
                .map(|&v| SpecRow {
                    value: v,
                    care: mask,
                })
                .collect(),
            name: String::new(),
        }
    }

    /// Incompletely specified function from explicit rows.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the row count is not `2ⁿ`, bits exceed the
    /// line count, or two rows provably cannot map to distinct outputs
    /// (making the spec unrealizable by any reversible circuit).
    pub fn new_incomplete(lines: u32, rows: Vec<SpecRow>) -> Result<Spec, SpecError> {
        assert!(lines <= 16, "line count out of range");
        let expected = 1usize << lines;
        if rows.len() != expected {
            return Err(SpecError::WrongRowCount {
                expected,
                got: rows.len(),
            });
        }
        let mask = (1u32 << lines) - 1;
        for (i, r) in rows.iter().enumerate() {
            if r.care & !mask != 0 || r.value & !mask != 0 {
                return Err(SpecError::BitsOutOfRange { row: i });
            }
        }
        // Pairwise conflict check: if both rows care about some common set
        // of bits and agree there while at least one row cares about *all*
        // its bits... A cheap sound check: two rows with full care masks and
        // equal values can never be distinguished.
        for a in 0..rows.len() {
            for b in (a + 1)..rows.len() {
                let (ra, rb) = (rows[a], rows[b]);
                let common = ra.care & rb.care;
                if ra.care == mask && rb.care == mask && (ra.value ^ rb.value) & common == 0 {
                    return Err(SpecError::NotReversiblyRealizable { row_a: a, row_b: b });
                }
            }
        }
        Ok(Spec {
            lines,
            rows,
            name: String::new(),
        })
    }

    /// Attaches a benchmark name (used in reports).
    #[must_use]
    pub fn with_name(mut self, name: &str) -> Spec {
        self.name = name.to_string();
        self
    }

    /// The benchmark name ("" if unnamed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of lines.
    #[inline]
    pub fn lines(&self) -> u32 {
        self.lines
    }

    /// Number of rows (`2ⁿ`).
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Row for input `i`.
    #[inline]
    pub fn row(&self, i: u32) -> SpecRow {
        self.rows[i as usize]
    }

    /// All rows.
    pub fn rows(&self) -> &[SpecRow] {
        &self.rows
    }

    /// `true` if every output bit of every row is specified.
    pub fn is_complete(&self) -> bool {
        let mask = (1u32 << self.lines) - 1;
        self.rows.iter().all(|r| r.care == mask)
    }

    /// Fraction of specified output bits (1.0 for complete functions).
    pub fn care_ratio(&self) -> f64 {
        let total = (self.rows.len() as u64) * u64::from(self.lines);
        let cared: u64 = self
            .rows
            .iter()
            .map(|r| u64::from(r.care.count_ones()))
            .sum();
        cared as f64 / total as f64
    }

    /// The permutation, if completely specified **and** bijective.
    pub fn as_permutation(&self) -> Option<Permutation> {
        if !self.is_complete() {
            return None;
        }
        let map: Vec<u32> = self.rows.iter().map(|r| r.value).collect();
        let mut seen = vec![false; map.len()];
        for &v in &map {
            if seen[v as usize] {
                return None;
            }
            seen[v as usize] = true;
        }
        Some(Permutation::from_map(self.lines, map))
    }

    /// Checks whether `circuit` realizes this specification (matches every
    /// cared output bit of every row).
    pub fn is_realized_by(&self, circuit: &Circuit) -> bool {
        circuit.lines() == self.lines
            && self.rows.iter().enumerate().all(|(i, r)| {
                let out = circuit.simulate(i as u32);
                (out ^ r.value) & r.care == 0
            })
    }

    /// Rows whose output line `l` is specified as 1 (the ON-set `f_l^on`).
    pub fn on_set(&self, l: u32) -> Vec<u32> {
        self.rows_matching(l, |r, bit| r.care & bit != 0 && r.value & bit != 0)
    }

    /// Rows whose output line `l` is specified as 0 (the OFF-set).
    pub fn off_set(&self, l: u32) -> Vec<u32> {
        self.rows_matching(l, |r, bit| r.care & bit != 0 && r.value & bit == 0)
    }

    /// Rows whose output line `l` is unspecified (the don't-care set
    /// `f_l^dc`).
    pub fn dc_set(&self, l: u32) -> Vec<u32> {
        self.rows_matching(l, |r, bit| r.care & bit == 0)
    }

    fn rows_matching(&self, l: u32, pred: impl Fn(&SpecRow, u32) -> bool) -> Vec<u32> {
        assert!(l < self.lines, "output line out of range");
        let bit = 1u32 << l;
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| pred(r, bit))
            .map(|(i, _)| i as u32)
            .collect()
    }
}

impl std::fmt::Debug for Spec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Spec({} lines, {}, care {:.2})",
            self.lines,
            if self.name.is_empty() {
                "unnamed"
            } else {
                &self.name
            },
            self.care_ratio()
        )
    }
}

impl std::fmt::Display for Spec {
    /// Truth-table rendering with `-` for don't-cares. Line 1 is the
    /// rightmost (least significant) column.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.lines;
        for (i, r) in self.rows.iter().enumerate() {
            let w = n as usize;
            write!(f, "{i:0w$b} -> ")?;
            for l in (0..n).rev() {
                let bit = 1u32 << l;
                if r.care & bit == 0 {
                    write!(f, "-")?;
                } else if r.value & bit != 0 {
                    write!(f, "1")?;
                } else {
                    write!(f, "0")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl From<&Permutation> for Spec {
    fn from(p: &Permutation) -> Spec {
        Spec::from_permutation(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn complete_spec_roundtrips_via_permutation() {
        let p = Permutation::from_map(2, vec![1, 0, 3, 2]);
        let s = Spec::from_permutation(&p);
        assert!(s.is_complete());
        assert!((s.care_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(s.as_permutation().unwrap(), p);
    }

    #[test]
    fn incomplete_spec_tracks_care_bits() {
        // 1 line, output unspecified everywhere except row 0 → 1.
        let s = Spec::new_incomplete(
            1,
            vec![SpecRow { value: 1, care: 1 }, SpecRow { value: 0, care: 0 }],
        )
        .unwrap();
        assert!(!s.is_complete());
        assert_eq!(s.on_set(0), vec![0]);
        assert_eq!(s.off_set(0), Vec::<u32>::new());
        assert_eq!(s.dc_set(0), vec![1]);
        assert!(s.as_permutation().is_none());
        assert!((s.care_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn realized_by_checks_only_cared_bits() {
        // Spec: output line 1 must equal input line 0 (XOR realized by a
        // CNOT); line 0 output is garbage.
        let rows = (0..4u32)
            .map(|i| SpecRow {
                value: (i & 1) << 1,
                care: 0b10,
            })
            .collect();
        let s = Spec::new_incomplete(2, rows).unwrap();
        let cnot = Circuit::from_gates(2, [Gate::cnot(0, 1)]);
        // CNOT: out1 = x1 ⊕ x2, not equal to x1 in general — check actual.
        // For input i: line1 out = bit1 ^ bit0. Spec wants bit0. Not equal
        // when bit1 = 1. So CNOT alone does NOT realize it…
        assert!(!s.is_realized_by(&cnot));
        // …but CNOT(0→1) after clearing line 1? Use circuit x2 ^= x1 with
        // x2 forced… instead test a circuit that copies via swap: SWAP(0,1)
        // puts x1 on line 2.
        let swap = Circuit::from_gates(2, [Gate::swap(0, 1)]);
        assert!(s.is_realized_by(&swap));
    }

    #[test]
    fn wrong_row_count_is_rejected() {
        let err = Spec::new_incomplete(2, vec![SpecRow { value: 0, care: 0 }; 3]).unwrap_err();
        assert!(matches!(
            err,
            SpecError::WrongRowCount {
                expected: 4,
                got: 3
            }
        ));
    }

    #[test]
    fn out_of_range_bits_rejected() {
        let err = Spec::new_incomplete(
            1,
            vec![SpecRow { value: 2, care: 2 }, SpecRow { value: 0, care: 0 }],
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::BitsOutOfRange { row: 0 }));
    }

    #[test]
    fn duplicate_full_rows_rejected() {
        let err = Spec::new_incomplete(
            1,
            vec![SpecRow { value: 1, care: 1 }, SpecRow { value: 1, care: 1 }],
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::NotReversiblyRealizable { .. }));
    }

    #[test]
    fn non_bijective_complete_spec_has_no_permutation() {
        // Constructing it via new_incomplete fails, so build rows where the
        // pairwise check passes but as_permutation would be the gate: use
        // partially cared rows that happen to be complete? Not possible —
        // complete + duplicate is rejected. So check a valid bijection.
        let s = Spec::new_incomplete(
            1,
            vec![SpecRow { value: 1, care: 1 }, SpecRow { value: 0, care: 1 }],
        )
        .unwrap();
        assert!(s.as_permutation().is_some());
    }

    #[test]
    fn display_marks_dont_cares() {
        let s = Spec::new_incomplete(
            2,
            vec![
                SpecRow {
                    value: 0b01,
                    care: 0b01,
                },
                SpecRow { value: 0, care: 0 },
                SpecRow {
                    value: 0b10,
                    care: 0b11,
                },
                SpecRow {
                    value: 0,
                    care: 0b10,
                },
            ],
        )
        .unwrap();
        let text = s.to_string();
        assert!(text.contains("00 -> -1"));
        assert!(text.contains("01 -> --"));
        assert!(text.contains("10 -> 10"));
        assert!(text.contains("11 -> 0-"));
    }

    #[test]
    fn named_spec_reports_name() {
        let p = Permutation::identity(1);
        let s = Spec::from_permutation(&p).with_name("id1");
        assert_eq!(s.name(), "id1");
    }
}
