//! A small state-vector quantum simulator.
//!
//! Quantum costs (Section 2.1 of the paper) count *elementary* gates in
//! the sense of Barenco et al. \[1\]: NOT, CNOT and controlled roots of X
//! (`V = X^½`, `V† `, and deeper roots). The [`crate::ncv`] module builds
//! those decompositions; this simulator verifies them against the
//! classical gate semantics by exact state-vector simulation — the only
//! honest way, since intermediate states leave the computational basis.

/// A complex number (hand-rolled to keep the crate dependency-free).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// 0.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// 1.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };

    /// Constructs a complex number.
    pub fn new(re: f64, im: f64) -> C64 {
        C64 { re, im }
    }

    /// `e^(iθ)`.
    pub fn cis(theta: f64) -> C64 {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Mul<f64> for C64 {
    type Output = C64;
    fn mul(self, rhs: f64) -> C64 {
        C64::new(self.re * rhs, self.im * rhs)
    }
}

/// A 2×2 unitary, row-major.
pub type Unitary2 = [[C64; 2]; 2];

/// The matrix of `X^t` (spectral definition: eigenvalue 1 on `|+⟩`,
/// `e^{iπt}` on `|−⟩`), so `(X^t)^(1/t·k) = X^k` holds exactly.
pub fn x_power(t: f64) -> Unitary2 {
    let p = C64::cis(std::f64::consts::PI * t);
    let half = C64::new(0.5, 0.0);
    let a = half * (C64::ONE + p); // diagonal
    let b = half * (C64::ONE - p); // off-diagonal
    [[a, b], [b, a]]
}

/// State vector over `n` qubits (line `i` of the reversible circuit maps
/// to qubit `i`; basis index bit `i` = qubit `i`).
#[derive(Clone, Debug)]
pub struct StateVector {
    lines: u32,
    amps: Vec<C64>,
}

impl StateVector {
    /// The computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `lines > 16` or `index` out of range.
    pub fn basis(lines: u32, index: u32) -> StateVector {
        assert!(lines <= 16, "line count out of range");
        let dim = 1usize << lines;
        assert!((index as usize) < dim, "basis index out of range");
        let mut amps = vec![C64::ZERO; dim];
        amps[index as usize] = C64::ONE;
        StateVector { lines, amps }
    }

    /// Number of lines.
    pub fn lines(&self) -> u32 {
        self.lines
    }

    /// Amplitude of `|index⟩`.
    pub fn amp(&self, index: u32) -> C64 {
        self.amps[index as usize]
    }

    /// Applies a single-qubit unitary to `target`, controlled on every
    /// line of `controls` being 1 (positive controls only).
    ///
    /// # Panics
    ///
    /// Panics if the target overlaps the controls or is out of range.
    pub fn apply_controlled(&mut self, m: &Unitary2, controls: u32, target: u32) {
        assert!(target < self.lines, "target out of range");
        assert_eq!(controls & (1 << target), 0, "target cannot be a control");
        let tbit = 1usize << target;
        for idx in 0..self.amps.len() {
            // Visit each (idx0, idx1) pair once, from the 0 side, when all
            // controls are active.
            if idx & tbit != 0 {
                continue;
            }
            if (idx as u32) & controls != controls {
                continue;
            }
            let a0 = self.amps[idx];
            let a1 = self.amps[idx | tbit];
            self.amps[idx] = m[0][0] * a0 + m[0][1] * a1;
            self.amps[idx | tbit] = m[1][0] * a0 + m[1][1] * a1;
        }
    }

    /// If the state is (numerically) a computational basis state with
    /// amplitude 1, returns its index.
    pub fn as_basis(&self, tolerance: f64) -> Option<u32> {
        let mut hit = None;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > tolerance {
                if hit.is_some() || (p - 1.0).abs() > tolerance {
                    return None;
                }
                // Require phase ≈ 0 too: a true (not just up-to-phase)
                // implementation of a classical gate.
                if (a.re - 1.0).abs() > tolerance || a.im.abs() > tolerance {
                    return None;
                }
                hit = Some(i as u32);
            }
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn x_power_one_is_not() {
        let x = x_power(1.0);
        let mut s = StateVector::basis(1, 0);
        s.apply_controlled(&x, 0, 0);
        assert_eq!(s.as_basis(EPS), Some(1));
    }

    #[test]
    fn v_squared_is_x() {
        let v = x_power(0.5);
        let mut s = StateVector::basis(1, 0);
        s.apply_controlled(&v, 0, 0);
        assert!(s.as_basis(EPS).is_none(), "V|0⟩ is a superposition");
        s.apply_controlled(&v, 0, 0);
        assert_eq!(s.as_basis(EPS), Some(1), "V² = X");
    }

    #[test]
    fn v_and_v_dagger_cancel() {
        let v = x_power(0.5);
        let vd = x_power(-0.5);
        for start in 0..2 {
            let mut s = StateVector::basis(1, start);
            s.apply_controlled(&v, 0, 0);
            s.apply_controlled(&vd, 0, 0);
            assert_eq!(s.as_basis(EPS), Some(start));
        }
    }

    #[test]
    fn eighth_roots_compose() {
        let w = x_power(0.25);
        let mut s = StateVector::basis(1, 1);
        for _ in 0..4 {
            s.apply_controlled(&w, 0, 0);
        }
        assert_eq!(s.as_basis(EPS), Some(0), "W⁴ = X");
    }

    #[test]
    fn controls_gate_application() {
        let x = x_power(1.0);
        // CNOT(0 → 1) on two lines.
        let mut s = StateVector::basis(2, 0b01);
        s.apply_controlled(&x, 0b01, 1);
        assert_eq!(s.as_basis(EPS), Some(0b11));
        let mut s = StateVector::basis(2, 0b00);
        s.apply_controlled(&x, 0b01, 1);
        assert_eq!(s.as_basis(EPS), Some(0b00), "control off: no action");
    }

    #[test]
    fn multi_controlled_x_matches_toffoli() {
        let x = x_power(1.0);
        for input in 0..8u32 {
            let mut s = StateVector::basis(3, input);
            s.apply_controlled(&x, 0b011, 2);
            let expected = if input & 0b011 == 0b011 {
                input ^ 0b100
            } else {
                input
            };
            assert_eq!(s.as_basis(EPS), Some(expected), "input {input:03b}");
        }
    }

    #[test]
    fn as_basis_rejects_superpositions_and_phases() {
        let v = x_power(0.5);
        let mut s = StateVector::basis(1, 0);
        s.apply_controlled(&v, 0, 0);
        assert_eq!(s.as_basis(EPS), None);
        // A pure phase also fails the strict check: apply X^2 ≠ phase…
        // instead build Z-like phase via X^t twice with t=1 → X² = I
        // exactly; that passes. Use t=2/3 three times: X² = I? X^(2) = I.
        let t = x_power(2.0 / 3.0);
        let mut s = StateVector::basis(1, 1);
        for _ in 0..3 {
            s.apply_controlled(&t, 0, 0);
        }
        // X^2 = identity exactly under the spectral definition.
        assert_eq!(s.as_basis(1e-9), Some(1));
    }

    #[test]
    fn complex_arithmetic() {
        let i = C64::new(0.0, 1.0);
        assert_eq!(i * i, C64::new(-1.0, 0.0));
        assert!((C64::cis(std::f64::consts::PI).re + 1.0).abs() < EPS);
        assert!((C64::cis(std::f64::consts::FRAC_PI_2).im - 1.0).abs() < EPS);
        assert!(((C64::new(3.0, 4.0)).norm_sqr() - 25.0).abs() < EPS);
    }
}
