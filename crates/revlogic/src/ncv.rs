//! Decomposition of reversible gates into *elementary quantum gates*
//! (Barenco et al. \[1\]) — the networks behind the quantum-cost table of
//! [`crate::cost`].
//!
//! Elementary gates here are NOT, CNOT and singly-controlled roots of X
//! (`V = X^½`, `V†`, `X^¼`, …), each of cost 1. Multi-control Toffoli
//! gates decompose through the classic gray-code network: `2^k − 1`
//! controlled roots `X^(±1/2^(k−1))` interleaved with `2^k − 2` CNOTs,
//! totalling `2^(k+1) − 3` elementary gates — exactly the zero-ancilla
//! column of the cost table (5 for two controls, 13 for three, 29 for
//! four…). A Peres gate packs into 4 elementary gates and a
//! single-control Fredkin into 7, the constants quoted in Section 2.1 of
//! the paper.
//!
//! Everything here is *verified*, not asserted: [`verify_gate`] simulates
//! the emitted network on every computational basis state with the
//! state-vector simulator of [`crate::qsim`] and compares against the
//! classical gate semantics.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::qsim::{x_power, StateVector};

/// One elementary quantum gate: `X^power` on `target`, optionally with a
/// single (positive) control.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ElementaryGate {
    /// The control line, if any.
    pub control: Option<u32>,
    /// The target line.
    pub target: u32,
    /// Exponent `t` of `X^t` (1.0 = NOT/CNOT, 0.5 = `V`, −0.5 = `V†`, …).
    pub power: f64,
}

impl ElementaryGate {
    fn x(target: u32) -> ElementaryGate {
        ElementaryGate {
            control: None,
            target,
            power: 1.0,
        }
    }

    fn cx(control: u32, target: u32) -> ElementaryGate {
        ElementaryGate {
            control: Some(control),
            target,
            power: 1.0,
        }
    }

    fn controlled_root(control: u32, target: u32, power: f64) -> ElementaryGate {
        ElementaryGate {
            control: Some(control),
            target,
            power,
        }
    }

    /// Applies this gate to a simulator state.
    pub fn apply(&self, state: &mut StateVector) {
        let m = x_power(self.power);
        let controls = self.control.map_or(0, |c| 1u32 << c);
        state.apply_controlled(&m, controls, self.target);
    }
}

impl std::fmt::Display for ElementaryGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = if (self.power - 1.0).abs() < 1e-12 {
            "X".to_string()
        } else if (self.power - 0.5).abs() < 1e-12 {
            "V".to_string()
        } else if (self.power + 0.5).abs() < 1e-12 {
            "V+".to_string()
        } else if self.power > 0.0 {
            format!("X^(1/{})", (1.0 / self.power).round() as i64)
        } else {
            format!("X^(-1/{})", (-1.0 / self.power).round() as i64)
        };
        match self.control {
            Some(c) => write!(f, "C{name}(x{} -> x{})", c + 1, self.target + 1),
            None => write!(f, "{name}(x{})", self.target + 1),
        }
    }
}

/// Gray-code network for a multi-controlled X with `k ≥ 2` controls:
/// `2^k − 1` controlled roots plus `2^k − 2` CNOTs.
fn gray_code_mcx(controls: &[u32], target: u32, out: &mut Vec<ElementaryGate>) {
    let k = controls.len();
    debug_assert!(k >= 2);
    let root = 1.0 / f64::from(1u32 << (k - 1));
    // held[j] = set of original controls whose parity wire `controls[j]`
    // currently carries (as a bit mask over 0..k).
    let mut held: Vec<u32> = (0..k).map(|j| 1u32 << j).collect();
    for i in 1u32..(1 << k) {
        let gray = i ^ (i >> 1);
        let h = (31 - gray.leading_zeros()) as usize;
        // Accumulate the desired parity onto wire h. Sources are always
        // singleton wires: only the current block's highest wire ever
        // drifts, and each block ends on its singleton, restoring it.
        while held[h] != gray {
            let diff = held[h] ^ gray;
            let b = diff.trailing_zeros() as usize;
            debug_assert_ne!(b, h);
            debug_assert_eq!(held[b], 1 << b, "source wire must be a singleton");
            out.push(ElementaryGate::cx(controls[b], controls[h]));
            held[h] ^= held[b];
        }
        let sign = if gray.count_ones() % 2 == 1 {
            1.0
        } else {
            -1.0
        };
        out.push(ElementaryGate::controlled_root(
            controls[h],
            target,
            sign * root,
        ));
    }
    debug_assert!(held.iter().enumerate().all(|(j, &m)| m == 1 << j));
}

/// Emits the elementary network of a multi-controlled X (positive controls
/// only).
fn mcx(controls: &[u32], target: u32, out: &mut Vec<ElementaryGate>) {
    match controls {
        [] => out.push(ElementaryGate::x(target)),
        [c] => out.push(ElementaryGate::cx(*c, target)),
        _ => gray_code_mcx(controls, target, out),
    }
}

/// Decomposes one reversible gate into elementary quantum gates.
///
/// Negative controls are handled by NOT conjugation (two extra gates per
/// negative control; the cost table of [`crate::cost`] charges them like
/// positive ones, following RevLib convention — the decomposition here is
/// the conservative upper bound).
pub fn decompose_gate(gate: &Gate) -> Vec<ElementaryGate> {
    let mut out = Vec::new();
    match *gate {
        Gate::Toffoli {
            controls,
            negative_controls,
            target,
        } => {
            for c in negative_controls.iter() {
                out.push(ElementaryGate::x(c));
            }
            let all: Vec<u32> = controls.iter().chain(negative_controls.iter()).collect();
            let mut sorted = all;
            sorted.sort_unstable();
            mcx(&sorted, target, &mut out);
            for c in negative_controls.iter() {
                out.push(ElementaryGate::x(c));
            }
        }
        Gate::Fredkin { controls, targets } => {
            // Fredkin(C; a, b) = CX(b→a) · MCT(C ∪ {a} → b) · CX(b→a).
            let (a, b) = targets;
            out.push(ElementaryGate::cx(b, a));
            let mut ctl: Vec<u32> = controls.iter().collect();
            ctl.push(a);
            ctl.sort_unstable();
            mcx(&ctl, b, &mut out);
            out.push(ElementaryGate::cx(b, a));
        }
        Gate::Peres { control, targets } => {
            // Peres(c; a, b): X-power on b of (a + c − (a⊕c))/2 = a·c, and
            // a ← a ⊕ c — four elementary gates [16].
            let (a, b) = targets;
            out.push(ElementaryGate::controlled_root(a, b, 0.5));
            out.push(ElementaryGate::controlled_root(control, b, 0.5));
            out.push(ElementaryGate::cx(control, a));
            out.push(ElementaryGate::controlled_root(a, b, -0.5));
        }
    }
    out
}

/// Decomposes a whole circuit.
pub fn decompose_circuit(circuit: &Circuit) -> Vec<ElementaryGate> {
    circuit.gates().iter().flat_map(decompose_gate).collect()
}

/// Number of elementary gates in the zero-ancilla decomposition of
/// `circuit`. Agrees with [`crate::cost::circuit_cost`] whenever no gate
/// has ancilla-discounted cost (i.e. ≤ 3 controls) and no negative
/// controls are present; otherwise this is the conservative upper bound
/// the emitted network actually achieves.
pub fn network_cost(circuit: &Circuit) -> u64 {
    decompose_circuit(circuit).len() as u64
}

/// Simulates `network` on `|input⟩` and returns the resulting basis state,
/// or `None` if the output is not a (phase-free) basis state.
pub fn simulate_network(network: &[ElementaryGate], lines: u32, input: u32) -> Option<u32> {
    let mut state = StateVector::basis(lines, input);
    for g in network {
        g.apply(&mut state);
    }
    state.as_basis(1e-9)
}

/// Exhaustively verifies that the decomposition of `gate` implements its
/// classical semantics on `lines` lines.
pub fn verify_gate(gate: &Gate, lines: u32) -> bool {
    let network = decompose_gate(gate);
    (0..1u32 << lines)
        .all(|input| simulate_network(&network, lines, input) == Some(gate.apply(input)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::LineSet;

    #[test]
    fn not_and_cnot_are_single_gates() {
        assert_eq!(decompose_gate(&Gate::not(0)).len(), 1);
        assert_eq!(decompose_gate(&Gate::cnot(0, 1)).len(), 1);
        assert!(verify_gate(&Gate::not(0), 2));
        assert!(verify_gate(&Gate::cnot(1, 0), 2));
    }

    #[test]
    fn toffoli_two_controls_is_the_classic_five_gate_network() {
        let g = Gate::toffoli(LineSet::from_iter([0, 1]), 2);
        let network = decompose_gate(&g);
        assert_eq!(network.len(), 5, "paper: 2-control Toffoli costs 5");
        assert!(verify_gate(&g, 3));
    }

    #[test]
    fn toffoli_three_controls_costs_thirteen() {
        let g = Gate::toffoli(LineSet::from_iter([0, 1, 2]), 3);
        assert_eq!(decompose_gate(&g).len(), 13);
        assert!(verify_gate(&g, 4));
    }

    #[test]
    fn toffoli_four_controls_costs_twentynine() {
        let g = Gate::toffoli(LineSet::from_iter([0, 1, 2, 3]), 4);
        assert_eq!(decompose_gate(&g).len(), 29);
        assert!(verify_gate(&g, 5));
    }

    #[test]
    fn gray_code_matches_zero_ancilla_cost_column() {
        // 2^(k+1) − 3 = the no-free-line entries of the cost table.
        for k in 2..=4u32 {
            let controls: LineSet = (0..k).collect();
            let g = Gate::toffoli(controls, k);
            let network = decompose_gate(&g);
            assert_eq!(network.len() as u64, (1u64 << (k + 1)) - 3);
            assert_eq!(
                network.len() as u64,
                crate::cost::mct_cost(k, k + 1),
                "k = {k}"
            );
        }
    }

    #[test]
    fn peres_is_four_gates() {
        let g = Gate::peres(0, 1, 2);
        let network = decompose_gate(&g);
        assert_eq!(network.len(), 4, "paper: Peres costs 4");
        assert!(verify_gate(&g, 3));
        // Both target orders.
        assert!(verify_gate(&Gate::peres(2, 1, 0), 3));
        assert!(verify_gate(&Gate::peres(1, 2, 0), 3));
    }

    #[test]
    fn fredkin_single_control_is_seven_gates() {
        let g = Gate::fredkin(LineSet::from_iter([0]), 1, 2);
        let network = decompose_gate(&g);
        assert_eq!(network.len(), 7, "paper: 1-control Fredkin costs 7");
        assert!(verify_gate(&g, 3));
    }

    #[test]
    fn swap_is_three_gates() {
        let g = Gate::swap(0, 1);
        assert_eq!(decompose_gate(&g).len(), 3);
        assert!(verify_gate(&g, 2));
    }

    #[test]
    fn negative_controls_verify_with_not_conjugation() {
        let g = Gate::toffoli_mixed(LineSet::from_iter([0]), LineSet::from_iter([1]), 2);
        assert!(verify_gate(&g, 3));
        let g2 = Gate::toffoli_mixed(LineSet::EMPTY, LineSet::from_iter([0, 1]), 2);
        assert!(verify_gate(&g2, 3));
    }

    #[test]
    fn every_3_line_library_gate_verifies() {
        for g in crate::library::GateLibrary::all()
            .with_mixed_polarity()
            .enumerate(3)
        {
            assert!(verify_gate(&g, 3), "{g} decomposition is wrong");
        }
    }

    #[test]
    fn whole_circuit_decomposition_simulates_correctly() {
        let c = Circuit::from_gates(
            4,
            [
                Gate::toffoli(LineSet::from_iter([0, 1, 2]), 3),
                Gate::peres(3, 0, 1),
                Gate::fredkin(LineSet::from_iter([1]), 2, 3),
                Gate::not(0),
            ],
        );
        let network = decompose_circuit(&c);
        for input in 0..16u32 {
            assert_eq!(
                simulate_network(&network, 4, input),
                Some(c.simulate(input)),
                "input {input:04b}"
            );
        }
    }

    #[test]
    fn network_cost_matches_cost_table_for_small_gates() {
        // All-positive gates with ≤ 3 controls: the emitted network size
        // IS the table cost.
        let c = Circuit::from_gates(
            4,
            [
                Gate::not(0),
                Gate::cnot(1, 2),
                Gate::toffoli(LineSet::from_iter([0, 1]), 3),
                Gate::toffoli(LineSet::from_iter([0, 1, 2]), 3),
                Gate::peres(0, 1, 2),
                Gate::fredkin(LineSet::from_iter([0]), 2, 3),
            ],
        );
        assert_eq!(network_cost(&c), crate::cost::circuit_cost(&c));
        assert_eq!(network_cost(&c), 1 + 1 + 5 + 13 + 4 + 7);
    }

    #[test]
    fn display_names_roots() {
        assert_eq!(ElementaryGate::x(0).to_string(), "X(x1)");
        assert_eq!(ElementaryGate::cx(0, 1).to_string(), "CX(x1 -> x2)");
        assert_eq!(
            ElementaryGate::controlled_root(0, 1, 0.5).to_string(),
            "CV(x1 -> x2)"
        );
        assert_eq!(
            ElementaryGate::controlled_root(0, 1, -0.5).to_string(),
            "CV+(x1 -> x2)"
        );
        assert_eq!(
            ElementaryGate::controlled_root(0, 1, 0.25).to_string(),
            "CX^(1/4)(x1 -> x2)"
        );
    }
}
