//! Embedding irreversible functions into reversible specifications.
//!
//! A non-reversible `k`-input, `m`-output function must be embedded into a
//! reversible `n`-line one by adding constant inputs and garbage outputs
//! \[12\]. The resulting truth table is incompletely specified: garbage
//! outputs are don't-cares everywhere, and rows whose constant inputs carry
//! the wrong value are don't-cares on *all* outputs.

use crate::spec::{Spec, SpecError, SpecRow};

/// Describes how an irreversible function is placed onto reversible lines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Embedding {
    /// Total circuit lines `n`.
    pub lines: u32,
    /// Line carrying each function input, in function-argument order.
    pub input_lines: Vec<u32>,
    /// `(line, value)` pairs for constant inputs.
    pub constants: Vec<(u32, bool)>,
    /// Line carrying each function output, in function-result order. Lines
    /// not listed are garbage.
    pub output_lines: Vec<u32>,
}

impl Embedding {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if lines repeat within the inputs+constants, or any index is
    /// out of range — these are programming errors in benchmark
    /// definitions, not runtime conditions.
    fn validate(&self) {
        let mut seen = 0u32;
        for &l in &self.input_lines {
            assert!(l < self.lines, "input line out of range");
            assert_eq!(seen & (1 << l), 0, "line {l} used twice");
            seen |= 1 << l;
        }
        for &(l, _) in &self.constants {
            assert!(l < self.lines, "constant line out of range");
            assert_eq!(seen & (1 << l), 0, "line {l} used twice");
            seen |= 1 << l;
        }
        assert_eq!(
            self.input_lines.len() + self.constants.len(),
            self.lines as usize,
            "inputs + constants must cover all lines"
        );
        let mut out_seen = 0u32;
        for &l in &self.output_lines {
            assert!(l < self.lines, "output line out of range");
            assert_eq!(out_seen & (1 << l), 0, "output line {l} used twice");
            out_seen |= 1 << l;
        }
    }

    /// Builds the incompletely specified reversible spec for the function
    /// `f : 2^k → 2^m` given as `f(args) = result` over packed bit vectors
    /// (`args` bit `i` = `input_lines[i]`; `result` bit `j` drives
    /// `output_lines[j]`).
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError`] if the resulting table is not reversibly
    /// realizable (e.g. `f` maps two argument vectors to the same result
    /// while every line is an output).
    pub fn embed(&self, f: impl Fn(u32) -> u32) -> Result<Spec, SpecError> {
        self.validate();
        let rows = (0..1u32 << self.lines)
            .map(|row| {
                // Check constant inputs.
                let constants_ok = self
                    .constants
                    .iter()
                    .all(|&(l, v)| ((row >> l) & 1 == 1) == v);
                if !constants_ok {
                    return SpecRow { value: 0, care: 0 };
                }
                // Pack the function arguments from the row.
                let mut args = 0u32;
                for (i, &l) in self.input_lines.iter().enumerate() {
                    args |= ((row >> l) & 1) << i;
                }
                let result = f(args);
                let mut value = 0u32;
                let mut care = 0u32;
                for (j, &l) in self.output_lines.iter().enumerate() {
                    care |= 1 << l;
                    value |= ((result >> j) & 1) << l;
                }
                SpecRow { value, care }
            })
            .collect();
        Spec::new_incomplete(self.lines, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gate::Gate;

    /// AND embedded on 3 lines: inputs on 0,1; constant 0 on line 2;
    /// output a∧b on line 2. This is exactly what a Toffoli realizes.
    fn and_embedding() -> Embedding {
        Embedding {
            lines: 3,
            input_lines: vec![0, 1],
            constants: vec![(2, false)],
            output_lines: vec![2],
        }
    }

    #[test]
    fn and_spec_is_realized_by_toffoli() {
        let spec = and_embedding()
            .embed(|ab| (ab & 1) & ((ab >> 1) & 1))
            .unwrap();
        let toffoli = Circuit::from_gates(3, [Gate::toffoli([0, 1].into_iter().collect(), 2)]);
        assert!(spec.is_realized_by(&toffoli));
    }

    #[test]
    fn rows_violating_constants_are_fully_dont_care() {
        let spec = and_embedding().embed(|ab| ab & 1).unwrap();
        for row in 0..8u32 {
            let r = spec.row(row);
            if row & 0b100 != 0 {
                assert_eq!(r.care, 0, "row {row} should be unconstrained");
            } else {
                assert_eq!(r.care, 0b100, "row {row} constrains only the output");
            }
        }
    }

    #[test]
    fn garbage_lines_are_unconstrained() {
        let spec = and_embedding().embed(|_| 0).unwrap();
        for row in 0..8u32 {
            assert_eq!(spec.row(row).care & 0b011, 0);
        }
    }

    #[test]
    fn output_can_live_on_an_input_line() {
        // XOR of two inputs written back onto line 0 — reversible as-is,
        // two lines, no constants.
        let e = Embedding {
            lines: 2,
            input_lines: vec![0, 1],
            constants: vec![],
            output_lines: vec![0],
        };
        let spec = e.embed(|ab| (ab & 1) ^ ((ab >> 1) & 1)).unwrap();
        let cnot = Circuit::from_gates(2, [Gate::cnot(1, 0)]);
        assert!(spec.is_realized_by(&cnot));
    }

    #[test]
    #[should_panic(expected = "used twice")]
    fn overlapping_input_lines_panic() {
        let e = Embedding {
            lines: 2,
            input_lines: vec![0, 0],
            constants: vec![],
            output_lines: vec![1],
        };
        let _ = e.embed(|x| x);
    }

    #[test]
    #[should_panic(expected = "cover all lines")]
    fn uncovered_lines_panic() {
        let e = Embedding {
            lines: 3,
            input_lines: vec![0, 1],
            constants: vec![],
            output_lines: vec![2],
        };
        let _ = e.embed(|x| x);
    }
}
