//! Cascades of reversible gates.

use crate::gate::Gate;
use crate::permutation::Permutation;

/// A reversible circuit: a cascade of gates over a fixed number of lines
/// (fanout and feedback are not allowed in reversible logic, so a cascade
/// is the general form).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Circuit {
    lines: u32,
    gates: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit (the identity) over `lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines > 16`.
    pub fn new(lines: u32) -> Circuit {
        assert!(lines <= 16, "line count out of range");
        Circuit {
            lines,
            gates: Vec::new(),
        }
    }

    /// Builds a circuit from gates.
    ///
    /// # Panics
    ///
    /// Panics if a gate touches a line `>= lines`.
    pub fn from_gates<I: IntoIterator<Item = Gate>>(lines: u32, gates: I) -> Circuit {
        let mut c = Circuit::new(lines);
        for g in gates {
            c.push(g);
        }
        c
    }

    /// Number of lines.
    #[inline]
    pub fn lines(&self) -> u32 {
        self.lines
    }

    /// The gate cascade, first gate first.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates (the `D` column of the paper's tables).
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` if the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches a line `>= lines`.
    pub fn push(&mut self, gate: Gate) {
        assert!(
            gate.min_lines() <= self.lines,
            "gate {gate} exceeds {} lines",
            self.lines
        );
        self.gates.push(gate);
    }

    /// Appends all gates of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the line counts differ.
    pub fn extend_with(&mut self, other: &Circuit) {
        assert_eq!(self.lines, other.lines, "line counts differ");
        self.gates.extend_from_slice(&other.gates);
    }

    /// Runs the circuit on one input assignment (bit `i` = line `i`).
    pub fn simulate(&self, input: u32) -> u32 {
        self.gates.iter().fold(input, |s, g| g.apply(s))
    }

    /// The permutation realized by the circuit.
    pub fn permutation(&self) -> Permutation {
        Permutation::from_fn(self.lines, |v| self.simulate(v))
    }

    /// The inverse circuit (gates reversed and individually inverted; a
    /// Peres gate expands into its two-Toffoli inverse).
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::new(self.lines);
        for g in self.gates.iter().rev() {
            for ig in g.inverse() {
                inv.push(ig);
            }
        }
        inv
    }

    /// `true` if both circuits realize the same function.
    pub fn equivalent(&self, other: &Circuit) -> bool {
        self.lines == other.lines
            && (0..1u32 << self.lines).all(|v| self.simulate(v) == other.simulate(v))
    }

    /// Gate-count histogram `(mct, mcf, peres)`.
    pub fn gate_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for g in &self.gates {
            match g {
                Gate::Toffoli { .. } => counts.0 += 1,
                Gate::Fredkin { .. } => counts.1 += 1,
                Gate::Peres { .. } => counts.2 += 1,
            }
        }
        counts
    }
}

impl std::fmt::Debug for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Circuit({} lines: ", self.lines)?;
        for (i, g) in self.gates.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{g}")?;
        }
        write!(f, ")")
    }
}

impl std::fmt::Display for Circuit {
    /// One gate per line, RevLib-style.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for g in &self.gates {
            writeln!(f, "{g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::LineSet;

    fn sample_circuit() -> Circuit {
        Circuit::from_gates(
            3,
            [
                Gate::cnot(0, 1),
                Gate::toffoli(LineSet::from_iter([0, 1]), 2),
                Gate::not(0),
            ],
        )
    }

    #[test]
    fn empty_circuit_is_identity() {
        let c = Circuit::new(3);
        assert!(c.is_empty());
        assert!(c.permutation().is_identity());
    }

    #[test]
    fn simulate_applies_gates_in_order() {
        let c = sample_circuit();
        // input 001: CNOT → 011; Toffoli → 111; NOT x1 → 110.
        assert_eq!(c.simulate(0b001), 0b110);
    }

    #[test]
    fn permutation_is_bijective() {
        assert!(sample_circuit().permutation().is_bijective());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let c = sample_circuit();
        let mut both = c.clone();
        both.extend_with(&c.inverse());
        assert!(both.permutation().is_identity());
    }

    #[test]
    fn inverse_with_peres_expands() {
        let c = Circuit::from_gates(3, [Gate::peres(0, 1, 2)]);
        let inv = c.inverse();
        assert_eq!(inv.len(), 2, "Peres inverse is a two-gate cascade");
        let mut both = c.clone();
        both.extend_with(&inv);
        assert!(both.permutation().is_identity());
    }

    #[test]
    fn equivalence_ignores_syntax() {
        // NOT(0); NOT(0) ≡ empty.
        let doubled = Circuit::from_gates(2, [Gate::not(0), Gate::not(0)]);
        assert!(doubled.equivalent(&Circuit::new(2)));
        let single = Circuit::from_gates(2, [Gate::not(0)]);
        assert!(!single.equivalent(&Circuit::new(2)));
    }

    #[test]
    fn gate_counts_histogram() {
        let c = Circuit::from_gates(
            3,
            [
                Gate::not(0),
                Gate::fredkin(LineSet::EMPTY, 1, 2),
                Gate::peres(0, 1, 2),
                Gate::cnot(1, 0),
            ],
        );
        assert_eq!(c.gate_counts(), (2, 1, 1));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn push_rejects_out_of_range_gate() {
        let mut c = Circuit::new(2);
        c.push(Gate::not(2));
    }

    #[test]
    fn display_lists_gates() {
        let c = sample_circuit();
        let s = c.to_string();
        assert_eq!(s.lines().count(), 3);
        assert!(s.starts_with("t2 x1 x2"));
    }
}
