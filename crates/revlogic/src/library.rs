//! Gate libraries and exhaustive gate enumeration.
//!
//! The synthesis encoding needs the set `G` of **all** gates of the chosen
//! types over `n` lines (Section 4.1). Theorem 1 of the paper gives the
//! cardinalities:
//!
//! * `n · 2^(n−1)` multiple-control Toffoli gates,
//! * `n · (n−1) · 2^(n−2)` multiple-control Fredkin gates (ordered target
//!   pairs, as the paper counts them),
//! * `n · (n−1) · (n−2)` Peres gates.
//!
//! A Fredkin gate is symmetric in its targets, so the paper's ordered-pair
//! count enumerates every controlled swap twice; [`GateLibrary::dedup_fredkin`]
//! switches to unordered pairs (an ablation knob — it halves the Fredkin
//! slots and therefore changes `#SOL`, not the minimal depth).

use crate::gate::{Gate, LineSet};

/// A selection of gate types available to the synthesizer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GateLibrary {
    mct: bool,
    mcf: bool,
    peres: bool,
    dedup_fredkin: bool,
    mixed_polarity: bool,
}

impl GateLibrary {
    /// Multiple-control Toffoli gates only (the paper's Table 1/2 setting).
    pub fn mct() -> GateLibrary {
        GateLibrary {
            mct: true,
            mcf: false,
            peres: false,
            dedup_fredkin: false,
            mixed_polarity: false,
        }
    }

    /// MCT + multiple-control Fredkin (`MCT+MCF` in Table 3).
    pub fn mct_mcf() -> GateLibrary {
        GateLibrary {
            mcf: true,
            ..GateLibrary::mct()
        }
    }

    /// MCT + Peres (`MCT+P` in Table 3).
    pub fn mct_peres() -> GateLibrary {
        GateLibrary {
            peres: true,
            ..GateLibrary::mct()
        }
    }

    /// MCT + MCF + Peres (`MCT+MCF+P` in Table 3).
    pub fn all() -> GateLibrary {
        GateLibrary {
            mct: true,
            mcf: true,
            peres: true,
            dedup_fredkin: false,
            mixed_polarity: false,
        }
    }

    /// Extends the Toffoli enumeration to **mixed-polarity** controls: each
    /// non-target line is absent, a positive control, or a negative
    /// control, giving `n · 3^(n−1)` Toffoli gates instead of `n · 2^(n−1)`.
    ///
    /// This is the extension direction the paper's group pursued after
    /// DATE 2008; it demonstrates the "easy expandability" claim of the
    /// universal-gate formulation.
    #[must_use]
    pub fn with_mixed_polarity(mut self) -> GateLibrary {
        self.mixed_polarity = true;
        self
    }

    /// `true` if mixed-polarity Toffoli gates are enumerated.
    pub fn has_mixed_polarity(self) -> bool {
        self.mixed_polarity
    }

    /// Enumerate Fredkin gates with unordered target pairs, removing the
    /// functional duplicates implied by Theorem 1's ordered count.
    #[must_use]
    pub fn with_dedup_fredkin(mut self) -> GateLibrary {
        self.dedup_fredkin = true;
        self
    }

    /// `true` if MCT gates are in the library.
    pub fn has_mct(self) -> bool {
        self.mct
    }

    /// `true` if MCF gates are in the library.
    pub fn has_mcf(self) -> bool {
        self.mcf
    }

    /// `true` if Peres gates are in the library.
    pub fn has_peres(self) -> bool {
        self.peres
    }

    /// Short label, e.g. `MCT+MCF+P` (mixed polarity marked as `MPMCT`).
    pub fn label(self) -> String {
        let mut parts = Vec::new();
        if self.mct {
            parts.push(if self.mixed_polarity { "MPMCT" } else { "MCT" });
        }
        if self.mcf {
            parts.push("MCF");
        }
        if self.peres {
            parts.push("P");
        }
        parts.join("+")
    }

    /// `true` if `gate` is one of the gates this library enumerates —
    /// membership by gate *type* and control polarity, without building the
    /// enumeration. Agrees with [`GateLibrary::enumerate`]: for every gate
    /// `g` over `n` lines, `permits(&g)` iff `enumerate(n).contains(&g)`.
    pub fn permits(self, gate: &Gate) -> bool {
        match gate {
            Gate::Toffoli {
                negative_controls, ..
            } => self.mct && (self.mixed_polarity || negative_controls.is_empty()),
            Gate::Fredkin { .. } => self.mcf,
            Gate::Peres { .. } => self.peres,
        }
    }

    /// The number of gates `|G|` this library yields on `n` lines, per
    /// Theorem 1 (without enumerating).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 16.
    pub fn gate_count(self, n: u32) -> u64 {
        assert!((1..=16).contains(&n), "line count out of range");
        let n64 = u64::from(n);
        let mut count = 0;
        if self.mct {
            count += if self.mixed_polarity {
                n64 * 3u64.pow(n - 1)
            } else {
                n64 << (n - 1)
            };
        }
        if self.mcf && n >= 2 {
            let ordered = (n64 * (n64 - 1)) << (n - 2);
            count += if self.dedup_fredkin {
                ordered / 2
            } else {
                ordered
            };
        }
        if self.peres && n >= 3 {
            count += n64 * (n64 - 1) * (n64 - 2);
        }
        count
    }

    /// Enumerates every gate of the library over `n` lines, in a fixed
    /// deterministic order (all MCT, then all MCF, then all Peres).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 16.
    pub fn enumerate(self, n: u32) -> Vec<Gate> {
        assert!((1..=16).contains(&n), "line count out of range");
        let mut gates = Vec::new();
        if self.mct {
            for target in 0..n {
                let others: Vec<u32> = (0..n).filter(|&l| l != target).collect();
                if self.mixed_polarity {
                    // Ternary code per non-target line: 0 = absent,
                    // 1 = positive control, 2 = negative control.
                    for code in 0..3u32.pow(others.len() as u32) {
                        let mut positive = LineSet::EMPTY;
                        let mut negative = LineSet::EMPTY;
                        let mut rest = code;
                        for &l in &others {
                            match rest % 3 {
                                1 => positive = positive.with(l),
                                2 => negative = negative.with(l),
                                _ => {}
                            }
                            rest /= 3;
                        }
                        gates.push(Gate::toffoli_mixed(positive, negative, target));
                    }
                } else {
                    for mask in 0..(1u32 << others.len()) {
                        let controls: LineSet = others
                            .iter()
                            .enumerate()
                            .filter(|&(i, _)| mask & (1 << i) != 0)
                            .map(|(_, &l)| l)
                            .collect();
                        gates.push(Gate::toffoli(controls, target));
                    }
                }
            }
        }
        if self.mcf && n >= 2 {
            for t1 in 0..n {
                for t2 in 0..n {
                    if t1 == t2 || (self.dedup_fredkin && t1 > t2) {
                        continue;
                    }
                    let others: Vec<u32> = (0..n).filter(|&l| l != t1 && l != t2).collect();
                    for mask in 0..(1u32 << others.len()) {
                        let controls: LineSet = others
                            .iter()
                            .enumerate()
                            .filter(|&(i, _)| mask & (1 << i) != 0)
                            .map(|(_, &l)| l)
                            .collect();
                        gates.push(Gate::fredkin(controls, t1, t2));
                    }
                }
            }
        }
        if self.peres && n >= 3 {
            for control in 0..n {
                for t1 in 0..n {
                    for t2 in 0..n {
                        if control != t1 && control != t2 && t1 != t2 {
                            gates.push(Gate::peres(control, t1, t2));
                        }
                    }
                }
            }
        }
        debug_assert_eq!(gates.len() as u64, self.gate_count(n));
        gates
    }
}

impl std::fmt::Display for GateLibrary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_mct_count() {
        // n · 2^(n−1)
        for n in 1..=6 {
            let lib = GateLibrary::mct();
            assert_eq!(lib.gate_count(n), u64::from(n) << (n - 1));
            assert_eq!(lib.enumerate(n).len() as u64, lib.gate_count(n));
        }
    }

    #[test]
    fn theorem1_example_24_gates_for_mct_mcf_on_3_lines() {
        // The paper's example: MCT+MCF on 3 variables gives
        // 3·2² + 3·2·2¹ = 12 + 12 = 24 gates.
        let lib = GateLibrary::mct_mcf();
        assert_eq!(lib.gate_count(3), 24);
        assert_eq!(lib.enumerate(3).len(), 24);
    }

    #[test]
    fn theorem1_peres_count() {
        // n(n−1)(n−2)
        let lib = GateLibrary::mct_peres();
        assert_eq!(lib.gate_count(3) - GateLibrary::mct().gate_count(3), 6);
        assert_eq!(lib.gate_count(4) - GateLibrary::mct().gate_count(4), 24);
        assert_eq!(lib.gate_count(5) - GateLibrary::mct().gate_count(5), 60);
    }

    #[test]
    fn full_library_counts_add_up() {
        let n = 4;
        let total = GateLibrary::all().gate_count(n);
        let mct = GateLibrary::mct().gate_count(n);
        let mcf = GateLibrary::mct_mcf().gate_count(n) - mct;
        let peres = GateLibrary::mct_peres().gate_count(n) - mct;
        assert_eq!(total, mct + mcf + peres);
    }

    #[test]
    fn dedup_fredkin_halves_the_fredkin_slots() {
        let ordered = GateLibrary::mct_mcf();
        let unordered = GateLibrary::mct_mcf().with_dedup_fredkin();
        let mct = GateLibrary::mct().gate_count(4);
        assert_eq!(
            (ordered.gate_count(4) - mct) / 2,
            unordered.gate_count(4) - mct
        );
        assert_eq!(unordered.enumerate(4).len() as u64, unordered.gate_count(4));
    }

    #[test]
    fn enumeration_has_no_duplicates_without_ordered_fredkin() {
        // Ordered Fredkin target pairs (the paper's Theorem 1 counting)
        // intentionally enumerate each controlled swap twice, so only the
        // libraries without that artifact are duplicate-free.
        for lib in [
            GateLibrary::mct(),
            GateLibrary::mct_peres(),
            GateLibrary::mct_mcf().with_dedup_fredkin(),
            GateLibrary::all().with_dedup_fredkin(),
        ] {
            let gates = lib.enumerate(3);
            let set: std::collections::HashSet<_> = gates.iter().collect();
            assert_eq!(set.len(), gates.len(), "{lib} enumeration repeats a gate");
        }
    }

    #[test]
    fn enumerated_gates_fit_the_line_count() {
        for g in GateLibrary::all().enumerate(4) {
            assert!(g.min_lines() <= 4);
        }
    }

    #[test]
    fn ordered_fredkin_enumeration_contains_functional_twins() {
        let gates = GateLibrary::mct_mcf().enumerate(3);
        // fredkin(∅, a, b) appears once per ordered pair but is normalized
        // to the same gate; the enumeration keeps both slots only when the
        // *gate* differs. Count identical entries:
        let mut counts = std::collections::HashMap::new();
        for g in &gates {
            *counts.entry(*g).or_insert(0) += 1;
        }
        // Ordered enumeration yields each Fredkin twice (after target
        // normalization these collapse to equal `Gate` values).
        assert!(counts.values().any(|&c| c == 2));
    }

    #[test]
    fn mixed_polarity_count_is_n_times_3_to_n_minus_1() {
        for n in 1..=5u32 {
            let lib = GateLibrary::mct().with_mixed_polarity();
            assert_eq!(lib.gate_count(n), u64::from(n) * 3u64.pow(n - 1));
            let gates = lib.enumerate(n);
            assert_eq!(gates.len() as u64, lib.gate_count(n));
            let set: std::collections::HashSet<_> = gates.iter().collect();
            assert_eq!(set.len(), gates.len(), "duplicate mixed gates");
        }
    }

    #[test]
    fn mixed_polarity_superset_of_positive_only() {
        let plain: std::collections::HashSet<_> =
            GateLibrary::mct().enumerate(3).into_iter().collect();
        let mixed: std::collections::HashSet<_> = GateLibrary::mct()
            .with_mixed_polarity()
            .enumerate(3)
            .into_iter()
            .collect();
        assert!(plain.is_subset(&mixed));
    }

    #[test]
    fn permits_agrees_with_enumerate() {
        let libs = [
            GateLibrary::mct(),
            GateLibrary::mct_mcf(),
            GateLibrary::mct_peres(),
            GateLibrary::all(),
            GateLibrary::mct().with_mixed_polarity(),
            GateLibrary::all().with_mixed_polarity(),
        ];
        let universe = GateLibrary::all().with_mixed_polarity().enumerate(3);
        for lib in libs {
            let member: std::collections::HashSet<_> = lib.enumerate(3).into_iter().collect();
            for g in &universe {
                assert_eq!(lib.permits(g), member.contains(g), "{lib} vs {g}");
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(GateLibrary::mct().label(), "MCT");
        assert_eq!(GateLibrary::mct_mcf().label(), "MCT+MCF");
        assert_eq!(GateLibrary::mct_peres().label(), "MCT+P");
        assert_eq!(GateLibrary::all().label(), "MCT+MCF+P");
    }
}
