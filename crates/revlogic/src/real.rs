//! RevLib `.real` circuit file format.
//!
//! The `.real` format is RevLib's \[23\] interchange format for reversible
//! circuits. Supported gate lines: `t<k>` (multiple-control Toffoli),
//! `f<k>` (multiple-control Fredkin) and `p3` (Peres), with the target
//! line(s) last.

use crate::circuit::Circuit;
use crate::gate::{Gate, LineSet};

/// Error while parsing a `.real` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRealError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseRealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            ".real parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseRealError {}

/// Serializes a circuit in `.real` format with variables `x1 … xn`.
pub fn write_real(circuit: &Circuit) -> String {
    let n = circuit.lines();
    let vars = (1..=n)
        .map(|i| format!("x{i}"))
        .collect::<Vec<String>>()
        .join(" ");
    let mut out = String::new();
    out.push_str(".version 2.0\n");
    out.push_str(&format!(".numvars {n}\n"));
    out.push_str(&format!(".variables {vars}\n"));
    out.push_str(&format!(".inputs {vars}\n"));
    out.push_str(&format!(".outputs {vars}\n"));
    out.push_str(".begin\n");
    for g in circuit.gates() {
        out.push_str(&format!("{g}\n"));
    }
    out.push_str(".end\n");
    out
}

/// Parses a `.real` file.
///
/// # Errors
///
/// Returns [`ParseRealError`] on unknown directives or gates, bad variable
/// references, arity mismatches, or gates outside `.begin`/`.end`.
pub fn parse_real(input: &str) -> Result<Circuit, ParseRealError> {
    let mut numvars: Option<u32> = None;
    let mut var_names: Vec<String> = Vec::new();
    let mut circuit: Option<Circuit> = None;
    let mut ended = false;

    let err = |line: usize, message: String| ParseRealError { line, message };

    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut toks = rest.split_whitespace();
            let directive = toks.next().unwrap_or("");
            match directive {
                "version" | "inputs" | "outputs" | "constants" | "garbage" => {}
                "numvars" => {
                    let n: u32 = toks
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(lineno, "bad .numvars".into()))?;
                    if n == 0 || n > 16 {
                        return Err(err(lineno, format!("unsupported line count {n}")));
                    }
                    numvars = Some(n);
                }
                "variables" => {
                    var_names = toks.map(str::to_string).collect();
                }
                "begin" => {
                    let n = numvars.ok_or_else(|| err(lineno, ".begin before .numvars".into()))?;
                    if var_names.is_empty() {
                        var_names = (1..=n).map(|i| format!("x{i}")).collect();
                    }
                    if var_names.len() != n as usize {
                        return Err(err(lineno, "variable count mismatch".into()));
                    }
                    circuit = Some(Circuit::new(n));
                }
                "end" => {
                    if circuit.is_none() {
                        return Err(err(lineno, ".end before .begin".into()));
                    }
                    ended = true;
                }
                other => return Err(err(lineno, format!("unknown directive .{other}"))),
            }
            continue;
        }
        // Gate line.
        let c = circuit
            .as_mut()
            .ok_or_else(|| err(lineno, "gate before .begin".into()))?;
        if ended {
            return Err(err(lineno, "gate after .end".into()));
        }
        let mut toks = line.split_whitespace();
        let head = toks.next().expect("non-empty line");
        // A `-` prefix marks a negative (0-valued) control.
        let lines: Vec<(u32, bool)> = toks
            .map(|token| {
                let (name, negated) = match token.strip_prefix('-') {
                    Some(rest) => (rest, true),
                    None => (token, false),
                };
                var_names
                    .iter()
                    .position(|v| v == name)
                    .map(|i| (i as u32, negated))
                    .ok_or_else(|| err(lineno, format!("unknown variable `{name}`")))
            })
            .collect::<Result<_, _>>()?;
        let kind = head.chars().next().unwrap_or(' ');
        let size: usize = head[1..]
            .parse()
            .map_err(|_| err(lineno, format!("bad gate head `{head}`")))?;
        if lines.len() != size {
            return Err(err(
                lineno,
                format!("gate `{head}` expects {size} lines, got {}", lines.len()),
            ));
        }
        let gate = match kind {
            't' => {
                let (&(target, target_neg), controls) = lines.split_last().expect("size >= 1");
                if target_neg {
                    return Err(err(lineno, "target lines cannot be negated".into()));
                }
                let positive: LineSet = controls
                    .iter()
                    .filter(|&&(_, neg)| !neg)
                    .map(|&(l, _)| l)
                    .collect();
                let negative: LineSet = controls
                    .iter()
                    .filter(|&&(_, neg)| neg)
                    .map(|&(l, _)| l)
                    .collect();
                Gate::toffoli_mixed(positive, negative, target)
            }
            'f' | 'p' => {
                if lines.iter().any(|&(_, neg)| neg) {
                    return Err(err(
                        lineno,
                        "negative controls are only supported on toffoli gates".into(),
                    ));
                }
                let plain: Vec<u32> = lines.iter().map(|&(l, _)| l).collect();
                if kind == 'f' {
                    if size < 2 {
                        return Err(err(lineno, "fredkin needs two targets".into()));
                    }
                    let controls: LineSet = plain[..size - 2].iter().copied().collect();
                    Gate::fredkin(controls, plain[size - 2], plain[size - 1])
                } else {
                    if size != 3 {
                        return Err(err(lineno, "peres gates have exactly 3 lines".into()));
                    }
                    Gate::peres(plain[0], plain[1], plain[2])
                }
            }
            other => return Err(err(lineno, format!("unknown gate type `{other}`"))),
        };
        c.push(gate);
    }
    circuit.ok_or_else(|| err(0, "missing .begin section".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        Circuit::from_gates(
            3,
            [
                Gate::cnot(0, 1),
                Gate::toffoli(LineSet::from_iter([0, 1]), 2),
                Gate::fredkin(LineSet::from_iter([2]), 0, 1),
                Gate::peres(0, 1, 2),
                Gate::not(2),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_circuit() {
        let c = sample();
        let text = write_real(&c);
        let parsed = parse_real(&text).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn writes_standard_header() {
        let text = write_real(&sample());
        assert!(text.contains(".numvars 3"));
        assert!(text.contains(".variables x1 x2 x3"));
        assert!(text.contains(".begin"));
        assert!(text.trim_end().ends_with(".end"));
    }

    #[test]
    fn parses_hand_written_file() {
        let text = "\
# a comment
.version 2.0
.numvars 3
.variables a b c
.inputs a b c
.outputs a b c
.begin
t1 a
t2 a b
t3 a b c
f3 a b c
p3 a b c
.end
";
        let c = parse_real(text).unwrap();
        assert_eq!(c.len(), 5);
        assert_eq!(c.gates()[0], Gate::not(0));
        assert_eq!(c.gates()[1], Gate::cnot(0, 1));
        assert_eq!(c.gates()[2], Gate::toffoli(LineSet::from_iter([0, 1]), 2));
        assert_eq!(c.gates()[3], Gate::fredkin(LineSet::from_iter([0]), 1, 2));
        assert_eq!(c.gates()[4], Gate::peres(0, 1, 2));
    }

    #[test]
    fn default_variable_names_apply() {
        let text = ".numvars 2\n.begin\nt2 x1 x2\n.end\n";
        let c = parse_real(text).unwrap();
        assert_eq!(c.gates()[0], Gate::cnot(0, 1));
    }

    #[test]
    fn rejects_unknown_variable() {
        let text = ".numvars 2\n.begin\nt2 x1 z9\n.end\n";
        let e = parse_real(text).unwrap_err();
        assert!(e.message.contains("unknown variable"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let text = ".numvars 2\n.begin\nt3 x1 x2\n.end\n";
        assert!(parse_real(text).is_err());
    }

    #[test]
    fn rejects_gate_outside_body() {
        let text = ".numvars 2\nt2 x1 x2\n.begin\n.end\n";
        assert!(parse_real(text).is_err());
        let text2 = ".numvars 2\n.begin\n.end\nt2 x1 x2\n";
        assert!(parse_real(text2).is_err());
    }

    #[test]
    fn rejects_unknown_gate_kind() {
        let text = ".numvars 2\n.begin\nq2 x1 x2\n.end\n";
        let e = parse_real(text).unwrap_err();
        assert!(e.message.contains("unknown gate"));
    }

    #[test]
    fn negative_controls_roundtrip() {
        let c = Circuit::from_gates(
            3,
            [Gate::toffoli_mixed(
                LineSet::from_iter([1]),
                LineSet::from_iter([0]),
                2,
            )],
        );
        let text = write_real(&c);
        assert!(text.contains("t3 -x1 x2 x3"));
        let parsed = parse_real(&text).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn rejects_negated_fredkin_lines() {
        let text = ".numvars 3\n.begin\nf3 -x1 x2 x3\n.end\n";
        let e = parse_real(text).unwrap_err();
        assert!(e.message.contains("only supported on toffoli"));
    }

    #[test]
    fn rejects_negated_target() {
        let text = ".numvars 2\n.begin\nt2 x1 -x2\n.end\n";
        let e = parse_real(text).unwrap_err();
        assert!(e.message.contains("target"));
    }

    #[test]
    fn parsed_circuit_simulates_like_original() {
        let c = sample();
        let parsed = parse_real(&write_real(&c)).unwrap();
        for v in 0..8 {
            assert_eq!(parsed.simulate(v), c.simulate(v));
        }
    }
}
