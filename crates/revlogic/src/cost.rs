//! Quantum costs of reversible gates.
//!
//! Every reversible gate decomposes into elementary quantum gates, each of
//! cost one (Barenco et al. \[1\]). The table below is the standard one used
//! by RevLib/RevKit: the cost of a multiple-control Toffoli depends on the
//! number of controls *and* on how many unused ("free") circuit lines are
//! available as ancillae for the decomposition.
//!
//! Reference points quoted in the paper (Section 2.1): a 2-control Toffoli
//! costs 5, a 1-control Fredkin costs 7, a Peres gate costs 4 (cheaper than
//! its two-Toffoli equivalent at 6).

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Quantum cost of a multiple-control Toffoli with `controls` control lines
/// in a circuit with `lines` lines total (so `lines − controls − 1` free
/// lines).
///
/// # Panics
///
/// Panics if the gate does not fit on `lines` lines.
pub fn mct_cost(controls: u32, lines: u32) -> u64 {
    assert!(controls < lines, "gate does not fit the circuit");
    let free = lines - controls - 1;
    match controls {
        0 | 1 => 1,
        2 => 5,
        3 => 13,
        4 => {
            if free >= 2 {
                26
            } else {
                29
            }
        }
        5 => {
            if free >= 3 {
                38
            } else if free >= 1 {
                52
            } else {
                61
            }
        }
        6 => {
            if free >= 4 {
                50
            } else if free >= 1 {
                80
            } else {
                125
            }
        }
        7 => {
            if free >= 5 {
                62
            } else if free >= 1 {
                100
            } else {
                253
            }
        }
        c => {
            // Beyond the tabulated range: the linear-with-ancilla
            // decomposition costs 12c − 22 when c − 2 free lines exist;
            // with at least one ancilla, 24c − 88 is a safe linearization;
            // otherwise only the exponential decomposition 2^(c+1) − 3
            // remains [1].
            let c64 = u64::from(c);
            if free >= c - 2 {
                12 * c64 - 22
            } else if free >= 1 {
                24 * c64 - 88
            } else {
                (1u64 << (c64 + 1)) - 3
            }
        }
    }
}

/// Quantum cost of a multiple-control Fredkin with `controls` controls on
/// `lines` lines: a controlled swap is `CNOT · MCT(c+1) · CNOT`, hence the
/// cost of a Toffoli with one more control plus 2.
///
/// # Panics
///
/// Panics if the gate does not fit on `lines` lines.
pub fn mcf_cost(controls: u32, lines: u32) -> u64 {
    assert!(controls + 2 <= lines, "gate does not fit the circuit");
    mct_cost(controls + 1, lines) + 2
}

/// Quantum cost of a Peres gate: always 4 \[16\].
pub fn peres_cost() -> u64 {
    4
}

/// Quantum cost of an arbitrary gate in a circuit with `lines` lines.
///
/// # Panics
///
/// Panics if the gate does not fit on `lines` lines.
pub fn gate_cost(gate: &Gate, lines: u32) -> u64 {
    assert!(gate.min_lines() <= lines, "gate does not fit the circuit");
    match gate {
        // Mixed-polarity controls cost the same as positive ones in the
        // standard table (the NOT conjugation is absorbed into the
        // decomposition).
        Gate::Toffoli {
            controls,
            negative_controls,
            ..
        } => mct_cost(controls.len() + negative_controls.len(), lines),
        Gate::Fredkin { controls, .. } => mcf_cost(controls.len(), lines),
        Gate::Peres { .. } => peres_cost(),
    }
}

/// Total quantum cost of a circuit (the `QC` column of the paper's
/// Tables 2 and 3).
pub fn circuit_cost(circuit: &Circuit) -> u64 {
    circuit
        .gates()
        .iter()
        .map(|g| gate_cost(g, circuit.lines()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::LineSet;

    #[test]
    fn paper_reference_costs() {
        // "a Toffoli gate with two controls has a cost of five"
        assert_eq!(mct_cost(2, 3), 5);
        // "a Fredkin gate with one control has a cost of seven"
        assert_eq!(mcf_cost(1, 3), 7);
        // "a Peres gate has a cost of four"
        assert_eq!(peres_cost(), 4);
    }

    #[test]
    fn not_and_cnot_are_elementary() {
        assert_eq!(mct_cost(0, 1), 1);
        assert_eq!(mct_cost(1, 2), 1);
        assert_eq!(mct_cost(1, 5), 1);
    }

    #[test]
    fn swap_costs_three() {
        assert_eq!(mcf_cost(0, 2), 3);
    }

    #[test]
    fn free_lines_reduce_large_mct_cost() {
        assert_eq!(mct_cost(3, 4), 13);
        assert_eq!(mct_cost(3, 8), 13);
        assert_eq!(mct_cost(4, 5), 29); // no free line
        assert_eq!(mct_cost(4, 7), 26); // two free lines
        assert_eq!(mct_cost(5, 6), 61);
        assert_eq!(mct_cost(5, 7), 52);
        assert_eq!(mct_cost(5, 9), 38);
        assert_eq!(mct_cost(6, 7), 125);
        assert_eq!(mct_cost(7, 8), 253);
        assert_eq!(mct_cost(7, 13), 62);
    }

    #[test]
    fn beyond_table_uses_formulas() {
        // c=8 with plenty of ancillae: 12·8−22 = 74.
        assert_eq!(mct_cost(8, 16), 74);
        // c=8 with one ancilla: 24·8−88 = 104.
        assert_eq!(mct_cost(8, 10), 104);
        // c=8 with none: 2^9−3 = 509.
        assert_eq!(mct_cost(8, 9), 509);
    }

    #[test]
    fn gate_cost_dispatch() {
        assert_eq!(gate_cost(&Gate::not(0), 3), 1);
        assert_eq!(
            gate_cost(&Gate::toffoli(LineSet::from_iter([0, 1]), 2), 3),
            5
        );
        assert_eq!(
            gate_cost(&Gate::fredkin(LineSet::from_iter([0]), 1, 2), 3),
            7
        );
        assert_eq!(gate_cost(&Gate::peres(0, 1, 2), 3), 4);
    }

    #[test]
    fn peres_cheaper_than_two_toffoli_equivalent() {
        let peres = Circuit::from_gates(3, [Gate::peres(0, 1, 2)]);
        let expanded = Circuit::from_gates(
            3,
            [
                Gate::toffoli(LineSet::from_iter([0, 1]), 2),
                Gate::cnot(0, 1),
            ],
        );
        assert!(peres.equivalent(&expanded));
        assert_eq!(circuit_cost(&peres), 4);
        assert_eq!(circuit_cost(&expanded), 6);
    }

    #[test]
    fn circuit_cost_sums_gates() {
        let c = Circuit::from_gates(
            4,
            [
                Gate::not(3),
                Gate::toffoli(LineSet::from_iter([0, 1, 2]), 3),
                Gate::fredkin(LineSet::EMPTY, 0, 1),
            ],
        );
        assert_eq!(circuit_cost(&c), 1 + 13 + 3);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn cost_rejects_oversized_gate() {
        let _ = mct_cost(3, 3);
    }
}
