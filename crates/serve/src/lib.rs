//! The `qsyn` synthesis daemon: serve exact-synthesis answers from a
//! persistent circuit database, computing only what was never seen.
//!
//! # Architecture
//!
//! ```text
//!             TCP (newline-delimited JSON, one object per line)
//!   client ──────────────► connection thread
//!                               │ canonicalize + digest
//!                               ▼
//!                        ┌─ in-memory index ─┐   hit: permute stored
//!                        │ (mirrors the disk │──► circuit, no engine,
//!                        │  store, if any)   │   no lock on workers
//!                        └───────┬───────────┘
//!                           miss │ in-flight dedup (one job per class)
//!                               ▼
//!                 bounded WorkQueue  ── full ──► rejected (retryable)
//!                               │ try_push = admission control
//!                               ▼
//!                  worker pool (one SynthesisSession each)
//!                               │ synthesize_with_output_permutation_in
//!                               ▼
//!                  memory index + write-through disk store
//! ```
//!
//! Three admission-control layers keep the daemon inside its budgets:
//! the **bounded queue** ([`WorkQueue::try_push`]) bounces cold work when
//! the backlog is full (an overloaded, retryable error — never a blocked
//! connection thread); each job runs under
//! **[`ResourceGovernor`](qsyn_core::ResourceGovernor) budgets**
//! (wall-clock deadline, BDD node limit, conflict limit) from
//! the per-request [`SynthesisOptions`], so one adversarial spec cannot
//! monopolize a worker; and **in-flight deduplication** collapses
//! concurrent requests for one equivalence class into a single engine
//! run that every waiter shares.
//!
//! Answers are canonical: requests are reduced to their output-permutation
//! class representative ([`canonicalize`]) before lookup, so any of the
//! `n!` equivalent phrasings of a function hits the same record, and the
//! reply's permutation is composed per-request from the stored witness.

#![warn(missing_docs)]

pub mod metrics;
pub mod protocol;

use metrics::{Metrics, MetricsSnapshot};
use qsyn_core::permuted::{synthesize_with_output_permutation_in, PermutedSynthesisResult};
use qsyn_core::{
    CancelToken, Engine, GateLibrary, SynthesisError, SynthesisOptions, SynthesisSession,
};
use qsyn_portfolio::{canonicalize, WorkQueue};
use qsyn_revlogic::{cost, real, Spec};
use qsyn_store::{spec_digest, PutOutcome, Store, StoredCircuit};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Synthesis worker threads (each owns a [`SynthesisSession`]).
    pub workers: usize,
    /// Cold-miss backlog bound; a full queue rejects new work
    /// (admission control).
    pub queue_capacity: usize,
    /// Gate library for synthesis.
    pub library: GateLibrary,
    /// Decision engine for cold misses.
    pub engine: Engine,
    /// Depth cap per job.
    pub max_depth: u32,
    /// Wall-clock budget per job (the
    /// [`ResourceGovernor`](qsyn_core::ResourceGovernor) deadline); a
    /// request over budget fails retryable instead of pinning a worker.
    pub time_budget: Option<Duration>,
    /// Run the output-permutation search during `--preload` warm-starts.
    ///
    /// Off by default: a preload is a bulk cache fill, and plain synthesis
    /// of the canonical representative is enough to answer every later
    /// request correctly (the canonical spec *is* what workers solve, so
    /// the replay composition holds with the identity search permutation).
    /// The tradeoff is that a preloaded record's depth is minimal for the
    /// canonical labeling only, not necessarily over the whole
    /// permutation class; interactive requests always run the full
    /// search.
    pub preload_permute: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            library: GateLibrary::mct(),
            engine: Engine::Bdd,
            max_depth: 32,
            time_budget: Some(Duration::from_secs(120)),
            preload_permute: false,
        }
    }
}

/// Serving-path failures (the wire's `"ok":false` replies).
#[derive(Clone, Debug)]
pub enum ServeError {
    /// Admission control bounced the request: the cold-miss queue was
    /// full. Retry after a backoff.
    Overloaded {
        /// Jobs pending when the request was bounced.
        pending: usize,
    },
    /// The synthesis engine failed (budget exhausted, depth cap, …).
    Synthesis(SynthesisError),
    /// The worker thread panicked mid-job; the panic was isolated and
    /// the worker's session replaced.
    WorkerPanicked,
    /// The daemon is draining; no new work is accepted.
    ShuttingDown,
    /// Two distinct functions collided on one 64-bit store digest.
    Collision {
        /// The shared digest.
        digest: u64,
    },
}

impl ServeError {
    /// `true` when the same request may succeed later (overload, budget,
    /// cancellation); `false` for deterministic failures.
    pub fn is_retryable(&self) -> bool {
        match self {
            ServeError::Overloaded { .. } | ServeError::ShuttingDown => true,
            ServeError::Synthesis(e) => matches!(
                e,
                SynthesisError::BudgetExceeded { .. } | SynthesisError::Cancelled { .. }
            ),
            ServeError::WorkerPanicked | ServeError::Collision { .. } => false,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { pending } => {
                write!(f, "overloaded: {pending} cold jobs pending, retry later")
            }
            ServeError::Synthesis(e) => write!(f, "synthesis failed: {e}"),
            ServeError::WorkerPanicked => write!(f, "internal: synthesis worker panicked"),
            ServeError::ShuttingDown => write!(f, "shutting down"),
            ServeError::Collision { digest } => write!(
                f,
                "digest collision on {digest:016x}: refusing to serve a possibly-wrong circuit"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Where an answer came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// The circuit database (no engine ran for this request).
    Store,
    /// A synthesis engine ran (or the request joined an in-flight run).
    Engine,
}

impl Source {
    /// Wire form (`"store"` / `"engine"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Source::Store => "store",
            Source::Engine => "engine",
        }
    }
}

/// A served answer: the stored canonical record plus the permutation
/// composed for the spec as the client phrased it.
#[derive(Clone, Debug)]
pub struct ServedResult {
    /// Provenance of the answer.
    pub source: Source,
    /// The canonical record (digest, circuit, metadata).
    pub record: Arc<StoredCircuit>,
    /// Output permutation for the *requested* spec: entry `j` is the
    /// circuit output line driving spec line `j`.
    pub permutation: Vec<u32>,
    /// Request wall-clock latency.
    pub elapsed: Duration,
}

/// One scheduled cold miss.
struct Job {
    canonical: Spec,
    digest: u64,
    name: String,
    /// Run the full output-permutation search (`false` for plain preload
    /// fills — see [`ServeConfig::preload_permute`]).
    permute: bool,
    slot: Arc<Slot>,
}

/// The rendezvous between a waiting request and the worker computing its
/// class.
struct Slot {
    result: Mutex<Option<Result<Arc<StoredCircuit>, ServeError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, outcome: Result<Arc<StoredCircuit>, ServeError>) {
        *self.result.lock().expect("slot lock") = Some(outcome);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Arc<StoredCircuit>, ServeError> {
        let mut guard = self.result.lock().expect("slot lock");
        loop {
            if let Some(outcome) = guard.as_ref() {
                return outcome.clone();
            }
            guard = self.ready.wait(guard).expect("slot lock");
        }
    }
}

/// Shared state between connection threads and workers.
struct Shared {
    queue: WorkQueue<Job>,
    /// Canonical records by digest; mirrors the disk store when one is
    /// attached and is the whole database otherwise.
    index: Mutex<HashMap<u64, Arc<StoredCircuit>>>,
    /// Classes currently being synthesized. Lock order: `inflight` may
    /// nest `index` inside it; never the reverse.
    inflight: Mutex<HashMap<u64, Arc<Slot>>>,
    /// The write-through disk store, if any.
    store: Option<Mutex<Store>>,
    metrics: Metrics,
    options: SynthesisOptions,
    /// [`ServeConfig::preload_permute`]: whether preload fills run the
    /// output-permutation search.
    preload_permute: bool,
    closing: AtomicBool,
}

/// The daemon core: index + store + worker pool, independent of any
/// transport. [`serve_tcp`] puts the line protocol in front of it; tests
/// and benches drive it in-process.
pub struct ServeCore {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ServeCore {
    /// Boots the core: loads `store`'s records into the in-memory index
    /// (if given) and starts the worker pool.
    pub fn start(config: &ServeConfig, store: Option<Store>) -> ServeCore {
        let mut index = HashMap::new();
        if let Some(s) = &store {
            for r in s.records() {
                index.insert(r.digest, Arc::new(r.clone()));
            }
        }
        let options =
            SynthesisOptions::new(config.library, config.engine).with_max_depth(config.max_depth);
        let options = match config.time_budget {
            Some(budget) => options.with_time_budget(budget),
            None => options,
        };
        let shared = Arc::new(Shared {
            queue: WorkQueue::bounded(config.queue_capacity.max(1)),
            index: Mutex::new(index),
            inflight: Mutex::new(HashMap::new()),
            store: store.map(Mutex::new),
            metrics: Metrics::new(),
            options,
            preload_permute: config.preload_permute,
            closing: AtomicBool::new(false),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qsyn-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        ServeCore {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Answers one synthesis request: store hit, in-flight join, or cold
    /// scheduling — see the module docs for the flow.
    ///
    /// # Errors
    ///
    /// [`ServeError`]; [`ServeError::is_retryable`] tells transient from
    /// deterministic failures.
    pub fn request(&self, name: &str, spec: &Spec) -> Result<ServedResult, ServeError> {
        self.request_inner(name, spec, true)
    }

    fn request_inner(
        &self,
        name: &str,
        spec: &Spec,
        permute: bool,
    ) -> Result<ServedResult, ServeError> {
        let start = Instant::now();
        let m = &self.shared.metrics;
        Metrics::inc(&m.requests);
        let finish = |outcome: Result<ServedResult, ServeError>| {
            m.latency.record(start.elapsed().as_micros() as u64);
            if outcome.is_err() {
                Metrics::inc(&m.errors);
            }
            outcome
        };
        let canonical = canonicalize(spec);
        let digest = spec_digest(&canonical.spec);
        if let Some(record) = self.lookup(digest, &canonical.spec)? {
            Metrics::inc(&m.hits);
            return finish(Ok(ServedResult {
                source: Source::Store,
                permutation: compose(&canonical.witness, &record.permutation),
                record,
                elapsed: start.elapsed(),
            }));
        }
        if self.shared.closing.load(Ordering::SeqCst) {
            m.latency.record(start.elapsed().as_micros() as u64);
            return Err(ServeError::ShuttingDown);
        }
        let slot = {
            let mut inflight = self.shared.inflight.lock().expect("inflight lock");
            // Re-check under the lock: a worker publishes to the index
            // *before* retiring its in-flight entry, so a class absent
            // from both is genuinely cold.
            if let Some(record) = self.lookup(digest, &canonical.spec)? {
                Metrics::inc(&m.hits);
                return finish(Ok(ServedResult {
                    source: Source::Store,
                    permutation: compose(&canonical.witness, &record.permutation),
                    record,
                    elapsed: start.elapsed(),
                }));
            }
            if let Some(slot) = inflight.get(&digest) {
                Metrics::inc(&m.inflight_dedup);
                Arc::clone(slot)
            } else {
                let slot = Arc::new(Slot::new());
                let job = Job {
                    canonical: canonical.spec.clone(),
                    digest,
                    name: name.to_string(),
                    permute,
                    slot: Arc::clone(&slot),
                };
                if self.shared.queue.try_push(job).is_err() {
                    Metrics::inc(&m.rejected);
                    m.latency.record(start.elapsed().as_micros() as u64);
                    return Err(ServeError::Overloaded {
                        pending: self.shared.queue.pending(),
                    });
                }
                Metrics::inc(&m.misses);
                inflight.insert(digest, Arc::clone(&slot));
                slot
            }
        };
        let record = slot.wait();
        finish(record.map(|record| ServedResult {
            source: Source::Engine,
            permutation: compose(&canonical.witness, &record.permutation),
            record,
            elapsed: start.elapsed(),
        }))
    }

    /// Warm-start: runs `jobs` through the normal request path (so
    /// already-stored classes cost a lookup and cold ones synthesize),
    /// blocking until each lands. Returns `(served, failed)`.
    pub fn preload(&self, jobs: &[(String, Spec)]) -> (usize, usize) {
        let mut served = 0;
        let mut failed = 0;
        for (name, spec) in jobs {
            loop {
                match self.request_inner(name, spec, self.shared.preload_permute) {
                    Ok(_) => {
                        served += 1;
                        break;
                    }
                    Err(ServeError::Overloaded { .. }) => {
                        // Preload is the one caller that wants back-pressure
                        // over rejection: wait for the queue to drain.
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => {
                        failed += 1;
                        break;
                    }
                }
            }
        }
        (served, failed)
    }

    /// Index/store lookup for a canonical spec.
    fn lookup(
        &self,
        digest: u64,
        canonical: &Spec,
    ) -> Result<Option<Arc<StoredCircuit>>, ServeError> {
        match self.shared.index.lock().expect("index lock").get(&digest) {
            None => Ok(None),
            Some(r) if r.matches_spec(canonical) => Ok(Some(Arc::clone(r))),
            Some(_) => Err(ServeError::Collision { digest }),
        }
    }

    /// Counters + store gauges, for `STATS` and `--stats`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let (records, bytes) = match &self.shared.store {
            Some(store) => {
                let s = store.lock().expect("store lock");
                (s.len() as u64, s.file_bytes())
            }
            None => (
                self.shared.index.lock().expect("index lock").len() as u64,
                0,
            ),
        };
        self.shared.metrics.snapshot(records, bytes)
    }

    /// Flags the daemon as draining: subsequent cold misses are refused
    /// (hits still serve) and [`serve_tcp`] exits after its next accept.
    pub fn begin_shutdown(&self) {
        self.shared.closing.store(true, Ordering::SeqCst);
    }

    /// `true` once [`begin_shutdown`](Self::begin_shutdown) was called.
    pub fn is_closing(&self) -> bool {
        self.shared.closing.load(Ordering::SeqCst)
    }

    /// Drains the queue, stops the workers and returns the final
    /// snapshot. Idempotent.
    pub fn stop(&self) -> MetricsSnapshot {
        self.begin_shutdown();
        self.shared.queue.close();
        let workers = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for w in workers {
            let _ = w.join();
        }
        self.snapshot()
    }
}

impl Drop for ServeCore {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Composes the per-request output permutation: canonical line `i`
/// carries requested line `j`'s function for `i = witness[j]`, and the
/// stored circuit output `q[i]` drives canonical line `i`, so the output
/// driving requested line `j` is `q[witness[j]]` (the same composition
/// as `SpecCache::get_or_compute`).
fn compose(witness: &[u32], q: &[u32]) -> Vec<u32> {
    witness.iter().map(|&i| q[i as usize]).collect()
}

/// Builds the persistent record for a finished canonical-spec synthesis.
fn record_of(canonical: &Spec, name: &str, r: &PermutedSynthesisResult) -> StoredCircuit {
    let solutions = r.result.solutions();
    let best = solutions.best_by_quantum_cost();
    StoredCircuit::for_spec(
        canonical,
        name,
        r.result.depth(),
        cost::circuit_cost(best),
        solutions.count(),
        solutions.count_is_exact(),
        r.permutation.clone(),
        real::write_real(best),
    )
}

/// The worker loop: pop cold jobs, synthesize under the per-job governor
/// budgets, publish to index + store, fill the waiters' slot.
fn worker_loop(shared: &Arc<Shared>) {
    let mut session = SynthesisSession::new();
    while let Some(job) = shared.queue.pop() {
        // The class may have landed while this job sat in the queue
        // (preload + concurrent client): serve it without an engine.
        let existing = shared
            .index
            .lock()
            .expect("index lock")
            .get(&job.digest)
            .cloned();
        if let Some(record) = existing {
            publish(shared, job, Ok(record), false);
            continue;
        }
        Metrics::inc(&shared.metrics.engine_invocations);
        // Fresh cancel token per job: the template's budgets re-arm from
        // zero for every request (ResourceGovernor deadlines are
        // first-arming-wins per token).
        let options = shared.options.clone().with_cancel_token(CancelToken::new());
        let canonical = job.canonical.clone();
        let permute = job.permute;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if permute {
                synthesize_with_output_permutation_in(&canonical, &options, &mut session)
            } else {
                // Plain preload fill: solve the canonical spec under its
                // own labeling. The record's permutation is the search
                // identity, so the usual replay composition holds; only
                // class-wide depth minimality is waived (documented on
                // `ServeConfig::preload_permute`).
                qsyn_core::synthesize_in(&canonical, &options, &mut session)
                    .map(|r| PermutedSynthesisResult::plain(r, canonical.lines()))
            }
        }));
        match outcome {
            Ok(Ok(r)) => {
                let record = Arc::new(record_of(&job.canonical, &job.name, &r));
                publish(shared, job, Ok(record), true);
            }
            Ok(Err(e)) => publish(shared, job, Err(ServeError::Synthesis(e)), false),
            Err(_) => {
                // The session may hold poisoned engine state; replace it.
                session = SynthesisSession::new();
                publish(shared, job, Err(ServeError::WorkerPanicked), false);
            }
        }
    }
}

/// Publishes a finished job: index insert and store write-through (when
/// `fresh`), then slot fill and in-flight retirement — in that order, so
/// a request that misses both index and in-flight map is genuinely cold.
fn publish(
    shared: &Arc<Shared>,
    job: Job,
    outcome: Result<Arc<StoredCircuit>, ServeError>,
    fresh: bool,
) {
    if let Ok(record) = &outcome {
        shared
            .index
            .lock()
            .expect("index lock")
            .insert(job.digest, Arc::clone(record));
        if fresh {
            if let Some(store) = &shared.store {
                // fsync under the store mutex is the durability
                // serialization point — waived in
                // xtask/concheck-allowlist.txt (blocking-under-lock).
                let mut store = store.lock().expect("store lock");
                let mut attempt = store.put((**record).clone());
                if attempt.as_ref().is_err_and(|e| e.is_retryable()) {
                    attempt = store.put((**record).clone());
                }
                match attempt {
                    Ok(PutOutcome::Inserted | PutOutcome::AlreadyPresent) => {}
                    Err(e) => {
                        // Served from memory regardless; the record is
                        // re-synthesized after a restart. Count it.
                        Metrics::inc(&shared.metrics.errors);
                        eprintln!("qsyn-serve: store write failed for {}: {e}", job.name);
                    }
                }
            }
        }
    }
    job.slot.fill(outcome);
    shared
        .inflight
        .lock()
        .expect("inflight lock")
        .remove(&job.digest);
}

/// Serves the line protocol on `listener` until a `shutdown` verb
/// arrives, then drains and returns the final snapshot. One thread per
/// connection; the caller prints the listening address.
///
/// # Errors
///
/// Only on accept-loop I/O failures; per-connection errors are answered
/// on the wire and logged, never fatal.
pub fn serve_tcp(listener: TcpListener, core: &Arc<ServeCore>) -> std::io::Result<MetricsSnapshot> {
    let local = listener.local_addr()?;
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let (stream, _) = listener.accept()?;
        if core.is_closing() {
            break;
        }
        let core = Arc::clone(core);
        let local = local.to_string();
        let handle = std::thread::Builder::new()
            .name("qsyn-serve-conn".to_string())
            .spawn(move || {
                if let Err(e) = handle_connection(stream, &core, &local) {
                    eprintln!("qsyn-serve: connection error: {e}");
                }
            })?;
        connections.push(handle);
        connections.retain(|h| !h.is_finished());
    }
    for h in connections {
        let _ = h.join();
    }
    Ok(core.stop())
}

/// One client connection: read request lines until EOF, answer each.
fn handle_connection(
    stream: TcpStream,
    core: &Arc<ServeCore>,
    local_addr: &str,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = dispatch(core, &line, local_addr);
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if core.is_closing() {
            break;
        }
    }
    Ok(())
}

/// Executes one request line and renders its reply line.
fn dispatch(core: &Arc<ServeCore>, line: &str, local_addr: &str) -> String {
    match protocol::parse_request(line) {
        Err(e) => protocol::render_error(&e, false),
        Ok(protocol::Request::Ping) => protocol::render_pong(),
        Ok(protocol::Request::Stats) => protocol::render_stats(&core.snapshot()),
        Ok(protocol::Request::Shutdown) => {
            core.begin_shutdown();
            // Unblock the accept loop so serve_tcp observes the flag.
            let _ = TcpStream::connect(local_addr);
            protocol::render_closing()
        }
        Ok(protocol::Request::Synth { name, spec, bench }) => {
            let (name, spec) = match resolve_spec(name, spec, bench) {
                Ok(pair) => pair,
                Err(e) => return protocol::render_error(&e, false),
            };
            match core.request(&name, &spec) {
                Ok(served) => protocol::render_synth_reply(&protocol::SynthReply {
                    source: served.source.as_str().to_string(),
                    name,
                    depth: served.record.depth,
                    solutions: served.record.count_display(),
                    quantum_cost: served.record.quantum_cost,
                    permutation: served.permutation,
                    circuit: served.record.circuit.clone(),
                    elapsed_us: served.elapsed.as_micros() as u64,
                }),
                Err(e) => protocol::render_error(&e.to_string(), e.is_retryable()),
            }
        }
    }
}

/// Resolves a synth request's `spec`/`bench` fields to a named [`Spec`].
fn resolve_spec(
    name: Option<String>,
    spec: Option<String>,
    bench: Option<String>,
) -> Result<(String, Spec), String> {
    if let Some(bench) = bench {
        let b = qsyn_revlogic::benchmarks::by_name(&bench)
            .ok_or_else(|| format!("unknown benchmark {bench:?}"))?;
        return Ok((name.unwrap_or_else(|| bench.clone()), b.spec));
    }
    let text = spec.ok_or("synth needs a \"spec\" or a \"bench\" field")?;
    let parsed = qsyn_revlogic::spec_format::parse_spec(&text).map_err(|e| e.to_string())?;
    Ok((name.unwrap_or_else(|| "spec".to_string()), parsed))
}

/// Client helper: one request line, one reply line, over a fresh
/// connection.
///
/// # Errors
///
/// Propagates connection and I/O failures; a daemon that closes without
/// replying surfaces as `UnexpectedEof`.
pub fn roundtrip(addr: &str, line: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reply = String::new();
    let mut reader = BufReader::new(stream);
    reader.read_line(&mut reply)?;
    if reply.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "daemon closed the connection without replying",
        ));
    }
    Ok(reply.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_revlogic::Permutation;

    fn cnot_spec() -> Spec {
        Spec::from_permutation(&Permutation::from_map(2, vec![0, 3, 2, 1]))
    }

    /// The same function phrased under a different output permutation —
    /// output bits of [`cnot_spec`] swapped (`f'(x) = swap(f(x))`): must
    /// hit the same canonical record.
    fn cnot_spec_swapped() -> Spec {
        Spec::from_permutation(&Permutation::from_map(2, vec![0, 3, 1, 2]))
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            workers: 1,
            queue_capacity: 4,
            max_depth: 6,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn second_request_is_a_store_hit_without_an_engine() {
        let core = ServeCore::start(&quick_config(), None);
        let first = core.request("cnot", &cnot_spec()).unwrap();
        assert_eq!(first.source, Source::Engine);
        let invocations_after_first = core.snapshot().engine_invocations;
        assert_eq!(invocations_after_first, 1);

        let second = core.request("cnot", &cnot_spec()).unwrap();
        assert_eq!(second.source, Source::Store);
        // Equivalent-under-permutation request also hits, with a
        // different composed permutation.
        let third = core.request("cnot-swapped", &cnot_spec_swapped()).unwrap();
        assert_eq!(third.source, Source::Store);
        assert!(cnot_spec_swapped().num_rows() > 0);

        let s = core.snapshot();
        assert_eq!(s.engine_invocations, 1, "repeats must not re-synthesize");
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.requests, 3);

        // Every reply's circuit must realize the requested spec through
        // its composed permutation.
        for (spec, served) in [(cnot_spec(), &second), (cnot_spec_swapped(), &third)] {
            let circuit = real::parse_real(&served.record.circuit).unwrap();
            for row in 0..spec.num_rows() as u32 {
                let out = circuit.simulate(row);
                let sr = spec.row(row);
                for (j, &p) in served.permutation.iter().enumerate() {
                    let bit = 1u32 << j;
                    if sr.care & bit != 0 {
                        assert_eq!((out >> p) & 1, (sr.value >> j) & 1, "row {row} line {j}");
                    }
                }
            }
        }
    }

    #[test]
    fn disk_store_round_trips_through_restart() {
        let path =
            std::env::temp_dir().join(format!("qsyn-serve-restart-{}.qstore", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let store = Store::open(&path).unwrap();
            let core = ServeCore::start(&quick_config(), Some(store));
            core.request("cnot", &cnot_spec()).unwrap();
            assert_eq!(core.snapshot().store_records, 1);
            core.stop();
        }
        // A restarted daemon serves the class from disk: zero engine
        // invocations.
        let store = Store::open(&path).unwrap();
        assert_eq!(store.truncated_tail_bytes(), 0);
        let core = ServeCore::start(&quick_config(), Some(store));
        let served = core.request("cnot", &cnot_spec()).unwrap();
        assert_eq!(served.source, Source::Store);
        let s = core.snapshot();
        assert_eq!(s.engine_invocations, 0);
        assert_eq!(s.hits, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn admission_control_bounces_when_the_queue_is_full() {
        // Filling the core's queue deterministically would need a worker
        // paused mid-job; exercise the primitive and the error mapping
        // directly instead (the request-path plumbing is three lines).
        let q: WorkQueue<u32> = WorkQueue::bounded(1);
        q.try_push(1).unwrap();
        assert!(q.try_push(2).is_err());
        // The ServeError it maps to is retryable.
        let e = ServeError::Overloaded { pending: 1 };
        assert!(e.is_retryable());
        assert!(e.to_string().contains("overloaded"));
    }

    #[test]
    fn preload_then_requests_all_hit() {
        let core = ServeCore::start(&quick_config(), None);
        let jobs: Vec<(String, Spec)> = vec![
            ("cnot".to_string(), cnot_spec()),
            ("cnot-swapped".to_string(), cnot_spec_swapped()),
        ];
        let (served, failed) = core.preload(&jobs);
        assert_eq!((served, failed), (2, 0));
        // Both phrasings share one class: one engine run total.
        assert_eq!(core.snapshot().engine_invocations, 1);
        let r = core.request("again", &cnot_spec()).unwrap();
        assert_eq!(r.source, Source::Store);
        assert_eq!(core.snapshot().engine_invocations, 1);
    }

    #[test]
    fn plain_preload_records_replay_correctly_for_every_class_member() {
        // SWAP's class contains the identity, so its canonical
        // representative needs zero gates — the case where a plain
        // (default) preload and a permuted one differ most. The worker
        // solves the *canonical* spec, so the stored record must still
        // answer the original phrasing through permutation composition.
        let swap = Spec::from_permutation(&Permutation::from_map(2, vec![0, 2, 1, 3]));
        let core = ServeCore::start(&quick_config(), None);
        assert!(!quick_config().preload_permute, "plain is the default");
        let (served, failed) = core.preload(&[("swap".to_string(), swap.clone())]);
        assert_eq!((served, failed), (1, 0));

        let r = core.request("swap-again", &swap).unwrap();
        assert_eq!(r.source, Source::Store);
        assert_eq!(
            core.snapshot().engine_invocations,
            1,
            "the preload fill is the only engine run"
        );
        let circuit = real::parse_real(&r.record.circuit).unwrap();
        for row in 0..swap.num_rows() as u32 {
            let out = circuit.simulate(row);
            let sr = swap.row(row);
            for (j, &p) in r.permutation.iter().enumerate() {
                let bit = 1u32 << j;
                if sr.care & bit != 0 {
                    assert_eq!((out >> p) & 1, (sr.value >> j) & 1, "row {row} line {j}");
                }
            }
        }
    }

    #[test]
    fn errors_are_not_cached() {
        let mut config = quick_config();
        config.max_depth = 0; // CNOT needs 1 gate: depth cap trips
        let core = ServeCore::start(&config, None);
        let err = core.request("cnot", &cnot_spec()).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Synthesis(SynthesisError::DepthLimitReached { .. })
        ));
        assert!(!err.is_retryable());
        let s = core.snapshot();
        assert_eq!(s.errors, 1);
        assert_eq!(s.store_records, 0, "failures must not enter the store");
        // The in-flight entry was retired: a retry schedules a fresh job
        // (and fails the same way) instead of deadlocking.
        let err = core.request("cnot", &cnot_spec()).unwrap_err();
        assert!(matches!(err, ServeError::Synthesis(_)));
    }

    #[test]
    fn tcp_round_trip_hit_miss_stats_shutdown() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let core = Arc::new(ServeCore::start(&quick_config(), None));
        let server = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || serve_tcp(listener, &core).unwrap())
        };

        let ping = roundtrip(&addr, &protocol::render_verb_request("ping")).unwrap();
        assert_eq!(ping, protocol::render_pong());

        // Cold miss by benchmark name…
        let line = protocol::render_synth_request(None, None, Some("3_17"));
        let reply = protocol::parse_synth_reply(&roundtrip(&addr, &line).unwrap()).unwrap();
        assert_eq!(reply.source, "engine");
        assert_eq!(reply.name, "3_17");
        assert!(reply.depth > 0);
        // …then a repeat: served from the store, no new engine run.
        let reply2 = protocol::parse_synth_reply(&roundtrip(&addr, &line).unwrap()).unwrap();
        assert_eq!(reply2.source, "store");
        assert_eq!(reply2.depth, reply.depth);
        assert_eq!(reply2.circuit, reply.circuit);

        let stats_line = roundtrip(&addr, &protocol::render_verb_request("stats")).unwrap();
        let stats = protocol::parse_stats(&stats_line).unwrap();
        assert_eq!(stats.engine_invocations, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);

        // Bad requests answer on the wire, they don't kill the daemon.
        let (msg, retryable) =
            protocol::parse_error(&roundtrip(&addr, "{\"verb\":\"nope\"}").unwrap()).unwrap();
        assert!(msg.contains("nope"));
        assert!(!retryable);

        let bye = roundtrip(&addr, &protocol::render_verb_request("shutdown")).unwrap();
        assert_eq!(bye, protocol::render_closing());
        let final_stats = server.join().unwrap();
        assert_eq!(final_stats.engine_invocations, 1);
    }
}
