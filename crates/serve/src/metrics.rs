//! Serving-path observability: request counters and latency histograms.
//!
//! Counters are lock-free (`Relaxed` atomics — they are statistics, no
//! other memory depends on their order) so the hot hit path never takes a
//! metrics lock. Latencies go into a log2-bucketed histogram: exact
//! enough for p50/p90/p99 reporting, fixed-size, and recordable with one
//! atomic increment.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 latency buckets. Bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds, bucket 0 also catches 0; 40 buckets
/// cover ~12 days, far beyond any request deadline.
const BUCKETS: usize = 40;

/// A log2-bucketed latency histogram over microseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A histogram with every bucket empty.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample of `micros` microseconds.
    pub fn record(&self, micros: u64) {
        let idx = (63 - u64::leading_zeros(micros.max(1)) as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bound (in microseconds) of the bucket containing the
    /// `p`-th percentile sample, or 0 when the histogram is empty.
    /// `p` is in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

/// All serving-path counters. One instance lives for the daemon's
/// lifetime; snapshots are taken for the `STATS` verb and `--stats`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Synthesis requests received (any outcome).
    pub requests: AtomicU64,
    /// Requests answered from the in-memory/store index without
    /// scheduling work.
    pub hits: AtomicU64,
    /// Requests that scheduled a cold synthesis job.
    pub misses: AtomicU64,
    /// Requests that found their class already being synthesized and
    /// joined the in-flight job instead of scheduling a duplicate.
    pub inflight_dedup: AtomicU64,
    /// Times a worker actually constructed and ran a synthesis engine.
    /// The acceptance criterion for store-served repeats: this stays flat
    /// while hits climb.
    pub engine_invocations: AtomicU64,
    /// Requests bounced by admission control (work queue full).
    pub rejected: AtomicU64,
    /// Requests that ended in an error (synthesis failure, worker panic),
    /// plus store write-through failures that survived their retry.
    pub errors: AtomicU64,
    /// Per-request wall-clock latency.
    pub latency: Histogram,
}

/// A point-in-time copy of [`Metrics`], plus store gauges, for rendering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`Metrics::requests`].
    pub requests: u64,
    /// See [`Metrics::hits`].
    pub hits: u64,
    /// See [`Metrics::misses`].
    pub misses: u64,
    /// See [`Metrics::inflight_dedup`].
    pub inflight_dedup: u64,
    /// See [`Metrics::engine_invocations`].
    pub engine_invocations: u64,
    /// See [`Metrics::rejected`].
    pub rejected: u64,
    /// See [`Metrics::errors`].
    pub errors: u64,
    /// Records in the circuit database (memory index size when no disk
    /// store is attached).
    pub store_records: u64,
    /// Committed bytes of the store file (0 without a disk store).
    pub store_bytes: u64,
    /// Median request latency (bucket upper bound, µs).
    pub p50_us: u64,
    /// 90th-percentile request latency (bucket upper bound, µs).
    pub p90_us: u64,
    /// 99th-percentile request latency (bucket upper bound, µs).
    pub p99_us: u64,
}

impl Metrics {
    /// A fresh, all-zero metrics block.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Snapshots every counter, attaching the caller-supplied store
    /// gauges.
    pub fn snapshot(&self, store_records: u64, store_bytes: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inflight_dedup: self.inflight_dedup.load(Ordering::Relaxed),
            engine_invocations: self.engine_invocations.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            store_records,
            store_bytes,
            p50_us: self.latency.percentile(50.0),
            p90_us: self.latency.percentile(90.0),
            p99_us: self.latency.percentile(99.0),
        }
    }

    /// Bumps a counter by one (`Relaxed`; statistics only).
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {} ({} hits, {} misses, {} deduped in-flight, {} rejected, {} errors)",
            self.requests, self.hits, self.misses, self.inflight_dedup, self.rejected, self.errors
        )?;
        writeln!(f, "engine invocations: {}", self.engine_invocations)?;
        writeln!(
            f,
            "store: {} records, {} bytes",
            self.store_records, self.store_bytes
        )?;
        write!(
            f,
            "latency: p50 ≤ {}µs, p90 ≤ {}µs, p99 ≤ {}µs",
            self.p50_us, self.p90_us, self.p99_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let h = Histogram::new();
        // 90 fast samples (~8µs bucket), 10 slow (~1024µs bucket).
        for _ in 0..90 {
            h.record(8);
        }
        for _ in 0..10 {
            h.record(1024);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(50.0), 16); // bucket [8, 16)
        assert_eq!(h.percentile(90.0), 16);
        assert_eq!(h.percentile(99.0), 2048); // bucket [1024, 2048)
    }

    #[test]
    fn zero_latency_lands_in_the_first_bucket() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(100.0), 2);
    }

    #[test]
    fn snapshot_copies_counters_and_gauges() {
        let m = Metrics::new();
        Metrics::inc(&m.requests);
        Metrics::inc(&m.requests);
        Metrics::inc(&m.hits);
        m.latency.record(5);
        let s = m.snapshot(7, 4096);
        assert_eq!(s.requests, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.store_records, 7);
        assert_eq!(s.store_bytes, 4096);
        assert!(s.p50_us > 0);
        let text = s.to_string();
        assert!(text.contains("2 ("), "{text}");
        assert!(text.contains("7 records"), "{text}");
    }
}
