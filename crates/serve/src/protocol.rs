//! The wire protocol: newline-delimited JSON, one object per line.
//!
//! # Grammar
//!
//! Requests (client → daemon), discriminated by the `verb` field:
//!
//! ```text
//! {"verb":"synth","name":NAME?,"spec":SPEC_TEXT}   synthesize a .spec body
//! {"verb":"synth","bench":BENCH_NAME}              synthesize a Table 1 benchmark
//! {"verb":"stats"}                                 counters + latency percentiles
//! {"verb":"ping"}                                  liveness probe
//! {"verb":"shutdown"}                              stop accepting, drain, exit
//! ```
//!
//! Responses (daemon → client), one line per request, `ok` first:
//!
//! ```text
//! {"ok":true,"source":"store"|"engine","name":...,"depth":D,
//!  "solutions":"N"|"≥N","quantum_cost":QC,"permutation":"[r0, r1, …]",
//!  "circuit":REAL_TEXT,"elapsed_us":T}
//! {"ok":true,"requests":…,…,"p99_us":…}            (stats)
//! {"ok":true,"pong":1}                             (ping)
//! {"ok":true,"closing":1}                          (shutdown acknowledge)
//! {"ok":false,"error":MESSAGE,"retryable":0|1}
//! ```
//!
//! Field scanning reuses the batch journal's JSON helpers
//! (`qsyn_portfolio::journal`): the same minimal escaping rules on both
//! sides of the wire, and no JSON dependency. The `permutation` is
//! rendered in the journal's `"[0, 1]"` debug form so journal and serve
//! outputs are directly comparable.

use crate::metrics::MetricsSnapshot;
use qsyn_portfolio::journal::{json_string, number_field, string_field};

/// A parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Synthesize a specification, given inline (`spec`, `.spec` format)
    /// or by Table 1 benchmark name (`bench`).
    Synth {
        /// Job label for replies and store records; defaults to the bench
        /// name or `"spec"`.
        name: Option<String>,
        /// Inline `.spec` text (mutually exclusive with `bench`).
        spec: Option<String>,
        /// Benchmark-suite name (mutually exclusive with `spec`).
        bench: Option<String>,
    },
    /// Report counters and latency percentiles.
    Stats,
    /// Liveness probe.
    Ping,
    /// Drain and stop the daemon.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message (rendered back over the wire with
/// [`render_error`]) when the verb is missing, unknown, or `synth` names
/// neither a spec nor a benchmark.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let verb = string_field(line, "verb").ok_or("missing \"verb\" field")?;
    match verb.as_str() {
        "synth" => {
            let spec = string_field(line, "spec");
            let bench = string_field(line, "bench");
            if spec.is_none() && bench.is_none() {
                return Err("synth needs a \"spec\" or a \"bench\" field".to_string());
            }
            if spec.is_some() && bench.is_some() {
                return Err("synth takes \"spec\" or \"bench\", not both".to_string());
            }
            Ok(Request::Synth {
                name: string_field(line, "name"),
                spec,
                bench,
            })
        }
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        v => Err(format!("unknown verb {v:?}")),
    }
}

/// Renders a synth request line (the client side of [`parse_request`]).
pub fn render_synth_request(name: Option<&str>, spec: Option<&str>, bench: Option<&str>) -> String {
    let mut out = String::from("{\"verb\":\"synth\"");
    if let Some(n) = name {
        out.push_str(&format!(",\"name\":{}", json_string(n)));
    }
    if let Some(s) = spec {
        out.push_str(&format!(",\"spec\":{}", json_string(s)));
    }
    if let Some(b) = bench {
        out.push_str(&format!(",\"bench\":{}", json_string(b)));
    }
    out.push('}');
    out
}

/// Renders a bare-verb request line (`stats`, `ping`, `shutdown`).
pub fn render_verb_request(verb: &str) -> String {
    format!("{{\"verb\":{}}}", json_string(verb))
}

/// A successful synthesis answer, wire-ready.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthReply {
    /// `"store"` when answered from the circuit database without any
    /// engine work this request, `"engine"` when synthesis ran (or was
    /// joined in flight).
    pub source: String,
    /// Job label.
    pub name: String,
    /// Minimal gate count.
    pub depth: u32,
    /// Solution count, `count_display` form (`"N"` or `"≥N"`).
    pub solutions: String,
    /// Quantum cost of the returned circuit.
    pub quantum_cost: u64,
    /// Output permutation for the *requested* spec: entry `j` is the
    /// circuit output line driving spec line `j`.
    pub permutation: Vec<u32>,
    /// The circuit, RevLib `.real` text.
    pub circuit: String,
    /// Request wall-clock latency in microseconds.
    pub elapsed_us: u64,
}

/// Renders a [`SynthReply`] as its response line.
pub fn render_synth_reply(r: &SynthReply) -> String {
    format!(
        "{{\"ok\":true,\"source\":{},\"name\":{},\"depth\":{},\"solutions\":{},\
         \"quantum_cost\":{},\"permutation\":{},\"circuit\":{},\"elapsed_us\":{}}}",
        json_string(&r.source),
        json_string(&r.name),
        r.depth,
        json_string(&r.solutions),
        r.quantum_cost,
        json_string(&format!("{:?}", r.permutation)),
        json_string(&r.circuit),
        r.elapsed_us,
    )
}

/// Parses a synth response line (the client side of
/// [`render_synth_reply`]); `None` when the line is not a well-formed
/// success reply.
pub fn parse_synth_reply(line: &str) -> Option<SynthReply> {
    if !line.starts_with("{\"ok\":true") {
        return None;
    }
    let permutation: Vec<u32> = string_field(line, "permutation")?
        .trim_start_matches('[')
        .trim_end_matches(']')
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse().ok())
        .collect::<Option<_>>()?;
    Some(SynthReply {
        source: string_field(line, "source")?,
        name: string_field(line, "name")?,
        depth: number_field(line, "depth")? as u32,
        solutions: string_field(line, "solutions")?,
        quantum_cost: number_field(line, "quantum_cost")?,
        permutation,
        circuit: string_field(line, "circuit")?,
        elapsed_us: number_field(line, "elapsed_us")?,
    })
}

/// Renders an error response line.
pub fn render_error(message: &str, retryable: bool) -> String {
    format!(
        "{{\"ok\":false,\"error\":{},\"retryable\":{}}}",
        json_string(message),
        u8::from(retryable)
    )
}

/// Parses an error response: `Some((message, retryable))`.
pub fn parse_error(line: &str) -> Option<(String, bool)> {
    if !line.starts_with("{\"ok\":false") {
        return None;
    }
    Some((
        string_field(line, "error")?,
        number_field(line, "retryable")? != 0,
    ))
}

/// Renders the `stats` response line.
pub fn render_stats(s: &MetricsSnapshot) -> String {
    format!(
        "{{\"ok\":true,\"requests\":{},\"hits\":{},\"misses\":{},\"inflight_dedup\":{},\
         \"engine_invocations\":{},\"rejected\":{},\"errors\":{},\"store_records\":{},\
         \"store_bytes\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{}}}",
        s.requests,
        s.hits,
        s.misses,
        s.inflight_dedup,
        s.engine_invocations,
        s.rejected,
        s.errors,
        s.store_records,
        s.store_bytes,
        s.p50_us,
        s.p90_us,
        s.p99_us,
    )
}

/// Parses a `stats` response line back into a snapshot.
pub fn parse_stats(line: &str) -> Option<MetricsSnapshot> {
    if !line.starts_with("{\"ok\":true") {
        return None;
    }
    Some(MetricsSnapshot {
        requests: number_field(line, "requests")?,
        hits: number_field(line, "hits")?,
        misses: number_field(line, "misses")?,
        inflight_dedup: number_field(line, "inflight_dedup")?,
        engine_invocations: number_field(line, "engine_invocations")?,
        rejected: number_field(line, "rejected")?,
        errors: number_field(line, "errors")?,
        store_records: number_field(line, "store_records")?,
        store_bytes: number_field(line, "store_bytes")?,
        p50_us: number_field(line, "p50_us")?,
        p90_us: number_field(line, "p90_us")?,
        p99_us: number_field(line, "p99_us")?,
    })
}

/// The `ping` acknowledgement line.
pub fn render_pong() -> String {
    "{\"ok\":true,\"pong\":1}".to_string()
}

/// The `shutdown` acknowledgement line.
pub fn render_closing() -> String {
    "{\"ok\":true,\"closing\":1}".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let line = render_synth_request(Some("job1"), Some(".numvars 2\nrows\n"), None);
        assert_eq!(
            parse_request(&line).unwrap(),
            Request::Synth {
                name: Some("job1".to_string()),
                spec: Some(".numvars 2\nrows\n".to_string()),
                bench: None,
            }
        );
        let line = render_synth_request(None, None, Some("3_17"));
        assert_eq!(
            parse_request(&line).unwrap(),
            Request::Synth {
                name: None,
                spec: None,
                bench: Some("3_17".to_string()),
            }
        );
        for verb in ["stats", "ping", "shutdown"] {
            let parsed = parse_request(&render_verb_request(verb)).unwrap();
            let expect = match verb {
                "stats" => Request::Stats,
                "ping" => Request::Ping,
                _ => Request::Shutdown,
            };
            assert_eq!(parsed, expect);
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        assert!(parse_request("{}").unwrap_err().contains("verb"));
        assert!(parse_request("{\"verb\":\"nope\"}")
            .unwrap_err()
            .contains("nope"));
        assert!(parse_request("{\"verb\":\"synth\"}")
            .unwrap_err()
            .contains("spec"));
        assert!(
            parse_request("{\"verb\":\"synth\",\"spec\":\"x\",\"bench\":\"y\"}")
                .unwrap_err()
                .contains("not both")
        );
    }

    #[test]
    fn synth_replies_round_trip_with_escaped_text() {
        let reply = SynthReply {
            source: "store".to_string(),
            name: "rd32-v0".to_string(),
            depth: 4,
            solutions: "≥1".to_string(),
            quantum_cost: 12,
            permutation: vec![2, 0, 1],
            circuit: ".numvars 3\n.begin\nt2 x1 x2\n.end\n".to_string(),
            elapsed_us: 137,
        };
        let line = render_synth_reply(&reply);
        assert!(!line.contains('\n'), "one line per reply: {line}");
        assert_eq!(parse_synth_reply(&line), Some(reply));
        assert_eq!(parse_error(&line), None);
    }

    #[test]
    fn errors_round_trip() {
        let line = render_error("queue full: 8 jobs pending", true);
        assert_eq!(
            parse_error(&line),
            Some(("queue full: 8 jobs pending".to_string(), true))
        );
        assert_eq!(parse_synth_reply(&line), None);
        let (_, retryable) = parse_error(&render_error("bad spec", false)).unwrap();
        assert!(!retryable);
    }

    #[test]
    fn stats_round_trip() {
        let snapshot = MetricsSnapshot {
            requests: 10,
            hits: 6,
            misses: 3,
            inflight_dedup: 1,
            engine_invocations: 3,
            rejected: 0,
            errors: 0,
            store_records: 3,
            store_bytes: 999,
            p50_us: 16,
            p90_us: 32,
            p99_us: 4096,
        };
        assert_eq!(parse_stats(&render_stats(&snapshot)), Some(snapshot));
    }
}
