//! Audit outcome types shared by every auditor family.

/// Which auditor family produced a violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AuditFamily {
    /// BDD manager consistency ([`crate::bdd_audit`]).
    Bdd,
    /// CNF / QBF well-formedness ([`crate::formula_audit`]).
    Formula,
    /// Reversible-circuit linting ([`crate::circuit_audit`]).
    Circuit,
}

impl std::fmt::Display for AuditFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditFamily::Bdd => write!(f, "bdd"),
            AuditFamily::Formula => write!(f, "formula"),
            AuditFamily::Circuit => write!(f, "circuit"),
        }
    }
}

/// One broken invariant, named and located.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable identifier of the check that fired (e.g. `"bdd.ordering"`).
    pub check: &'static str,
    /// Human-readable description pinpointing the offending object.
    pub detail: String,
}

impl Violation {
    /// Creates a violation for `check` with the given detail text.
    pub fn new(check: &'static str, detail: impl Into<String>) -> Violation {
        Violation {
            check,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// A failed audit: every violation found in one pass over the artifact.
///
/// Auditors collect *all* violations rather than stopping at the first —
/// when a corruption cascades (a bad node falsifies several cached
/// results), the full list is what makes the root cause findable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditError {
    /// The family whose invariants were violated.
    pub family: AuditFamily,
    /// All violations found, in discovery order. Never empty.
    pub violations: Vec<Violation>,
}

impl AuditError {
    /// Wraps a non-empty violation list; returns `Ok(())` for an empty one.
    pub fn from_violations(
        family: AuditFamily,
        violations: Vec<Violation>,
    ) -> Result<(), AuditError> {
        if violations.is_empty() {
            Ok(())
        } else {
            Err(AuditError { family, violations })
        }
    }
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} audit failed with {} violation(s):",
            self.family,
            self.violations.len()
        )?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AuditError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_violation_list_is_ok() {
        assert!(AuditError::from_violations(AuditFamily::Bdd, Vec::new()).is_ok());
    }

    #[test]
    fn display_lists_every_violation() {
        let err = AuditError {
            family: AuditFamily::Circuit,
            violations: vec![
                Violation::new("circuit.bounds", "gate 0 exceeds 3 lines"),
                Violation::new("circuit.bijective", "states 2 and 3 collide"),
            ],
        };
        let s = err.to_string();
        assert!(s.contains("2 violation(s)"));
        assert!(s.contains("[circuit.bounds]"));
        assert!(s.contains("[circuit.bijective]"));
    }
}
