//! Formula audit: CNF and prenex-QBF well-formedness.
//!
//! The synthesis encodings (Section 3.2 of the paper) produce large machine
//! generated formulas; a single out-of-range literal or accidentally
//! tautological clause silently changes what is being solved. This module
//! re-checks:
//!
//! * **CNF** — every literal mentions a declared variable; no clause
//!   contains a duplicate literal or both polarities of a variable.
//! * **QBF** — the prefix is well-formed (variables in range, none
//!   quantified twice, adjacent blocks alternate, the per-variable bound
//!   flags agree with the prefix) and, for encodings that must be closed,
//!   every variable occurring in the matrix is quantified.
//!
//! `CnfFormula::add_clause` and `QbfFormula::add_block` enforce most of
//! this at construction time; the audit exists for clause lists produced
//! by other paths (parsers, incremental solvers, [`qsyn_sat::Clause::raw`])
//! and as an independent witness that the constructors did their job.

use qsyn_qbf::QbfFormula;
use qsyn_sat::{Clause, CnfFormula};

use crate::report::{AuditError, AuditFamily, Violation};

/// Audits a raw clause list against a declared variable universe.
///
/// This is the workhorse shared by [`audit_cnf`] and [`audit_qbf`]; it is
/// public so clause lists that never passed through `CnfFormula` (DIMACS
/// parsing, proof logs) can be checked too.
///
/// # Errors
///
/// Returns every violation found; see [`AuditError`].
pub fn audit_clauses(num_vars: u32, clauses: &[Clause]) -> Result<(), AuditError> {
    let mut violations = Vec::new();
    collect_clause_violations(num_vars, clauses, &mut violations);
    AuditError::from_violations(AuditFamily::Formula, violations)
}

fn collect_clause_violations(num_vars: u32, clauses: &[Clause], out: &mut Vec<Violation>) {
    for (i, clause) in clauses.iter().enumerate() {
        let lits = clause.lits();
        for l in lits {
            if l.var().0 >= num_vars {
                out.push(Violation::new(
                    "formula.lit-range",
                    format!("clause {i} literal {l} exceeds {num_vars} variables"),
                ));
            }
        }
        for (a, la) in lits.iter().enumerate() {
            for lb in &lits[a + 1..] {
                if la == lb {
                    out.push(Violation::new(
                        "formula.duplicate-lit",
                        format!("clause {i} repeats literal {la}"),
                    ));
                } else if la.var() == lb.var() {
                    out.push(Violation::new(
                        "formula.tautology",
                        format!("clause {i} contains both polarities of {}", la.var()),
                    ));
                }
            }
        }
    }
}

/// Audits a CNF formula: clause well-formedness over its declared universe.
///
/// # Errors
///
/// Returns every violation found; see [`AuditError`].
pub fn audit_cnf(f: &CnfFormula) -> Result<(), AuditError> {
    audit_clauses(f.num_vars(), f.clauses())
}

/// Audits a prenex QBF. With `require_closed`, every variable that occurs
/// in the matrix must be bound by the prefix (the paper's synthesis
/// formulas are closed: free variables would mean the instance is
/// under-specified).
///
/// # Errors
///
/// Returns every violation found; see [`AuditError`].
pub fn audit_qbf(f: &QbfFormula, require_closed: bool) -> Result<(), AuditError> {
    let mut violations = Vec::new();
    let num_vars = f.num_vars();

    let mut quantified = vec![false; num_vars as usize];
    let mut last_q = None;
    for (bi, (q, vars)) in f.prefix().iter().enumerate() {
        if vars.is_empty() {
            violations.push(Violation::new(
                "formula.empty-block",
                format!("prefix block {bi} is empty"),
            ));
        }
        if last_q == Some(*q) {
            violations.push(Violation::new(
                "formula.unmerged-blocks",
                format!("prefix blocks {} and {bi} share quantifier {q}", bi - 1),
            ));
        }
        last_q = Some(*q);
        for &v in vars {
            if v >= num_vars {
                violations.push(Violation::new(
                    "formula.prefix-range",
                    format!("prefix block {bi} quantifies out-of-range variable {v}"),
                ));
                continue;
            }
            if quantified[v as usize] {
                violations.push(Violation::new(
                    "formula.double-bind",
                    format!("variable {v} is quantified twice"),
                ));
            }
            quantified[v as usize] = true;
        }
    }

    // The formula's own bound flags must agree with the prefix we just
    // walked — a mismatch means the two views of the prefix diverged.
    for v in 0..num_vars {
        if f.is_bound(v) != quantified[v as usize] {
            violations.push(Violation::new(
                "formula.bound-flag",
                format!(
                    "variable {v}: bound flag says {}, prefix says {}",
                    f.is_bound(v),
                    quantified[v as usize]
                ),
            ));
        }
    }

    collect_clause_violations(num_vars, f.matrix().clauses(), &mut violations);

    if require_closed {
        for (i, clause) in f.matrix().clauses().iter().enumerate() {
            for l in clause.lits() {
                let v = l.var().0;
                if v < num_vars && !quantified[v as usize] {
                    violations.push(Violation::new(
                        "formula.free-var",
                        format!("clause {i} mentions free variable {v}"),
                    ));
                }
            }
        }
    }

    AuditError::from_violations(AuditFamily::Formula, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_qbf::Quantifier;
    use qsyn_sat::Lit;

    #[test]
    fn clean_cnf_passes() {
        let mut f = CnfFormula::new(4);
        f.add_clause([Lit::pos(0), Lit::neg(3)]);
        f.add_clause([Lit::neg(1), Lit::pos(2), Lit::pos(3)]);
        audit_cnf(&f).expect("clean CNF");
    }

    #[test]
    fn empty_clause_is_well_formed() {
        // Falsum is a legitimate (unsatisfiable) clause, not a corruption.
        audit_clauses(1, &[Clause::raw([])]).expect("empty clause allowed");
    }

    #[test]
    fn out_of_range_literal_is_caught() {
        let err = audit_clauses(2, &[Clause::raw([Lit::pos(5)])]).expect_err("range");
        assert!(err
            .violations
            .iter()
            .any(|v| v.check == "formula.lit-range"));
    }

    #[test]
    fn tautology_and_duplicate_are_caught() {
        let clauses = [
            Clause::raw([Lit::pos(0), Lit::neg(0)]),
            Clause::raw([Lit::pos(1), Lit::pos(1)]),
        ];
        let err = audit_clauses(2, &clauses).expect_err("tautology + duplicate");
        let checks: Vec<&str> = err.violations.iter().map(|v| v.check).collect();
        assert!(checks.contains(&"formula.tautology"));
        assert!(checks.contains(&"formula.duplicate-lit"));
    }

    #[test]
    fn clean_closed_qbf_passes() {
        let mut q = QbfFormula::new(3);
        q.add_block(Quantifier::Exists, [0, 2]);
        q.add_block(Quantifier::Forall, [1]);
        q.add_clause([Lit::pos(0), Lit::neg(1)]);
        q.add_clause([Lit::pos(2)]);
        audit_qbf(&q, true).expect("clean closed QBF");
    }

    #[test]
    fn free_matrix_variable_fails_closure() {
        let mut q = QbfFormula::new(2);
        q.add_block(Quantifier::Exists, [0]);
        q.add_clause([Lit::pos(0), Lit::pos(1)]);
        let err = audit_qbf(&q, true).expect_err("free var");
        assert!(err.violations.iter().any(|v| v.check == "formula.free-var"));
        // The same formula is fine when closure is not required.
        audit_qbf(&q, false).expect("open QBF allowed without closure");
    }

    #[test]
    fn unused_declared_variable_does_not_break_closure() {
        // Variable 1 is declared and unbound but never occurs in the
        // matrix — closure only cares about variables the matrix uses.
        let mut q = QbfFormula::new(2);
        q.add_block(Quantifier::Forall, [0]);
        q.add_clause([Lit::pos(0)]);
        audit_qbf(&q, true).expect("unused free var is harmless");
    }
}
