//! BDD manager audit: structural canonicity plus semantic spot-checks of
//! the operation cache.
//!
//! The manager's correctness argument rests on three structural invariants
//! (Bryant's reduction rules) and one behavioural one:
//!
//! 1. **Ordering** — every edge goes strictly downward in the variable
//!    order; terminals sit below everything.
//! 2. **No redundancy** — no node has `lo == hi` (such a node would be a
//!    no-op test and breaks canonicity).
//! 3. **Unique table agreement** — the `(var, lo, hi) → node` table and
//!    the node arena describe the same set of nodes, with no duplicate
//!    triples (hash consing is what makes equality checks O(1)).
//! 4. **Free-list integrity** — slots on the free list are genuinely dead:
//!    none is a terminal, none is listed twice, none still holds a live
//!    node, and no live node points into a freed slot. A violation here
//!    means a future allocation would overwrite a reachable function.
//! 5. **Cache soundness** — every memoized operation result actually
//!    equals the operation recomputed from scratch.
//!
//! Checks 1–4 are exact and cheap (one pass over the arena). Check 5 is
//! semantic: this module carries its *own* BDD evaluator (a plain
//! node-table walk, sharing no code with `qsyn-bdd`'s apply algorithm) and
//! compares a sample of cache entries against brute-force recomputation —
//! exhaustively over all `2^n` assignments when the manager is small,
//! otherwise over a deterministic pseudo-random sample.

use std::collections::{HashMap, HashSet};

use qsyn_bdd::{Bdd, CacheSample, CachedOp, Manager, NodeEntry};

use crate::report::{AuditError, AuditFamily, Violation};

/// How many operation-cache entries [`audit_manager`] re-validates.
pub const CACHE_SAMPLE_LIMIT: usize = 32;

/// Managers with at most this many variables are checked over *all*
/// assignments; larger ones over [`SAMPLED_ENVS`] pseudo-random ones.
pub const EXHAUSTIVE_VAR_LIMIT: u32 = 8;

/// Number of sampled assignments used beyond [`EXHAUSTIVE_VAR_LIMIT`].
pub const SAMPLED_ENVS: usize = 256;

/// Quantifier cache entries over more than this many variables are skipped:
/// verifying `∃/∀ vars . f` requires enumerating all `2^|vars|` assignments
/// to the quantified block, and *sampling* that block is unsound (missing a
/// witness is not a mismatch).
const QUANT_BLOCK_LIMIT: usize = 8;

/// Audits `m` against invariants 1–5 above.
///
/// # Errors
///
/// Returns every violation found; see [`AuditError`].
pub fn audit_manager(m: &Manager) -> Result<(), AuditError> {
    let mut violations = Vec::new();
    let entries: Vec<NodeEntry> = m.node_entries().collect();
    // With the free list, live handles can index past the *live* count, so
    // range checks go against the allocated arena extent instead.
    let allocated = m.stats().allocated;
    let in_range = |f: Bdd| f.index() < allocated;

    let free = m.free_slot_ids();
    let live_ids: HashSet<Bdd> = entries.iter().map(|e| e.id).collect();
    let mut seen_free: HashSet<Bdd> = HashSet::new();
    for &slot in &free {
        if slot.is_terminal() {
            violations.push(Violation::new(
                "bdd.free-terminal",
                format!("terminal {slot:?} is on the free list"),
            ));
            continue;
        }
        if !in_range(slot) {
            violations.push(Violation::new(
                "bdd.free-range",
                format!("free slot {slot:?} lies outside the {allocated}-slot arena"),
            ));
            continue;
        }
        if !seen_free.insert(slot) {
            violations.push(Violation::new(
                "bdd.free-duplicate",
                format!("slot {slot:?} appears twice on the free list"),
            ));
            continue;
        }
        if live_ids.contains(&slot) || !m.slot_is_free(slot) {
            violations.push(Violation::new(
                "bdd.free-live",
                format!("slot {slot:?} is on the free list but still holds a live node"),
            ));
        }
    }
    // Conservation: every allocated slot is a terminal, a live node, or a
    // free slot — nothing is double-counted and nothing leaks.
    if allocated != entries.len() + 2 + free.len() {
        violations.push(Violation::new(
            "bdd.free-count",
            format!(
                "{allocated} allocated slots but {} live + 2 terminals + {} free",
                entries.len(),
                free.len()
            ),
        ));
    }

    let mut triples: HashMap<(u32, Bdd, Bdd), Bdd> = HashMap::new();
    for e in &entries {
        if e.var >= m.num_vars() {
            violations.push(Violation::new(
                "bdd.var-range",
                format!(
                    "node {:?} tests variable {} of {}",
                    e.id,
                    e.var,
                    m.num_vars()
                ),
            ));
            continue;
        }
        if !in_range(e.lo) || !in_range(e.hi) {
            violations.push(Violation::new(
                "bdd.child-range",
                format!(
                    "node {:?} has dangling child ({:?}, {:?})",
                    e.id, e.lo, e.hi
                ),
            ));
            continue;
        }
        if e.lo == e.hi {
            violations.push(Violation::new(
                "bdd.redundant",
                format!("node {:?} has identical children {:?}", e.id, e.lo),
            ));
        }
        for child in [e.lo, e.hi] {
            if m.slot_is_free(child) {
                violations.push(Violation::new(
                    "bdd.child-free",
                    format!("live node {:?} points at freed slot {child:?}", e.id),
                ));
                continue;
            }
            if m.raw_level(child) <= e.var {
                violations.push(Violation::new(
                    "bdd.ordering",
                    format!(
                        "node {:?} at level {} has child {:?} at level {}",
                        e.id,
                        e.var,
                        child,
                        m.raw_level(child)
                    ),
                ));
            }
        }
        if let Some(prev) = triples.insert((e.var, e.lo, e.hi), e.id) {
            violations.push(Violation::new(
                "bdd.duplicate",
                format!(
                    "nodes {prev:?} and {:?} share triple ({}, {:?}, {:?})",
                    e.id, e.var, e.lo, e.hi
                ),
            ));
        }
        match m.unique_entry(e.var, e.lo, e.hi) {
            Some(id) if id == e.id => {}
            Some(other) => violations.push(Violation::new(
                "bdd.unique-table",
                format!("unique table maps node {:?}'s triple to {other:?}", e.id),
            )),
            None => violations.push(Violation::new(
                "bdd.unique-table",
                format!("node {:?} missing from the unique table", e.id),
            )),
        }
    }

    // Only spot-check the cache on a structurally sound arena — the
    // evaluator below assumes well-formed nodes.
    if violations.is_empty() {
        let eval = Evaluator::new(&entries);
        for sample in m.cache_samples(CACHE_SAMPLE_LIMIT) {
            check_sample(m, &eval, &sample, &mut violations);
        }
    }

    AuditError::from_violations(AuditFamily::Bdd, violations)
}

/// Independent evaluator over a snapshot of the node table.
struct Evaluator {
    nodes: HashMap<Bdd, (u32, Bdd, Bdd)>,
}

impl Evaluator {
    fn new(entries: &[NodeEntry]) -> Evaluator {
        Evaluator {
            nodes: entries
                .iter()
                .map(|e| (e.id, (e.var, e.lo, e.hi)))
                .collect(),
        }
    }

    /// Evaluates `f` under `env` by walking the table; `None` if the walk
    /// hits a handle outside the snapshot.
    fn eval(&self, mut f: Bdd, env: &[bool]) -> Option<bool> {
        loop {
            if f == Bdd::ZERO {
                return Some(false);
            }
            if f == Bdd::ONE {
                return Some(true);
            }
            let &(var, lo, hi) = self.nodes.get(&f)?;
            f = if *env.get(var as usize)? { hi } else { lo };
        }
    }
}

fn check_sample(m: &Manager, eval: &Evaluator, sample: &CacheSample, out: &mut Vec<Violation>) {
    if let CachedOp::Exists { vars, .. }
    | CachedOp::Forall { vars, .. }
    | CachedOp::AndExists { vars, .. }
    | CachedOp::AndForall { vars, .. } = &sample.op
    {
        if vars.len() > QUANT_BLOCK_LIMIT {
            return; // see QUANT_BLOCK_LIMIT: sampling the block is unsound
        }
    }
    for env in envs(m.num_vars()) {
        let expected = match &sample.op {
            CachedOp::Ite { f, g, h } => {
                let (f, g, h) = (
                    eval.eval(*f, &env),
                    eval.eval(*g, &env),
                    eval.eval(*h, &env),
                );
                match (f, g, h) {
                    (Some(f), Some(g), Some(h)) => Some(if f { g } else { h }),
                    _ => None,
                }
            }
            CachedOp::Not { f } => eval.eval(*f, &env).map(|v| !v),
            CachedOp::Exists { f, vars } => quantify(eval, *f, vars, &env, false),
            CachedOp::Forall { f, vars } => quantify(eval, *f, vars, &env, true),
            CachedOp::Compose { f, var, g } => eval.eval(*g, &env).and_then(|gv| {
                let mut env2 = env.clone();
                env2[*var as usize] = gv;
                eval.eval(*f, &env2)
            }),
            CachedOp::Restrict { f, var, value } => {
                let mut env2 = env.clone();
                env2[*var as usize] = *value;
                eval.eval(*f, &env2)
            }
            CachedOp::AndExists { f, g, vars } => and_quantify(eval, *f, *g, vars, &env, false),
            CachedOp::AndForall { f, g, vars } => and_quantify(eval, *f, *g, vars, &env, true),
        };
        let actual = eval.eval(sample.result, &env);
        let (Some(expected), Some(actual)) = (expected, actual) else {
            out.push(Violation::new(
                "bdd.cache-dangling",
                format!("cache entry {:?} references unknown nodes", sample.op),
            ));
            return;
        };
        if expected != actual {
            out.push(Violation::new(
                "bdd.cache-stale",
                format!(
                    "cache entry {:?} claims {:?} but recomputation disagrees under {env:?}",
                    sample.op, sample.result
                ),
            ));
            return; // one witness per entry is enough
        }
    }
}

/// `∃/∀ vars . f` under `env`, by enumerating the quantified block.
fn quantify(eval: &Evaluator, f: Bdd, vars: &[u32], env: &[bool], forall: bool) -> Option<bool> {
    let mut env2 = env.to_vec();
    for combo in 0u32..(1 << vars.len()) {
        for (i, &v) in vars.iter().enumerate() {
            env2[v as usize] = combo >> i & 1 == 1;
        }
        let value = eval.eval(f, &env2)?;
        if value != forall {
            // ∃ found a witness / ∀ found a counterexample.
            return Some(!forall);
        }
    }
    Some(forall)
}

/// Fused `∃/∀ vars . (f ∧ g)` under `env`, by enumerating the quantified
/// block — the oracle for the manager's `and_exists`/`and_forall` entries.
fn and_quantify(
    eval: &Evaluator,
    f: Bdd,
    g: Bdd,
    vars: &[u32],
    env: &[bool],
    forall: bool,
) -> Option<bool> {
    let mut env2 = env.to_vec();
    for combo in 0u32..(1 << vars.len()) {
        for (i, &v) in vars.iter().enumerate() {
            env2[v as usize] = combo >> i & 1 == 1;
        }
        // Evaluate both conjuncts (no short-circuit) so a dangling handle
        // in either operand is reported rather than masked.
        let fv = eval.eval(f, &env2)?;
        let gv = eval.eval(g, &env2)?;
        if (fv && gv) != forall {
            // ∃ found a witness / ∀ found a counterexample.
            return Some(!forall);
        }
    }
    Some(forall)
}

/// The assignments to check: exhaustive for small managers, a fixed
/// deterministic pseudo-random sample (splitmix-style LCG) otherwise.
fn envs(num_vars: u32) -> Vec<Vec<bool>> {
    if num_vars <= EXHAUSTIVE_VAR_LIMIT {
        (0u32..(1 << num_vars))
            .map(|bits| (0..num_vars).map(|v| bits >> v & 1 == 1).collect())
            .collect()
    } else {
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state >> 33
        };
        (0..SAMPLED_ENVS)
            .map(|_| (0..num_vars).map(|v| next() >> (v % 31) & 1 == 1).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_manager() -> Manager {
        let mut m = Manager::new(5);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let d = m.var(3);
        let ab = m.and(a, b);
        let cd = m.xor(c, d);
        let f = m.or(ab, cd);
        let _ = m.exists(f, &[1, 2]);
        let _ = m.forall(f, &[0]);
        let _ = m.compose(f, 3, ab);
        let g = m.not(f);
        let _ = m.restrict(g, 2, true);
        m
    }

    #[test]
    fn clean_manager_passes() {
        audit_manager(&busy_manager()).expect("clean manager must audit green");
    }

    #[test]
    fn swapped_children_are_caught() {
        let mut m = busy_manager();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let (lo, hi) = m.children(ab);
        m.corrupt_node_for_audit(ab, m.raw_level(ab), hi, lo);
        let err = audit_manager(&m).expect_err("corruption must be rejected");
        assert_eq!(err.family, AuditFamily::Bdd);
    }

    #[test]
    fn redundant_node_is_caught() {
        let mut m = Manager::new(3);
        let v = m.var(2);
        m.corrupt_node_for_audit(v, 2, Bdd::ONE, Bdd::ONE);
        let err = audit_manager(&m).expect_err("redundant node must be rejected");
        assert!(err.violations.iter().any(|v| v.check == "bdd.redundant"));
    }

    #[test]
    fn ordering_violation_is_caught() {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b); // root at level 0 with a level-1 child
        let (lo, hi) = m.children(ab);
        // Claim the root tests variable 2: its children now sit above it.
        m.corrupt_node_for_audit(ab, 2, lo, hi);
        let err = audit_manager(&m).expect_err("ordering violation must be rejected");
        assert!(err.violations.iter().any(|v| v.check == "bdd.ordering"));
    }

    #[test]
    fn var_out_of_range_is_caught() {
        let mut m = Manager::new(2);
        let v = m.var(0);
        let (lo, hi) = m.children(v);
        m.corrupt_node_for_audit(v, 7, lo, hi);
        let err = audit_manager(&m).expect_err("out-of-range var must be rejected");
        assert!(err.violations.iter().any(|v| v.check == "bdd.var-range"));
    }

    #[test]
    fn collected_manager_audits_green() {
        let mut m = busy_manager();
        let a = m.var(0);
        let b = m.var(1);
        let keep = m.xor(a, b);
        let freed = m.collect_garbage(&[keep]);
        assert!(freed > 0, "the busy manager has garbage to free");
        audit_manager(&m).expect("a swept manager must still audit green");
        // Slot reuse after the sweep must not disturb the invariants either.
        let c = m.var(2);
        let _ = m.and(keep, c);
        audit_manager(&m).expect("reused slots must audit green");
    }

    #[test]
    fn free_list_aliasing_a_live_node_is_caught() {
        let mut m = busy_manager();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        m.corrupt_free_list_for_audit(ab);
        let err = audit_manager(&m).expect_err("aliased free slot must be rejected");
        assert!(err.violations.iter().any(|v| v.check == "bdd.free-live"));
        assert!(err.violations.iter().any(|v| v.check == "bdd.free-count"));
    }

    #[test]
    fn reset_manager_audits_green() {
        // `Manager::reset` (the session-recycling path) must leave a
        // structurally pristine manager: empty caches, coherent unique
        // table and free list — both straight after the reset and after
        // building fresh functions over a *different* variable count.
        let mut m = busy_manager();
        m.reset(3);
        audit_manager(&m).expect("freshly reset manager must audit green");
        let a = m.var(0);
        let b = m.var(2);
        let f = m.and(a, b);
        let _ = m.exists(f, &[0]);
        audit_manager(&m).expect("reset manager must stay green under reuse");
        // A second recycle round keeps the invariants too.
        m.reset(5);
        audit_manager(&m).expect("second reset must audit green");
    }

    #[test]
    fn fused_cache_entries_are_revalidated() {
        let mut m = Manager::new(6);
        let vars: Vec<Bdd> = (0..6).map(|v| m.var(v)).collect();
        let f = m.or(vars[0], vars[2]);
        let g = m.or(vars[1], vars[2]);
        let _ = m.and_forall(f, g, &[2, 4]);
        let _ = m.and_exists(f, g, &[2]);
        audit_manager(&m).expect("fused cache entries must revalidate");
    }

    #[test]
    fn quantifier_cache_entries_are_revalidated() {
        // exists/forall entries over small blocks must be recomputed, and a
        // clean manager's entries must all check out.
        let mut m = Manager::new(6);
        let vars: Vec<Bdd> = (0..6).map(|v| m.var(v)).collect();
        let mut f = vars[0];
        for &v in &vars[1..] {
            f = m.xor(f, v);
        }
        let _ = m.exists(f, &[0, 2, 4]);
        let _ = m.forall(f, &[1, 3]);
        audit_manager(&m).expect("quantifier cache must revalidate");
    }

    #[test]
    fn envs_are_exhaustive_when_small() {
        assert_eq!(envs(3).len(), 8);
        assert_eq!(envs(0).len(), 1);
        let big = envs(20);
        assert_eq!(big.len(), SAMPLED_ENVS);
        assert!(big.iter().all(|e| e.len() == 20));
        // Determinism: two calls agree.
        assert_eq!(big, envs(20));
    }
}
