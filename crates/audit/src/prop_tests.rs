//! Property tests: random well-formed artifacts must always audit green,
//! and random seeded corruptions must always audit red.

use proptest::prelude::*;

use qsyn_bdd::{Bdd, Manager};
use qsyn_qbf::{QbfFormula, Quantifier};
use qsyn_revlogic::{Circuit, Gate, GateLibrary, LineSet};
use qsyn_sat::{Clause, CnfFormula, Lit};

use crate::{bdd_audit, circuit_audit, formula_audit};

const BDD_VARS: u32 = 5;

/// A random expression over `BDD_VARS` variables, as (op, operand) codes
/// consumed by [`build_bdd`].
fn arb_bdd_program() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0u8..6, 0u8..8), 1..20)
}

/// Interprets a code list as a stack program over the manager.
fn build_bdd(m: &mut Manager, program: &[(u8, u8)]) -> Bdd {
    let mut stack: Vec<Bdd> = vec![m.var(0)];
    for &(op, arg) in program {
        let top = *stack.last().expect("stack never empties");
        let next = match op {
            0 => m.var(u32::from(arg) % BDD_VARS),
            1 => m.not(top),
            2..=4 => {
                let other = stack[usize::from(arg) % stack.len()];
                match op {
                    2 => m.and(top, other),
                    3 => m.or(top, other),
                    _ => m.xor(top, other),
                }
            }
            _ => {
                let v = u32::from(arg) % BDD_VARS;
                if arg & 1 == 0 {
                    m.exists(top, &[v])
                } else {
                    m.forall(top, &[v])
                }
            }
        };
        stack.push(next);
    }
    *stack.last().expect("non-empty")
}

fn arb_gate() -> impl Strategy<Value = Gate> {
    let gates = GateLibrary::all().with_mixed_polarity().enumerate(4);
    (0..gates.len()).prop_map(move |i| gates[i])
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(), 0..10).prop_map(|gates| Circuit::from_gates(4, gates))
}

fn arb_clause() -> impl Strategy<Value = Vec<Lit>> {
    proptest::collection::vec((0u32..6, any::<bool>()), 1..5)
        .prop_map(|lits| lits.into_iter().map(|(v, pos)| Lit::new(v, pos)).collect())
}

proptest! {
    #[test]
    fn random_managers_pass_the_audit(program in arb_bdd_program()) {
        let mut m = Manager::new(BDD_VARS);
        let _ = build_bdd(&mut m, &program);
        prop_assert!(bdd_audit::audit_manager(&m).is_ok());
    }

    #[test]
    fn corrupted_managers_fail_the_audit(
        program in arb_bdd_program(),
        pick in any::<usize>(),
    ) {
        let mut m = Manager::new(BDD_VARS);
        let _ = build_bdd(&mut m, &program);
        // Corrupt an arbitrary non-terminal: make it redundant (lo == hi).
        // The seed program always allocates var(0), so the arena is never
        // terminals-only.
        let targets: Vec<Bdd> = m.node_entries().map(|e| e.id).collect();
        prop_assert!(!targets.is_empty());
        let victim = targets[pick % targets.len()];
        let (lo, _) = m.children(victim);
        m.corrupt_node_for_audit(victim, m.raw_level(victim), lo, lo);
        prop_assert!(bdd_audit::audit_manager(&m).is_err());
    }

    #[test]
    fn random_circuits_pass_the_lint(c in arb_circuit()) {
        prop_assert!(circuit_audit::audit_circuit(
            &c,
            Some(&GateLibrary::all().with_mixed_polarity())
        ).is_ok());
    }

    #[test]
    fn target_in_controls_always_fails(c in arb_circuit(), target in 0u32..4, offset in 1u32..4) {
        let other = (target + offset) % 4;
        let mut gates = c.gates().to_vec();
        gates.push(Gate::Toffoli {
            controls: LineSet::from_iter([target, other]),
            negative_controls: LineSet::EMPTY,
            target,
        });
        prop_assert!(circuit_audit::audit_gates(4, &gates, None).is_err());
    }

    #[test]
    fn normalized_cnf_always_passes(clauses in proptest::collection::vec(arb_clause(), 0..12)) {
        let mut f = CnfFormula::new(6);
        for c in clauses {
            f.add_clause(c);
        }
        prop_assert!(formula_audit::audit_cnf(&f).is_ok());
    }

    #[test]
    fn out_of_range_literal_always_fails(
        clauses in proptest::collection::vec(arb_clause(), 0..6),
        bad_var in 6u32..40,
    ) {
        let mut raw: Vec<Clause> = clauses.into_iter().map(Clause::raw).collect();
        raw.push(Clause::raw([Lit::pos(bad_var)]));
        prop_assert!(formula_audit::audit_clauses(6, &raw).is_err());
    }

    #[test]
    fn closed_random_qbfs_pass(
        clauses in proptest::collection::vec(arb_clause(), 1..8),
        split in 1u32..5,
    ) {
        let mut q = QbfFormula::new(6);
        q.add_block(Quantifier::Exists, 0..split);
        q.add_block(Quantifier::Forall, split..6);
        for c in clauses {
            q.add_clause(c);
        }
        prop_assert!(formula_audit::audit_qbf(&q, true).is_ok());
    }

    #[test]
    fn dropping_a_block_breaks_closure(
        clauses in proptest::collection::vec(arb_clause(), 1..8),
        split in 1u32..5,
    ) {
        // Bind only the first `split` variables; variable 5 is never bound
        // (split < 5), so a clause mentioning it is always free.
        let mut q = QbfFormula::new(6);
        q.add_block(Quantifier::Exists, 0..split);
        for c in clauses {
            q.add_clause(c);
        }
        q.add_clause([Lit::pos(5)]);
        prop_assert!(formula_audit::audit_qbf(&q, true).is_err());
    }
}
