//! Circuit lint: gate well-formedness, library membership, reversibility
//! and cost-model consistency.
//!
//! A synthesized network is only a *solution* if it is (a) built from the
//! gates the chosen library actually offers, (b) structurally legal (no
//! gate reads and writes the same line, every line exists), and (c) a
//! bijection — reversibility is the whole point. The engines guarantee all
//! three by construction; this module re-derives them from the gate list
//! alone so a bug anywhere in the pipeline (decoding a SAT model into
//! gates, circuit post-processing, file I/O) is caught at the boundary.

use qsyn_revlogic::{cost, Circuit, Gate, GateLibrary};

use crate::report::{AuditError, AuditFamily, Violation};

/// Circuits with at most this many lines get the exhaustive bijectivity
/// check (`2^n` simulations); larger ones are only structurally linted.
pub const EXHAUSTIVE_LINE_LIMIT: u32 = 8;

/// Audits a raw gate list over an explicit line count.
///
/// This is the form the engines use on decoder output before a [`Circuit`]
/// exists; [`audit_circuit`] adds the whole-circuit bijectivity check.
///
/// # Errors
///
/// Returns every violation found; see [`AuditError`].
pub fn audit_gates(
    lines: u32,
    gates: &[Gate],
    library: Option<&GateLibrary>,
) -> Result<(), AuditError> {
    let mut violations = Vec::new();
    collect_gate_violations(lines, gates, library, &mut violations);
    AuditError::from_violations(AuditFamily::Circuit, violations)
}

fn collect_gate_violations(
    lines: u32,
    gates: &[Gate],
    library: Option<&GateLibrary>,
    out: &mut Vec<Violation>,
) {
    for (i, g) in gates.iter().enumerate() {
        if g.min_lines() > lines {
            out.push(Violation::new(
                "circuit.bounds",
                format!(
                    "gate {i} ({g}) needs {} lines, circuit has {lines}",
                    g.min_lines()
                ),
            ));
        }
        if !g.controls().is_disjoint(g.targets()) {
            out.push(Violation::new(
                "circuit.overlap",
                format!("gate {i} ({g}) uses a line as both control and target"),
            ));
        }
        match g {
            Gate::Toffoli {
                controls,
                negative_controls,
                ..
            } => {
                if !controls.is_disjoint(*negative_controls) {
                    out.push(Violation::new(
                        "circuit.polarity-overlap",
                        format!("gate {i} ({g}) has a line with both polarities"),
                    ));
                }
            }
            Gate::Fredkin { targets, .. } | Gate::Peres { targets, .. } => {
                if targets.0 == targets.1 {
                    out.push(Violation::new(
                        "circuit.degenerate-targets",
                        format!("gate {i} ({g}) has coinciding targets"),
                    ));
                }
            }
        }
        if let Some(lib) = library {
            if !lib.permits(g) {
                out.push(Violation::new(
                    "circuit.library",
                    format!("gate {i} ({g}) is outside the {lib} library"),
                ));
            }
        }
    }
}

/// Audits a circuit: the per-gate lint of [`audit_gates`] plus, for
/// circuits of at most [`EXHAUSTIVE_LINE_LIMIT`] lines, reversibility by
/// exhaustive simulation.
///
/// # Errors
///
/// Returns every violation found; see [`AuditError`].
pub fn audit_circuit(circuit: &Circuit, library: Option<&GateLibrary>) -> Result<(), AuditError> {
    let mut violations = Vec::new();
    let lines = circuit.lines();
    collect_gate_violations(lines, circuit.gates(), library, &mut violations);

    if violations.iter().all(|v| v.check != "circuit.bounds") && lines <= EXHAUSTIVE_LINE_LIMIT {
        let size = 1u32 << lines;
        let mut preimage = vec![None; size as usize];
        for input in 0..size {
            let output = circuit.simulate(input);
            if output >= size {
                violations.push(Violation::new(
                    "circuit.state-escape",
                    format!(
                        "input {input:0w$b} maps outside the state space",
                        w = lines as usize
                    ),
                ));
                continue;
            }
            if let Some(prev) = preimage[output as usize] {
                violations.push(Violation::new(
                    "circuit.bijective",
                    format!(
                        "inputs {prev:0w$b} and {input:0w$b} collide on output {output:0w$b}",
                        w = lines as usize
                    ),
                ));
            } else {
                preimage[output as usize] = Some(input);
            }
        }
    }

    AuditError::from_violations(AuditFamily::Circuit, violations)
}

/// Audits the quantum-cost model itself for internal consistency on
/// circuits of up to `max_lines` lines:
///
/// * the paper's anchor values (Section 2.1): `MCT(2 controls) = 5`,
///   `MCF(1 control) = 7`, `Peres = 4` — cheaper than its two-Toffoli
///   expansion at 6,
/// * `MCF(c) = MCT(c+1) + 2` (a controlled swap is `CNOT · MCT · CNOT`),
/// * monotonicity: cost never decreases with more controls and never
///   increases with more ancilla lines,
/// * [`cost::circuit_cost`] is the sum of its per-gate costs.
///
/// # Errors
///
/// Returns every violation found; see [`AuditError`].
pub fn audit_cost_model(max_lines: u32) -> Result<(), AuditError> {
    let mut violations = Vec::new();
    let max_lines = max_lines.clamp(3, 16);

    for (name, actual, expected) in [
        ("mct(2 controls)", cost::mct_cost(2, 3), 5),
        ("mcf(1 control)", cost::mcf_cost(1, 3), 7),
        ("peres", cost::peres_cost(), 4),
        ("not", cost::mct_cost(0, 1), 1),
        ("cnot", cost::mct_cost(1, 2), 1),
    ] {
        if actual != expected {
            violations.push(Violation::new(
                "cost.anchor",
                format!("{name} costs {actual}, paper says {expected}"),
            ));
        }
    }
    if cost::peres_cost() >= 6 {
        violations.push(Violation::new(
            "cost.peres-advantage",
            "Peres is not cheaper than its two-Toffoli expansion".to_string(),
        ));
    }

    for lines in 3..=max_lines {
        for controls in 0..lines {
            if controls + 2 <= lines {
                let fredkin = cost::mcf_cost(controls, lines);
                let toffoli = cost::mct_cost(controls + 1, lines);
                if fredkin != toffoli + 2 {
                    violations.push(Violation::new(
                        "cost.mcf-identity",
                        format!(
                            "mcf({controls}, {lines}) = {fredkin} ≠ mct+2 = {}",
                            toffoli + 2
                        ),
                    ));
                }
            }
            if controls + 1 < lines
                && cost::mct_cost(controls + 1, lines) < cost::mct_cost(controls, lines)
            {
                violations.push(Violation::new(
                    "cost.control-monotone",
                    format!(
                        "mct cost drops from {controls} to {} controls on {lines} lines",
                        controls + 1
                    ),
                ));
            }
            if lines < max_lines
                && cost::mct_cost(controls, lines + 1) > cost::mct_cost(controls, lines)
            {
                violations.push(Violation::new(
                    "cost.ancilla-monotone",
                    format!("an extra free line raises mct({controls}) cost at {lines} lines"),
                ));
            }
        }
    }

    // Summation: a known mixed circuit must cost exactly the sum of parts.
    use qsyn_revlogic::LineSet;
    let c = Circuit::from_gates(
        4,
        [
            Gate::not(3),
            Gate::toffoli(LineSet::from_iter([0, 1, 2]), 3),
            Gate::fredkin(LineSet::EMPTY, 0, 1),
            Gate::peres(0, 1, 2),
        ],
    );
    let parts: u64 = c.gates().iter().map(|g| cost::gate_cost(g, 4)).sum();
    if cost::circuit_cost(&c) != parts {
        violations.push(Violation::new(
            "cost.summation",
            format!(
                "circuit cost {} ≠ sum of gate costs {parts}",
                cost::circuit_cost(&c)
            ),
        ));
    }

    AuditError::from_violations(AuditFamily::Circuit, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_revlogic::LineSet;

    #[test]
    fn clean_circuits_pass_all_libraries() {
        let c = Circuit::from_gates(
            3,
            [
                Gate::cnot(0, 1),
                Gate::toffoli(LineSet::from_iter([0, 1]), 2),
                Gate::not(2),
            ],
        );
        audit_circuit(&c, None).expect("no library");
        audit_circuit(&c, Some(&GateLibrary::mct())).expect("mct");
        audit_circuit(&c, Some(&GateLibrary::all())).expect("all");
    }

    #[test]
    fn library_violation_is_caught() {
        let c = Circuit::from_gates(3, [Gate::fredkin(LineSet::EMPTY, 0, 1)]);
        let err = audit_circuit(&c, Some(&GateLibrary::mct())).expect_err("off-library");
        assert!(err.violations.iter().any(|v| v.check == "circuit.library"));
        audit_circuit(&c, Some(&GateLibrary::mct_mcf())).expect("mcf allowed");
    }

    #[test]
    fn mixed_polarity_membership_follows_library() {
        let g = Gate::toffoli_mixed(LineSet::from_iter([0]), LineSet::from_iter([1]), 2);
        let c = Circuit::from_gates(3, [g]);
        assert!(audit_circuit(&c, Some(&GateLibrary::mct())).is_err());
        audit_circuit(&c, Some(&GateLibrary::mct().with_mixed_polarity())).expect("mixed ok");
    }

    #[test]
    fn overlapping_control_and_target_is_caught() {
        // Constructors refuse this shape; build the variant directly, as a
        // decoder bug would.
        let g = Gate::Toffoli {
            controls: LineSet::from_iter([0, 1]),
            negative_controls: LineSet::EMPTY,
            target: 0,
        };
        let err = audit_gates(2, &[g], None).expect_err("overlap");
        assert!(err.violations.iter().any(|v| v.check == "circuit.overlap"));
    }

    #[test]
    fn polarity_overlap_is_caught() {
        let g = Gate::Toffoli {
            controls: LineSet::from_iter([0]),
            negative_controls: LineSet::from_iter([0]),
            target: 1,
        };
        let err = audit_gates(2, &[g], None).expect_err("polarity");
        assert!(err
            .violations
            .iter()
            .any(|v| v.check == "circuit.polarity-overlap"));
    }

    #[test]
    fn out_of_bounds_gate_is_caught() {
        let err = audit_gates(2, &[Gate::not(5)], None).expect_err("bounds");
        assert!(err.violations.iter().any(|v| v.check == "circuit.bounds"));
    }

    #[test]
    fn non_bijective_cascade_is_caught() {
        // Target-in-controls makes the gate a non-injective map.
        let g = Gate::Toffoli {
            controls: LineSet::from_iter([1]),
            negative_controls: LineSet::EMPTY,
            target: 1,
        };
        let c = Circuit::from_gates(2, [g]);
        let err = audit_circuit(&c, None).expect_err("not a bijection");
        assert!(err
            .violations
            .iter()
            .any(|v| v.check == "circuit.bijective"));
    }

    #[test]
    fn degenerate_fredkin_targets_are_caught() {
        let g = Gate::Fredkin {
            controls: LineSet::EMPTY,
            targets: (1, 1),
        };
        let err = audit_gates(2, &[g], None).expect_err("degenerate");
        assert!(err
            .violations
            .iter()
            .any(|v| v.check == "circuit.degenerate-targets"));
    }

    #[test]
    fn cost_model_is_consistent() {
        audit_cost_model(10).expect("cost model");
    }

    #[test]
    fn large_circuits_skip_simulation_but_still_lint() {
        let c = Circuit::from_gates(12, [Gate::cnot(0, 11)]);
        audit_circuit(&c, None).expect("structural lint only");
        let bad = Gate::Toffoli {
            controls: LineSet::from_iter([11]),
            negative_controls: LineSet::EMPTY,
            target: 11,
        };
        let c2 = Circuit::from_gates(12, [bad]);
        assert!(
            audit_circuit(&c2, None).is_err(),
            "overlap caught without sim"
        );
    }
}
