//! Workspace invariant auditors (`qsyn-audit`).
//!
//! The paper's headline claim is *exactness*: the synthesis engines return
//! provably minimal networks. That guarantee is only as strong as the data
//! structures underneath it — a non-canonical BDD node, an out-of-bounds
//! CNF literal or a malformed gate silently invalidates every result built
//! on top of it. Following the same philosophy as the DRUP proof checker in
//! `qsyn-sat` (trust comes from *independent checking*, not from the
//! implementation), this crate re-validates the workspace's core invariants
//! from the outside:
//!
//! * [`bdd_audit`] — ROBDD manager consistency: unique-table agreement,
//!   strict variable ordering, no redundant or duplicate nodes, free-list
//!   integrity after garbage collection, and semantic re-validation of a
//!   sample of memoized operation results (including the fused
//!   quantified-AND kernels).
//! * [`formula_audit`] — CNF and prenex-QBF well-formedness: literal
//!   bounds, duplicate/tautological clauses, quantifier-prefix integrity
//!   and (optionally) closure.
//! * [`circuit_audit`] — reversible-circuit linting: per-gate
//!   well-formedness, gate-library membership, reversibility by exhaustive
//!   simulation, and quantum-cost-model consistency.
//!
//! The auditors are wired into the synthesis engines under
//! `debug_assertions`, into the CLI as `qsyn audit`, and into CI (see
//! `DESIGN.md` §9). [`self_test`] exercises every family against both a
//! known-good artifact and a seeded corruption, so a passing self-test
//! means the rejection paths demonstrably fire.

#![warn(missing_docs)]

pub mod bdd_audit;
pub mod circuit_audit;
pub mod formula_audit;

mod report;

pub use report::{AuditError, AuditFamily, Violation};

/// Outcome of [`self_test`]: how many checks ran per family.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelfTestReport {
    /// Good artifacts that passed their audit.
    pub accepted: u32,
    /// Seeded corruptions that were rejected.
    pub rejected: u32,
}

impl std::fmt::Display for SelfTestReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} clean artifacts accepted, {} seeded corruptions rejected",
            self.accepted, self.rejected
        )
    }
}

/// Runs every auditor family against a known-good artifact *and* a seeded
/// corruption of it.
///
/// # Errors
///
/// A message naming the failed check: either a clean artifact was rejected
/// or — worse — a corrupted one was accepted.
pub fn self_test() -> Result<SelfTestReport, String> {
    let mut report = SelfTestReport::default();

    // ---- BDD manager family -------------------------------------------
    let mut m = qsyn_bdd::Manager::new(4);
    let a = m.var(0);
    let b = m.var(1);
    let c = m.var(2);
    let ab = m.and(a, b);
    let f = m.xor(ab, c);
    let _ = m.forall(f, &[0, 1]);
    bdd_audit::audit_manager(&m).map_err(|e| format!("clean BDD manager rejected: {e}"))?;
    report.accepted += 1;

    // Swapping the children of the root of `f` leaves each node locally
    // well-formed but breaks unique-table agreement and falsifies cached
    // results that mention `f`.
    let (lo, hi) = m.children(f);
    m.corrupt_node_for_audit(f, m.raw_level(f), hi, lo);
    match bdd_audit::audit_manager(&m) {
        Err(e) if e.family == AuditFamily::Bdd => report.rejected += 1,
        Err(e) => return Err(format!("BDD corruption misattributed: {e}")),
        Ok(_) => return Err("corrupted BDD manager accepted".to_string()),
    }

    // A redundant node (lo == hi) violates canonicity outright.
    let mut m2 = qsyn_bdd::Manager::new(2);
    let v = m2.var(1);
    m2.corrupt_node_for_audit(v, 1, qsyn_bdd::Bdd::ONE, qsyn_bdd::Bdd::ONE);
    if bdd_audit::audit_manager(&m2).is_ok() {
        return Err("redundant BDD node accepted".to_string());
    }
    report.rejected += 1;

    // A garbage-collected manager (with a populated free list and fused
    // cache entries) must still audit green...
    let mut m3 = qsyn_bdd::Manager::new(4);
    let a = m3.var(0);
    let b = m3.var(1);
    let c = m3.var(2);
    let junk = m3.and(a, c);
    let keep = m3.or(a, b);
    let _ = (junk, m3.and_forall(keep, c, &[2]));
    let freed = m3.collect_garbage(&[keep]);
    if freed == 0 {
        return Err("GC self-test produced no garbage to free".to_string());
    }
    bdd_audit::audit_manager(&m3).map_err(|e| format!("swept BDD manager rejected: {e}"))?;
    report.accepted += 1;

    // ...but a free list aliasing a live slot (the node would be silently
    // overwritten by the next allocation) must be rejected.
    m3.corrupt_free_list_for_audit(keep);
    match bdd_audit::audit_manager(&m3) {
        Err(e) if e.family == AuditFamily::Bdd => report.rejected += 1,
        Err(e) => return Err(format!("free-list corruption misattributed: {e}")),
        Ok(_) => return Err("aliased free-list slot accepted".to_string()),
    }

    // ---- Formula family -----------------------------------------------
    let mut cnf = qsyn_sat::CnfFormula::new(3);
    cnf.add_clause([qsyn_sat::Lit::pos(0), qsyn_sat::Lit::neg(2)]);
    cnf.add_clause([qsyn_sat::Lit::pos(1)]);
    formula_audit::audit_cnf(&cnf).map_err(|e| format!("clean CNF rejected: {e}"))?;
    report.accepted += 1;

    // Raw clauses can smuggle in tautologies and out-of-range literals.
    let bad = [
        qsyn_sat::Clause::raw([qsyn_sat::Lit::pos(0), qsyn_sat::Lit::neg(0)]),
        qsyn_sat::Clause::raw([qsyn_sat::Lit::pos(7)]),
    ];
    if formula_audit::audit_clauses(3, &bad).is_ok() {
        return Err("corrupted clause list accepted".to_string());
    }
    report.rejected += 1;

    let mut qbf = qsyn_qbf::QbfFormula::new(2);
    qbf.add_block(qsyn_qbf::Quantifier::Exists, [0]);
    qbf.add_block(qsyn_qbf::Quantifier::Forall, [1]);
    qbf.add_clause([qsyn_sat::Lit::pos(0), qsyn_sat::Lit::neg(1)]);
    formula_audit::audit_qbf(&qbf, true).map_err(|e| format!("clean QBF rejected: {e}"))?;
    report.accepted += 1;

    // Leave variable 1 free: the closed-form audit must reject it.
    let mut open = qsyn_qbf::QbfFormula::new(2);
    open.add_block(qsyn_qbf::Quantifier::Exists, [0]);
    open.add_clause([qsyn_sat::Lit::pos(0), qsyn_sat::Lit::neg(1)]);
    if formula_audit::audit_qbf(&open, true).is_ok() {
        return Err("open QBF accepted by closed-form audit".to_string());
    }
    report.rejected += 1;

    // ---- Circuit family -----------------------------------------------
    use qsyn_revlogic::{Circuit, Gate, GateLibrary, LineSet};
    let good = Circuit::from_gates(
        3,
        [
            Gate::cnot(0, 1),
            Gate::toffoli(LineSet::from_iter([0, 1]), 2),
        ],
    );
    circuit_audit::audit_circuit(&good, Some(&GateLibrary::mct()))
        .map_err(|e| format!("clean circuit rejected: {e}"))?;
    report.accepted += 1;

    // A Peres gate is outside the MCT-only library.
    let off_library = Circuit::from_gates(3, [Gate::peres(0, 1, 2)]);
    if circuit_audit::audit_circuit(&off_library, Some(&GateLibrary::mct())).is_ok() {
        return Err("off-library gate accepted".to_string());
    }
    report.rejected += 1;

    // A Toffoli whose target is also a control (buildable only by writing
    // the variant directly — the constructors refuse it) is not injective.
    let overlapping = Gate::Toffoli {
        controls: LineSet::from_iter([0, 1]),
        negative_controls: LineSet::EMPTY,
        target: 0,
    };
    let corrupt = Circuit::from_gates(2, [overlapping]);
    match circuit_audit::audit_circuit(&corrupt, None) {
        Err(e) if e.family == AuditFamily::Circuit => report.rejected += 1,
        Err(e) => return Err(format!("circuit corruption misattributed: {e}")),
        Ok(_) => return Err("overlapping-lines gate accepted".to_string()),
    }

    circuit_audit::audit_cost_model(8).map_err(|e| format!("cost model audit failed: {e}"))?;
    report.accepted += 1;

    Ok(report)
}

#[cfg(test)]
mod prop_tests;

#[cfg(test)]
mod tests {
    #[test]
    fn self_test_passes() {
        let report = super::self_test().expect("self test");
        assert!(report.accepted >= 5);
        assert!(report.rejected >= 5);
    }
}
