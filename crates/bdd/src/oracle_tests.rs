//! Property tests checking every BDD operation against a truth-table
//! oracle on small variable counts.

use crate::manager::{Bdd, Manager};
use proptest::prelude::*;

const NVARS: u32 = 4;
const ROWS: u32 = 1 << NVARS;

/// Truth table over `NVARS` variables packed into the low `ROWS` bits.
type Table = u16;

/// Random Boolean expression tree.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn var_table(v: u32) -> Table {
    let mut t = 0;
    for row in 0..ROWS {
        if (row >> v) & 1 == 1 {
            t |= 1 << row;
        }
    }
    t
}

fn expr_table(e: &Expr) -> Table {
    match e {
        Expr::Var(v) => var_table(*v),
        Expr::Not(a) => !expr_table(a),
        Expr::And(a, b) => expr_table(a) & expr_table(b),
        Expr::Or(a, b) => expr_table(a) | expr_table(b),
        Expr::Xor(a, b) => expr_table(a) ^ expr_table(b),
        Expr::Ite(f, g, h) => {
            let tf = expr_table(f);
            (tf & expr_table(g)) | (!tf & expr_table(h))
        }
    }
}

fn expr_bdd(m: &mut Manager, e: &Expr) -> Bdd {
    match e {
        Expr::Var(v) => m.var(*v),
        Expr::Not(a) => {
            let fa = expr_bdd(m, a);
            m.not(fa)
        }
        Expr::And(a, b) => {
            let fa = expr_bdd(m, a);
            let fb = expr_bdd(m, b);
            m.and(fa, fb)
        }
        Expr::Or(a, b) => {
            let fa = expr_bdd(m, a);
            let fb = expr_bdd(m, b);
            m.or(fa, fb)
        }
        Expr::Xor(a, b) => {
            let fa = expr_bdd(m, a);
            let fb = expr_bdd(m, b);
            m.xor(fa, fb)
        }
        Expr::Ite(f, g, h) => {
            let ff = expr_bdd(m, f);
            let fg = expr_bdd(m, g);
            let fh = expr_bdd(m, h);
            m.ite(ff, fg, fh)
        }
    }
}

fn bdd_table(m: &Manager, f: Bdd) -> Table {
    let mut t = 0;
    for row in 0..ROWS {
        let env: Vec<bool> = (0..NVARS).map(|v| (row >> v) & 1 == 1).collect();
        if m.eval(f, &env) {
            t |= 1 << row;
        }
    }
    t
}

proptest! {
    #[test]
    fn bdd_matches_truth_table_oracle(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = expr_bdd(&mut m, &e);
        prop_assert_eq!(bdd_table(&m, f), expr_table(&e));
    }

    #[test]
    fn canonicity_equal_tables_equal_handles(e1 in arb_expr(), e2 in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f1 = expr_bdd(&mut m, &e1);
        let f2 = expr_bdd(&mut m, &e2);
        prop_assert_eq!(expr_table(&e1) == expr_table(&e2), f1 == f2);
    }

    #[test]
    fn sat_count_matches_popcount(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = expr_bdd(&mut m, &e);
        prop_assert_eq!(m.sat_count(f, NVARS), u128::from(expr_table(&e).count_ones()));
    }

    #[test]
    fn exists_matches_oracle(e in arb_expr(), v in 0..NVARS) {
        let mut m = Manager::new(NVARS);
        let f = expr_bdd(&mut m, &e);
        let q = m.exists_var(f, v);
        // Oracle: OR of the two cofactor tables.
        let t = expr_table(&e);
        let mut expected = 0;
        for row in 0..ROWS {
            let lo = row & !(1 << v);
            let hi = row | (1 << v);
            if (t >> lo) & 1 == 1 || (t >> hi) & 1 == 1 {
                expected |= 1 << row;
            }
        }
        prop_assert_eq!(bdd_table(&m, q), expected);
    }

    #[test]
    fn forall_matches_oracle(e in arb_expr(), v in 0..NVARS) {
        let mut m = Manager::new(NVARS);
        let f = expr_bdd(&mut m, &e);
        let q = m.forall_var(f, v);
        let t = expr_table(&e);
        let mut expected = 0;
        for row in 0..ROWS {
            let lo = row & !(1 << v);
            let hi = row | (1 << v);
            if (t >> lo) & 1 == 1 && (t >> hi) & 1 == 1 {
                expected |= 1 << row;
            }
        }
        prop_assert_eq!(bdd_table(&m, q), expected);
    }

    #[test]
    fn quantifier_de_morgan_duality(e in arb_expr(), v in 0..NVARS) {
        let mut m = Manager::new(NVARS);
        let f = expr_bdd(&mut m, &e);
        let nf = m.not(f);
        let forall_nf = m.forall_var(nf, v);
        let exists_f = m.exists_var(f, v);
        let not_exists = m.not(exists_f);
        prop_assert_eq!(forall_nf, not_exists);
    }

    #[test]
    fn restrict_matches_oracle(e in arb_expr(), v in 0..NVARS, val in any::<bool>()) {
        let mut m = Manager::new(NVARS);
        let f = expr_bdd(&mut m, &e);
        let r = m.restrict(f, v, val);
        let t = expr_table(&e);
        let mut expected = 0;
        for row in 0..ROWS {
            let src = if val { row | (1 << v) } else { row & !(1 << v) };
            if (t >> src) & 1 == 1 {
                expected |= 1 << row;
            }
        }
        prop_assert_eq!(bdd_table(&m, r), expected);
        // The result must not depend on v.
        prop_assert!(!m.support(r).contains(&v));
    }

    #[test]
    fn compose_matches_oracle(e in arb_expr(), g in arb_expr(), v in 0..NVARS) {
        let mut m = Manager::new(NVARS);
        let f = expr_bdd(&mut m, &e);
        let gf = expr_bdd(&mut m, &g);
        let composed = m.compose(f, v, gf);
        let tf = expr_table(&e);
        let tg = expr_table(&g);
        let mut expected = 0;
        for row in 0..ROWS {
            let gval = (tg >> row) & 1 == 1;
            let src = if gval { row | (1 << v) } else { row & !(1 << v) };
            if (tf >> src) & 1 == 1 {
                expected |= 1 << row;
            }
        }
        prop_assert_eq!(bdd_table(&m, composed), expected);
    }

    #[test]
    fn models_agree_with_sat_count(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = expr_bdd(&mut m, &e);
        let vars: Vec<u32> = (0..NVARS).collect();
        let models: Vec<Vec<bool>> = m.models(f, &vars).collect();
        prop_assert_eq!(models.len() as u128, m.sat_count(f, NVARS));
        for env in &models {
            prop_assert!(m.eval(f, env));
        }
        let uniq: std::collections::HashSet<_> = models.iter().collect();
        prop_assert_eq!(uniq.len(), models.len());
    }

    #[test]
    fn one_sat_is_a_model(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = expr_bdd(&mut m, &e);
        match m.one_sat(f) {
            None => prop_assert!(f.is_zero()),
            Some(partial) => {
                let mut env = vec![false; NVARS as usize];
                for (v, val) in partial {
                    env[v as usize] = val;
                }
                prop_assert!(m.eval(f, &env));
            }
        }
    }

    #[test]
    fn and_forall_matches_unfused(e1 in arb_expr(), e2 in arb_expr(),
                                  mask in 0u32..(1 << NVARS)) {
        let mut m = Manager::new(NVARS);
        let f = expr_bdd(&mut m, &e1);
        let g = expr_bdd(&mut m, &e2);
        let vars: Vec<u32> = (0..NVARS).filter(|v| (mask >> v) & 1 == 1).collect();
        let fused = m.and_forall(f, g, &vars);
        let conj = m.and(f, g);
        let unfused = m.forall(conj, &vars);
        prop_assert_eq!(fused, unfused);
    }

    #[test]
    fn and_exists_matches_unfused(e1 in arb_expr(), e2 in arb_expr(),
                                  mask in 0u32..(1 << NVARS)) {
        let mut m = Manager::new(NVARS);
        let f = expr_bdd(&mut m, &e1);
        let g = expr_bdd(&mut m, &e2);
        let vars: Vec<u32> = (0..NVARS).filter(|v| (mask >> v) & 1 == 1).collect();
        let fused = m.and_exists(f, g, &vars);
        let conj = m.and(f, g);
        let unfused = m.exists(conj, &vars);
        prop_assert_eq!(fused, unfused);
    }

    #[test]
    fn forall_and_all_matches_unfused(es in proptest::collection::vec(arb_expr(), 0..5),
                                      mask in 0u32..(1 << NVARS)) {
        let mut m = Manager::new(NVARS);
        let operands: Vec<Bdd> = es.iter().map(|e| expr_bdd(&mut m, e)).collect();
        let vars: Vec<u32> = (0..NVARS).filter(|v| (mask >> v) & 1 == 1).collect();
        let fused = m.forall_and_all(&operands, &vars);
        let conj = m.and_all(operands.iter().copied());
        let unfused = m.forall(conj, &vars);
        prop_assert_eq!(fused, unfused);
    }

    #[test]
    fn gc_preserves_rooted_functions(e1 in arb_expr(), e2 in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let keep = expr_bdd(&mut m, &e1);
        let junk = expr_bdd(&mut m, &e2);
        let table_before = bdd_table(&m, keep);
        let _ = junk; // handle dies; its nodes become garbage unless shared
        let _ = m.collect_garbage(&[keep]);
        // The rooted function evaluates identically after collection...
        prop_assert_eq!(bdd_table(&m, keep), table_before);
        // ...and rebuilding the collected function from scratch is correct
        // (reused slots, repopulated unique table).
        let rebuilt = expr_bdd(&mut m, &e2);
        prop_assert_eq!(bdd_table(&m, rebuilt), expr_table(&e2));
        prop_assert_eq!(bdd_table(&m, keep), table_before);
    }

    #[test]
    fn reset_replay_matches_fresh_manager(warmup in arb_expr(), e in arb_expr()) {
        // Dirty a manager with one random workload, reset it, then replay a
        // second workload on it and on a brand-new manager: the recycled
        // manager must be semantically indistinguishable from the fresh one
        // (same truth tables), and — because a reset leaves exactly the
        // fresh-manager starting state behind — structurally identical too
        // (same handles, same node count).
        let mut recycled = Manager::new(NVARS);
        let junk = expr_bdd(&mut recycled, &warmup);
        let _ = recycled.collect_garbage(&[junk]);
        recycled.reset(NVARS);
        let mut fresh = Manager::new(NVARS);
        let fr = expr_bdd(&mut fresh, &e);
        let rr = expr_bdd(&mut recycled, &e);
        prop_assert_eq!(bdd_table(&recycled, rr), expr_table(&e));
        prop_assert_eq!(bdd_table(&recycled, rr), bdd_table(&fresh, fr));
        prop_assert_eq!(rr, fr, "replay must produce identical handles");
        prop_assert_eq!(recycled.node_count(), fresh.node_count());
    }

    #[test]
    fn support_is_exact(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = expr_bdd(&mut m, &e);
        let t = expr_table(&e);
        let support = m.support(f);
        for v in 0..NVARS {
            // v is semantically relevant iff some row flips f when v flips.
            let mut relevant = false;
            for row in 0..ROWS {
                let flipped = row ^ (1 << v);
                if (t >> row) & 1 != (t >> flipped) & 1 {
                    relevant = true;
                    break;
                }
            }
            prop_assert_eq!(support.contains(&v), relevant, "var {}", v);
        }
    }
}
