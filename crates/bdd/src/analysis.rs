//! Structural and semantic analysis: evaluation, support, size, model
//! counting and model enumeration.

use crate::hash::FibHashMap;
use crate::manager::{Bdd, Manager};
use std::collections::HashSet;

impl Manager {
    /// Evaluates `f` under a complete assignment (`env[v]` is the value of
    /// variable `v`).
    ///
    /// # Panics
    ///
    /// Panics if `env` is shorter than the highest variable occurring in `f`.
    pub fn eval(&self, f: Bdd, env: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let n = &self.nodes[cur.0 as usize];
            cur = if env[n.var as usize] { n.hi } else { n.lo };
        }
        cur.is_one()
    }

    /// Variables occurring in `f`, in ascending order.
    pub fn support(&self, f: Bdd) -> Vec<u32> {
        let mut seen = HashSet::new();
        let mut vars = HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            let node = &self.nodes[n.0 as usize];
            vars.insert(node.var);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        let mut vars: Vec<u32> = vars.into_iter().collect();
        vars.sort_unstable();
        vars
    }

    /// Number of nodes reachable from `f`, including terminals.
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if !n.is_terminal() {
                let node = &self.nodes[n.0 as usize];
                stack.push(node.lo);
                stack.push(node.hi);
            }
        }
        seen.len()
    }

    /// Number of satisfying assignments of `f` over the variable universe
    /// `0..nvars`.
    ///
    /// # Panics
    ///
    /// Panics if `f` depends on a variable `>= nvars`, or if the count
    /// overflows `u128` (requires `nvars > 127`).
    pub fn sat_count(&self, f: Bdd, nvars: u32) -> u128 {
        let vars: Vec<u32> = (0..nvars).collect();
        self.count_models(f, &vars)
    }

    /// Number of satisfying assignments of `f` over exactly the variables in
    /// `vars` (sorted or not; normalized internally).
    ///
    /// # Panics
    ///
    /// Panics if `f` depends on a variable not in `vars`.
    pub fn count_models(&self, f: Bdd, vars: &[u32]) -> u128 {
        let mut sorted = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for v in self.support(f) {
            assert!(
                sorted.binary_search(&v).is_ok(),
                "function depends on variable {v} outside the model universe"
            );
        }
        let mut memo: FibHashMap<(Bdd, usize), u128> = FibHashMap::default();
        self.count_rec(f, &sorted, 0, &mut memo)
    }

    fn count_rec(
        &self,
        f: Bdd,
        vars: &[u32],
        idx: usize,
        memo: &mut FibHashMap<(Bdd, usize), u128>,
    ) -> u128 {
        if f.is_zero() {
            return 0;
        }
        if idx == vars.len() {
            debug_assert!(f.is_one());
            return 1;
        }
        if let Some(&c) = memo.get(&(f, idx)) {
            return c;
        }
        let level = self.level(f);
        let c = if f.is_one() || level > vars[idx] {
            // f does not test vars[idx]; both values extend every model.
            2u128
                .checked_mul(self.count_rec(f, vars, idx + 1, memo))
                .expect("model count overflow")
        } else {
            debug_assert_eq!(level, vars[idx]);
            let (lo, hi) = self.children(f);
            self.count_rec(lo, vars, idx + 1, memo)
                .checked_add(self.count_rec(hi, vars, idx + 1, memo))
                .expect("model count overflow")
        };
        memo.insert((f, idx), c);
        c
    }

    /// One satisfying assignment over the variables in `f`'s support, or
    /// `None` if `f` is unsatisfiable. Variables not in the support are
    /// absent from the result.
    pub fn one_sat(&self, f: Bdd) -> Option<Vec<(u32, bool)>> {
        if f.is_zero() {
            return None;
        }
        let mut cur = f;
        let mut assignment = Vec::new();
        while !cur.is_terminal() {
            let n = &self.nodes[cur.0 as usize];
            if n.lo.is_zero() {
                assignment.push((n.var, true));
                cur = n.hi;
            } else {
                assignment.push((n.var, false));
                cur = n.lo;
            }
        }
        debug_assert!(cur.is_one());
        Some(assignment)
    }

    /// Iterates over **all** satisfying assignments of `f`, viewed as
    /// complete assignments to `vars` (free variables are expanded both
    /// ways). This is how the synthesis engine materializes every minimal
    /// network from the final BDD over the gate-select variables.
    ///
    /// # Panics
    ///
    /// Panics if `f` depends on a variable not in `vars`.
    pub fn models<'a>(&'a self, f: Bdd, vars: &[u32]) -> ModelIter<'a> {
        let mut sorted = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for v in self.support(f) {
            assert!(
                sorted.binary_search(&v).is_ok(),
                "function depends on variable {v} outside the model universe"
            );
        }
        ModelIter::new(self, f, sorted)
    }
}

/// Iterator over all models of a BDD; see [`Manager::models`].
///
/// Yields each complete assignment as a `Vec<bool>` aligned with the
/// (sorted) variable list passed to `models`.
pub struct ModelIter<'a> {
    manager: &'a Manager,
    vars: Vec<u32>,
    /// Depth-first stack of `(node, idx, value_chosen)` frames.
    stack: Vec<Frame>,
    current: Vec<bool>,
    exhausted: bool,
}

#[derive(Clone, Copy)]
struct Frame {
    node: Bdd,
    idx: usize,
    /// Next branch value to explore at this frame (false first, then true).
    branch: bool,
    /// Whether the false branch has already been fully explored.
    tried_false: bool,
}

impl<'a> ModelIter<'a> {
    fn new(manager: &'a Manager, f: Bdd, vars: Vec<u32>) -> Self {
        let nvars = vars.len();
        let mut it = ModelIter {
            manager,
            vars,
            stack: Vec::new(),
            current: vec![false; nvars],
            exhausted: f.is_zero(),
        };
        if !it.exhausted {
            it.stack.push(Frame {
                node: f,
                idx: 0,
                branch: false,
                tried_false: false,
            });
        }
        it
    }

    /// Child of `node` when assigning `vars[idx] = value` (identity when the
    /// node does not test that variable).
    fn descend(&self, node: Bdd, idx: usize, value: bool) -> Bdd {
        if node.is_terminal() {
            return node;
        }
        let level = self.manager.level(node);
        if level > self.vars[idx] {
            node
        } else {
            debug_assert_eq!(level, self.vars[idx]);
            let (lo, hi) = self.manager.children(node);
            if value {
                hi
            } else {
                lo
            }
        }
    }
}

impl Iterator for ModelIter<'_> {
    type Item = Vec<bool>;

    fn next(&mut self) -> Option<Vec<bool>> {
        if self.exhausted {
            return None;
        }
        loop {
            let Some(top) = self.stack.last().copied() else {
                self.exhausted = true;
                return None;
            };
            if top.idx == self.vars.len() {
                // Complete assignment. Terminal must be decided.
                debug_assert!(top.node.is_terminal());
                let hit = top.node.is_one();
                self.stack.pop();
                self.backtrack();
                if hit {
                    return Some(self.current.clone());
                }
                continue;
            }
            let child = self.descend(top.node, top.idx, top.branch);
            self.current[top.idx] = top.branch;
            if child.is_zero() {
                // Dead branch: advance this frame or backtrack.
                self.advance_top();
            } else {
                self.stack.push(Frame {
                    node: child,
                    idx: top.idx + 1,
                    branch: false,
                    tried_false: false,
                });
            }
        }
    }
}

impl ModelIter<'_> {
    /// Moves the top frame to its next branch, or pops it if exhausted.
    fn advance_top(&mut self) {
        while let Some(top) = self.stack.last_mut() {
            if !top.tried_false {
                top.tried_false = true;
                top.branch = true;
                return;
            }
            self.stack.pop();
        }
    }

    /// After yielding a model, step the deepest unexplored branch.
    fn backtrack(&mut self) {
        self.advance_top();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Manager, Bdd, Bdd, Bdd) {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        (m, a, b, c)
    }

    #[test]
    fn eval_walks_the_diagram() {
        let (mut m, a, b, c) = setup();
        let ab = m.and(a, b);
        let f = m.xor(ab, c);
        for bits in 0u32..8 {
            let env = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let expected = (env[0] && env[1]) ^ env[2];
            assert_eq!(m.eval(f, &env), expected, "bits={bits:03b}");
        }
    }

    #[test]
    fn support_lists_occurring_vars() {
        let (mut m, a, _, c) = setup();
        let f = m.and(a, c);
        assert_eq!(m.support(f), vec![0, 2]);
        assert!(m.support(Bdd::ONE).is_empty());
    }

    #[test]
    fn size_counts_reachable_nodes() {
        let (mut m, a, b, _) = setup();
        assert_eq!(m.size(Bdd::ZERO), 1);
        assert_eq!(m.size(a), 3); // node + two terminals
        let f = m.and(a, b);
        assert_eq!(m.size(f), 4);
    }

    #[test]
    fn sat_count_matches_truth_table() {
        let (mut m, a, b, c) = setup();
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        // a∧b∨c over 3 vars: c=1 → 4, plus c=0,a=b=1 → 1. Total 5.
        assert_eq!(m.sat_count(f, 3), 5);
        assert_eq!(m.sat_count(Bdd::ONE, 3), 8);
        assert_eq!(m.sat_count(Bdd::ZERO, 3), 0);
    }

    #[test]
    fn count_models_over_subset_universe() {
        let (m, a, _, _) = setup();
        assert_eq!(m.count_models(a, &[0]), 1);
        assert_eq!(m.count_models(a, &[0, 2]), 2);
        assert_eq!(m.count_models(Bdd::ONE, &[1, 2]), 4);
    }

    #[test]
    #[should_panic(expected = "outside the model universe")]
    fn count_models_rejects_missing_support() {
        let (m2, a, _, _) = {
            let (m, a, b, c) = setup();
            (m, a, b, c)
        };
        let _ = m2.count_models(a, &[1, 2]);
    }

    #[test]
    fn one_sat_finds_model() {
        let (mut m, a, b, _) = setup();
        let na = m.not(a);
        let f = m.and(na, b);
        let model = m.one_sat(f).expect("satisfiable");
        let mut env = [false; 3];
        for (v, val) in model {
            env[v as usize] = val;
        }
        assert!(m.eval(f, &env));
        assert_eq!(m.one_sat(Bdd::ZERO), None);
    }

    #[test]
    fn models_enumerates_exactly_the_satisfying_assignments() {
        let (mut m, a, b, c) = setup();
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let models: Vec<Vec<bool>> = m.models(f, &[0, 1, 2]).collect();
        assert_eq!(models.len() as u128, m.sat_count(f, 3));
        for env in &models {
            assert!(m.eval(f, env));
        }
        // Uniqueness.
        let set: std::collections::HashSet<_> = models.iter().collect();
        assert_eq!(set.len(), models.len());
    }

    #[test]
    fn models_expands_free_variables() {
        let (m, a, _, _) = setup();
        // f = a over universe {0,1,2}: 4 models.
        let models: Vec<Vec<bool>> = m.models(a, &[0, 1, 2]).collect();
        assert_eq!(models.len(), 4);
        for env in &models {
            assert!(env[0]);
        }
    }

    #[test]
    fn models_of_constants() {
        let (m, _, _, _) = setup();
        assert_eq!(m.models(Bdd::ZERO, &[0, 1]).count(), 0);
        assert_eq!(m.models(Bdd::ONE, &[0, 1]).count(), 4);
        assert_eq!(m.models(Bdd::ONE, &[]).count(), 1);
    }
}
