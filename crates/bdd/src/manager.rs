//! The BDD manager: hash-consed node storage with a fixed variable order.

use crate::hash::FibHashMap;

/// Handle to a BDD node inside a [`Manager`].
///
/// Handles are plain indices; they are only meaningful together with the
/// manager that created them. Mixing handles across managers is a logic
/// error (it is memory-safe but yields nonsense results or panics).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-false function.
    pub const ZERO: Bdd = Bdd(0);
    /// The constant-true function.
    pub const ONE: Bdd = Bdd(1);

    /// Returns `true` if this is the constant-false terminal.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Bdd::ZERO
    }

    /// Returns `true` if this is the constant-true terminal.
    #[inline]
    pub fn is_one(self) -> bool {
        self == Bdd::ONE
    }

    /// Returns `true` if this is either terminal.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Raw arena index of the handle (terminals are `0` and `1`). Only
    /// meaningful relative to the owning manager; exposed for the audit
    /// layer's range checks.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for Bdd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Bdd::ZERO => write!(f, "Bdd(⊥)"),
            Bdd::ONE => write!(f, "Bdd(⊤)"),
            Bdd(i) => write!(f, "Bdd(#{i})"),
        }
    }
}

/// Variable level used for terminals: compares greater than any real level.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

#[derive(Clone, Copy)]
pub(crate) struct Node {
    /// Variable index (== level in the fixed order). `TERMINAL_LEVEL` for
    /// the two terminals.
    pub var: u32,
    pub lo: Bdd,
    pub hi: Bdd,
}

/// Operation tags for the shared operation cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum OpTag {
    Ite,
    Not,
    Exists(u32),
    Forall(u32),
    Compose(u32),
    Restrict,
}

/// Snapshot of manager size counters, useful for resource budgeting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Total nodes allocated (including the two terminals).
    pub nodes: usize,
    /// Entries currently in the operation cache.
    pub cache_entries: usize,
    /// Number of declared variables.
    pub vars: usize,
}

impl std::fmt::Display for ManagerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} cache entries, {} vars",
            self.nodes, self.cache_entries, self.vars
        )
    }
}

/// Arena-style BDD manager with a fixed variable order.
///
/// Variable `0` is the topmost level. The manager owns all nodes it ever
/// creates; nodes are reclaimed only when the manager is dropped (see the
/// crate-level docs for why this fits the synthesis workload).
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    unique: FibHashMap<(u32, Bdd, Bdd), Bdd>,
    pub(crate) op_cache: FibHashMap<(OpTag, Bdd, Bdd, Bdd), Bdd>,
    /// Interned variable sets for quantification, keyed by sorted contents.
    varsets: Vec<Vec<u32>>,
    varset_ids: FibHashMap<Vec<u32>, u32>,
    num_vars: u32,
    /// Hard allocation cap; see [`Manager::set_node_cap`].
    node_cap: usize,
    /// Memoization cap; see [`Manager::set_cache_cap`].
    cache_cap: usize,
    overflowed: bool,
}

impl std::fmt::Debug for Manager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manager")
            .field("vars", &self.num_vars)
            .field("nodes", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

impl Manager {
    /// Creates a manager with `num_vars` variables, indexed `0..num_vars`.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars >= u32::MAX / 2` (far beyond any practical use).
    pub fn new(num_vars: u32) -> Self {
        assert!(num_vars < u32::MAX / 2, "variable count out of range");
        let nodes = vec![
            Node {
                var: TERMINAL_LEVEL,
                lo: Bdd::ZERO,
                hi: Bdd::ZERO,
            },
            Node {
                var: TERMINAL_LEVEL,
                lo: Bdd::ONE,
                hi: Bdd::ONE,
            },
        ];
        Manager {
            nodes,
            unique: FibHashMap::default(),
            op_cache: FibHashMap::default(),
            varsets: Vec::new(),
            varset_ids: FibHashMap::default(),
            num_vars,
            node_cap: usize::MAX,
            cache_cap: usize::MAX,
            overflowed: false,
        }
    }

    /// Caps the number of memoized operation results. Beyond the cap,
    /// results are still computed correctly but no longer cached (time may
    /// degrade; memory stays bounded). Pair with
    /// [`Manager::set_node_cap`] to fully bound a manager's footprint.
    pub fn set_cache_cap(&mut self, cap: usize) {
        self.cache_cap = cap;
    }

    /// Inserts into the operation cache unless the cache cap is reached.
    #[inline]
    pub(crate) fn cache_insert(&mut self, key: (OpTag, Bdd, Bdd, Bdd), value: Bdd) {
        if self.op_cache.len() < self.cache_cap {
            self.op_cache.insert(key, value);
        }
    }

    /// Installs a hard cap on the number of allocated nodes. Once the cap
    /// is hit, the manager enters an **overflowed** state: every further
    /// construction returns `⊥` and [`Manager::is_overflowed`] reports
    /// `true`. Results produced after overflow are meaningless — callers
    /// must check the flag and discard the manager. This is the
    /// out-of-memory containment strategy (CUDD's `NULL` returns, in Rust
    /// clothing) used by the synthesis engine's node budget.
    pub fn set_node_cap(&mut self, cap: usize) {
        self.node_cap = cap;
    }

    /// `true` once the node cap has been hit; all results produced since
    /// then are unreliable.
    #[inline]
    pub fn is_overflowed(&self) -> bool {
        self.overflowed
    }

    /// Number of declared variables.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Declares additional variables *below* all existing ones and returns
    /// the index of the first new variable.
    ///
    /// The synthesis engine uses this to append the gate-select variables of
    /// a new cascade level while keeping all previously built BDDs valid.
    pub fn add_vars(&mut self, count: u32) -> u32 {
        let first = self.num_vars;
        self.num_vars = self
            .num_vars
            .checked_add(count)
            .expect("variable count overflow");
        first
    }

    /// The constant-false function.
    #[inline]
    pub fn zero(&self) -> Bdd {
        Bdd::ZERO
    }

    /// The constant-true function.
    #[inline]
    pub fn one(&self) -> Bdd {
        Bdd::ONE
    }

    /// Converts a boolean constant into the corresponding terminal.
    #[inline]
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::ONE
        } else {
            Bdd::ZERO
        }
    }

    /// The projection function of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a declared variable.
    pub fn var(&mut self, v: u32) -> Bdd {
        assert!(v < self.num_vars, "variable {v} not declared");
        self.mk(v, Bdd::ZERO, Bdd::ONE)
    }

    /// The negated projection function of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a declared variable.
    pub fn nvar(&mut self, v: u32) -> Bdd {
        assert!(v < self.num_vars, "variable {v} not declared");
        self.mk(v, Bdd::ONE, Bdd::ZERO)
    }

    /// Literal helper: variable `v` if `positive`, else its negation.
    pub fn literal(&mut self, v: u32, positive: bool) -> Bdd {
        if positive {
            self.var(v)
        } else {
            self.nvar(v)
        }
    }

    /// Hash-consing constructor enforcing the two ROBDD reduction rules.
    #[inline]
    pub(crate) fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if self.overflowed {
            return Bdd::ZERO;
        }
        if lo == hi {
            return lo;
        }
        debug_assert!(
            var < self.level(lo) && var < self.level(hi),
            "order violation"
        );
        if let Some(&id) = self.unique.get(&(var, lo, hi)) {
            return id;
        }
        if self.nodes.len() >= self.node_cap {
            self.overflowed = true;
            return Bdd::ZERO;
        }
        let id = Bdd(u32::try_from(self.nodes.len()).expect("node table overflow"));
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        id
    }

    /// Level (variable index) of the root of `f`; terminals report
    /// `TERMINAL_LEVEL`.
    #[inline]
    pub(crate) fn level(&self, f: Bdd) -> u32 {
        self.nodes[f.0 as usize].var
    }

    /// Root variable of `f`, or `None` for terminals.
    pub fn root_var(&self, f: Bdd) -> Option<u32> {
        let l = self.level(f);
        (l != TERMINAL_LEVEL).then_some(l)
    }

    /// Children of a non-terminal node `(lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn children(&self, f: Bdd) -> (Bdd, Bdd) {
        assert!(!f.is_terminal(), "terminals have no children");
        let n = self.nodes[f.0 as usize];
        (n.lo, n.hi)
    }

    /// Cofactors of `f` with respect to variable/level `var`, assuming the
    /// root of `f` is at `var` or below.
    #[inline]
    pub(crate) fn cofactors_at(&self, f: Bdd, var: u32) -> (Bdd, Bdd) {
        let n = self.nodes[f.0 as usize];
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// Interns a **sorted, deduplicated** variable list for quantification
    /// caching and returns its id.
    pub(crate) fn intern_varset(&mut self, vars: &[u32]) -> u32 {
        debug_assert!(
            vars.windows(2).all(|w| w[0] < w[1]),
            "varset must be sorted"
        );
        if let Some(&id) = self.varset_ids.get(vars) {
            return id;
        }
        let id = u32::try_from(self.varsets.len()).expect("varset table overflow");
        self.varsets.push(vars.to_vec());
        self.varset_ids.insert(vars.to_vec(), id);
        id
    }

    pub(crate) fn varset(&self, id: u32) -> &[u32] {
        &self.varsets[id as usize]
    }

    /// Unique-table lookup for the audit layer (see `audit.rs`).
    pub(crate) fn unique_get(&self, key: &(u32, Bdd, Bdd)) -> Option<Bdd> {
        self.unique.get(key).copied()
    }

    /// Operation-cache iteration for the audit layer (see `audit.rs`).
    pub(crate) fn op_cache_iter(
        &self,
    ) -> impl Iterator<Item = (&(OpTag, Bdd, Bdd, Bdd), &Bdd)> + '_ {
        self.op_cache.iter()
    }

    /// Total number of allocated nodes (including both terminals).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Drops all memoization tables, keeping the node store intact.
    ///
    /// Subsequent operations recompute results but remain correct. Call this
    /// to bound memory on long-running synthesis loops.
    pub fn clear_caches(&mut self) {
        self.op_cache.clear();
    }

    /// Clears the operation cache only when it holds more than
    /// `max_entries` results — a cheap way to bound cache memory without
    /// giving up memoization on small workloads.
    pub fn trim_cache(&mut self, max_entries: usize) {
        if self.op_cache.len() > max_entries {
            self.op_cache = crate::hash::FibHashMap::default();
        }
    }

    /// Current size counters.
    pub fn stats(&self) -> ManagerStats {
        ManagerStats {
            nodes: self.nodes.len(),
            cache_entries: self.op_cache.len(),
            vars: self.num_vars as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_preallocated() {
        let m = Manager::new(4);
        assert_eq!(m.node_count(), 2);
        assert!(m.zero().is_zero());
        assert!(m.one().is_one());
        assert!(m.zero().is_terminal() && m.one().is_terminal());
        assert_ne!(m.zero(), m.one());
    }

    #[test]
    fn mk_is_hash_consed() {
        let mut m = Manager::new(4);
        let a = m.var(2);
        let b = m.var(2);
        assert_eq!(a, b);
        assert_eq!(m.node_count(), 3);
    }

    #[test]
    fn mk_elides_redundant_nodes() {
        let mut m = Manager::new(4);
        let t = m.one();
        let r = m.mk(1, t, t);
        assert_eq!(r, t);
        assert_eq!(m.node_count(), 2);
    }

    #[test]
    fn var_and_nvar_differ() {
        let mut m = Manager::new(2);
        let v = m.var(0);
        let nv = m.nvar(0);
        assert_ne!(v, nv);
        assert_eq!(m.children(v), (Bdd::ZERO, Bdd::ONE));
        assert_eq!(m.children(nv), (Bdd::ONE, Bdd::ZERO));
    }

    #[test]
    fn literal_dispatches_on_sign() {
        let mut m = Manager::new(2);
        assert_eq!(m.literal(1, true), m.var(1));
        assert_eq!(m.literal(1, false), m.nvar(1));
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn var_out_of_range_panics() {
        let mut m = Manager::new(2);
        let _ = m.var(2);
    }

    #[test]
    fn add_vars_extends_below() {
        let mut m = Manager::new(2);
        let first = m.add_vars(3);
        assert_eq!(first, 2);
        assert_eq!(m.num_vars(), 5);
        let _ = m.var(4);
    }

    #[test]
    fn root_var_reports_level() {
        let mut m = Manager::new(3);
        let v = m.var(1);
        assert_eq!(m.root_var(v), Some(1));
        assert_eq!(m.root_var(Bdd::ONE), None);
    }

    #[test]
    fn varsets_are_interned() {
        let mut m = Manager::new(8);
        let a = m.intern_varset(&[1, 3, 5]);
        let b = m.intern_varset(&[1, 3, 5]);
        let c = m.intern_varset(&[1, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.varset(a), &[1, 3, 5]);
    }

    #[test]
    fn node_cap_triggers_overflow_flag() {
        let mut m = Manager::new(8);
        m.set_node_cap(6);
        assert!(!m.is_overflowed());
        // Build a parity function — needs more than 6 nodes.
        let mut f = m.zero();
        for v in 0..8 {
            let x = m.var(v);
            f = m.xor(f, x);
            if m.is_overflowed() {
                break;
            }
        }
        assert!(m.is_overflowed(), "cap of 6 nodes must overflow");
        assert!(m.node_count() <= 7, "allocation stops at the cap");
        // Post-overflow constructions return ⊥ without allocating.
        let before = m.node_count();
        let _ = m.var(3);
        assert_eq!(m.node_count(), before);
    }

    #[test]
    fn uncapped_manager_never_overflows() {
        let mut m = Manager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.xor(a, b);
        assert!(!m.is_overflowed());
    }

    #[test]
    fn stats_and_clear_caches() {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.and(a, b);
        assert!(m.stats().cache_entries > 0);
        m.clear_caches();
        assert_eq!(m.stats().cache_entries, 0);
        // Operations still work after clearing.
        let c = m.and(a, b);
        assert!(!c.is_terminal());
    }
}
