//! The BDD manager: hash-consed node storage with a fixed variable order.

use crate::cache::ComputedTable;
use crate::hash::FibHashMap;

/// Handle to a BDD node inside a [`Manager`].
///
/// Handles are plain indices; they are only meaningful together with the
/// manager that created them. Mixing handles across managers is a logic
/// error (it is memory-safe but yields nonsense results or panics).
///
/// A handle is only valid while its node is **live**: after a
/// [`Manager::collect_garbage`] call, handles that were not reachable from
/// the supplied roots dangle (their slots may be reused by later
/// constructions). Keep every handle you intend to use past a collection in
/// the root set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-false function.
    pub const ZERO: Bdd = Bdd(0);
    /// The constant-true function.
    pub const ONE: Bdd = Bdd(1);

    /// Returns `true` if this is the constant-false terminal.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Bdd::ZERO
    }

    /// Returns `true` if this is the constant-true terminal.
    #[inline]
    pub fn is_one(self) -> bool {
        self == Bdd::ONE
    }

    /// Returns `true` if this is either terminal.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Raw arena index of the handle (terminals are `0` and `1`). Only
    /// meaningful relative to the owning manager; exposed for the audit
    /// layer's range checks.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for Bdd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Bdd::ZERO => write!(f, "Bdd(⊥)"),
            Bdd::ONE => write!(f, "Bdd(⊤)"),
            Bdd(i) => write!(f, "Bdd(#{i})"),
        }
    }
}

/// Variable level used for terminals: compares greater than any real level.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// Variable level marking a slot on the free list. Distinct from
/// [`TERMINAL_LEVEL`] so the audit layer can tell "freed" from "terminal",
/// and still above every declared variable (`Manager::new` caps
/// `num_vars` well below both sentinels).
pub(crate) const FREE_LEVEL: u32 = u32::MAX - 1;

#[derive(Clone, Copy)]
pub(crate) struct Node {
    /// Variable index (== level in the fixed order). `TERMINAL_LEVEL` for
    /// the two terminals, `FREE_LEVEL` for slots on the free list.
    pub var: u32,
    pub lo: Bdd,
    pub hi: Bdd,
}

/// Operation tags for the shared computed table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum OpTag {
    Ite,
    Not,
    Exists(u32),
    Forall(u32),
    Compose(u32),
    Restrict,
    /// Fused `∃ varset (f ∧ g)` — see `Manager::and_exists`.
    AndExists(u32),
    /// Fused `∀ varset (f ∧ g)` — see `Manager::and_forall`.
    AndForall(u32),
}

/// Snapshot of manager size counters, useful for resource budgeting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Live nodes (including the two terminals): allocated minus freed.
    pub nodes: usize,
    /// High-water mark of live nodes over the manager's lifetime.
    pub peak_live: usize,
    /// Slots of the node arena ever allocated (including freed ones).
    pub allocated: usize,
    /// Slots currently on the free list.
    pub free_slots: usize,
    /// Completed garbage collections.
    pub gc_runs: u64,
    /// Nodes reclaimed by garbage collection, cumulative.
    pub gc_freed: u64,
    /// Entries currently in the computed table.
    pub cache_entries: usize,
    /// Slot capacity of the computed table.
    pub cache_capacity: usize,
    /// Computed-table lookups that found a memoized result.
    pub cache_hits: u64,
    /// Computed-table lookups that missed.
    pub cache_misses: u64,
    /// Computed-table inserts that overwrote a different live entry.
    pub cache_evictions: u64,
    /// Number of declared variables.
    pub vars: usize,
    /// Times this manager was recycled via [`Manager::reset`].
    pub resets: u64,
}

impl ManagerStats {
    /// Cache hit rate in `[0, 1]`; `0` before any lookup.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for ManagerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} live nodes (peak {}), {} gc runs freeing {}, \
             cache {}/{} slots ({:.1}% hit rate, {} evictions), {} vars, {} resets",
            self.nodes,
            self.peak_live,
            self.gc_runs,
            self.gc_freed,
            self.cache_entries,
            self.cache_capacity,
            self.cache_hit_rate() * 100.0,
            self.cache_evictions,
            self.vars,
            self.resets
        )
    }
}

/// Arena-style BDD manager with a fixed variable order.
///
/// Variable `0` is the topmost level. Dead nodes are reclaimed by
/// [`Manager::collect_garbage`] (mark-and-sweep from an explicit root set;
/// see `gc.rs`); their slots are reused by later constructions via a free
/// list. All remaining storage is released when the manager is dropped.
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    unique: FibHashMap<(u32, Bdd, Bdd), Bdd>,
    /// Direct-mapped lossy memoization table for all recursive operations.
    pub(crate) computed: ComputedTable,
    /// Slots of `nodes` available for reuse (their `var` is `FREE_LEVEL`).
    pub(crate) free: Vec<u32>,
    /// Interned variable sets for quantification, keyed by sorted contents.
    varsets: Vec<Vec<u32>>,
    varset_ids: FibHashMap<Vec<u32>, u32>,
    num_vars: u32,
    /// Hard cap on **live** nodes; see [`Manager::set_node_cap`].
    node_cap: usize,
    overflowed: bool,
    peak_live: usize,
    gc_runs: u64,
    gc_freed: u64,
    /// Times this manager was recycled via [`Manager::reset`].
    resets: u64,
    /// External interrupt probe polled from `mk` (see
    /// [`Manager::set_interrupt_poll`]); `None` disables polling.
    interrupt_poll: Option<Box<dyn Fn() -> bool + Send>>,
    /// Constructions remaining until the next interrupt poll.
    interrupt_countdown: u32,
    /// Latched once the interrupt probe fired; see
    /// [`Manager::is_interrupted`].
    interrupted: bool,
    /// Scratch mark bitmap reused across collections (see `gc.rs`).
    pub(crate) gc_marks: Vec<bool>,
}

/// `mk` calls between two polls of the interrupt probe — cheap enough to
/// be invisible, frequent enough that a cancelled operation stops within
/// microseconds.
const INTERRUPT_POLL_STRIDE: u32 = 4096;

impl std::fmt::Debug for Manager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manager")
            .field("vars", &self.num_vars)
            .field("nodes", &self.node_count())
            .finish_non_exhaustive()
    }
}

impl Manager {
    /// Creates a manager with `num_vars` variables, indexed `0..num_vars`.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars >= u32::MAX / 2` (far beyond any practical use).
    pub fn new(num_vars: u32) -> Self {
        assert!(num_vars < u32::MAX / 2, "variable count out of range");
        let nodes = vec![
            Node {
                var: TERMINAL_LEVEL,
                lo: Bdd::ZERO,
                hi: Bdd::ZERO,
            },
            Node {
                var: TERMINAL_LEVEL,
                lo: Bdd::ONE,
                hi: Bdd::ONE,
            },
        ];
        Manager {
            nodes,
            unique: FibHashMap::default(),
            computed: ComputedTable::default(),
            free: Vec::new(),
            varsets: Vec::new(),
            varset_ids: FibHashMap::default(),
            num_vars,
            node_cap: usize::MAX,
            overflowed: false,
            peak_live: 2,
            gc_runs: 0,
            gc_freed: 0,
            resets: 0,
            interrupt_poll: None,
            interrupt_countdown: INTERRUPT_POLL_STRIDE,
            interrupted: false,
            gc_marks: Vec::new(),
        }
    }

    /// Recycles the manager for a new problem over `num_vars` variables:
    /// the arena is truncated back to the two terminals and the unique
    /// table, free list, variable sets and computed table are emptied —
    /// but every container **keeps its allocated capacity**, so a manager
    /// that grew large tables on one job starts the next job warm instead
    /// of re-growing them from scratch. The node cap, overflow flag and
    /// interrupt probe are cleared back to their `new` defaults.
    ///
    /// Cumulative lifetime counters (peak live nodes, GC runs/freed,
    /// cache hits/misses/evictions) survive the reset, and
    /// [`ManagerStats::resets`] counts how often the manager was recycled.
    ///
    /// Every outstanding [`Bdd`] handle dangles after a reset; using one
    /// is a logic error, exactly as with handles across managers.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars >= u32::MAX / 2`, as in [`Manager::new`].
    pub fn reset(&mut self, num_vars: u32) {
        assert!(num_vars < u32::MAX / 2, "variable count out of range");
        self.nodes.truncate(2);
        self.unique.clear();
        self.computed.clear();
        self.free.clear();
        self.varsets.clear();
        self.varset_ids.clear();
        self.num_vars = num_vars;
        self.node_cap = usize::MAX;
        self.overflowed = false;
        self.interrupt_poll = None;
        self.interrupt_countdown = INTERRUPT_POLL_STRIDE;
        self.interrupted = false;
        self.resets += 1;
    }

    /// Installs (or removes) the interrupt probe: a callback polled every
    /// few thousand node constructions. Once it returns `true` the manager
    /// latches into an **interrupted** state that behaves like overflow —
    /// every further construction returns `⊥` promptly, so a caller's
    /// deadline or cancellation takes effect *inside* a long-running BDD
    /// operation instead of only between operations. Check
    /// [`Manager::is_interrupted`] and discard the results.
    ///
    /// The probe must be cheap (an atomic load or a clock read); it runs on
    /// the construction hot path, if only once per
    /// [stride](`Manager::reset`) of `mk` calls.
    pub fn set_interrupt_poll(&mut self, poll: Option<Box<dyn Fn() -> bool + Send>>) {
        self.interrupt_poll = poll;
        self.interrupt_countdown = INTERRUPT_POLL_STRIDE;
        self.interrupted = false;
    }

    /// `true` once the interrupt probe has fired; all results produced
    /// since then are unreliable (they collapse to `⊥`).
    #[inline]
    pub fn is_interrupted(&self) -> bool {
        self.interrupted
    }

    /// Overflow-or-interrupt guard shared by the recursive operations.
    #[inline]
    pub(crate) fn aborted(&self) -> bool {
        self.overflowed || self.interrupted
    }

    /// Polls the interrupt probe now, regardless of the stride. Used at
    /// coarse boundaries (garbage collection) where a poll is cheap
    /// relative to the work it guards.
    ///
    /// Also carries the fault-plane site `bdd.alloc`: polling it here —
    /// once per interrupt stride or collection, inside an already
    /// out-of-line method — keeps the disarmed plane's atomics (and their
    /// code size) out of `mk`'s inlined hot body, where even a strided
    /// check costs double-digit percent. A simulated OOM latches the
    /// overflow flag exactly as a real node-cap trip would.
    pub(crate) fn poll_interrupt(&mut self) {
        if qsyn_faults::hit(qsyn_faults::Site::BddAlloc).is_some() {
            self.overflowed = true;
        }
        if let Some(poll) = &self.interrupt_poll {
            if poll() {
                self.interrupted = true;
            }
        }
    }

    /// Caps the slot count of the computed table (rounded to a power of
    /// two). The table is **lossy** — beyond its capacity colliding results
    /// overwrite older ones — so any cap trades recomputation time for
    /// memory, never correctness.
    pub fn set_cache_cap(&mut self, cap: usize) {
        self.computed.set_max_slots(cap);
    }

    /// Looks up a memoized operation result.
    #[inline]
    pub(crate) fn cache_get(&mut self, key: (OpTag, Bdd, Bdd, Bdd)) -> Option<Bdd> {
        self.computed.get(key)
    }

    /// Memoizes an operation result (may overwrite a colliding entry).
    #[inline]
    pub(crate) fn cache_insert(&mut self, key: (OpTag, Bdd, Bdd, Bdd), value: Bdd) {
        self.computed.insert(key, value);
    }

    /// Installs a hard cap on the number of **live** nodes. Once the cap
    /// is hit, the manager enters an **overflowed** state: every further
    /// construction returns `⊥` and [`Manager::is_overflowed`] reports
    /// `true`. Results produced after overflow are meaningless — callers
    /// must check the flag and discard the manager. This is the
    /// out-of-memory containment strategy (CUDD's `NULL` returns, in Rust
    /// clothing) used by the synthesis engine's node budget.
    ///
    /// Because the cap counts live nodes, garbage collection creates
    /// headroom: callers that free dead roots via
    /// [`Manager::collect_garbage`] before the cap is hit can keep running
    /// where an allocation-counting cap would have overflowed on garbage.
    pub fn set_node_cap(&mut self, cap: usize) {
        self.node_cap = cap;
    }

    /// `true` once the node cap has been hit; all results produced since
    /// then are unreliable.
    #[inline]
    pub fn is_overflowed(&self) -> bool {
        self.overflowed
    }

    /// Number of declared variables.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Declares additional variables *below* all existing ones and returns
    /// the index of the first new variable.
    ///
    /// The synthesis engine uses this to append the gate-select variables of
    /// a new cascade level while keeping all previously built BDDs valid.
    pub fn add_vars(&mut self, count: u32) -> u32 {
        let first = self.num_vars;
        self.num_vars = self
            .num_vars
            .checked_add(count)
            .expect("variable count overflow");
        assert!(self.num_vars < FREE_LEVEL, "variable count out of range");
        first
    }

    /// The constant-false function.
    #[inline]
    pub fn zero(&self) -> Bdd {
        Bdd::ZERO
    }

    /// The constant-true function.
    #[inline]
    pub fn one(&self) -> Bdd {
        Bdd::ONE
    }

    /// Converts a boolean constant into the corresponding terminal.
    #[inline]
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::ONE
        } else {
            Bdd::ZERO
        }
    }

    /// The projection function of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a declared variable.
    pub fn var(&mut self, v: u32) -> Bdd {
        assert!(v < self.num_vars, "variable {v} not declared");
        self.mk(v, Bdd::ZERO, Bdd::ONE)
    }

    /// The negated projection function of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a declared variable.
    pub fn nvar(&mut self, v: u32) -> Bdd {
        assert!(v < self.num_vars, "variable {v} not declared");
        self.mk(v, Bdd::ONE, Bdd::ZERO)
    }

    /// Literal helper: variable `v` if `positive`, else its negation.
    pub fn literal(&mut self, v: u32, positive: bool) -> Bdd {
        if positive {
            self.var(v)
        } else {
            self.nvar(v)
        }
    }

    /// Hash-consing constructor enforcing the two ROBDD reduction rules.
    #[inline]
    pub(crate) fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if self.overflowed || self.interrupted {
            return Bdd::ZERO;
        }
        if self.interrupt_poll.is_some() {
            self.interrupt_countdown -= 1;
            if self.interrupt_countdown == 0 {
                self.interrupt_countdown = INTERRUPT_POLL_STRIDE;
                // The stride poll carries the `bdd.alloc` fault site too
                // (see `poll_interrupt`), so both abort flags need
                // re-checking here.
                self.poll_interrupt();
                if self.aborted() {
                    return Bdd::ZERO;
                }
            }
        }
        if lo == hi {
            return lo;
        }
        debug_assert!(
            var < self.level(lo) && var < self.level(hi),
            "order violation"
        );
        if let Some(&id) = self.unique.get(&(var, lo, hi)) {
            return id;
        }
        if self.node_count() >= self.node_cap {
            self.overflowed = true;
            return Bdd::ZERO;
        }
        let id = if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = Node { var, lo, hi };
            Bdd(slot)
        } else {
            let id = Bdd(u32::try_from(self.nodes.len()).expect("node table overflow"));
            self.nodes.push(Node { var, lo, hi });
            id
        };
        self.unique.insert((var, lo, hi), id);
        self.peak_live = self.peak_live.max(self.node_count());
        id
    }

    /// Level (variable index) of the root of `f`; terminals report
    /// `TERMINAL_LEVEL`.
    #[inline]
    pub(crate) fn level(&self, f: Bdd) -> u32 {
        self.nodes[f.0 as usize].var
    }

    /// Root variable of `f`, or `None` for terminals.
    pub fn root_var(&self, f: Bdd) -> Option<u32> {
        let l = self.level(f);
        (l != TERMINAL_LEVEL).then_some(l)
    }

    /// Children of a non-terminal node `(lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn children(&self, f: Bdd) -> (Bdd, Bdd) {
        assert!(!f.is_terminal(), "terminals have no children");
        let n = self.nodes[f.0 as usize];
        (n.lo, n.hi)
    }

    /// Cofactors of `f` with respect to variable/level `var`, assuming the
    /// root of `f` is at `var` or below.
    #[inline]
    pub(crate) fn cofactors_at(&self, f: Bdd, var: u32) -> (Bdd, Bdd) {
        let n = self.nodes[f.0 as usize];
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// Interns a **sorted, deduplicated** variable list for quantification
    /// caching and returns its id.
    pub(crate) fn intern_varset(&mut self, vars: &[u32]) -> u32 {
        debug_assert!(
            vars.windows(2).all(|w| w[0] < w[1]),
            "varset must be sorted"
        );
        if let Some(&id) = self.varset_ids.get(vars) {
            return id;
        }
        let id = u32::try_from(self.varsets.len()).expect("varset table overflow");
        self.varsets.push(vars.to_vec());
        self.varset_ids.insert(vars.to_vec(), id);
        id
    }

    pub(crate) fn varset(&self, id: u32) -> &[u32] {
        &self.varsets[id as usize]
    }

    /// Unique-table lookup for the audit layer (see `audit.rs`).
    pub(crate) fn unique_get(&self, key: &(u32, Bdd, Bdd)) -> Option<Bdd> {
        self.unique.get(key).copied()
    }

    /// Removes dead entries from the unique table after a sweep (`gc.rs`).
    pub(crate) fn unique_retain_marked(&mut self) {
        let marks = &self.gc_marks;
        self.unique
            .retain(|_, id| marks.get(id.0 as usize).copied().unwrap_or(false));
    }

    /// Number of **live** nodes (allocated minus freed, including both
    /// terminals). This is what [`Manager::set_node_cap`] bounds.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// High-water mark of [`Manager::node_count`] over the manager's life.
    #[inline]
    pub fn peak_live_nodes(&self) -> usize {
        self.peak_live
    }

    /// `true` if the slot behind `f` is on the free list (i.e. `f` dangles).
    #[inline]
    pub(crate) fn is_free(&self, f: Bdd) -> bool {
        self.nodes[f.0 as usize].var == FREE_LEVEL
    }

    /// GC bookkeeping used by `gc.rs` when a sweep frees `n` nodes: slots
    /// are pushed onto the free list by the sweep itself.
    pub(crate) fn note_collection(&mut self, freed: u64) {
        self.gc_runs += 1;
        self.gc_freed += freed;
    }

    /// Replaces the free list wholesale after a sweep (`gc.rs` only). Every
    /// slot on the list must carry the `FREE_LEVEL` sentinel.
    pub(crate) fn replace_free_list(&mut self, free: Vec<u32>) {
        debug_assert!(free
            .iter()
            .all(|&s| self.nodes[s as usize].var == FREE_LEVEL));
        self.free = free;
    }

    /// Drops all memoization tables, keeping the node store intact.
    ///
    /// Subsequent operations recompute results but remain correct.
    pub fn clear_caches(&mut self) {
        self.computed.clear();
    }

    /// Current size counters.
    pub fn stats(&self) -> ManagerStats {
        let c = self.computed.counters();
        ManagerStats {
            nodes: self.node_count(),
            peak_live: self.peak_live,
            allocated: self.nodes.len(),
            free_slots: self.free.len(),
            gc_runs: self.gc_runs,
            gc_freed: self.gc_freed,
            cache_entries: c.entries,
            cache_capacity: c.capacity,
            cache_hits: c.hits,
            cache_misses: c.misses,
            cache_evictions: c.evictions,
            vars: self.num_vars as usize,
            resets: self.resets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_preallocated() {
        let m = Manager::new(4);
        assert_eq!(m.node_count(), 2);
        assert!(m.zero().is_zero());
        assert!(m.one().is_one());
        assert!(m.zero().is_terminal() && m.one().is_terminal());
        assert_ne!(m.zero(), m.one());
    }

    #[test]
    fn mk_is_hash_consed() {
        let mut m = Manager::new(4);
        let a = m.var(2);
        let b = m.var(2);
        assert_eq!(a, b);
        assert_eq!(m.node_count(), 3);
    }

    #[test]
    fn mk_elides_redundant_nodes() {
        let mut m = Manager::new(4);
        let t = m.one();
        let r = m.mk(1, t, t);
        assert_eq!(r, t);
        assert_eq!(m.node_count(), 2);
    }

    #[test]
    fn var_and_nvar_differ() {
        let mut m = Manager::new(2);
        let v = m.var(0);
        let nv = m.nvar(0);
        assert_ne!(v, nv);
        assert_eq!(m.children(v), (Bdd::ZERO, Bdd::ONE));
        assert_eq!(m.children(nv), (Bdd::ONE, Bdd::ZERO));
    }

    #[test]
    fn literal_dispatches_on_sign() {
        let mut m = Manager::new(2);
        assert_eq!(m.literal(1, true), m.var(1));
        assert_eq!(m.literal(1, false), m.nvar(1));
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn var_out_of_range_panics() {
        let mut m = Manager::new(2);
        let _ = m.var(2);
    }

    #[test]
    fn add_vars_extends_below() {
        let mut m = Manager::new(2);
        let first = m.add_vars(3);
        assert_eq!(first, 2);
        assert_eq!(m.num_vars(), 5);
        let _ = m.var(4);
    }

    #[test]
    fn root_var_reports_level() {
        let mut m = Manager::new(3);
        let v = m.var(1);
        assert_eq!(m.root_var(v), Some(1));
        assert_eq!(m.root_var(Bdd::ONE), None);
    }

    #[test]
    fn varsets_are_interned() {
        let mut m = Manager::new(8);
        let a = m.intern_varset(&[1, 3, 5]);
        let b = m.intern_varset(&[1, 3, 5]);
        let c = m.intern_varset(&[1, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.varset(a), &[1, 3, 5]);
    }

    #[test]
    fn node_cap_triggers_overflow_flag() {
        let mut m = Manager::new(8);
        m.set_node_cap(6);
        assert!(!m.is_overflowed());
        // Build a parity function — needs more than 6 nodes.
        let mut f = m.zero();
        for v in 0..8 {
            let x = m.var(v);
            f = m.xor(f, x);
            if m.is_overflowed() {
                break;
            }
        }
        assert!(m.is_overflowed(), "cap of 6 nodes must overflow");
        assert!(m.node_count() <= 7, "allocation stops at the cap");
        // Post-overflow constructions return ⊥ without allocating.
        let before = m.node_count();
        let _ = m.var(3);
        assert_eq!(m.node_count(), before);
    }

    #[test]
    fn uncapped_manager_never_overflows() {
        let mut m = Manager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.xor(a, b);
        assert!(!m.is_overflowed());
    }

    #[test]
    fn stats_and_clear_caches() {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.and(a, b);
        assert!(m.stats().cache_entries > 0);
        m.clear_caches();
        assert_eq!(m.stats().cache_entries, 0);
        // Operations still work after clearing.
        let c = m.and(a, b);
        assert!(!c.is_terminal());
    }

    #[test]
    fn stats_track_cache_traffic_and_peak() {
        let mut m = Manager::new(6);
        let mut f = m.zero();
        for v in 0..6 {
            let x = m.var(v);
            f = m.xor(f, x);
        }
        let s = m.stats();
        assert!(s.cache_misses > 0, "building xor chain misses the cache");
        assert_eq!(s.nodes, s.allocated - s.free_slots);
        assert!(s.peak_live >= s.nodes);
        assert!(s.cache_hit_rate() >= 0.0 && s.cache_hit_rate() <= 1.0);
        // Re-doing the same op hits the cache.
        let hits_before = m.stats().cache_hits;
        let x0 = m.var(0);
        let x1 = m.var(1);
        let _ = m.xor(x0, x1);
        assert!(m.stats().cache_hits > hits_before);
    }

    #[test]
    fn reset_empties_tables_but_keeps_capacity_and_counters() {
        let mut m = Manager::new(6);
        let mut f = m.zero();
        for v in 0..6 {
            let x = m.var(v);
            f = m.xor(f, x);
        }
        m.set_node_cap(1_000_000);
        let before = m.stats();
        assert!(before.cache_misses > 0 && before.nodes > 2);
        m.reset(4);
        let after = m.stats();
        assert_eq!(after.nodes, 2, "only the terminals survive");
        assert_eq!(after.allocated, 2);
        assert_eq!(after.free_slots, 0);
        assert_eq!(after.cache_entries, 0);
        assert_eq!(after.vars, 4);
        assert_eq!(after.resets, 1);
        assert!(!m.is_overflowed() && !m.is_interrupted());
        // Cumulative counters survive; capacity stays warm.
        assert_eq!(after.cache_misses, before.cache_misses);
        assert_eq!(after.cache_hits, before.cache_hits);
        assert!(after.peak_live >= before.peak_live);
        assert_eq!(after.cache_capacity, before.cache_capacity);
        // The manager is fully usable after a reset.
        let a = m.var(0);
        let b = m.var(3);
        let c = m.and(a, b);
        assert!(!c.is_terminal());
        assert!(m.eval(c, &[true, false, false, true]));
    }

    #[test]
    fn reset_clears_overflow_and_node_cap() {
        let mut m = Manager::new(8);
        m.set_node_cap(4);
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.xor(a, b);
        assert!(m.is_overflowed());
        m.reset(8);
        assert!(!m.is_overflowed());
        let a = m.var(0);
        let b = m.var(1);
        let x = m.xor(a, b);
        assert!(!m.is_overflowed());
        assert!(m.eval(x, &[true, false, false, false, false, false, false, false]));
    }

    #[test]
    fn interrupt_poll_latches_and_collapses_results() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(false));
        let probe = Arc::clone(&flag);
        let mut m = Manager::new(16);
        m.set_interrupt_poll(Some(Box::new(move || probe.load(Ordering::SeqCst))));
        // Build something real first: the probe is false, nothing trips.
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        assert!(!m.is_interrupted() && !ab.is_terminal());
        flag.store(true, Ordering::SeqCst);
        // Drive enough constructions through `mk` to cross the poll stride.
        let mut f = m.zero();
        for round in 0..10_000 {
            let x = m.var(round % 16);
            f = m.xor(f, x);
            if m.is_interrupted() {
                break;
            }
        }
        assert!(m.is_interrupted(), "stride-polled probe must latch");
        // Post-interrupt constructions collapse to ⊥ without panicking.
        assert!(m.and(a, b).is_zero());
        // Reset clears the latch and drops the probe.
        m.reset(16);
        assert!(!m.is_interrupted());
        let a = m.var(0);
        let b = m.var(1);
        assert!(!m.and(a, b).is_terminal());
    }

    #[test]
    fn display_stats_mentions_live_and_hit_rate() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.and(a, b);
        let text = m.stats().to_string();
        assert!(text.contains("live nodes"));
        assert!(text.contains("hit rate"));
    }
}
