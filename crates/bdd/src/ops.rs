//! Boolean connectives on BDDs, all derived from the `ITE` operator.

use crate::manager::{Bdd, Manager, OpTag};

impl Manager {
    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    ///
    /// This is the universal binary/ternary operator; all other connectives
    /// are thin wrappers around it.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        if self.aborted() {
            return Bdd::ZERO;
        }
        // Terminal and absorption cases.
        if f.is_one() {
            return g;
        }
        if f.is_zero() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_one() && h.is_zero() {
            return f;
        }
        if g.is_zero() && h.is_one() {
            return self.not(f);
        }
        let key = (OpTag::Ite, f, g, h);
        if let Some(r) = self.cache_get(key) {
            return r;
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let r1 = self.ite(f1, g1, h1);
        let r0 = self.ite(f0, g0, h0);
        let r = self.mk(top, r0, r1);
        self.cache_insert(key, r);
        r
    }

    /// Negation `¬f`.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        if self.aborted() {
            return Bdd::ZERO;
        }
        if f.is_zero() {
            return Bdd::ONE;
        }
        if f.is_one() {
            return Bdd::ZERO;
        }
        let key = (OpTag::Not, f, Bdd::ZERO, Bdd::ZERO);
        if let Some(r) = self.cache_get(key) {
            return r;
        }
        let top = self.level(f);
        let (f0, f1) = self.cofactors_at(f, top);
        let r1 = self.not(f1);
        let r0 = self.not(f0);
        let r = self.mk(top, r0, r1);
        self.cache_insert(key, r);
        // Negation is an involution; prime the cache for the way back.
        self.cache_insert((OpTag::Not, r, Bdd::ZERO, Bdd::ZERO), f);
        r
    }

    /// Conjunction `f ∧ g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::ZERO)
    }

    /// Disjunction `f ∨ g`.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Bdd::ONE, g)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Equivalence `f ⊙ g` (XNOR). This is the `F_d = f` building block of
    /// the synthesis encoding.
    pub fn xnor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::ONE)
    }

    /// Difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Conjunction of an iterator of BDDs (empty ⇒ `⊤`).
    ///
    /// Reduces as a balanced tree rather than a linear left fold: pairing
    /// operands of similar size keeps the intermediate BDDs small for wide
    /// conjunctions (the engine's control products conjoin dozens of
    /// similarly-shaped constraints, where a left fold accretes one large
    /// accumulator that every further operand is multiplied into).
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        self.reduce_balanced(items, true)
    }

    /// Disjunction of an iterator of BDDs (empty ⇒ `⊥`). Balanced-tree
    /// reduction; see [`Manager::and_all`].
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        self.reduce_balanced(items, false)
    }

    /// Balanced pairwise reduction under ∧ (`conjoin = true`) or ∨, with
    /// early exit on the absorbing element.
    fn reduce_balanced<I: IntoIterator<Item = Bdd>>(&mut self, items: I, conjoin: bool) -> Bdd {
        let absorbing = if conjoin { Bdd::ZERO } else { Bdd::ONE };
        let neutral = if conjoin { Bdd::ONE } else { Bdd::ZERO };
        let mut layer: Vec<Bdd> = items.into_iter().collect();
        if layer.contains(&absorbing) {
            return absorbing;
        }
        layer.retain(|&f| f != neutral);
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut chunks = layer.chunks_exact(2);
            for pair in chunks.by_ref() {
                let r = if conjoin {
                    self.and(pair[0], pair[1])
                } else {
                    self.or(pair[0], pair[1])
                };
                if r == absorbing {
                    return absorbing;
                }
                next.push(r);
            }
            next.extend_from_slice(chunks.remainder());
            layer = next;
        }
        layer.pop().unwrap_or(neutral)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Manager, Bdd, Bdd, Bdd) {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        (m, a, b, c)
    }

    #[test]
    fn ite_terminal_cases() {
        let (mut m, a, b, _) = setup();
        assert_eq!(m.ite(Bdd::ONE, a, b), a);
        assert_eq!(m.ite(Bdd::ZERO, a, b), b);
        assert_eq!(m.ite(a, b, b), b);
        assert_eq!(m.ite(a, Bdd::ONE, Bdd::ZERO), a);
        let na = m.not(a);
        assert_eq!(m.ite(a, Bdd::ZERO, Bdd::ONE), na);
    }

    #[test]
    fn and_or_truth_semantics() {
        let (mut m, a, b, _) = setup();
        let conj = m.and(a, b);
        let disj = m.or(a, b);
        for &(va, vb) in &[(false, false), (false, true), (true, false), (true, true)] {
            let env = [va, vb, false];
            assert_eq!(m.eval(conj, &env), va && vb);
            assert_eq!(m.eval(disj, &env), va || vb);
        }
    }

    #[test]
    fn xor_xnor_are_complements() {
        let (mut m, a, b, _) = setup();
        let x = m.xor(a, b);
        let xn = m.xnor(a, b);
        let nx = m.not(x);
        assert_eq!(xn, nx);
    }

    #[test]
    fn not_is_involution() {
        let (mut m, a, b, c) = setup();
        let ab = m.and(a, b);
        let f = m.xor(ab, c);
        let nf = m.not(f);
        let nnf = m.not(nf);
        assert_eq!(nnf, f);
    }

    #[test]
    fn de_morgan() {
        let (mut m, a, b, _) = setup();
        let conj = m.and(a, b);
        let lhs = m.not(conj);
        let na = m.not(a);
        let nb = m.not(b);
        let rhs = m.or(na, nb);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn implies_semantics() {
        let (mut m, a, b, _) = setup();
        let imp = m.implies(a, b);
        assert!(m.eval(imp, &[false, false, false]));
        assert!(m.eval(imp, &[false, true, false]));
        assert!(!m.eval(imp, &[true, false, false]));
        assert!(m.eval(imp, &[true, true, false]));
    }

    #[test]
    fn diff_semantics() {
        let (mut m, a, b, _) = setup();
        let d = m.diff(a, b);
        assert!(m.eval(d, &[true, false, false]));
        assert!(!m.eval(d, &[true, true, false]));
        assert!(!m.eval(d, &[false, false, false]));
    }

    #[test]
    fn and_all_or_all_fold() {
        let (mut m, a, b, c) = setup();
        let all = m.and_all([a, b, c]);
        assert!(m.eval(all, &[true, true, true]));
        assert!(!m.eval(all, &[true, true, false]));
        let any = m.or_all([a, b, c]);
        assert!(m.eval(any, &[false, false, true]));
        assert!(!m.eval(any, &[false, false, false]));
        assert_eq!(m.and_all(std::iter::empty()), Bdd::ONE);
        assert_eq!(m.or_all(std::iter::empty()), Bdd::ZERO);
    }

    #[test]
    fn canonical_form_detects_tautology() {
        let (mut m, a, b, _) = setup();
        // (a ∧ b) ∨ ¬(a ∧ b) ≡ ⊤
        let ab = m.and(a, b);
        let nab = m.not(ab);
        let taut = m.or(ab, nab);
        assert!(taut.is_one());
    }

    #[test]
    fn shannon_expansion_rebuilds_function() {
        let (mut m, a, b, c) = setup();
        let bc = m.or(b, c);
        let f = m.xor(a, bc);
        // f = ite(a, f|a=1, f|a=0)
        let f1 = m.restrict(f, 0, true);
        let f0 = m.restrict(f, 0, false);
        let rebuilt = m.ite(a, f1, f0);
        assert_eq!(rebuilt, f);
    }
}
