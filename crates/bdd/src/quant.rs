//! Quantification, cofactoring and composition.
//!
//! Universal quantification over the input variables `X` is the heart of the
//! DATE 2008 synthesis approach: after building `F_d = f` as a BDD, the
//! formula `∀x₁…x_n (F_d = f)` is computed by `forall` and leaves a BDD over
//! the gate-select variables `Y` only.

use crate::manager::{Bdd, Manager, OpTag};

impl Manager {
    /// Cofactor `f|_{var=value}`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a declared variable.
    pub fn restrict(&mut self, f: Bdd, var: u32, value: bool) -> Bdd {
        assert!(var < self.num_vars(), "variable {var} not declared");
        let selector = self.constant(value);
        self.restrict_rec(f, var, selector)
    }

    fn restrict_rec(&mut self, f: Bdd, var: u32, selector: Bdd) -> Bdd {
        if self.is_overflowed() {
            return Bdd::ZERO;
        }
        let level = self.level(f);
        if level > var {
            // Root below var (or terminal): f does not depend on var here.
            return f;
        }
        let key = (OpTag::Restrict, f, Bdd(var), selector);
        if let Some(&r) = self.op_cache.get(&key) {
            return r;
        }
        let (lo, hi) = self.children(f);
        let r = if level == var {
            if selector.is_one() {
                hi
            } else {
                lo
            }
        } else {
            let r0 = self.restrict_rec(lo, var, selector);
            let r1 = self.restrict_rec(hi, var, selector);
            self.mk(level, r0, r1)
        };
        self.cache_insert(key, r);
        r
    }

    /// Existential quantification over a single variable:
    /// `∃v f = f|_{v=0} ∨ f|_{v=1}`.
    pub fn exists_var(&mut self, f: Bdd, var: u32) -> Bdd {
        self.exists(f, &[var])
    }

    /// Universal quantification over a single variable:
    /// `∀v f = f|_{v=0} ∧ f|_{v=1}`.
    pub fn forall_var(&mut self, f: Bdd, var: u32) -> Bdd {
        self.forall(f, &[var])
    }

    /// Existential quantification over a set of variables.
    ///
    /// `vars` may be in any order and may contain duplicates; it is
    /// normalized internally.
    ///
    /// # Panics
    ///
    /// Panics if any variable is undeclared.
    pub fn exists(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        let set = self.normalize_varset(vars);
        if set.is_empty() {
            return f;
        }
        let id = self.intern_varset(&set);
        self.quant_rec(f, id, 0, false)
    }

    /// Universal quantification over a set of variables.
    ///
    /// # Panics
    ///
    /// Panics if any variable is undeclared.
    pub fn forall(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        let set = self.normalize_varset(vars);
        if set.is_empty() {
            return f;
        }
        let id = self.intern_varset(&set);
        self.quant_rec(f, id, 0, true)
    }

    fn normalize_varset(&self, vars: &[u32]) -> Vec<u32> {
        for &v in vars {
            assert!(v < self.num_vars(), "variable {v} not declared");
        }
        let mut set = vars.to_vec();
        set.sort_unstable();
        set.dedup();
        set
    }

    /// Quantifies the variables `varset(id)[pos..]` out of `f`.
    /// `universal` selects ∀ (AND) vs ∃ (OR) combination.
    fn quant_rec(&mut self, f: Bdd, id: u32, pos: u32, universal: bool) -> Bdd {
        if self.is_overflowed() {
            return Bdd::ZERO;
        }
        if f.is_terminal() {
            return f;
        }
        // Skip set variables above the root of f: they do not occur in f.
        let level = self.level(f);
        let set = self.varset(id);
        let mut pos = pos as usize;
        while pos < set.len() && set[pos] < level {
            pos += 1;
        }
        if pos == set.len() {
            return f;
        }
        let pos = u32::try_from(pos).expect("varset index fits u32");
        let tag = if universal {
            OpTag::Forall(id)
        } else {
            OpTag::Exists(id)
        };
        let key = (tag, f, Bdd(pos), Bdd::ZERO);
        if let Some(&r) = self.op_cache.get(&key) {
            return r;
        }
        let next_var = self.varset(id)[pos as usize];
        let (lo, hi) = self.children(f);
        let r = if level == next_var {
            let r0 = self.quant_rec(lo, id, pos + 1, universal);
            // Short-circuit: ⊥ ∧ x = ⊥ and ⊤ ∨ x = ⊤.
            if universal && r0.is_zero() {
                Bdd::ZERO
            } else if !universal && r0.is_one() {
                Bdd::ONE
            } else {
                let r1 = self.quant_rec(hi, id, pos + 1, universal);
                if universal {
                    self.and(r0, r1)
                } else {
                    self.or(r0, r1)
                }
            }
        } else {
            let r0 = self.quant_rec(lo, id, pos, universal);
            let r1 = self.quant_rec(hi, id, pos, universal);
            self.mk(level, r0, r1)
        };
        self.cache_insert(key, r);
        r
    }

    /// Functional composition `f[var := g]`: substitutes the function `g`
    /// for the variable `var` in `f`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a declared variable.
    pub fn compose(&mut self, f: Bdd, var: u32, g: Bdd) -> Bdd {
        assert!(var < self.num_vars(), "variable {var} not declared");
        self.compose_rec(f, var, g)
    }

    fn compose_rec(&mut self, f: Bdd, var: u32, g: Bdd) -> Bdd {
        if self.is_overflowed() {
            return Bdd::ZERO;
        }
        let level = self.level(f);
        if level > var {
            return f;
        }
        let key = (OpTag::Compose(var), f, g, Bdd::ZERO);
        if let Some(&r) = self.op_cache.get(&key) {
            return r;
        }
        let (lo, hi) = self.children(f);
        let r = if level == var {
            self.ite(g, hi, lo)
        } else {
            let r0 = self.compose_rec(lo, var, g);
            let r1 = self.compose_rec(hi, var, g);
            // The substituted g may depend on variables above `level`, so a
            // plain mk() could violate the order; use ite on the level var.
            let v = self.var(level);
            self.ite(v, r1, r0)
        };
        self.cache_insert(key, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Manager, Bdd, Bdd, Bdd) {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        (m, a, b, c)
    }

    #[test]
    fn restrict_projects_cofactor() {
        let (mut m, a, b, _) = setup();
        let f = m.and(a, b);
        assert_eq!(m.restrict(f, 0, true), b);
        assert_eq!(m.restrict(f, 0, false), Bdd::ZERO);
        // Restricting an absent variable is the identity.
        assert_eq!(m.restrict(f, 2, true), f);
    }

    #[test]
    fn exists_is_or_of_cofactors() {
        let (mut m, a, b, _) = setup();
        let f = m.and(a, b);
        let e = m.exists_var(f, 0);
        assert_eq!(e, b);
    }

    #[test]
    fn forall_is_and_of_cofactors() {
        let (mut m, a, b, _) = setup();
        let f = m.or(a, b);
        let g = m.forall_var(f, 0);
        assert_eq!(g, b);
        let h = m.forall_var(f, 1);
        assert_eq!(h, a);
    }

    #[test]
    fn forall_of_tautology_in_var_is_identity_free() {
        let (mut m, a, _, c) = setup();
        // f = a ⊕ a ∨ c = c — no dependence on a.
        let f = m.xor(a, a);
        let f = m.or(f, c);
        assert_eq!(m.forall_var(f, 0), f);
    }

    #[test]
    fn multi_var_quantification() {
        let (mut m, a, b, c) = setup();
        // f = (a ∧ b) ∨ c
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        // ∃a∃b f = ⊤ ∨ c = ⊤? cofactors: a=b=1 gives ⊤... ∃ab f = 1∨c = 1.
        let e = m.exists(f, &[0, 1]);
        assert!(e.is_one());
        // ∀a∀b f = c.
        let g = m.forall(f, &[1, 0]);
        assert_eq!(g, c);
        // Quantifying everything yields a constant.
        let all = m.forall(f, &[0, 1, 2]);
        assert!(all.is_zero());
        let any = m.exists(f, &[0, 1, 2]);
        assert!(any.is_one());
    }

    #[test]
    fn quantifier_duality() {
        let (mut m, a, b, c) = setup();
        let ab = m.xor(a, b);
        let f = m.ite(c, ab, a);
        // ¬∃x f = ∀x ¬f
        let e = m.exists(f, &[0, 2]);
        let lhs = m.not(e);
        let nf = m.not(f);
        let rhs = m.forall(nf, &[0, 2]);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn empty_varset_is_identity() {
        let (mut m, a, b, _) = setup();
        let f = m.or(a, b);
        assert_eq!(m.exists(f, &[]), f);
        assert_eq!(m.forall(f, &[]), f);
    }

    #[test]
    fn duplicate_and_unsorted_vars_are_normalized() {
        let (mut m, a, b, c) = setup();
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let g1 = m.forall(f, &[1, 0, 1, 0]);
        let g2 = m.forall(f, &[0, 1]);
        assert_eq!(g1, g2);
    }

    #[test]
    fn compose_substitutes_function() {
        let (mut m, a, b, c) = setup();
        // f = a ⊕ b; f[b := (a ∧ c)] = a ⊕ (a ∧ c)
        let f = m.xor(a, b);
        let ac = m.and(a, c);
        let composed = m.compose(f, 1, ac);
        let expected = m.xor(a, ac);
        assert_eq!(composed, expected);
    }

    #[test]
    fn compose_with_variable_above() {
        let (mut m, a, b, c) = setup();
        // f depends on c (level 2); substitute c := a (level 0, above).
        let f = m.and(b, c);
        let composed = m.compose(f, 2, a);
        let expected = m.and(b, a);
        assert_eq!(composed, expected);
    }

    #[test]
    fn compose_with_constant_equals_restrict() {
        let (mut m, a, b, c) = setup();
        let bc = m.or(b, c);
        let f = m.xor(a, bc);
        let via_compose = m.compose(f, 1, Bdd::ONE);
        let via_restrict = m.restrict(f, 1, true);
        assert_eq!(via_compose, via_restrict);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn quantifying_undeclared_var_panics() {
        let (mut m, a, _, _) = setup();
        let _ = m.exists(a, &[7]);
    }
}
