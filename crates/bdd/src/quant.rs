//! Quantification, cofactoring and composition.
//!
//! Universal quantification over the input variables `X` is the heart of the
//! DATE 2008 synthesis approach: after building `F_d = f` as a BDD, the
//! formula `∀x₁…x_n (F_d = f)` is computed by `forall` and leaves a BDD over
//! the gate-select variables `Y` only.

use crate::manager::{Bdd, Manager, OpTag};

impl Manager {
    /// Cofactor `f|_{var=value}`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a declared variable.
    pub fn restrict(&mut self, f: Bdd, var: u32, value: bool) -> Bdd {
        assert!(var < self.num_vars(), "variable {var} not declared");
        let selector = self.constant(value);
        self.restrict_rec(f, var, selector)
    }

    fn restrict_rec(&mut self, f: Bdd, var: u32, selector: Bdd) -> Bdd {
        if self.aborted() {
            return Bdd::ZERO;
        }
        let level = self.level(f);
        if level > var {
            // Root below var (or terminal): f does not depend on var here.
            return f;
        }
        let key = (OpTag::Restrict, f, Bdd(var), selector);
        if let Some(r) = self.cache_get(key) {
            return r;
        }
        let (lo, hi) = self.children(f);
        let r = if level == var {
            if selector.is_one() {
                hi
            } else {
                lo
            }
        } else {
            let r0 = self.restrict_rec(lo, var, selector);
            let r1 = self.restrict_rec(hi, var, selector);
            self.mk(level, r0, r1)
        };
        self.cache_insert(key, r);
        r
    }

    /// Existential quantification over a single variable:
    /// `∃v f = f|_{v=0} ∨ f|_{v=1}`.
    pub fn exists_var(&mut self, f: Bdd, var: u32) -> Bdd {
        self.exists(f, &[var])
    }

    /// Universal quantification over a single variable:
    /// `∀v f = f|_{v=0} ∧ f|_{v=1}`.
    pub fn forall_var(&mut self, f: Bdd, var: u32) -> Bdd {
        self.forall(f, &[var])
    }

    /// Existential quantification over a set of variables.
    ///
    /// `vars` may be in any order and may contain duplicates; it is
    /// normalized internally.
    ///
    /// # Panics
    ///
    /// Panics if any variable is undeclared.
    pub fn exists(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        let set = self.normalize_varset(vars);
        if set.is_empty() {
            return f;
        }
        let id = self.intern_varset(&set);
        self.quant_rec(f, id, 0, false)
    }

    /// Universal quantification over a set of variables.
    ///
    /// # Panics
    ///
    /// Panics if any variable is undeclared.
    pub fn forall(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        let set = self.normalize_varset(vars);
        if set.is_empty() {
            return f;
        }
        let id = self.intern_varset(&set);
        self.quant_rec(f, id, 0, true)
    }

    fn normalize_varset(&self, vars: &[u32]) -> Vec<u32> {
        for &v in vars {
            assert!(v < self.num_vars(), "variable {v} not declared");
        }
        let mut set = vars.to_vec();
        set.sort_unstable();
        set.dedup();
        set
    }

    /// Quantifies the variables `varset(id)[pos..]` out of `f`.
    /// `universal` selects ∀ (AND) vs ∃ (OR) combination.
    fn quant_rec(&mut self, f: Bdd, id: u32, pos: u32, universal: bool) -> Bdd {
        if self.aborted() {
            return Bdd::ZERO;
        }
        if f.is_terminal() {
            return f;
        }
        // Skip set variables above the root of f: they do not occur in f.
        let level = self.level(f);
        let set = self.varset(id);
        let mut pos = pos as usize;
        while pos < set.len() && set[pos] < level {
            pos += 1;
        }
        if pos == set.len() {
            return f;
        }
        let pos = u32::try_from(pos).expect("varset index fits u32");
        let tag = if universal {
            OpTag::Forall(id)
        } else {
            OpTag::Exists(id)
        };
        let key = (tag, f, Bdd(pos), Bdd::ZERO);
        if let Some(r) = self.cache_get(key) {
            return r;
        }
        let next_var = self.varset(id)[pos as usize];
        let (lo, hi) = self.children(f);
        let r = if level == next_var {
            let r0 = self.quant_rec(lo, id, pos + 1, universal);
            // Short-circuit: ⊥ ∧ x = ⊥ and ⊤ ∨ x = ⊤.
            if universal && r0.is_zero() {
                Bdd::ZERO
            } else if !universal && r0.is_one() {
                Bdd::ONE
            } else {
                let r1 = self.quant_rec(hi, id, pos + 1, universal);
                if universal {
                    self.and(r0, r1)
                } else {
                    self.or(r0, r1)
                }
            }
        } else {
            let r0 = self.quant_rec(lo, id, pos, universal);
            let r1 = self.quant_rec(hi, id, pos, universal);
            self.mk(level, r0, r1)
        };
        self.cache_insert(key, r);
        r
    }

    /// Fused **∀-AND** (the universal dual of CUDD's `bddAndAbstract`):
    /// computes `∀ vars (f ∧ g)` in one recursion, never materializing the
    /// conjunction `f ∧ g`.
    ///
    /// The fusion matters for peak memory: the paper's `check()` step
    /// quantifies the inputs `X` out of a wide equivalence conjunction, and
    /// the unquantified product is by far the largest BDD of the whole run.
    /// It also terminates early — under ∀, any `⊥` cofactor kills the whole
    /// subtree before the sibling branch is even visited.
    ///
    /// `vars` may be unsorted and contain duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any variable is undeclared.
    pub fn and_forall(&mut self, f: Bdd, g: Bdd, vars: &[u32]) -> Bdd {
        let set = self.normalize_varset(vars);
        if set.is_empty() {
            return self.and(f, g);
        }
        let id = self.intern_varset(&set);
        self.and_quant_rec(f, g, id, 0, true)
    }

    /// Fused **∃-AND** (CUDD's `bddAndAbstract`, the relational product):
    /// computes `∃ vars (f ∧ g)` in one recursion without building `f ∧ g`.
    ///
    /// `vars` may be unsorted and contain duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any variable is undeclared.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, vars: &[u32]) -> Bdd {
        let set = self.normalize_varset(vars);
        if set.is_empty() {
            return self.and(f, g);
        }
        let id = self.intern_varset(&set);
        self.and_quant_rec(f, g, id, 0, false)
    }

    /// Multi-operand fused quantified conjunction: `∀ vars (⋀ operands)`.
    ///
    /// The conjunction is quantified **as it is built**: the recursion
    /// descends the quantified block across *all* operands at once,
    /// cofactoring each operand by edge-following, so no intermediate ever
    /// contains the unquantified product. Below the block each branch
    /// reduces to a plain balanced conjunction of the (now `vars`-free)
    /// cofactors, and the per-variable combination `∀v F = F|₀ ∧ F|₁`
    /// terminates early — the first `⊥` cofactor kills the whole call
    /// without visiting any sibling branch.
    ///
    /// This is exactly the shape of the synthesis engine's `check()` step:
    /// the inputs `X` sit on top of the order, each branch of the descent
    /// is one input row, and on unrealizable depths (most of iterative
    /// deepening) the first failing row aborts the check before the
    /// equivalence conjunction for the remaining rows is ever computed.
    ///
    /// When an unquantified variable sits *above* a quantified one (the
    /// `Y`-then-`X` ablation order) the descent stops paying off; the
    /// remainder falls back to conjoin-then-quantify.
    ///
    /// # Panics
    ///
    /// Panics if any variable is undeclared.
    pub fn forall_and_all(&mut self, operands: &[Bdd], vars: &[u32]) -> Bdd {
        let set = self.normalize_varset(vars);
        if set.is_empty() {
            return self.and_all(operands.iter().copied());
        }
        self.forall_and_rec(operands.to_vec(), &set, 0)
    }

    /// Recursive core of [`Manager::forall_and_all`]: computes
    /// `∀ set[pos..] (⋀ ops)` by n-ary descent over the quantified block.
    /// Not memoized — the operand vector is a poor cache key and the
    /// descent has at most `2^|set|` branches, each of whose pairwise
    /// conjunctions below is cached as usual.
    fn forall_and_rec(&mut self, mut ops: Vec<Bdd>, set: &[u32], mut pos: usize) -> Bdd {
        loop {
            if self.aborted() || ops.iter().any(|f| f.is_zero()) {
                return Bdd::ZERO;
            }
            ops.retain(|f| !f.is_one());
            ops.sort_unstable_by_key(|f| f.0);
            ops.dedup();
            if ops.is_empty() {
                return Bdd::ONE;
            }
            if pos == set.len() {
                return self.and_all(ops.iter().copied());
            }
            let top = ops
                .iter()
                .map(|&f| self.level(f))
                .min()
                .expect("operand list is nonempty");
            if set[pos] < top {
                // The quantified variable occurs in no operand.
                pos += 1;
                continue;
            }
            if top < set[pos] {
                // An unquantified variable above the rest of the block:
                // the n-ary descent stops paying off here.
                let eq = self.and_all(ops.iter().copied());
                return self.forall(eq, &set[pos..]);
            }
            // top == set[pos]: cofactor every operand on the shared var.
            let mut lo_ops = Vec::with_capacity(ops.len());
            let mut hi_ops = Vec::with_capacity(ops.len());
            for &f in &ops {
                if self.level(f) == top {
                    let (lo, hi) = self.children(f);
                    lo_ops.push(lo);
                    hi_ops.push(hi);
                } else {
                    lo_ops.push(f);
                    hi_ops.push(f);
                }
            }
            let r0 = self.forall_and_rec(lo_ops, set, pos + 1);
            if r0.is_zero() {
                return Bdd::ZERO;
            }
            let r1 = self.forall_and_rec(hi_ops, set, pos + 1);
            return self.and(r0, r1);
        }
    }

    /// Recursive core of [`Manager::and_forall`] / [`Manager::and_exists`]:
    /// computes `Q varset(id)[pos..] (f ∧ g)` where `Q` is ∀ (`universal`)
    /// or ∃.
    fn and_quant_rec(&mut self, f: Bdd, g: Bdd, id: u32, pos: u32, universal: bool) -> Bdd {
        if self.aborted() {
            return Bdd::ZERO;
        }
        // Terminal and collapse cases reduce to plain quantification.
        if f.is_zero() || g.is_zero() {
            return Bdd::ZERO;
        }
        if f.is_one() && g.is_one() {
            return Bdd::ONE;
        }
        if f == g || g.is_one() {
            return self.quant_rec(f, id, pos, universal);
        }
        if f.is_one() {
            return self.quant_rec(g, id, pos, universal);
        }
        // Skip set variables above both roots: they occur in neither operand.
        let top = self.level(f).min(self.level(g));
        let set = self.varset(id);
        let mut pos = pos as usize;
        while pos < set.len() && set[pos] < top {
            pos += 1;
        }
        if pos == set.len() {
            return self.and(f, g);
        }
        let pos = u32::try_from(pos).expect("varset index fits u32");
        // ∧ is commutative: canonicalize the operand order for cache hits.
        let (f, g) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let tag = if universal {
            OpTag::AndForall(id)
        } else {
            OpTag::AndExists(id)
        };
        let key = (tag, f, g, Bdd(pos));
        if let Some(r) = self.cache_get(key) {
            return r;
        }
        let next_var = self.varset(id)[pos as usize];
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let r = if top == next_var {
            let r0 = self.and_quant_rec(f0, g0, id, pos + 1, universal);
            // Early termination: ⊥ ∧ x = ⊥ and ⊤ ∨ x = ⊤ — the sibling
            // cofactor is never visited.
            if universal && r0.is_zero() {
                Bdd::ZERO
            } else if !universal && r0.is_one() {
                Bdd::ONE
            } else {
                let r1 = self.and_quant_rec(f1, g1, id, pos + 1, universal);
                if universal {
                    self.and(r0, r1)
                } else {
                    self.or(r0, r1)
                }
            }
        } else {
            let r0 = self.and_quant_rec(f0, g0, id, pos, universal);
            let r1 = self.and_quant_rec(f1, g1, id, pos, universal);
            self.mk(top, r0, r1)
        };
        self.cache_insert(key, r);
        r
    }

    /// Functional composition `f[var := g]`: substitutes the function `g`
    /// for the variable `var` in `f`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a declared variable.
    pub fn compose(&mut self, f: Bdd, var: u32, g: Bdd) -> Bdd {
        assert!(var < self.num_vars(), "variable {var} not declared");
        self.compose_rec(f, var, g)
    }

    fn compose_rec(&mut self, f: Bdd, var: u32, g: Bdd) -> Bdd {
        if self.aborted() {
            return Bdd::ZERO;
        }
        let level = self.level(f);
        if level > var {
            return f;
        }
        let key = (OpTag::Compose(var), f, g, Bdd::ZERO);
        if let Some(r) = self.cache_get(key) {
            return r;
        }
        let (lo, hi) = self.children(f);
        let r = if level == var {
            self.ite(g, hi, lo)
        } else {
            let r0 = self.compose_rec(lo, var, g);
            let r1 = self.compose_rec(hi, var, g);
            // The substituted g may depend on variables above `level`, so a
            // plain mk() could violate the order; use ite on the level var.
            let v = self.var(level);
            self.ite(v, r1, r0)
        };
        self.cache_insert(key, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Manager, Bdd, Bdd, Bdd) {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        (m, a, b, c)
    }

    #[test]
    fn restrict_projects_cofactor() {
        let (mut m, a, b, _) = setup();
        let f = m.and(a, b);
        assert_eq!(m.restrict(f, 0, true), b);
        assert_eq!(m.restrict(f, 0, false), Bdd::ZERO);
        // Restricting an absent variable is the identity.
        assert_eq!(m.restrict(f, 2, true), f);
    }

    #[test]
    fn exists_is_or_of_cofactors() {
        let (mut m, a, b, _) = setup();
        let f = m.and(a, b);
        let e = m.exists_var(f, 0);
        assert_eq!(e, b);
    }

    #[test]
    fn forall_is_and_of_cofactors() {
        let (mut m, a, b, _) = setup();
        let f = m.or(a, b);
        let g = m.forall_var(f, 0);
        assert_eq!(g, b);
        let h = m.forall_var(f, 1);
        assert_eq!(h, a);
    }

    #[test]
    fn forall_of_tautology_in_var_is_identity_free() {
        let (mut m, a, _, c) = setup();
        // f = a ⊕ a ∨ c = c — no dependence on a.
        let f = m.xor(a, a);
        let f = m.or(f, c);
        assert_eq!(m.forall_var(f, 0), f);
    }

    #[test]
    fn multi_var_quantification() {
        let (mut m, a, b, c) = setup();
        // f = (a ∧ b) ∨ c
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        // ∃a∃b f = ⊤ ∨ c = ⊤? cofactors: a=b=1 gives ⊤... ∃ab f = 1∨c = 1.
        let e = m.exists(f, &[0, 1]);
        assert!(e.is_one());
        // ∀a∀b f = c.
        let g = m.forall(f, &[1, 0]);
        assert_eq!(g, c);
        // Quantifying everything yields a constant.
        let all = m.forall(f, &[0, 1, 2]);
        assert!(all.is_zero());
        let any = m.exists(f, &[0, 1, 2]);
        assert!(any.is_one());
    }

    #[test]
    fn quantifier_duality() {
        let (mut m, a, b, c) = setup();
        let ab = m.xor(a, b);
        let f = m.ite(c, ab, a);
        // ¬∃x f = ∀x ¬f
        let e = m.exists(f, &[0, 2]);
        let lhs = m.not(e);
        let nf = m.not(f);
        let rhs = m.forall(nf, &[0, 2]);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn empty_varset_is_identity() {
        let (mut m, a, b, _) = setup();
        let f = m.or(a, b);
        assert_eq!(m.exists(f, &[]), f);
        assert_eq!(m.forall(f, &[]), f);
    }

    #[test]
    fn duplicate_and_unsorted_vars_are_normalized() {
        let (mut m, a, b, c) = setup();
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let g1 = m.forall(f, &[1, 0, 1, 0]);
        let g2 = m.forall(f, &[0, 1]);
        assert_eq!(g1, g2);
    }

    #[test]
    fn compose_substitutes_function() {
        let (mut m, a, b, c) = setup();
        // f = a ⊕ b; f[b := (a ∧ c)] = a ⊕ (a ∧ c)
        let f = m.xor(a, b);
        let ac = m.and(a, c);
        let composed = m.compose(f, 1, ac);
        let expected = m.xor(a, ac);
        assert_eq!(composed, expected);
    }

    #[test]
    fn compose_with_variable_above() {
        let (mut m, a, b, c) = setup();
        // f depends on c (level 2); substitute c := a (level 0, above).
        let f = m.and(b, c);
        let composed = m.compose(f, 2, a);
        let expected = m.and(b, a);
        assert_eq!(composed, expected);
    }

    #[test]
    fn compose_with_constant_equals_restrict() {
        let (mut m, a, b, c) = setup();
        let bc = m.or(b, c);
        let f = m.xor(a, bc);
        let via_compose = m.compose(f, 1, Bdd::ONE);
        let via_restrict = m.restrict(f, 1, true);
        assert_eq!(via_compose, via_restrict);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn quantifying_undeclared_var_panics() {
        let (mut m, a, _, _) = setup();
        let _ = m.exists(a, &[7]);
    }

    #[test]
    fn and_forall_agrees_with_build_then_quantify() {
        let (mut m, a, b, c) = setup();
        let f = m.or(a, b);
        let g = m.or(b, c);
        let fused = m.and_forall(f, g, &[1]);
        let conj = m.and(f, g);
        let unfused = m.forall(conj, &[1]);
        assert_eq!(fused, unfused);
        // ∀b ((a∨b) ∧ (b∨c)) = a ∧ c
        let ac = m.and(a, c);
        assert_eq!(fused, ac);
    }

    #[test]
    fn and_exists_is_the_relational_product() {
        let (mut m, a, b, c) = setup();
        let f = m.xnor(a, b); // a = b
        let g = m.xnor(b, c); // b = c
                              // ∃b (a=b ∧ b=c) = (a=c): composing two identity relations.
        let fused = m.and_exists(f, g, &[1]);
        let expected = m.xnor(a, c);
        assert_eq!(fused, expected);
    }

    #[test]
    fn fused_empty_varset_is_plain_and() {
        let (mut m, a, b, _) = setup();
        let expected = m.and(a, b);
        assert_eq!(m.and_forall(a, b, &[]), expected);
        assert_eq!(m.and_exists(a, b, &[]), expected);
    }

    #[test]
    fn fused_terminal_cases() {
        let (mut m, a, _, _) = setup();
        assert_eq!(m.and_forall(Bdd::ZERO, a, &[0]), Bdd::ZERO);
        assert_eq!(m.and_exists(a, Bdd::ZERO, &[0]), Bdd::ZERO);
        assert_eq!(m.and_forall(Bdd::ONE, Bdd::ONE, &[0]), Bdd::ONE);
        // ⊤ as one operand degrades to plain quantification.
        let fa = m.forall_var(a, 0);
        assert_eq!(m.and_forall(Bdd::ONE, a, &[0]), fa);
        let ea = m.exists_var(a, 0);
        assert_eq!(m.and_exists(a, Bdd::ONE, &[0]), ea);
        // f == g degrades to quantifying f itself (f ∧ f = f).
        assert_eq!(m.and_forall(a, a, &[0]), fa);
    }

    #[test]
    fn fused_operand_order_is_immaterial() {
        let (mut m, a, b, c) = setup();
        let f = m.or(a, b);
        let g = m.xor(b, c);
        let fg = m.and_forall(f, g, &[1, 2]);
        let gf = m.and_forall(g, f, &[1, 2]);
        assert_eq!(fg, gf);
    }

    #[test]
    fn forall_and_all_multi_operand() {
        let (mut m, a, b, c) = setup();
        let l1 = m.or(a, b);
        let l2 = m.or(b, c);
        let l3 = m.implies(a, c);
        for ops in [vec![], vec![l1], vec![l1, l2], vec![l1, l2, l3]] {
            let fused = m.forall_and_all(&ops, &[1]);
            let conj = m.and_all(ops.iter().copied());
            let unfused = m.forall(conj, &[1]);
            assert_eq!(fused, unfused, "operand count {}", ops.len());
        }
        // Empty varset degrades to and_all.
        let plain = m.and_all([l1, l2]);
        assert_eq!(m.forall_and_all(&[l1, l2], &[]), plain);
    }

    #[test]
    fn forall_and_all_short_circuits_to_zero() {
        let (mut m, a, b, _) = setup();
        let na = m.not(a);
        // ∀∅-free vars: a ∧ ¬a ∧ b = ⊥ regardless of quantification.
        assert_eq!(m.forall_and_all(&[a, na, b], &[0, 1]), Bdd::ZERO);
    }
}
