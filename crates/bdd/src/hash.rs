//! A small, fast, non-cryptographic hasher for the unique and operation
//! caches.
//!
//! The standard library's default SipHash is a poor fit for the millions of
//! tiny `(u32, u32, u32)` keys a BDD package hashes; this is the classic
//! Fibonacci-multiplication scheme (the same family `rustc`'s FxHash uses),
//! re-implemented here to keep the crate dependency-free.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher specialised for short integer keys.
#[derive(Default)]
pub struct FibHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FibHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so that the high bits (used by hashbrown) mix.
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state.rotate_left(5) ^ i).wrapping_mul(SEED);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i));
    }
}

/// `BuildHasher` plugging [`FibHasher`] into `HashMap`.
pub type BuildFibHasher = BuildHasherDefault<FibHasher>;

/// `HashMap` alias used throughout the crate.
pub type FibHashMap<K, V> = std::collections::HashMap<K, V, BuildFibHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently_in_practice() {
        use std::hash::BuildHasher;
        let build = BuildFibHasher::default();
        let mut seen = std::collections::HashSet::new();
        for a in 0u32..64 {
            for b in 0u32..64 {
                seen.insert(build.hash_one((a, b)));
            }
        }
        // A perfect hash is not required, but collisions on this tiny grid
        // would indicate a broken mixer.
        assert_eq!(seen.len(), 64 * 64);
    }

    #[test]
    fn hash_is_deterministic() {
        use std::hash::BuildHasher;
        let build = BuildFibHasher::default();

        assert_eq!(
            build.hash_one((1u32, 2u32, 3u32)),
            build.hash_one((1u32, 2u32, 3u32))
        );
    }
}
