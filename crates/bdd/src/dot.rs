//! Graphviz export for debugging and documentation.

use crate::manager::{Bdd, Manager};
use std::collections::HashSet;

impl Manager {
    /// Renders the diagram rooted at `f` in Graphviz `dot` syntax.
    ///
    /// Variable names are taken from `names` where available and fall back
    /// to `x<i>`. Dashed edges are `lo` (variable = 0), solid edges `hi`.
    pub fn to_dot(&self, f: Bdd, names: &[&str]) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        let name = |v: u32| -> String {
            names
                .get(v as usize)
                .map_or_else(|| format!("x{v}"), |s| (*s).to_string())
        };
        out.push_str("  n0 [label=\"0\", shape=box];\n");
        out.push_str("  n1 [label=\"1\", shape=box];\n");
        let mut seen = HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            let (lo, hi) = self.children(n);
            let var = self.root_var(n).expect("non-terminal");
            out.push_str(&format!(
                "  n{} [label=\"{}\", shape=circle];\n",
                n.0,
                name(var)
            ));
            out.push_str(&format!("  n{} -> n{} [style=dashed];\n", n.0, lo.0));
            out.push_str(&format!("  n{} -> n{};\n", n.0, hi.0));
            stack.push(lo);
            stack.push(hi);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_contains_all_nodes_and_edges() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let dot = m.to_dot(f, &["a", "b"]);
        assert!(dot.starts_with("digraph bdd {"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"b\""));
        assert!(dot.contains("style=dashed"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_falls_back_to_generated_names() {
        let mut m = Manager::new(2);
        let a = m.var(1);
        let dot = m.to_dot(a, &[]);
        assert!(dot.contains("label=\"x1\""));
    }

    #[test]
    fn dot_of_terminal_is_minimal() {
        let m = Manager::new(1);
        let dot = m.to_dot(Bdd::ONE, &[]);
        assert!(dot.contains("n1 [label=\"1\""));
        assert!(!dot.contains("shape=circle"));
    }
}
