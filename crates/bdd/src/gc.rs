//! Mark-and-sweep garbage collection for the node arena.
//!
//! # Root protocol
//!
//! The manager has no reference counts: liveness is defined entirely by the
//! **explicit root set** the caller passes to [`Manager::collect_garbage`].
//! Everything reachable from a root (transitively through `lo`/`hi` edges)
//! survives; every other non-terminal slot goes on the free list and will be
//! reused by later constructions, at which point old handles to it dangle.
//!
//! Because intermediate handles held in the stack frames of a recursive
//! operation are *not* visible to the collector, collection is only sound at
//! **safe points**: between top-level manager operations, when the only
//! handles the caller intends to keep using are the ones it can enumerate.
//! The synthesis engine collects between cascade depths and between
//! `check()` calls, rooting its state functions, spec BDDs, and any
//! solution BDDs (see `crates/core/src/bdd_engine.rs`).
//!
//! # What a collection does
//!
//! 1. **Mark**: iterative depth-first traversal from the roots over an
//!    explicit work stack (no recursion — spec BDDs can be deep).
//! 2. **Sweep**: every unmarked non-terminal slot is overwritten with the
//!    `FREE_LEVEL` sentinel and pushed onto the free list; dead entries are
//!    dropped from the unique table.
//! 3. **Cache flush**: the computed table is cleared wholesale. This is not
//!    optional: results are keyed by node indices, and a reused slot index
//!    would otherwise alias a stale entry for the *previous* occupant of
//!    that slot — a soundness bug, not a performance detail.
//!
//! The mark bitmap is kept on the manager and reused across collections to
//! avoid re-allocating it each time.

use crate::manager::{Bdd, Manager, FREE_LEVEL, TERMINAL_LEVEL};

impl Manager {
    /// Reclaims every node not reachable from `roots`; returns the number
    /// of nodes freed.
    ///
    /// Handles not covered by `roots` dangle afterwards — see the module
    /// docs for the root protocol and safe points. Terminals and already
    /// free slots are never touched. The computed table is cleared (reused
    /// slot indices would alias stale entries); the unique table keeps only
    /// live nodes.
    ///
    /// Collecting an [overflowed](Manager::is_overflowed) manager is
    /// permitted but does not clear the overflow flag: results computed
    /// after an overflow remain unreliable and the manager should be
    /// discarded.
    pub fn collect_garbage(&mut self, roots: &[Bdd]) -> usize {
        // A collection is a natural coarse-grained point to notice an
        // external interrupt (deadline, cancellation) before committing to
        // a full mark-and-sweep pass. The `bdd.gc-sweep` fault site rides
        // the installed probe (see `ResourceGovernor::interrupt_probe` in
        // `qsyn-core`), so an injected deadline trips the governed token
        // and recovers exactly as a real one.
        self.poll_interrupt();
        // -- Mark --------------------------------------------------------
        let mut marks = std::mem::take(&mut self.gc_marks);
        marks.clear();
        marks.resize(self.nodes.len(), false);
        marks[0] = true;
        marks[1] = true;
        let mut stack: Vec<Bdd> = Vec::with_capacity(64);
        for &r in roots {
            debug_assert!((r.index()) < self.nodes.len(), "root out of arena range");
            debug_assert!(
                self.nodes[r.index()].var != FREE_LEVEL,
                "root is already freed"
            );
            if !marks[r.index()] {
                marks[r.index()] = true;
                stack.push(r);
            }
        }
        while let Some(f) = stack.pop() {
            let n = self.nodes[f.index()];
            debug_assert!(n.var != FREE_LEVEL, "live node points at freed slot");
            for child in [n.lo, n.hi] {
                if !marks[child.index()] {
                    marks[child.index()] = true;
                    stack.push(child);
                }
            }
        }

        // -- Sweep -------------------------------------------------------
        let mut freed = 0usize;
        for (i, node) in self.nodes.iter_mut().enumerate().skip(2) {
            if marks[i] || node.var == FREE_LEVEL {
                continue;
            }
            debug_assert!(node.var != TERMINAL_LEVEL, "terminal past index 1");
            node.var = FREE_LEVEL;
            node.lo = Bdd::ZERO;
            node.hi = Bdd::ZERO;
            freed += 1;
        }
        self.gc_marks = marks;
        if freed > 0 {
            self.rebuild_free_list();
            self.unique_retain_marked();
            // Cache flush is mandatory when slots were freed: computed-table
            // entries are keyed by node indices, and a reused slot would
            // alias a stale entry for the slot's previous occupant. When
            // nothing was freed no reuse is possible and the cache stands.
            self.clear_caches();
        }
        self.note_collection(freed as u64);
        freed
    }

    /// Rebuilds the free list to contain exactly the `FREE_LEVEL` slots
    /// (both freshly swept ones and slots freed in earlier collections that
    /// have not been reused yet).
    fn rebuild_free_list(&mut self) {
        let mut free = Vec::new();
        for (i, node) in self.nodes.iter().enumerate().skip(2) {
            if node.var == FREE_LEVEL {
                free.push(u32::try_from(i).expect("node index fits u32"));
            }
        }
        self.replace_free_list(free);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_with_all_roots_frees_nothing() {
        let mut m = Manager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let before = m.node_count();
        let freed = m.collect_garbage(&[a, b, f]);
        assert_eq!(freed, 0);
        assert_eq!(m.node_count(), before);
        // f still evaluates correctly.
        assert!(m.eval(f, &[true, true, false, false]));
        assert!(!m.eval(f, &[true, false, false, false]));
    }

    #[test]
    fn collect_frees_unreachable_nodes_and_reuses_slots() {
        let mut m = Manager::new(6);
        let a = m.var(0);
        let b = m.var(1);
        let keep = m.and(a, b);
        // Build garbage: a large xor chain we then drop.
        let mut junk = m.zero();
        for v in 0..6 {
            let x = m.var(v);
            junk = m.xor(junk, x);
        }
        let _ = junk; // handle goes dead
        let live_before = m.node_count();
        let freed = m.collect_garbage(&[keep]);
        assert!(freed > 0, "xor chain must be reclaimed");
        assert_eq!(m.node_count(), live_before - freed);
        let s = m.stats();
        assert_eq!(s.gc_runs, 1);
        assert_eq!(s.gc_freed, freed as u64);
        assert_eq!(s.free_slots, freed);
        // keep survives with correct semantics.
        assert!(m.eval(keep, &[true, true, false, false, false, false]));
        // New constructions reuse freed slots: the arena does not grow.
        let allocated_before = m.stats().allocated;
        let c = m.var(2);
        let d = m.var(3);
        let _ = m.and(c, d);
        assert_eq!(m.stats().allocated, allocated_before);
    }

    #[test]
    fn collect_preserves_shared_substructure() {
        let mut m = Manager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let f = m.or(ab, c); // f shares ab's nodes
        let _ = ab;
        // Root only f: ab's nodes are reachable through f and must survive.
        let _ = m.collect_garbage(&[f]);
        for env in 0..16u32 {
            let e = [env & 1 != 0, env & 2 != 0, env & 4 != 0, env & 8 != 0];
            assert_eq!(m.eval(f, &e), (e[0] && e[1]) || e[2]);
        }
    }

    #[test]
    fn collect_clears_computed_table_on_free() {
        let mut m = Manager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let junk = m.xor(a, b);
        let _ = junk;
        assert!(m.stats().cache_entries > 0);
        let freed = m.collect_garbage(&[a, b]);
        assert!(freed > 0);
        assert_eq!(
            m.stats().cache_entries,
            0,
            "reused slots must not alias stale cache entries"
        );
    }

    #[test]
    fn rebuilt_after_collect_is_canonical() {
        let mut m = Manager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let f1 = m.and(a, b);
        let _ = m.collect_garbage(&[a, b, f1]);
        // Rebuilding the same function yields the same handle (canonicity
        // across a collection: the unique table kept the live entries).
        let f2 = m.and(a, b);
        assert_eq!(f1, f2);
        // And rebuilding a freed function works from scratch.
        let g1 = m.xor(a, b);
        let _ = m.collect_garbage(&[a, b]);
        let g2 = m.xor(a, b);
        for env in 0..4u32 {
            let e = [env & 1 != 0, env & 2 != 0, false, false];
            assert_eq!(m.eval(g2, &e), e[0] ^ e[1]);
        }
        let _ = g1; // g1 dangles; only g2 is meaningful now
    }

    #[test]
    fn terminals_and_empty_roots() {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let _ = a;
        let freed = m.collect_garbage(&[]);
        assert_eq!(freed, 1);
        assert_eq!(m.node_count(), 2, "only terminals survive empty roots");
        // Terminals are always valid.
        assert!(m.eval(Bdd::ONE, &[false, false, false]));
        assert!(!m.eval(Bdd::ZERO, &[false, false, false]));
    }

    #[test]
    fn gc_creates_headroom_under_node_cap() {
        let mut m = Manager::new(8);
        m.set_node_cap(40);
        let a = m.var(0);
        let b = m.var(1);
        let keep = m.and(a, b);
        // Fill with garbage, collect, and keep building: the live-node cap
        // must not trip on reclaimed garbage.
        for round in 0..10 {
            let mut junk = m.zero();
            for v in 0..6 {
                let x = m.var(v);
                junk = m.xor(junk, x);
            }
            assert!(!m.is_overflowed(), "round {round} overflowed");
            let _ = m.collect_garbage(&[a, b, keep]);
        }
        assert!(!m.is_overflowed());
        assert!(m.eval(keep, &[true; 8]));
    }

    #[test]
    fn double_collect_is_idempotent() {
        let mut m = Manager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b);
        let junk = m.and(a, b);
        let _ = junk;
        let freed1 = m.collect_garbage(&[f, a, b]);
        let freed2 = m.collect_garbage(&[f, a, b]);
        assert!(freed1 > 0);
        assert_eq!(freed2, 0, "second collection finds no new garbage");
        assert_eq!(m.stats().gc_runs, 2);
    }
}
