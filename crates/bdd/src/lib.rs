//! Reduced ordered binary decision diagrams (ROBDDs) with quantification.
//!
//! This crate is the decision-diagram substrate of the `qsyn` workspace: it
//! plays the role CUDD plays in *"Quantified Synthesis of Reversible Logic"*
//! (Wille, Le, Dueck, Große — DATE 2008). It provides everything the
//! BDD-based synthesis engine of that paper needs:
//!
//! * hash-consed node storage with a fixed variable order (a [`Manager`]
//!   arena),
//! * the `ITE` operator and the usual Boolean connectives,
//! * **existential and universal quantification** (the paper's key step is
//!   `∀x₁…x_n (F_d = f)`),
//! * cofactors, functional composition and support computation,
//! * model counting and **all-model enumeration** (the paper reads *all*
//!   minimal networks off the 1-paths of the final BDD),
//! * `dot` export for debugging.
//!
//! # Example
//!
//! ```
//! use qsyn_bdd::Manager;
//!
//! let mut m = Manager::new(3);
//! let (a, b, c) = (m.var(0), m.var(1), m.var(2));
//! // f = (a ∧ b) ⊕ c
//! let ab = m.and(a, b);
//! let f = m.xor(ab, c);
//! assert_eq!(m.sat_count(f, 3), 4);
//!
//! // ∀a f — true exactly where f holds for both values of a:
//! // f(0,b,c) = c and f(1,b,c) = b ⊕ c, so ∀a f = ¬b ∧ c.
//! let g = m.forall_var(f, 0);
//! assert!(m.eval(g, &[false, false, true]));
//! assert!(!m.eval(g, &[false, true, true]));
//! ```
//!
//! The manager is an *arena* with **mark-and-sweep garbage collection**:
//! nodes live until a [`Manager::collect_garbage`] call proves them
//! unreachable from an explicit root set, after which their slots are
//! reused via a free list (see `gc.rs` for the root protocol). Operation
//! results are memoized in a fixed-size, direct-mapped **lossy computed
//! table** (CUDD's design): colliding entries overwrite each other, so the
//! cache is bounded by construction and never needs trimming. The fused
//! [`Manager::and_forall`] / [`Manager::and_exists`] kernels (the duals of
//! CUDD's `bddAndAbstract`) quantify a conjunction without ever
//! materializing it — the synthesis hot path.

#![warn(missing_docs)]

mod analysis;
pub mod audit;
mod cache;
mod dot;
mod gc;
mod hash;
mod manager;
mod ops;
mod quant;

pub use analysis::ModelIter;
pub use audit::{CacheSample, CachedOp, NodeEntry};
pub use manager::{Bdd, Manager, ManagerStats};

#[cfg(test)]
mod oracle_tests;
