//! The lossy computed table: a fixed-size, power-of-two, direct-mapped
//! memoization cache for BDD operations.
//!
//! This replaces the unbounded hash-map op cache of earlier revisions with
//! the structure CUDD uses: an array of slots indexed by a hash of the
//! operation key, where a colliding insert simply **overwrites** the
//! previous occupant. The consequences are exactly the ones a BDD package
//! wants:
//!
//! * **O(1) probe, no chains, no rehash stalls** — a lookup is one index
//!   computation and one comparison.
//! * **Bounded memory by construction** — the table never holds more than
//!   its slot count; there is no "drop everything" relief valve because
//!   there is nothing to relieve.
//! * **Lossy is sound** — a memoized result is only ever an optimization;
//!   losing one to eviction costs a recomputation, never correctness.
//!
//! The table starts small and doubles (re-inserting surviving entries)
//! when either the occupancy crosses 3/4 *or* eviction pressure mounts —
//! collisions overwrite, so a thrashing table's occupancy plateaus below
//! the occupancy trigger — up to a configurable slot cap, so that tiny
//! managers — tests allocate thousands of them — stay tiny while synthesis
//! workloads grow to their configured bound.

use crate::manager::{Bdd, OpTag};

/// Initial slot count of a fresh table (power of two).
const INITIAL_SLOTS: usize = 1 << 10;

/// Default slot cap: ~1M slots × 24 B ≈ 24 MiB, far below the node arenas
/// it serves. [`ComputedTable::set_max_slots`] adjusts it.
const DEFAULT_MAX_SLOTS: usize = 1 << 20;

/// Hard ceiling on the slot cap, whatever the caller asks for.
const HARD_MAX_SLOTS: usize = 1 << 24;

/// Sentinel in [`Slot::tag`] marking an empty slot. Real encoded tags are
/// `discriminant | payload << 3 < 2^35`, so `u64::MAX` cannot collide.
const EMPTY: u64 = u64::MAX;

/// Encodes an [`OpTag`] into the low 35 bits of a `u64`: 3 bits of variant
/// discriminant plus an optional 32-bit payload (varset id / variable).
#[inline]
pub(crate) fn encode_tag(tag: OpTag) -> u64 {
    match tag {
        OpTag::Ite => 0,
        OpTag::Not => 1,
        OpTag::Exists(id) => 2 | u64::from(id) << 3,
        OpTag::Forall(id) => 3 | u64::from(id) << 3,
        OpTag::Compose(var) => 4 | u64::from(var) << 3,
        OpTag::Restrict => 5,
        OpTag::AndExists(id) => 6 | u64::from(id) << 3,
        OpTag::AndForall(id) => 7 | u64::from(id) << 3,
    }
}

/// Inverse of [`encode_tag`].
#[inline]
fn decode_tag(word: u64) -> OpTag {
    let payload = u32::try_from(word >> 3).unwrap_or(u32::MAX);
    match word & 0b111 {
        0 => OpTag::Ite,
        1 => OpTag::Not,
        2 => OpTag::Exists(payload),
        3 => OpTag::Forall(payload),
        4 => OpTag::Compose(payload),
        5 => OpTag::Restrict,
        6 => OpTag::AndExists(payload),
        _ => OpTag::AndForall(payload),
    }
}

/// One direct-mapped slot: the encoded operation key and its result.
#[derive(Clone, Copy)]
struct Slot {
    tag: u64,
    a: u32,
    b: u32,
    c: u32,
    result: u32,
}

const EMPTY_SLOT: Slot = Slot {
    tag: EMPTY,
    a: 0,
    b: 0,
    c: 0,
    result: 0,
};

/// Counter snapshot of a [`ComputedTable`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct CacheCounters {
    pub entries: usize,
    pub capacity: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// The direct-mapped lossy computed table; see the module docs.
pub(crate) struct ComputedTable {
    slots: Vec<Slot>,
    /// `slots.len() - 1`; slot count is always a power of two.
    mask: usize,
    occupied: usize,
    max_slots: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Evictions since the last growth (or creation); drives the
    /// pressure-based growth trigger.
    evictions_since_grow: u64,
}

impl Default for ComputedTable {
    fn default() -> Self {
        ComputedTable {
            slots: vec![EMPTY_SLOT; INITIAL_SLOTS],
            mask: INITIAL_SLOTS - 1,
            occupied: 0,
            max_slots: DEFAULT_MAX_SLOTS,
            hits: 0,
            misses: 0,
            evictions: 0,
            evictions_since_grow: 0,
        }
    }
}

/// Fibonacci-style mixer over the four key words (same family as
/// `crate::hash::FibHasher`, inlined here so a probe is branch-free).
#[inline]
fn mix(tag: u64, a: u32, b: u32, c: u32) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = tag.wrapping_mul(SEED);
    h = (h.rotate_left(5) ^ u64::from(a)).wrapping_mul(SEED);
    h = (h.rotate_left(5) ^ u64::from(b)).wrapping_mul(SEED);
    h = (h.rotate_left(5) ^ u64::from(c)).wrapping_mul(SEED);
    h ^= h >> 32;
    h.wrapping_mul(0xd6e8_feb8_6659_fd93)
}

impl ComputedTable {
    /// Caps the slot count. `cap` is rounded up to a power of two and
    /// clamped to `[INITIAL_SLOTS, HARD_MAX_SLOTS]`; an already-larger
    /// table keeps its current size (shrinking would discard entries for
    /// no benefit — the table is already bounded).
    pub(crate) fn set_max_slots(&mut self, cap: usize) {
        let cap = cap.next_power_of_two().clamp(INITIAL_SLOTS, HARD_MAX_SLOTS);
        self.max_slots = cap.max(self.slots.len());
    }

    #[inline]
    fn index(&self, tag: u64, a: u32, b: u32, c: u32) -> usize {
        // High bits are the best-mixed; fold them onto the mask.
        (mix(tag, a, b, c) >> 32) as usize & self.mask
    }

    /// Looks up a memoized result.
    #[inline]
    pub(crate) fn get(&mut self, key: (OpTag, Bdd, Bdd, Bdd)) -> Option<Bdd> {
        let (tag, a, b, c) = (encode_tag(key.0), key.1 .0, key.2 .0, key.3 .0);
        let slot = &self.slots[self.index(tag, a, b, c)];
        if slot.tag == tag && slot.a == a && slot.b == b && slot.c == c {
            self.hits += 1;
            Some(Bdd(slot.result))
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts a result, overwriting whatever occupied the slot.
    ///
    /// Growth fires on either of two pressures: occupancy crossing 3/4
    /// (a table filling up cleanly) or the evictions since the last
    /// growth exceeding half the slot count. The second trigger matters
    /// because a direct-mapped table overwrites on collision — occupancy
    /// saturates well below 3/4 while inserts churn the same slots, so
    /// an occupancy-only heuristic stalls the table far under its cap
    /// and every probe past that point thrashes.
    pub(crate) fn insert(&mut self, key: (OpTag, Bdd, Bdd, Bdd), value: Bdd) {
        if self.slots.len() < self.max_slots
            && (self.occupied * 4 >= self.slots.len() * 3
                || self.evictions_since_grow as usize * 2 >= self.slots.len())
        {
            self.grow();
        }
        let (tag, a, b, c) = (encode_tag(key.0), key.1 .0, key.2 .0, key.3 .0);
        let idx = self.index(tag, a, b, c);
        let slot = &mut self.slots[idx];
        if slot.tag == EMPTY {
            self.occupied += 1;
        } else if !(slot.tag == tag && slot.a == a && slot.b == b && slot.c == c) {
            self.evictions += 1;
            self.evictions_since_grow += 1;
        }
        *slot = Slot {
            tag,
            a,
            b,
            c,
            result: value.0,
        };
    }

    /// Doubles the slot count, re-inserting surviving entries. Collisions
    /// in the new table overwrite (lossiness is fine; see module docs).
    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).min(self.max_slots);
        if new_len <= self.slots.len() {
            return;
        }
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_len]);
        self.mask = new_len - 1;
        self.occupied = 0;
        self.evictions_since_grow = 0;
        for slot in old {
            if slot.tag == EMPTY {
                continue;
            }
            let idx = self.index(slot.tag, slot.a, slot.b, slot.c);
            if self.slots[idx].tag == EMPTY {
                self.occupied += 1;
            }
            self.slots[idx] = slot;
        }
    }

    /// Empties the table (keeps its current slot allocation and counters).
    pub(crate) fn clear(&mut self) {
        self.slots.fill(EMPTY_SLOT);
        self.occupied = 0;
        self.evictions_since_grow = 0;
    }

    /// Number of occupied slots.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.occupied
    }

    /// Counter snapshot for [`crate::ManagerStats`].
    pub(crate) fn counters(&self) -> CacheCounters {
        CacheCounters {
            entries: self.occupied,
            capacity: self.slots.len(),
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }

    /// Iterates over the occupied slots as decoded `(key, result)` pairs
    /// (for the audit layer's spot checks).
    pub(crate) fn iter(&self) -> impl Iterator<Item = ((OpTag, Bdd, Bdd, Bdd), Bdd)> + '_ {
        self.slots.iter().filter(|s| s.tag != EMPTY).map(|s| {
            (
                (decode_tag(s.tag), Bdd(s.a), Bdd(s.b), Bdd(s.c)),
                Bdd(s.result),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(a: u32, b: u32, c: u32) -> (OpTag, Bdd, Bdd, Bdd) {
        (OpTag::Ite, Bdd(a), Bdd(b), Bdd(c))
    }

    #[test]
    fn tag_roundtrip() {
        for tag in [
            OpTag::Ite,
            OpTag::Not,
            OpTag::Exists(7),
            OpTag::Forall(u32::MAX - 1),
            OpTag::Compose(3),
            OpTag::Restrict,
            OpTag::AndExists(0),
            OpTag::AndForall(19),
        ] {
            assert_eq!(decode_tag(encode_tag(tag)), tag);
            assert_ne!(encode_tag(tag), EMPTY);
        }
    }

    #[test]
    fn insert_then_get_hits() {
        let mut t = ComputedTable::default();
        t.insert(key(2, 3, 4), Bdd(9));
        assert_eq!(t.get(key(2, 3, 4)), Some(Bdd(9)));
        assert_eq!(t.get(key(2, 3, 5)), None);
        let c = t.counters();
        assert_eq!((c.hits, c.misses, c.entries), (1, 1, 1));
    }

    #[test]
    fn collision_overwrites_and_counts_eviction() {
        // Pin the cap so no growth interferes; then synthesize a collision
        // by brute force: two distinct keys mapping to the same slot.
        let mut t = ComputedTable::default();
        t.set_max_slots(INITIAL_SLOTS);
        t.insert(key(1, 1, 1), Bdd(10));
        let target = t.index(encode_tag(OpTag::Ite), 1, 1, 1);
        let mut other = None;
        for a in 2..100_000u32 {
            if t.index(encode_tag(OpTag::Ite), a, 0, 0) == target {
                other = Some(a);
                break;
            }
        }
        let a = other.expect("some key collides in a 1024-slot table");
        t.insert(key(a, 0, 0), Bdd(20));
        assert_eq!(t.get(key(a, 0, 0)), Some(Bdd(20)));
        assert_eq!(t.get(key(1, 1, 1)), None, "evicted by the collision");
        assert_eq!(t.counters().evictions, 1);
        assert_eq!(t.counters().entries, 1);
    }

    #[test]
    fn grows_to_cap_and_never_beyond() {
        let mut t = ComputedTable::default();
        t.set_max_slots(INITIAL_SLOTS * 4);
        for i in 0..(INITIAL_SLOTS as u32 * 16) {
            t.insert(key(i, i ^ 1, i ^ 2), Bdd(i));
        }
        let c = t.counters();
        assert_eq!(c.capacity, INITIAL_SLOTS * 4);
        assert!(c.entries <= c.capacity);
        assert!(c.evictions > 0, "past the cap inserts must evict");
    }

    #[test]
    fn eviction_pressure_grows_a_half_empty_table() {
        let mut t = ComputedTable::default();
        t.set_max_slots(INITIAL_SLOTS * 8);
        // A pseudo-random insert stream on a direct-mapped table plateaus
        // around ~63% occupancy; only the eviction-pressure trigger can
        // carry it to the cap.
        for i in 0..(INITIAL_SLOTS as u32 * 64) {
            t.insert(key(i.wrapping_mul(2654435761), i, i ^ 7), Bdd(i));
        }
        assert_eq!(t.counters().capacity, INITIAL_SLOTS * 8);
    }

    #[test]
    fn set_max_slots_rounds_and_clamps() {
        let mut t = ComputedTable::default();
        t.set_max_slots(3);
        assert_eq!(t.max_slots, INITIAL_SLOTS);
        t.set_max_slots(usize::MAX / 2);
        assert_eq!(t.max_slots, HARD_MAX_SLOTS);
        t.set_max_slots(5000);
        assert_eq!(t.max_slots, 8192);
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut t = ComputedTable::default();
        for i in 0..100u32 {
            t.insert(key(i, 0, 0), Bdd(i));
        }
        let cap = t.counters().capacity;
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.counters().capacity, cap);
        assert_eq!(t.get(key(5, 0, 0)), None);
    }

    #[test]
    fn iter_reports_decoded_entries() {
        let mut t = ComputedTable::default();
        t.insert((OpTag::Forall(3), Bdd(8), Bdd(1), Bdd(0)), Bdd(4));
        let all: Vec<_> = t.iter().collect();
        assert_eq!(
            all,
            vec![((OpTag::Forall(3), Bdd(8), Bdd(1), Bdd(0)), Bdd(4))]
        );
    }
}
