//! Read-only introspection of the manager's internals for external
//! invariant auditing.
//!
//! The `qsyn-audit` crate re-validates the manager's structural invariants
//! (canonicity, variable ordering, unique-table consistency) and a sample
//! of the operation cache *independently* of this crate's own code. The
//! methods here expose just enough raw structure to make that possible
//! without giving callers a way to violate the invariants themselves —
//! with one deliberate exception, [`Manager::corrupt_node_for_audit`],
//! which exists so the auditors' own rejection paths can be tested.

use crate::manager::{Bdd, Manager, OpTag, TERMINAL_LEVEL};

/// One non-terminal node of the manager's node table, as raw indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeEntry {
    /// Handle of the node itself.
    pub id: Bdd,
    /// Variable (= level) the node branches on.
    pub var: u32,
    /// The `var = 0` child.
    pub lo: Bdd,
    /// The `var = 1` child.
    pub hi: Bdd,
}

/// One memoized operation, re-expressed in public terms so an external
/// checker can recompute it from semantics alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CachedOp {
    /// `ite(f, g, h)`.
    Ite {
        /// Condition.
        f: Bdd,
        /// Then-branch.
        g: Bdd,
        /// Else-branch.
        h: Bdd,
    },
    /// `¬f`.
    Not {
        /// Operand.
        f: Bdd,
    },
    /// `∃ vars . f`.
    Exists {
        /// Operand.
        f: Bdd,
        /// Quantified variables (ascending).
        vars: Vec<u32>,
    },
    /// `∀ vars . f`.
    Forall {
        /// Operand.
        f: Bdd,
        /// Quantified variables (ascending).
        vars: Vec<u32>,
    },
    /// `f[var := g]`.
    Compose {
        /// Host function.
        f: Bdd,
        /// Substituted variable.
        var: u32,
        /// Replacement function.
        g: Bdd,
    },
    /// `f|_{var = value}`.
    Restrict {
        /// Operand.
        f: Bdd,
        /// Restricted variable.
        var: u32,
        /// Value the variable is pinned to.
        value: bool,
    },
}

/// A cache entry: the operation and the memoized result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheSample {
    /// The memoized operation.
    pub op: CachedOp,
    /// The result the cache claims for it.
    pub result: Bdd,
}

impl Manager {
    /// Iterates over every non-terminal node in allocation order.
    pub fn node_entries(&self) -> impl Iterator<Item = NodeEntry> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .skip(2) // the two terminals
            .map(|(i, n)| NodeEntry {
                id: Bdd(i as u32),
                var: n.var,
                lo: n.lo,
                hi: n.hi,
            })
    }

    /// Level of the root of `f` as a raw index, with terminals reported as
    /// `u32::MAX` (which compares greater than every real level).
    pub fn raw_level(&self, f: Bdd) -> u32 {
        self.level(f)
    }

    /// Looks up `(var, lo, hi)` in the unique table.
    ///
    /// For a consistent manager this returns `Some(id)` exactly when a node
    /// `id` with those fields exists; the auditors cross-check this against
    /// the node table itself.
    pub fn unique_entry(&self, var: u32, lo: Bdd, hi: Bdd) -> Option<Bdd> {
        self.unique_lookup(var, lo, hi)
    }

    pub(crate) fn unique_lookup(&self, var: u32, lo: Bdd, hi: Bdd) -> Option<Bdd> {
        self.unique_get(&(var, lo, hi))
    }

    /// Up to `limit` operation-cache entries, in unspecified order,
    /// re-expressed as [`CacheSample`]s an external checker can recompute.
    pub fn cache_samples(&self, limit: usize) -> Vec<CacheSample> {
        self.op_cache_iter()
            .take(limit)
            .map(|(&(tag, a, b, c), &result)| {
                let op = match tag {
                    OpTag::Ite => CachedOp::Ite { f: a, g: b, h: c },
                    OpTag::Not => CachedOp::Not { f: a },
                    OpTag::Exists(id) => CachedOp::Exists {
                        f: a,
                        vars: self.varset(id)[b.0 as usize..].to_vec(),
                    },
                    OpTag::Forall(id) => CachedOp::Forall {
                        f: a,
                        vars: self.varset(id)[b.0 as usize..].to_vec(),
                    },
                    OpTag::Compose(var) => CachedOp::Compose { f: a, var, g: b },
                    OpTag::Restrict => CachedOp::Restrict {
                        f: a,
                        var: b.0,
                        value: c.is_one(),
                    },
                };
                CacheSample { op, result }
            })
            .collect()
    }

    /// **Test-only corruption hook**: overwrites node `id` in place,
    /// bypassing every invariant the ordinary constructors enforce.
    ///
    /// This exists solely so the audit layer can prove its rejection paths
    /// fire; a manager mutated this way is broken by construction and must
    /// be discarded. Panics if `id` is a terminal or out of range.
    #[doc(hidden)]
    pub fn corrupt_node_for_audit(&mut self, id: Bdd, var: u32, lo: Bdd, hi: Bdd) {
        assert!(!id.is_terminal(), "cannot corrupt a terminal");
        let slot = &mut self.nodes[id.0 as usize];
        assert!(slot.var != TERMINAL_LEVEL, "node out of range");
        slot.var = var;
        slot.lo = lo;
        slot.hi = hi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_entries_cover_all_nonterminals() {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.and(a, b);
        let entries: Vec<NodeEntry> = m.node_entries().collect();
        assert_eq!(entries.len(), m.node_count() - 2);
        for e in &entries {
            assert!(!e.id.is_terminal());
            assert_eq!(m.unique_entry(e.var, e.lo, e.hi), Some(e.id));
        }
    }

    #[test]
    fn cache_samples_report_real_operations() {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let _ = m.forall(ab, &[0]);
        let samples = m.cache_samples(usize::MAX);
        assert!(!samples.is_empty());
        assert!(samples
            .iter()
            .any(|s| matches!(s.op, CachedOp::Ite { .. } | CachedOp::Forall { .. })));
    }

    #[test]
    fn corruption_hook_overwrites_in_place() {
        let mut m = Manager::new(2);
        let v = m.var(1);
        m.corrupt_node_for_audit(v, 1, Bdd::ONE, Bdd::ONE);
        let e = m.node_entries().find(|e| e.id == v).unwrap();
        assert_eq!((e.lo, e.hi), (Bdd::ONE, Bdd::ONE));
    }
}
