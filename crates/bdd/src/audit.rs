//! Read-only introspection of the manager's internals for external
//! invariant auditing.
//!
//! The `qsyn-audit` crate re-validates the manager's structural invariants
//! (canonicity, variable ordering, unique-table consistency, free-list
//! integrity) and a sample of the computed table *independently* of this
//! crate's own code. The methods here expose just enough raw structure to
//! make that possible without giving callers a way to violate the
//! invariants themselves — with two deliberate exceptions,
//! [`Manager::corrupt_node_for_audit`] and
//! [`Manager::corrupt_free_list_for_audit`], which exist so the auditors'
//! own rejection paths can be tested.

use crate::manager::{Bdd, Manager, OpTag, FREE_LEVEL, TERMINAL_LEVEL};

/// One non-terminal **live** node of the manager's node table, as raw
/// indices. Slots on the free list are not reported here; they appear in
/// [`Manager::free_slot_ids`] instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeEntry {
    /// Handle of the node itself.
    pub id: Bdd,
    /// Variable (= level) the node branches on.
    pub var: u32,
    /// The `var = 0` child.
    pub lo: Bdd,
    /// The `var = 1` child.
    pub hi: Bdd,
}

/// One memoized operation, re-expressed in public terms so an external
/// checker can recompute it from semantics alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CachedOp {
    /// `ite(f, g, h)`.
    Ite {
        /// Condition.
        f: Bdd,
        /// Then-branch.
        g: Bdd,
        /// Else-branch.
        h: Bdd,
    },
    /// `¬f`.
    Not {
        /// Operand.
        f: Bdd,
    },
    /// `∃ vars . f`.
    Exists {
        /// Operand.
        f: Bdd,
        /// Quantified variables (ascending).
        vars: Vec<u32>,
    },
    /// `∀ vars . f`.
    Forall {
        /// Operand.
        f: Bdd,
        /// Quantified variables (ascending).
        vars: Vec<u32>,
    },
    /// `f[var := g]`.
    Compose {
        /// Host function.
        f: Bdd,
        /// Substituted variable.
        var: u32,
        /// Replacement function.
        g: Bdd,
    },
    /// `f|_{var = value}`.
    Restrict {
        /// Operand.
        f: Bdd,
        /// Restricted variable.
        var: u32,
        /// Value the variable is pinned to.
        value: bool,
    },
    /// Fused `∃ vars (f ∧ g)`.
    AndExists {
        /// Left conjunct.
        f: Bdd,
        /// Right conjunct.
        g: Bdd,
        /// Quantified variables (ascending).
        vars: Vec<u32>,
    },
    /// Fused `∀ vars (f ∧ g)`.
    AndForall {
        /// Left conjunct.
        f: Bdd,
        /// Right conjunct.
        g: Bdd,
        /// Quantified variables (ascending).
        vars: Vec<u32>,
    },
}

/// A cache entry: the operation and the memoized result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheSample {
    /// The memoized operation.
    pub op: CachedOp,
    /// The result the cache claims for it.
    pub result: Bdd,
}

impl Manager {
    /// Iterates over every live non-terminal node in slot order. Free-list
    /// slots are skipped — they hold no function.
    pub fn node_entries(&self) -> impl Iterator<Item = NodeEntry> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .skip(2) // the two terminals
            .filter(|(_, n)| n.var != FREE_LEVEL)
            .map(|(i, n)| NodeEntry {
                id: Bdd(i as u32),
                var: n.var,
                lo: n.lo,
                hi: n.hi,
            })
    }

    /// The raw free list: slots available for reuse, in pop order. For a
    /// consistent manager these are exactly the swept slots — the auditors
    /// check them for duplicates, range violations, terminals, and overlap
    /// with the live nodes of [`Manager::node_entries`].
    pub fn free_slot_ids(&self) -> Vec<Bdd> {
        self.free.iter().map(|&s| Bdd(s)).collect()
    }

    /// `true` if the slot behind `f` carries the free-list sentinel.
    /// Paired with [`Manager::free_slot_ids`]: a consistent manager has
    /// `slot_is_free(s)` for exactly the listed slots.
    pub fn slot_is_free(&self, f: Bdd) -> bool {
        f.index() < self.nodes.len() && self.is_free(f)
    }

    /// Level of the root of `f` as a raw index, with terminals reported as
    /// `u32::MAX` (which compares greater than every real level).
    pub fn raw_level(&self, f: Bdd) -> u32 {
        self.level(f)
    }

    /// Looks up `(var, lo, hi)` in the unique table.
    ///
    /// For a consistent manager this returns `Some(id)` exactly when a live
    /// node `id` with those fields exists; the auditors cross-check this
    /// against the node table itself.
    pub fn unique_entry(&self, var: u32, lo: Bdd, hi: Bdd) -> Option<Bdd> {
        self.unique_lookup(var, lo, hi)
    }

    pub(crate) fn unique_lookup(&self, var: u32, lo: Bdd, hi: Bdd) -> Option<Bdd> {
        self.unique_get(&(var, lo, hi))
    }

    /// Up to `limit` computed-table entries, in unspecified order,
    /// re-expressed as [`CacheSample`]s an external checker can recompute.
    pub fn cache_samples(&self, limit: usize) -> Vec<CacheSample> {
        self.computed
            .iter()
            .take(limit)
            .map(|((tag, a, b, c), result)| {
                let op = match tag {
                    OpTag::Ite => CachedOp::Ite { f: a, g: b, h: c },
                    OpTag::Not => CachedOp::Not { f: a },
                    OpTag::Exists(id) => CachedOp::Exists {
                        f: a,
                        vars: self.varset(id)[b.0 as usize..].to_vec(),
                    },
                    OpTag::Forall(id) => CachedOp::Forall {
                        f: a,
                        vars: self.varset(id)[b.0 as usize..].to_vec(),
                    },
                    OpTag::Compose(var) => CachedOp::Compose { f: a, var, g: b },
                    OpTag::Restrict => CachedOp::Restrict {
                        f: a,
                        var: b.0,
                        value: c.is_one(),
                    },
                    OpTag::AndExists(id) => CachedOp::AndExists {
                        f: a,
                        g: b,
                        vars: self.varset(id)[c.0 as usize..].to_vec(),
                    },
                    OpTag::AndForall(id) => CachedOp::AndForall {
                        f: a,
                        g: b,
                        vars: self.varset(id)[c.0 as usize..].to_vec(),
                    },
                };
                CacheSample { op, result }
            })
            .collect()
    }

    /// **Test-only corruption hook**: overwrites node `id` in place,
    /// bypassing every invariant the ordinary constructors enforce.
    ///
    /// This exists solely so the audit layer can prove its rejection paths
    /// fire; a manager mutated this way is broken by construction and must
    /// be discarded. Panics if `id` is a terminal or out of range.
    #[doc(hidden)]
    pub fn corrupt_node_for_audit(&mut self, id: Bdd, var: u32, lo: Bdd, hi: Bdd) {
        assert!(!id.is_terminal(), "cannot corrupt a terminal");
        let slot = &mut self.nodes[id.0 as usize];
        assert!(slot.var != TERMINAL_LEVEL, "node out of range");
        slot.var = var;
        slot.lo = lo;
        slot.hi = hi;
    }

    /// **Test-only corruption hook**: pushes the slot of a *live* node onto
    /// the free list without sweeping it, so the slot appears both live and
    /// free — exactly the inconsistency the free-list auditor must reject
    /// (a later construction would overwrite a node that is still
    /// reachable). Panics if `id` is a terminal.
    #[doc(hidden)]
    pub fn corrupt_free_list_for_audit(&mut self, id: Bdd) {
        assert!(!id.is_terminal(), "cannot free a terminal");
        self.free.push(id.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_entries_cover_all_nonterminals() {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.and(a, b);
        let entries: Vec<NodeEntry> = m.node_entries().collect();
        assert_eq!(entries.len(), m.node_count() - 2);
        for e in &entries {
            assert!(!e.id.is_terminal());
            assert_eq!(m.unique_entry(e.var, e.lo, e.hi), Some(e.id));
        }
    }

    #[test]
    fn node_entries_skip_free_slots() {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let junk = m.and(a, b);
        let _ = junk;
        let freed = m.collect_garbage(&[a, b]);
        assert!(freed > 0);
        let entries: Vec<NodeEntry> = m.node_entries().collect();
        assert_eq!(entries.len(), m.node_count() - 2);
        let free = m.free_slot_ids();
        assert_eq!(free.len(), freed);
        for f in &free {
            assert!(m.slot_is_free(*f));
            assert!(entries.iter().all(|e| e.id != *f));
        }
    }

    #[test]
    fn cache_samples_report_real_operations() {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let _ = m.forall(ab, &[0]);
        let samples = m.cache_samples(usize::MAX);
        assert!(!samples.is_empty());
        assert!(samples
            .iter()
            .any(|s| matches!(s.op, CachedOp::Ite { .. } | CachedOp::Forall { .. })));
    }

    #[test]
    fn cache_samples_cover_fused_ops() {
        let mut m = Manager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let f = m.or(a, c);
        let g = m.or(b, c);
        let _ = m.and_forall(f, g, &[2]);
        let _ = m.and_exists(f, g, &[2]);
        let samples = m.cache_samples(usize::MAX);
        assert!(samples
            .iter()
            .any(|s| matches!(&s.op, CachedOp::AndForall { vars, .. } if vars == &[2])));
        assert!(samples
            .iter()
            .any(|s| matches!(&s.op, CachedOp::AndExists { vars, .. } if vars == &[2])));
    }

    #[test]
    fn corruption_hook_overwrites_in_place() {
        let mut m = Manager::new(2);
        let v = m.var(1);
        m.corrupt_node_for_audit(v, 1, Bdd::ONE, Bdd::ONE);
        let e = m.node_entries().find(|e| e.id == v).unwrap();
        assert_eq!((e.lo, e.hi), (Bdd::ONE, Bdd::ONE));
    }

    #[test]
    fn free_list_corruption_hook_aliases_live_slot() {
        let mut m = Manager::new(2);
        let v = m.var(1);
        m.corrupt_free_list_for_audit(v);
        // The slot now shows up both live and free — the inconsistency the
        // external auditor looks for.
        assert!(m.free_slot_ids().contains(&v));
        assert!(m.node_entries().any(|e| e.id == v));
        assert!(!m.slot_is_free(v));
    }
}
