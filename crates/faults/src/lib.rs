//! Deterministic fault injection for the synthesis hot paths.
//!
//! Long-running exact synthesis meets budget trips, worker panics and
//! interrupted batches as a matter of course; the recovery machinery
//! (supervised retries, manager quarantine, crash-safe resume) is only
//! trustworthy if it can be exercised on demand. This crate is the
//! fail-point registry that makes those failures reproducible: a seeded
//! [`FaultPlane`] maps each injection [`Site`] to a **deterministic call
//! count** at which it fires exactly once, and to a [`FaultKind`] drawn
//! from the kinds that site can express.
//!
//! # Zero cost unless compiled in
//!
//! Everything here is gated on the crate feature `enabled`, which consumer
//! crates forward from their own `faults` feature. Without it, [`hit`]
//! is an `#[inline(always)]` function returning `None` — the injection
//! sites threaded through `qsyn-bdd`, `qsyn-sat`, `qsyn-qbf`, `qsyn-core`
//! and `qsyn-portfolio` vanish entirely from release builds. With the
//! feature on but no plan armed, the cost is one relaxed atomic load per
//! site visit.
//!
//! # Determinism contract
//!
//! Arming the plane with the same seed yields the same per-site trigger
//! counts and fault kinds. Within a single thread of execution the Nth
//! visit to a site is deterministic, so single-worker chaos runs replay
//! exactly; with several workers the *schedule* decides which job absorbs
//! the fault, but the recovery invariants under test (retries converge to
//! the fault-free answer, quarantined managers never recirculate, audits
//! hold after recovery) are schedule-independent.
//!
//! Each site fires **once** per arming: recovery paths re-execute the
//! same code, and a fault that re-fired forever would make eventual
//! success unobservable.

#![warn(missing_docs)]

/// An injection site: one named choke point in a hot layer.
///
/// The numeric value indexes the plane's per-site state; keep the list in
/// sync with [`Site::ALL`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Site {
    /// BDD node allocation (`Manager::mk`) — fires a simulated OOM (the
    /// manager latches its overflow flag, exactly as a real node-cap trip).
    BddAlloc,
    /// BDD garbage-collection sweep — fires a simulated mid-collection
    /// interrupt (deadline/cancellation observed at the GC safe point).
    BddGcSweep,
    /// SAT propagation-stride budget probe — aborts CDCL propagation as an
    /// exhausted conflict budget would.
    SatPropagate,
    /// QBF decision loop (via the governor's budget callback) — aborts the
    /// QDPLL search as an exhausted decision budget would.
    QbfDecision,
    /// Session manager checkout/reset — panics, modelling a poisoned
    /// manager surfacing while a worker prepares a job.
    SessionCheckout,
    /// Batch scheduler worker, polled once per job — panics or cancels,
    /// modelling a worker crash or a shutdown race.
    SchedulerWorker,
    /// Circuit-store record append (`qsyn-store`), polled before any byte
    /// is written — fires a simulated I/O failure that the store surfaces
    /// as a **retryable** error without touching the log, so an injected
    /// write fault can never corrupt the database.
    StoreAppend,
}

impl Site {
    /// Every site, in `repr` order.
    pub const ALL: [Site; 7] = [
        Site::BddAlloc,
        Site::BddGcSweep,
        Site::SatPropagate,
        Site::QbfDecision,
        Site::SessionCheckout,
        Site::SchedulerWorker,
        Site::StoreAppend,
    ];

    /// Stable lowercase name, used by chaos reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Site::BddAlloc => "bdd.alloc",
            Site::BddGcSweep => "bdd.gc-sweep",
            Site::SatPropagate => "sat.propagate",
            Site::QbfDecision => "qbf.decision",
            Site::SessionCheckout => "session.checkout",
            Site::SchedulerWorker => "scheduler.worker",
            Site::StoreAppend => "store.append",
        }
    }

    /// How many visits the trigger count is drawn from: hot sites get a
    /// wide window (the fault lands mid-operation), per-job sites a narrow
    /// one (the fault lands within the first few jobs).
    #[cfg(feature = "enabled")]
    fn trigger_window(self) -> u64 {
        match self {
            // The BDD manager polls this site inside `poll_interrupt` —
            // once per interrupt stride (4096 constructions) or garbage
            // collection — so a narrow window still spans tens of
            // thousands of allocations while keeping the disarmed plane
            // entirely off the `mk` hot path.
            Site::BddAlloc => 12,
            Site::BddGcSweep => 8,
            Site::SatPropagate => 2_000,
            Site::QbfDecision => 2_000,
            Site::SessionCheckout => 6,
            Site::SchedulerWorker => 4,
            Site::StoreAppend => 4,
        }
    }

    /// The fault kinds this site can express.
    #[cfg(feature = "enabled")]
    fn kinds(self) -> &'static [FaultKind] {
        match self {
            Site::BddAlloc => &[FaultKind::Oom],
            Site::BddGcSweep => &[FaultKind::Deadline, FaultKind::Cancel],
            Site::SatPropagate => &[FaultKind::Deadline, FaultKind::Cancel],
            Site::QbfDecision => &[FaultKind::Deadline, FaultKind::Cancel],
            Site::SessionCheckout => &[FaultKind::Panic],
            Site::SchedulerWorker => &[FaultKind::Panic, FaultKind::Cancel],
            Site::StoreAppend => &[FaultKind::Io],
        }
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a firing site simulates. The site's own code decides how each
/// kind manifests in its layer (an overflow latch, an aborted probe, a
/// panic) so the failure is indistinguishable from the organic one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Memory exhaustion: the layer behaves as if its node/memory budget
    /// tripped.
    Oom,
    /// Wall-clock deadline expiry observed at this point.
    Deadline,
    /// Cooperative cancellation observed at this point.
    Cancel,
    /// A worker panic (`panic!` raised at the site).
    Panic,
    /// A failed I/O operation (write/fsync error surfaced at the site).
    Io,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Oom => write!(f, "oom"),
            FaultKind::Deadline => write!(f, "deadline"),
            FaultKind::Cancel => write!(f, "cancel"),
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Io => write!(f, "io"),
        }
    }
}

/// Polls a site: `Some(kind)` exactly when the armed plan says this visit
/// is the one that fails. Sites call this unconditionally; without the
/// `enabled` feature it is a compiled-out `None`.
#[inline(always)]
pub fn hit(site: Site) -> Option<FaultKind> {
    #[cfg(feature = "enabled")]
    {
        enabled::hit(site)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = site;
        None
    }
}

/// The seeded fail-point registry. All state is process-global (the sites
/// are free functions on hot paths); arming replaces any previous plan.
pub struct FaultPlane;

impl FaultPlane {
    /// Arms every site from `seed`: per-site trigger counts and kinds are
    /// derived with splitmix64, so equal seeds give equal schedules.
    /// Counters restart at zero. No-op without the `enabled` feature.
    pub fn arm(seed: u64) {
        #[cfg(feature = "enabled")]
        enabled::arm(seed);
        #[cfg(not(feature = "enabled"))]
        let _ = seed;
    }

    /// Disarms all sites and clears counters.
    pub fn disarm() {
        #[cfg(feature = "enabled")]
        enabled::disarm();
    }

    /// `true` while a seeded plan is armed. Lets callers enable
    /// fault-only safety nets (e.g. the session pool's check-in audit)
    /// exactly when injection can actually corrupt state, keeping the
    /// compiled-in-but-disarmed plane at its advertised near-zero cost.
    pub fn armed() -> bool {
        #[cfg(feature = "enabled")]
        {
            enabled::armed()
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// `(site, kind)` of every fault fired since the last arming.
    pub fn fired() -> Vec<(Site, FaultKind)> {
        #[cfg(feature = "enabled")]
        {
            enabled::fired()
        }
        #[cfg(not(feature = "enabled"))]
        {
            Vec::new()
        }
    }

    /// `true` when the plane was compiled in (`--features faults` on the
    /// consumer). Lets a CLI reject `--fault-seed` on builds where arming
    /// would silently do nothing.
    pub fn compiled_in() -> bool {
        cfg!(feature = "enabled")
    }
}

#[cfg(feature = "enabled")]
mod enabled {
    use super::{FaultKind, Site};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;

    const SITES: usize = Site::ALL.len();

    static ARMED: AtomicBool = AtomicBool::new(false);
    /// Per-site visit counters since the last arming.
    static VISITS: [AtomicU64; SITES] = [const { AtomicU64::new(0) }; SITES];
    /// Per-site trigger: the visit number that fires, or 0 when the site
    /// is disarmed / already fired.
    static TRIGGERS: [AtomicU64; SITES] = [const { AtomicU64::new(0) }; SITES];
    /// Per-site kind, encoded as `FaultKind as u64`.
    static KINDS: [AtomicU64; SITES] = [const { AtomicU64::new(0) }; SITES];
    /// Faults fired since the last arming, for chaos reporting. Leaf
    /// lock: the short record/drain critical sections take no other lock
    /// and do no I/O, so the plane stays invisible to `concheck`'s
    /// lock-order and blocking-under-lock analyses.
    static FIRED: Mutex<Vec<(Site, FaultKind)>> = Mutex::new(Vec::new());

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub(super) fn arm(seed: u64) {
        let mut state = seed;
        for site in Site::ALL {
            let i = site as usize;
            let roll = splitmix64(&mut state);
            let kinds = site.kinds();
            let kind = kinds[(roll % kinds.len() as u64) as usize];
            // Not every site fires on every seed: roughly half the sites
            // stay quiet, so schedules vary in shape, not just position.
            let fires = roll & 1 == 0 || site == Site::BddAlloc;
            let trigger = if fires {
                1 + splitmix64(&mut state) % site.trigger_window()
            } else {
                0
            };
            VISITS[i].store(0, Ordering::SeqCst);
            KINDS[i].store(kind as u64, Ordering::SeqCst);
            TRIGGERS[i].store(trigger, Ordering::SeqCst);
        }
        FIRED.lock().expect("fault plane lock").clear();
        ARMED.store(true, Ordering::SeqCst);
    }

    pub(super) fn disarm() {
        ARMED.store(false, Ordering::SeqCst);
        for i in 0..SITES {
            TRIGGERS[i].store(0, Ordering::SeqCst);
            VISITS[i].store(0, Ordering::SeqCst);
        }
    }

    pub(super) fn fired() -> Vec<(Site, FaultKind)> {
        FIRED.lock().expect("fault plane lock").clone()
    }

    pub(super) fn armed() -> bool {
        ARMED.load(Ordering::Relaxed)
    }

    fn decode(kind: u64) -> FaultKind {
        match kind {
            0 => FaultKind::Oom,
            1 => FaultKind::Deadline,
            2 => FaultKind::Cancel,
            4 => FaultKind::Io,
            _ => FaultKind::Panic,
        }
    }

    #[inline]
    pub(super) fn hit(site: Site) -> Option<FaultKind> {
        if !ARMED.load(Ordering::Relaxed) {
            return None;
        }
        let i = site as usize;
        let trigger = TRIGGERS[i].load(Ordering::Relaxed);
        if trigger == 0 {
            return None;
        }
        let visit = VISITS[i].fetch_add(1, Ordering::Relaxed) + 1;
        if visit != trigger {
            return None;
        }
        // One-shot: only the thread that observed the exact trigger visit
        // gets here, and it disarms the site before acting.
        TRIGGERS[i].store(0, Ordering::Relaxed);
        let kind = decode(KINDS[i].load(Ordering::Relaxed));
        FIRED.lock().expect("fault plane lock").push((site, kind));
        Some(kind)
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The plane is process-global; serialize tests that arm it.
    static PLANE_TESTS: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        PLANE_TESTS.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Drains a site: visits it until it fires or the window is exhausted.
    fn drain(site: Site, max: u64) -> Option<(u64, FaultKind)> {
        for visit in 1..=max {
            if let Some(kind) = hit(site) {
                return Some((visit, kind));
            }
        }
        None
    }

    #[test]
    fn same_seed_same_schedule() {
        let _g = lock();
        FaultPlane::arm(42);
        let first: Vec<_> = Site::ALL.map(|s| drain(s, 100_000)).to_vec();
        FaultPlane::arm(42);
        let second: Vec<_> = Site::ALL.map(|s| drain(s, 100_000)).to_vec();
        assert_eq!(first, second, "seed 42 must replay exactly");
        assert!(
            first.iter().any(Option::is_some),
            "some site must fire under any seed (bdd.alloc always does)"
        );
        FaultPlane::disarm();
    }

    #[test]
    fn sites_fire_once_per_arming() {
        let _g = lock();
        FaultPlane::arm(7);
        let fired = drain(Site::BddAlloc, 100_000);
        assert!(fired.is_some(), "bdd.alloc fires on every seed");
        assert_eq!(
            drain(Site::BddAlloc, 200_000),
            None,
            "a fired site stays quiet until re-armed"
        );
        assert_eq!(FaultPlane::fired().len(), 1);
        FaultPlane::disarm();
    }

    #[test]
    fn disarmed_plane_is_silent() {
        let _g = lock();
        FaultPlane::disarm();
        for site in Site::ALL {
            assert_eq!(hit(site), None);
        }
        assert!(FaultPlane::compiled_in());
    }

    #[test]
    fn kinds_respect_site_capabilities() {
        let _g = lock();
        for seed in 0..32 {
            FaultPlane::arm(seed);
            if let Some((_, kind)) = drain(Site::BddAlloc, 100_000) {
                assert_eq!(kind, FaultKind::Oom, "alloc site only simulates OOM");
            }
            if let Some((_, kind)) = drain(Site::SessionCheckout, 100) {
                assert_eq!(kind, FaultKind::Panic);
            }
        }
        FaultPlane::disarm();
    }

    #[test]
    fn store_append_site_only_fires_io() {
        let _g = lock();
        for seed in 0..32 {
            FaultPlane::arm(seed);
            if let Some((_, kind)) = drain(Site::StoreAppend, 100) {
                assert_eq!(
                    kind,
                    FaultKind::Io,
                    "store.append only simulates I/O faults"
                );
            }
        }
        FaultPlane::disarm();
    }

    #[test]
    fn names_are_stable_and_displayable() {
        assert_eq!(Site::BddAlloc.name(), "bdd.alloc");
        assert_eq!(Site::SchedulerWorker.to_string(), "scheduler.worker");
        assert_eq!(FaultKind::Deadline.to_string(), "deadline");
    }
}
