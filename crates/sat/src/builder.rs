//! Structural circuit-to-CNF translation (Tseitin encoding).
//!
//! The QBF formulation of the synthesis problem (Section 5.1 of the paper)
//! requires the universal-gate cascade `F_d = f` as a CNF; the classic
//! Tseitin transformation \[20\] does this in time and space linear in the
//! circuit. [`CnfBuilder`] tracks which variables are *auxiliary* (the `A`
//! set that is existentially quantified innermost in the paper's prefix
//! `∃Y ∀X ∃A`).

use crate::cnf::CnfFormula;
use crate::types::Lit;

/// Incrementally builds a CNF from circuit structure.
///
/// Every gate helper returns a literal representing the gate output; fresh
/// auxiliary variables are allocated on demand and recorded in
/// [`aux_vars`](CnfBuilder::aux_vars).
///
/// # Example
///
/// ```
/// use qsyn_sat::{CnfBuilder, Solver, SolveResult};
///
/// let mut b = CnfBuilder::new(2);
/// let (x, y) = (b.input(0), b.input(1));
/// let sum = b.xor(x, y);
/// b.assert_lit(sum); // constrain x ⊕ y = 1
/// let mut solver = Solver::from_formula(b.formula());
/// let SolveResult::Sat(m) = solver.solve() else { unreachable!() };
/// assert_ne!(m[0], m[1]);
/// ```
#[derive(Clone, Debug)]
pub struct CnfBuilder {
    formula: CnfFormula,
    aux: Vec<u32>,
    /// Cached constant-true literal, allocated lazily.
    true_lit: Option<Lit>,
}

impl CnfBuilder {
    /// Creates a builder whose first `num_inputs` variables are the circuit
    /// inputs.
    pub fn new(num_inputs: u32) -> CnfBuilder {
        CnfBuilder {
            formula: CnfFormula::new(num_inputs),
            aux: Vec::new(),
            true_lit: None,
        }
    }

    /// Positive literal of input variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a declared variable.
    pub fn input(&self, i: u32) -> Lit {
        assert!(i < self.formula.num_vars(), "input {i} not declared");
        Lit::pos(i)
    }

    /// Allocates a fresh *non-auxiliary* variable (e.g. a gate-select
    /// variable of the synthesis encoding) and returns its positive literal.
    pub fn new_var(&mut self) -> Lit {
        Lit::pos(self.formula.new_var())
    }

    /// Allocates a fresh auxiliary (Tseitin) variable.
    pub fn new_aux(&mut self) -> Lit {
        let v = self.formula.new_var();
        self.aux.push(v);
        Lit::pos(v)
    }

    /// A literal constrained to be true.
    pub fn constant_true(&mut self) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let l = self.new_aux();
        self.formula.add_clause([l]);
        self.true_lit = Some(l);
        l
    }

    /// A literal constrained to be false.
    pub fn constant_false(&mut self) -> Lit {
        !self.constant_true()
    }

    /// Output literal of `a ∧ b`.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        let o = self.new_aux();
        self.formula.add_clause([!a, !b, o]);
        self.formula.add_clause([a, !o]);
        self.formula.add_clause([b, !o]);
        o
    }

    /// Output literal of an n-ary conjunction (empty ⇒ constant true).
    pub fn and_all(&mut self, inputs: &[Lit]) -> Lit {
        match inputs {
            [] => self.constant_true(),
            [single] => *single,
            _ => {
                let o = self.new_aux();
                let mut long: Vec<Lit> = inputs.iter().map(|&l| !l).collect();
                long.push(o);
                self.formula.add_clause(long);
                for &l in inputs {
                    self.formula.add_clause([l, !o]);
                }
                o
            }
        }
    }

    /// Output literal of `a ∨ b`.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Output literal of an n-ary disjunction (empty ⇒ constant false).
    pub fn or_all(&mut self, inputs: &[Lit]) -> Lit {
        let negated: Vec<Lit> = inputs.iter().map(|&l| !l).collect();
        !self.and_all(&negated)
    }

    /// Output literal of `a ⊕ b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let o = self.new_aux();
        self.formula.add_clause([!a, !b, !o]);
        self.formula.add_clause([a, b, !o]);
        self.formula.add_clause([!a, b, o]);
        self.formula.add_clause([a, !b, o]);
        o
    }

    /// Output literal of `a ⊙ b` (XNOR / equality).
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Output literal of `if s then t else e` (multiplexer).
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let o = self.new_aux();
        self.formula.add_clause([!s, !t, o]);
        self.formula.add_clause([!s, t, !o]);
        self.formula.add_clause([s, !e, o]);
        self.formula.add_clause([s, e, !o]);
        o
    }

    /// Asserts that `l` is true (adds a unit clause).
    pub fn assert_lit(&mut self, l: Lit) {
        self.formula.add_clause([l]);
    }

    /// Adds an arbitrary clause over existing literals.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.formula.add_clause(lits);
    }

    /// Asserts `a = b`.
    pub fn assert_equal(&mut self, a: Lit, b: Lit) {
        self.formula.add_clause([!a, b]);
        self.formula.add_clause([a, !b]);
    }

    /// Asserts that at most one of `lits` is true (pairwise encoding).
    pub fn assert_at_most_one(&mut self, lits: &[Lit]) {
        for (i, &a) in lits.iter().enumerate() {
            for &b in &lits[i + 1..] {
                self.formula.add_clause([!a, !b]);
            }
        }
    }

    /// Asserts that at least one of `lits` is true.
    pub fn assert_at_least_one(&mut self, lits: &[Lit]) {
        self.formula.add_clause(lits.iter().copied());
    }

    /// The auxiliary (Tseitin) variables allocated so far.
    pub fn aux_vars(&self) -> &[u32] {
        &self.aux
    }

    /// The formula built so far.
    pub fn formula(&self) -> &CnfFormula {
        &self.formula
    }

    /// Consumes the builder, returning the formula.
    pub fn into_formula(self) -> CnfFormula {
        self.formula
    }

    /// Total number of variables (inputs + selects + auxiliaries).
    pub fn num_vars(&self) -> u32 {
        self.formula.num_vars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};

    /// Checks that constraining `out = expected(x, y)` is satisfiable for
    /// every input combination and that the model agrees with `expected`.
    fn check_binary_gate(
        gate: impl Fn(&mut CnfBuilder, Lit, Lit) -> Lit,
        expected: impl Fn(bool, bool) -> bool,
    ) {
        for &(x, y) in &[(false, false), (false, true), (true, false), (true, true)] {
            let mut b = CnfBuilder::new(2);
            let (a, c) = (b.input(0), b.input(1));
            let o = gate(&mut b, a, c);
            b.assert_lit(if x { a } else { !a });
            b.assert_lit(if y { c } else { !c });
            b.assert_lit(if expected(x, y) { o } else { !o });
            let mut s = Solver::from_formula(b.formula());
            assert!(s.solve().is_sat(), "gate wrong for ({x}, {y})");
            // And the opposite output value must be unsat.
            let mut b2 = CnfBuilder::new(2);
            let (a2, c2) = (b2.input(0), b2.input(1));
            let o2 = gate(&mut b2, a2, c2);
            b2.assert_lit(if x { a2 } else { !a2 });
            b2.assert_lit(if y { c2 } else { !c2 });
            b2.assert_lit(if expected(x, y) { !o2 } else { o2 });
            let mut s2 = Solver::from_formula(b2.formula());
            assert_eq!(
                s2.solve(),
                SolveResult::Unsat,
                "gate not functional for ({x}, {y})"
            );
        }
    }

    #[test]
    fn and_gate_functional() {
        check_binary_gate(|b, x, y| b.and(x, y), |x, y| x && y);
    }

    #[test]
    fn or_gate_functional() {
        check_binary_gate(|b, x, y| b.or(x, y), |x, y| x || y);
    }

    #[test]
    fn xor_gate_functional() {
        check_binary_gate(|b, x, y| b.xor(x, y), |x, y| x ^ y);
    }

    #[test]
    fn xnor_gate_functional() {
        check_binary_gate(|b, x, y| b.xnor(x, y), |x, y| x == y);
    }

    #[test]
    fn mux_gate_functional() {
        // mux with s as first input, data inputs y and constant false.
        for &(s, t, e) in &[
            (false, false, false),
            (false, false, true),
            (false, true, false),
            (true, true, false),
            (true, false, true),
            (true, true, true),
        ] {
            let mut b = CnfBuilder::new(3);
            let (ls, lt, le) = (b.input(0), b.input(1), b.input(2));
            let o = b.mux(ls, lt, le);
            b.assert_lit(if s { ls } else { !ls });
            b.assert_lit(if t { lt } else { !lt });
            b.assert_lit(if e { le } else { !le });
            let expected = if s { t } else { e };
            b.assert_lit(if expected { o } else { !o });
            let mut solver = Solver::from_formula(b.formula());
            assert!(solver.solve().is_sat(), "mux({s},{t},{e})");
        }
    }

    #[test]
    fn and_all_empty_is_true() {
        let mut b = CnfBuilder::new(0);
        let t = b.and_all(&[]);
        b.assert_lit(!t);
        let mut s = Solver::from_formula(b.formula());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn and_all_wide() {
        let mut b = CnfBuilder::new(4);
        let inputs: Vec<Lit> = (0..4).map(|i| b.input(i)).collect();
        let all = b.and_all(&inputs);
        b.assert_lit(all);
        let mut s = Solver::from_formula(b.formula());
        let SolveResult::Sat(m) = s.solve() else {
            panic!("sat expected")
        };
        assert!(m[..4].iter().all(|&x| x));
    }

    #[test]
    fn or_all_empty_is_false() {
        let mut b = CnfBuilder::new(0);
        let f = b.or_all(&[]);
        b.assert_lit(f);
        let mut s = Solver::from_formula(b.formula());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn at_most_one_blocks_pairs() {
        let mut b = CnfBuilder::new(3);
        let lits: Vec<Lit> = (0..3).map(|i| b.input(i)).collect();
        b.assert_at_most_one(&lits);
        b.assert_lit(lits[0]);
        b.assert_lit(lits[2]);
        let mut s = Solver::from_formula(b.formula());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn at_least_one_forces_some() {
        let mut b = CnfBuilder::new(2);
        let lits: Vec<Lit> = (0..2).map(|i| b.input(i)).collect();
        b.assert_at_least_one(&lits);
        b.assert_lit(!lits[0]);
        b.assert_lit(!lits[1]);
        let mut s = Solver::from_formula(b.formula());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn aux_vars_are_tracked() {
        let mut b = CnfBuilder::new(2);
        let (x, y) = (b.input(0), b.input(1));
        let sel = b.new_var();
        let _ = b.and(x, y);
        let _ = b.xor(x, sel);
        assert_eq!(b.aux_vars().len(), 2);
        assert!(!b.aux_vars().contains(&sel.var().0));
        assert_eq!(b.num_vars(), 5);
    }

    #[test]
    fn constant_true_is_cached() {
        let mut b = CnfBuilder::new(0);
        let t1 = b.constant_true();
        let t2 = b.constant_true();
        assert_eq!(t1, t2);
        assert_eq!(b.constant_false(), !t1);
    }
}
