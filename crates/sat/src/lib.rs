//! Conflict-driven clause-learning (CDCL) SAT solving and CNF construction.
//!
//! This crate fills the role MiniSat \[7\] plays in *"Quantified Synthesis of
//! Reversible Logic"* (Wille et al., DATE 2008): it solves the row-wise SAT
//! encoding of the exact-synthesis problem (the baseline of \[9\]/\[22\] that
//! the paper improves on) and provides the CNF/Tseitin machinery the QBF
//! engine needs to produce prenex-CNF instances.
//!
//! * [`Lit`], [`Var`], [`Clause`], [`CnfFormula`] — core CNF types,
//! * [`CnfBuilder`] — structural-to-CNF translation (Tseitin encoding \[20\])
//!   with gate helpers (`and`, `or`, `xor`, `mux`, `equal`, …),
//! * [`Solver`] — CDCL with two-watched literals, VSIDS decision heuristic,
//!   first-UIP clause learning, phase saving and Luby restarts,
//! * [`dimacs`] — DIMACS CNF reading/writing.
//!
//! # Example
//!
//! ```
//! use qsyn_sat::{CnfFormula, Lit, Solver, SolveResult};
//!
//! // (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (¬x2 ∨ x3)
//! let mut cnf = CnfFormula::new(3);
//! cnf.add_clause([Lit::pos(0), Lit::pos(1)]);
//! cnf.add_clause([Lit::neg(0), Lit::pos(1)]);
//! cnf.add_clause([Lit::neg(1), Lit::pos(2)]);
//!
//! let mut solver = Solver::from_formula(&cnf);
//! match solver.solve() {
//!     SolveResult::Sat(model) => {
//!         assert!(model[1] && model[2]);
//!     }
//!     SolveResult::Unsat => unreachable!("formula is satisfiable"),
//! }
//! ```

#![warn(missing_docs)]

mod builder;
mod cnf;
pub mod dimacs;
pub mod proof;
mod solver;
mod types;

pub use builder::CnfBuilder;
pub use cnf::{Clause, CnfFormula};
pub use solver::{SolveResult, Solver, SolverStats};
pub use types::{Lit, Var};

#[cfg(test)]
mod random_tests;
