//! DIMACS CNF reading and writing.

use crate::cnf::CnfFormula;
use crate::types::Lit;

/// Error while parsing DIMACS input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number where the problem was found.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

/// Serializes a formula in DIMACS CNF format.
pub fn write_dimacs(formula: &CnfFormula) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", formula.num_vars(), formula.len()));
    for c in formula.clauses() {
        for l in c.lits() {
            out.push_str(&format!("{l} "));
        }
        out.push_str("0\n");
    }
    out
}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers, non-integer tokens,
/// variables out of the declared range, or clauses not terminated by `0`.
pub fn parse_dimacs(input: &str) -> Result<CnfFormula, ParseDimacsError> {
    let mut formula: Option<CnfFormula> = None;
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if formula.is_some() {
                return Err(ParseDimacsError {
                    line: lineno,
                    message: "duplicate problem line".into(),
                });
            }
            let mut it = rest.split_whitespace();
            if it.next() != Some("cnf") {
                return Err(ParseDimacsError {
                    line: lineno,
                    message: "expected `p cnf <vars> <clauses>`".into(),
                });
            }
            let nvars: u32 =
                it.next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ParseDimacsError {
                        line: lineno,
                        message: "bad variable count".into(),
                    })?;
            // Clause count is advisory; accept and ignore.
            formula = Some(CnfFormula::new(nvars));
            continue;
        }
        let f = formula.as_mut().ok_or_else(|| ParseDimacsError {
            line: lineno,
            message: "clause before problem line".into(),
        })?;
        for tok in line.split_whitespace() {
            let x: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: lineno,
                message: format!("bad literal `{tok}`"),
            })?;
            if x == 0 {
                f.add_clause(current.drain(..));
            } else {
                let var = x.unsigned_abs() - 1;
                if var >= u64::from(f.num_vars()) {
                    return Err(ParseDimacsError {
                        line: lineno,
                        message: format!("variable {} out of range", x.abs()),
                    });
                }
                current.push(Lit::new(var as u32, x > 0));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError {
            line: input.lines().count(),
            message: "unterminated clause".into(),
        });
    }
    formula.ok_or(ParseDimacsError {
        line: 0,
        message: "missing problem line".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut f = CnfFormula::new(3);
        f.add_clause([Lit::pos(0), Lit::neg(2)]);
        f.add_clause([Lit::neg(1)]);
        let text = write_dimacs(&f);
        let parsed = parse_dimacs(&text).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "c a comment\n\np cnf 2 1\nc another\n1 -2 0\n";
        let f = parse_dimacs(text).unwrap();
        assert_eq!(f.num_vars(), 2);
        assert_eq!(f.len(), 1);
        assert_eq!(f.clauses()[0].lits(), &[Lit::pos(0), Lit::neg(1)]);
    }

    #[test]
    fn rejects_out_of_range_variable() {
        let err = parse_dimacs("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn rejects_unterminated_clause() {
        let err = parse_dimacs("p cnf 2 1\n1 -2\n").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn rejects_missing_header() {
        assert!(parse_dimacs("1 0\n").is_err());
        assert!(parse_dimacs("").is_err());
    }

    #[test]
    fn clause_may_span_lines() {
        let f = parse_dimacs("p cnf 3 1\n1\n2\n3 0\n").unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f.clauses()[0].len(), 3);
    }
}
