//! Variables and literals.

/// A propositional variable, numbered from `0`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Index of this variable (identity; provided for symmetry with `Lit`).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::pos(self.0)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::neg(self.0)
    }

    /// Literal of this variable with the given sign.
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        Lit::new(self.0, positive)
    }
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0 + 1)
    }
}

/// A literal: a variable or its negation, encoded as `2·var + sign` where
/// `sign = 1` means negated. This is the MiniSat packing; it lets watch
/// lists index directly by literal code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of variable `var`.
    #[inline]
    pub fn pos(var: u32) -> Lit {
        Lit(var << 1)
    }

    /// Negative literal of variable `var`.
    #[inline]
    pub fn neg(var: u32) -> Lit {
        Lit((var << 1) | 1)
    }

    /// Literal of `var` with explicit sign (`true` = positive).
    #[inline]
    pub fn new(var: u32, positive: bool) -> Lit {
        Lit((var << 1) | u32::from(!positive))
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is a positive (unnegated) literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Packed code `2·var + sign`, usable as an array index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its packed [`code`](Lit::code).
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(u32::try_from(code).expect("literal code fits u32"))
    }

    /// Value of this literal when its variable is assigned `value`.
    #[inline]
    pub fn apply(self, value: bool) -> bool {
        value == self.is_positive()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::fmt::Debug for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.var().0)
        } else {
            write!(f, "¬v{}", self.var().0)
        }
    }
}

impl std::fmt::Display for Lit {
    /// DIMACS rendering: 1-based, negative numbers for negated literals.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = i64::from(self.var().0) + 1;
        write!(f, "{}", if self.is_positive() { v } else { -v })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_roundtrip() {
        for var in [0u32, 1, 5, 1000] {
            for positive in [true, false] {
                let l = Lit::new(var, positive);
                assert_eq!(l.var(), Var(var));
                assert_eq!(l.is_positive(), positive);
                assert_eq!(Lit::from_code(l.code()), l);
            }
        }
    }

    #[test]
    fn negation_flips_sign_only() {
        let l = Lit::pos(7);
        assert_eq!(!l, Lit::neg(7));
        assert_eq!(!!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn apply_respects_sign() {
        assert!(Lit::pos(0).apply(true));
        assert!(!Lit::pos(0).apply(false));
        assert!(Lit::neg(0).apply(false));
        assert!(!Lit::neg(0).apply(true));
    }

    #[test]
    fn var_literal_constructors_agree() {
        let v = Var(3);
        assert_eq!(v.positive(), Lit::pos(3));
        assert_eq!(v.negative(), Lit::neg(3));
        assert_eq!(v.lit(true), Lit::pos(3));
        assert_eq!(v.lit(false), Lit::neg(3));
    }

    #[test]
    fn dimacs_display_is_one_based_signed() {
        assert_eq!(Lit::pos(0).to_string(), "1");
        assert_eq!(Lit::neg(0).to_string(), "-1");
        assert_eq!(Lit::neg(41).to_string(), "-42");
        assert_eq!(Var(0).to_string(), "1");
    }
}
