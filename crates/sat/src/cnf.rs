//! Clauses and CNF formulas.

use crate::types::Lit;

/// A disjunction of literals.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates a clause from literals, deduplicating and detecting
    /// tautologies (`x ∨ ¬x`). Returns `None` for tautological clauses —
    /// they are always satisfied and can be dropped.
    pub fn normalized<I: IntoIterator<Item = Lit>>(lits: I) -> Option<Clause> {
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort_unstable();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return None; // x and ¬x both present
            }
        }
        Some(Clause { lits })
    }

    /// Creates a clause without normalization.
    pub fn raw<I: IntoIterator<Item = Lit>>(lits: I) -> Clause {
        Clause {
            lits: lits.into_iter().collect(),
        }
    }

    /// The literals of this clause.
    #[inline]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// `true` if the clause has no literals (i.e. is unsatisfiable).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Evaluates the clause under a complete assignment.
    pub fn eval(&self, model: &[bool]) -> bool {
        self.lits.iter().any(|l| l.apply(model[l.var().index()]))
    }
}

impl std::fmt::Debug for Clause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(&self.lits).finish()
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Clause {
        Clause::raw(iter)
    }
}

/// A formula in conjunctive normal form.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CnfFormula {
    num_vars: u32,
    clauses: Vec<Clause>,
}

impl CnfFormula {
    /// Creates an empty formula over `num_vars` variables.
    pub fn new(num_vars: u32) -> CnfFormula {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> u32 {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Ensures the variable universe covers `0..n`.
    pub fn ensure_vars(&mut self, n: u32) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Adds a clause (normalized; tautologies are silently dropped).
    ///
    /// # Panics
    ///
    /// Panics if a literal mentions an undeclared variable.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        if let Some(c) = Clause::normalized(lits) {
            for l in c.lits() {
                assert!(l.var().0 < self.num_vars, "literal {l:?} out of range");
            }
            self.clauses.push(c);
        }
    }

    /// The clauses of this formula.
    #[inline]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    #[inline]
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// `true` if the formula has no clauses (trivially satisfiable).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Evaluates the formula under a complete assignment.
    pub fn eval(&self, model: &[bool]) -> bool {
        self.clauses.iter().all(|c| c.eval(model))
    }
}

impl Extend<Clause> for CnfFormula {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        for c in iter {
            self.add_clause(c.lits().iter().copied());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Lit;

    #[test]
    fn normalized_dedups_and_sorts() {
        let c = Clause::normalized([Lit::pos(2), Lit::pos(0), Lit::pos(2)]).unwrap();
        assert_eq!(c.lits(), &[Lit::pos(0), Lit::pos(2)]);
    }

    #[test]
    fn normalized_detects_tautology() {
        assert!(Clause::normalized([Lit::pos(1), Lit::neg(1)]).is_none());
    }

    #[test]
    fn empty_clause_is_falsum() {
        let c = Clause::normalized(std::iter::empty()).unwrap();
        assert!(c.is_empty());
        assert!(!c.eval(&[]));
    }

    #[test]
    fn clause_eval() {
        let c = Clause::raw([Lit::neg(0), Lit::pos(1)]);
        assert!(c.eval(&[false, false]));
        assert!(c.eval(&[true, true]));
        assert!(!c.eval(&[true, false]));
    }

    #[test]
    fn formula_eval_is_conjunction() {
        let mut f = CnfFormula::new(2);
        f.add_clause([Lit::pos(0)]);
        f.add_clause([Lit::neg(1)]);
        assert!(f.eval(&[true, false]));
        assert!(!f.eval(&[true, true]));
        assert!(!f.eval(&[false, false]));
    }

    #[test]
    fn tautologies_are_dropped_on_add() {
        let mut f = CnfFormula::new(1);
        f.add_clause([Lit::pos(0), Lit::neg(0)]);
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_panics() {
        let mut f = CnfFormula::new(1);
        f.add_clause([Lit::pos(5)]);
    }

    #[test]
    fn new_var_extends_universe() {
        let mut f = CnfFormula::new(0);
        assert_eq!(f.new_var(), 0);
        assert_eq!(f.new_var(), 1);
        assert_eq!(f.num_vars(), 2);
        f.ensure_vars(10);
        assert_eq!(f.num_vars(), 10);
        f.ensure_vars(5);
        assert_eq!(f.num_vars(), 10);
    }
}
