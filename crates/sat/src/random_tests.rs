//! Randomized cross-checks of the CDCL solver against brute force.

use crate::cnf::CnfFormula;
use crate::solver::{SolveResult, Solver};
use crate::types::Lit;
use proptest::prelude::*;

/// Brute-force satisfiability over `n ≤ 16` variables.
fn brute_force_sat(f: &CnfFormula) -> bool {
    let n = f.num_vars();
    assert!(n <= 16);
    (0u32..1 << n).any(|bits| {
        let model: Vec<bool> = (0..n).map(|v| (bits >> v) & 1 == 1).collect();
        f.eval(&model)
    })
}

fn arb_formula(max_vars: u32, max_clauses: usize) -> impl Strategy<Value = CnfFormula> {
    (1..=max_vars).prop_flat_map(move |nvars| {
        let clause = proptest::collection::vec((0..nvars, any::<bool>()), 1..=4);
        proptest::collection::vec(clause, 0..=max_clauses).prop_map(move |clauses| {
            let mut f = CnfFormula::new(nvars);
            for c in clauses {
                f.add_clause(c.into_iter().map(|(v, s)| Lit::new(v, s)));
            }
            f
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cdcl_agrees_with_brute_force(f in arb_formula(8, 40)) {
        let mut solver = Solver::from_formula(&f);
        match solver.solve() {
            SolveResult::Sat(model) => {
                prop_assert!(f.eval(&model), "reported model does not satisfy formula");
            }
            SolveResult::Unsat => {
                prop_assert!(!brute_force_sat(&f), "solver claims unsat but formula is sat");
            }
        }
    }

    #[test]
    fn cdcl_handles_denser_instances(f in arb_formula(12, 80)) {
        let mut solver = Solver::from_formula(&f);
        match solver.solve() {
            SolveResult::Sat(model) => prop_assert!(f.eval(&model)),
            SolveResult::Unsat => prop_assert!(!brute_force_sat(&f)),
        }
    }

    #[test]
    fn assumptions_equal_added_units(f in arb_formula(7, 30), a0 in any::<bool>(), a1 in any::<bool>()) {
        // Solving under assumptions must agree with solving the formula
        // with those units added. Only assume variables that exist.
        let assumptions: Vec<Lit> = [(0u32, a0), (1u32, a1)]
            .into_iter()
            .filter(|&(v, _)| v < f.num_vars())
            .map(|(v, s)| Lit::new(v, s))
            .collect();
        let mut incremental = Solver::from_formula(&f);
        let under_assumptions = incremental.solve_assuming(&assumptions);
        let mut hard = f.clone();
        for &l in &assumptions {
            hard.add_clause([l]);
        }
        let mut direct = Solver::from_formula(&hard);
        prop_assert_eq!(under_assumptions.is_sat(), direct.solve().is_sat());
        if let SolveResult::Sat(m) = under_assumptions {
            prop_assert!(hard.eval(&m), "assumption model violates assumed units");
        }
        // The incremental solver stays consistent for a plain solve.
        let mut brute_ok = false;
        if let SolveResult::Sat(m) = incremental.solve() {
            prop_assert!(f.eval(&m));
            brute_ok = true;
        }
        prop_assert_eq!(brute_ok, brute_force_sat(&f));
    }

    #[test]
    fn solver_is_deterministic(f in arb_formula(8, 40)) {
        let mut s1 = Solver::from_formula(&f);
        let mut s2 = Solver::from_formula(&f);
        prop_assert_eq!(s1.solve(), s2.solve());
    }
}

#[test]
fn random_3sat_near_phase_transition() {
    // 3-SAT at clause/variable ratio ≈ 4.26 (hardest region); cross-check a
    // fixed set of seeds against brute force.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let nvars = 14u32;
        let nclauses = 60;
        let mut f = CnfFormula::new(nvars);
        for _ in 0..nclauses {
            let mut vars = Vec::new();
            while vars.len() < 3 {
                let v = rng.gen_range(0..nvars);
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            f.add_clause(vars.iter().map(|&v| Lit::new(v, rng.gen())));
        }
        let mut solver = Solver::from_formula(&f);
        let result = solver.solve();
        let expected = brute_force_sat(&f);
        assert_eq!(result.is_sat(), expected, "seed {seed}");
        if let SolveResult::Sat(m) = result {
            assert!(f.eval(&m), "seed {seed}: bad model");
        }
    }
}
