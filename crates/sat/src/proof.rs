//! Clausal proof logging and checking (DRUP-style).
//!
//! When proof logging is enabled, the solver records every learnt clause;
//! if it concludes global unsatisfiability it ends the log with the empty
//! clause. Each step of such a log is *RUP* (reverse unit propagation):
//! adding the negation of the step's literals to everything derived so far
//! and unit-propagating yields a conflict. [`check_rup`] verifies this with
//! an independent, deliberately simple propagator — no trust in the CDCL
//! implementation required.
//!
//! For the synthesis use case this turns the iterative-deepening UNSAT
//! answers into **minimality certificates**: a checked refutation of
//! "depth d is realizable" for every d below the reported minimum.

use crate::cnf::CnfFormula;
use crate::types::Lit;

/// A clausal proof: learnt clauses in derivation order; a terminating
/// empty clause certifies unsatisfiability.
pub type Proof = Vec<Vec<Lit>>;

/// Outcome of [`check_rup`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofCheck {
    /// Every step is RUP and the log ends with the empty clause: the
    /// formula is certifiably unsatisfiable.
    Refutation,
    /// Every step is RUP but no empty clause was derived (the proof is
    /// sound but proves nothing final).
    ValidButIncomplete,
    /// Step `index` is not RUP — the proof is invalid.
    Invalid {
        /// 0-based index of the offending step.
        index: usize,
    },
}

/// Checks a clausal proof against `formula` by reverse unit propagation.
///
/// The checker is intentionally independent of the solver: a naive
/// counter-free propagator over the growing clause list.
pub fn check_rup(formula: &CnfFormula, proof: &[Vec<Lit>]) -> ProofCheck {
    let nvars = formula.num_vars() as usize;
    let mut clauses: Vec<Vec<Lit>> = formula
        .clauses()
        .iter()
        .map(|c| c.lits().to_vec())
        .collect();
    let mut complete = false;
    for (index, step) in proof.iter().enumerate() {
        if !is_rup(&clauses, nvars, step) {
            return ProofCheck::Invalid { index };
        }
        if step.is_empty() {
            complete = true;
        }
        clauses.push(step.clone());
    }
    if complete {
        ProofCheck::Refutation
    } else {
        ProofCheck::ValidButIncomplete
    }
}

/// `true` if asserting the negation of `clause` and unit-propagating over
/// `clauses` produces a conflict.
fn is_rup(clauses: &[Vec<Lit>], nvars: usize, clause: &[Lit]) -> bool {
    let mut assign: Vec<Option<bool>> = vec![None; nvars];
    // Assert the negation of every literal of the candidate clause.
    for &l in clause {
        let v = l.var().index();
        match assign[v] {
            Some(val) if val == l.is_positive() => return true, // ¬C inconsistent
            _ => assign[v] = Some(!l.is_positive()),
        }
    }
    // Naive unit propagation to fixpoint.
    loop {
        let mut changed = false;
        for c in clauses {
            let mut unassigned: Option<Lit> = None;
            let mut satisfied = false;
            let mut unit = true;
            for &l in c {
                match assign[l.var().index()] {
                    Some(val) if l.apply(val) => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        if unassigned.is_some() {
                            unit = false;
                            break;
                        }
                        unassigned = Some(l);
                    }
                }
            }
            if satisfied || !unit {
                continue;
            }
            match unassigned {
                None => return true, // conflict: clause fully falsified
                Some(l) => {
                    assign[l.var().index()] = Some(l.is_positive());
                    changed = true;
                }
            }
        }
        if !changed {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};

    fn lits(xs: &[i32]) -> Vec<Lit> {
        xs.iter()
            .map(|&x| Lit::new(x.unsigned_abs() - 1, x > 0))
            .collect()
    }

    fn formula(nvars: u32, clauses: &[&[i32]]) -> CnfFormula {
        let mut f = CnfFormula::new(nvars);
        for c in clauses {
            f.add_clause(lits(c));
        }
        f
    }

    #[test]
    fn hand_written_refutation_checks() {
        // (x1 ∨ x2)(¬x1 ∨ x2)(x1 ∨ ¬x2)(¬x1 ∨ ¬x2) — classic unsat square.
        let f = formula(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        // RUP steps: (x2) then ().
        let proof = vec![lits(&[2]), vec![]];
        assert_eq!(check_rup(&f, &proof), ProofCheck::Refutation);
    }

    #[test]
    fn bogus_step_is_rejected() {
        let f = formula(2, &[&[1, 2]]);
        let proof = vec![lits(&[-1])]; // (¬x1) is not implied
        assert_eq!(check_rup(&f, &proof), ProofCheck::Invalid { index: 0 });
    }

    #[test]
    fn valid_but_incomplete_proof() {
        let f = formula(2, &[&[1], &[-1, 2]]);
        let proof = vec![lits(&[2])]; // RUP, but no empty clause
        assert_eq!(check_rup(&f, &proof), ProofCheck::ValidButIncomplete);
    }

    #[test]
    fn dropping_a_step_invalidates_a_solver_proof() {
        // Remove an essential intermediate step from a genuine refutation:
        // every later step that leaned on it must stop being RUP.
        let f = formula(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        let proof = vec![lits(&[2]), vec![]];
        assert_eq!(check_rup(&f, &proof), ProofCheck::Refutation);
        let truncated = vec![proof[1].clone()]; // empty clause alone
        assert_eq!(check_rup(&f, &truncated), ProofCheck::Invalid { index: 0 });
    }

    #[test]
    fn flipping_a_literal_invalidates_a_step() {
        // x1 ∧ (x1 → x2): the step (x2) is RUP, its polarity flip (¬x2)
        // asserts x2 = ⊤ under which both clauses propagate no conflict.
        let f = formula(2, &[&[1], &[-1, 2]]);
        assert_eq!(check_rup(&f, &[lits(&[2])]), ProofCheck::ValidButIncomplete);
        assert_eq!(
            check_rup(&f, &[lits(&[-2])]),
            ProofCheck::Invalid { index: 0 }
        );
    }

    #[test]
    fn premature_empty_clause_is_rejected_even_on_unsat_formulas() {
        // The formula IS unsatisfiable, but the empty clause is not RUP
        // until (x2) has been derived — a checker that trusts the verdict
        // instead of the derivation would wave this through.
        let f = formula(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        let premature = vec![vec![], lits(&[2])];
        assert_eq!(check_rup(&f, &premature), ProofCheck::Invalid { index: 0 });
    }

    #[test]
    fn solver_proofs_check_on_pigeonhole() {
        // PHP(4→3): unsatisfiable; the solver's logged proof must check.
        let v = |i: i32, j: i32| 3 * i + j + 1;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..4 {
            clauses.push((0..3).map(|j| v(i, j)).collect());
        }
        for j in 0..3 {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    clauses.push(vec![-v(a, j), -v(b, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let f = formula(12, &refs);
        let mut s = Solver::from_formula(&f);
        s.enable_proof_logging();
        assert_eq!(s.solve(), SolveResult::Unsat);
        let proof = s.take_proof().expect("logging was enabled");
        assert_eq!(proof.last(), Some(&Vec::new()), "ends with empty clause");
        assert_eq!(check_rup(&f, &proof), ProofCheck::Refutation);
    }

    #[test]
    fn solver_proofs_check_on_random_unsat_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut checked = 0;
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let nvars = 8u32;
            let mut f = CnfFormula::new(nvars);
            for _ in 0..45 {
                let mut vars = Vec::new();
                while vars.len() < 3 {
                    let v = rng.gen_range(0..nvars);
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
                f.add_clause(vars.iter().map(|&v| Lit::new(v, rng.gen())));
            }
            let mut s = Solver::from_formula(&f);
            s.enable_proof_logging();
            if s.solve() == SolveResult::Unsat {
                let proof = s.take_proof().unwrap();
                assert_eq!(check_rup(&f, &proof), ProofCheck::Refutation, "seed {seed}");
                checked += 1;
            }
        }
        assert!(checked > 0, "no unsat instance in the sample");
    }

    #[test]
    fn sat_runs_leave_incomplete_proofs() {
        let f = formula(2, &[&[1, 2]]);
        let mut s = Solver::from_formula(&f);
        s.enable_proof_logging();
        assert!(s.solve().is_sat());
        let proof = s.take_proof().unwrap();
        assert_ne!(check_rup(&f, &proof), ProofCheck::Refutation);
    }
}
