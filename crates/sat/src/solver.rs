//! A CDCL SAT solver in the MiniSat lineage.
//!
//! Features: two-watched-literal propagation, VSIDS (exponentially decayed
//! variable activities with an indexed max-heap), first-UIP conflict
//! analysis with non-chronological backjumping, phase saving, Luby-sequence
//! restarts and activity-based learnt-clause database reduction.

use crate::cnf::CnfFormula;
use crate::types::{Lit, Var};

/// Outcome of [`Solver::solve`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable, with a complete model indexed by variable.
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
}

impl SolveResult {
    /// `true` if the result is [`SolveResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat => None,
        }
    }
}

/// Search statistics, for the benchmark harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Total conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently kept.
    pub learnts: usize,
}

const CLAUSE_DELETED: u8 = 1;
const CLAUSE_LEARNT: u8 = 2;

struct ClauseData {
    lits: Vec<Lit>,
    flags: u8,
    activity: f64,
}

impl ClauseData {
    fn is_deleted(&self) -> bool {
        self.flags & CLAUSE_DELETED != 0
    }
    fn is_learnt(&self) -> bool {
        self.flags & CLAUSE_LEARNT != 0
    }
}

#[derive(Clone, Copy)]
struct Watcher {
    cref: u32,
    blocker: Lit,
}

/// CDCL SAT solver. Build with [`Solver::new`]/[`Solver::from_formula`],
/// add clauses, then call [`Solver::solve`].
pub struct Solver {
    // Clause store.
    clauses: Vec<ClauseData>,
    /// `watches[l.code()]`: clauses in which `¬l` is watched — inspected
    /// when `l` becomes true.
    watches: Vec<Vec<Watcher>>,
    // Assignment state.
    assign: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    // Heuristics.
    activity: Vec<f64>,
    var_inc: f64,
    heap: IndexedHeap,
    phase: Vec<bool>,
    cla_inc: f64,
    // Conflict analysis scratch.
    seen: Vec<bool>,
    // Status.
    ok: bool,
    stats: SolverStats,
    num_learnts: usize,
    max_learnts: usize,
    /// Optional conflict budget; `solve` returns `None` via `solve_limited`
    /// when exhausted.
    conflict_budget: Option<u64>,
    /// External abort probe (deadline / cancellation), polled roughly every
    /// [`BUDGET_POLL_STRIDE`] propagated literals. Returning `true` makes the
    /// in-flight `solve_*_limited` call stop and return `None`.
    budget_callback: Option<Box<dyn FnMut() -> bool + Send>>,
    /// Latched when `budget_callback` fires; cleared at the start of the
    /// next solve call.
    externally_aborted: bool,
    /// Clausal proof log (learnt clauses in order), when enabled.
    proof: Option<Vec<Vec<Lit>>>,
}

/// How many propagated literals pass between polls of the budget callback.
/// Coarse enough to keep the probe off the propagation fast path, fine
/// enough that a deadline is noticed within a fraction of a millisecond.
const BUDGET_POLL_STRIDE: u64 = 4096;

impl std::fmt::Debug for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("vars", &self.assign.len())
            .field("clauses", &self.clauses.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Solver {
    /// Creates a solver over `num_vars` variables with no clauses.
    pub fn new(num_vars: u32) -> Solver {
        let n = num_vars as usize;
        Solver {
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * n],
            assign: vec![None; n],
            level: vec![0; n],
            reason: vec![None; n],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; n],
            var_inc: 1.0,
            heap: IndexedHeap::full(n),
            phase: vec![false; n],
            cla_inc: 1.0,
            seen: vec![false; n],
            ok: true,
            stats: SolverStats::default(),
            num_learnts: 0,
            max_learnts: 4000,
            conflict_budget: None,
            budget_callback: None,
            externally_aborted: false,
            proof: None,
        }
    }

    /// Creates a solver pre-loaded with every clause of `formula`.
    pub fn from_formula(formula: &CnfFormula) -> Solver {
        let mut s = Solver::new(formula.num_vars());
        for c in formula.clauses() {
            s.add_clause(c.lits().iter().copied());
        }
        s
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.assign.len() as u32
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnts = self.num_learnts;
        s
    }

    /// Limits the number of conflicts `solve_limited` may spend.
    pub fn set_conflict_budget(&mut self, budget: u64) {
        self.conflict_budget = Some(budget);
    }

    /// Installs (or removes) an external abort probe. The probe is polled
    /// from inside unit propagation roughly every few thousand propagated
    /// literals; the first time it returns `true`, the in-flight
    /// [`solve_limited`](Solver::solve_limited) /
    /// [`solve_assuming_limited`](Solver::solve_assuming_limited) call
    /// backtracks to level 0 and returns `None`, exactly like an exhausted
    /// conflict budget. The solver remains usable afterwards.
    ///
    /// Callers using the panicking [`solve`](Solver::solve) /
    /// [`solve_assuming`](Solver::solve_assuming) wrappers must not install
    /// a probe: an abort would be indistinguishable from budget exhaustion
    /// and trip their `expect`.
    pub fn set_budget_callback(&mut self, callback: Option<Box<dyn FnMut() -> bool + Send>>) {
        self.budget_callback = callback;
        self.externally_aborted = false;
    }

    /// `true` if the most recent solve call stopped because the budget
    /// callback fired (as opposed to exhausting the conflict budget).
    pub fn was_interrupted(&self) -> bool {
        self.externally_aborted
    }

    /// Starts recording a clausal proof (see [`crate::proof`]): every learnt
    /// clause, and a terminating empty clause when global unsatisfiability
    /// is concluded. Retrieve it with [`take_proof`](Solver::take_proof).
    pub fn enable_proof_logging(&mut self) {
        self.proof = Some(Vec::new());
    }

    /// Takes the recorded proof, leaving logging enabled with a fresh log.
    /// `None` if logging was never enabled.
    pub fn take_proof(&mut self) -> Option<Vec<Vec<Lit>>> {
        self.proof.replace(Vec::new())
    }

    fn log_proof_step(&mut self, clause: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.push(clause.to_vec());
        }
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state (adding an empty clause, or a unit contradicting
    /// level-0 knowledge).
    ///
    /// # Panics
    ///
    /// Panics if called after search has started (the trail is not at
    /// decision level 0), or if a literal is out of range.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        assert!(self.trail_lim.is_empty(), "add_clause during search");
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            assert!(l.var().index() < self.assign.len(), "literal out of range");
        }
        lits.sort_unstable();
        lits.dedup();
        // Tautology / level-0 simplification.
        let mut simplified = Vec::with_capacity(lits.len());
        for (i, &l) in lits.iter().enumerate() {
            if i + 1 < lits.len() && lits[i + 1] == !l {
                return true; // tautology: x, ¬x adjacent after sort
            }
            match self.value(l) {
                Some(true) => return true, // already satisfied at level 0
                Some(false) => continue,   // false at level 0: drop literal
                None => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = u32::try_from(self.clauses.len()).expect("clause arena overflow");
        let w0 = Watcher {
            cref,
            blocker: lits[1],
        };
        let w1 = Watcher {
            cref,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).code()].push(w0);
        self.watches[(!lits[1]).code()].push(w1);
        self.clauses.push(ClauseData {
            lits,
            flags: if learnt { CLAUSE_LEARNT } else { 0 },
            activity: 0.0,
        });
        if learnt {
            self.num_learnts += 1;
        }
        cref
    }

    #[inline]
    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var().index()].map(|v| l.apply(v))
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.value(l), None);
        let v = l.var().index();
        self.assign[v] = Some(l.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation. Returns the conflicting clause reference, if any.
    ///
    /// May also stop early with `None` when the budget callback fires; the
    /// queue head is left untouched in that case, so a later call resumes
    /// exactly where this one stopped.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            if self.budget_callback.is_some()
                && self.stats.propagations.is_multiple_of(BUDGET_POLL_STRIDE)
                && self.poll_budget_callback()
            {
                self.externally_aborted = true;
                return None;
            }
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                // Fast path: blocker already satisfied.
                if self.value(w.blocker) == Some(true) {
                    i += 1;
                    continue;
                }
                let cref = w.cref as usize;
                if self.clauses[cref].is_deleted() {
                    ws.swap_remove(i);
                    continue;
                }
                // Make sure the false literal (¬p) is at position 1.
                let false_lit = !p;
                {
                    let lits = &mut self.clauses[cref].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.value(first) == Some(true) {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref].lits.len();
                for k in 2..len {
                    let cand = self.clauses[cref].lits[k];
                    if self.value(cand) != Some(false) {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[(!cand).code()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                if self.value(first) == Some(false) {
                    conflict = Some(w.cref);
                    self.qhead = self.trail.len();
                    break;
                }
                self.enqueue(first, Some(w.cref));
                i += 1;
            }
            // Put back the untouched suffix plus kept watchers.
            let list = &mut self.watches[p.code()];
            // `ws` currently holds kept watchers in [0, i) plus unprocessed
            // ones (on conflict) in [i, len).
            ws.append(list);
            *list = ws;
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    fn poll_budget_callback(&mut self) -> bool {
        self.budget_callback.as_mut().is_some_and(|cb| cb())
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn decay_var_activity(&mut self) {
        self.var_inc /= 0.95;
    }

    fn bump_clause(&mut self, cref: usize) {
        self.clauses[cref].activity += self.cla_inc;
        if self.clauses[cref].activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_clause_activity(&mut self) {
        self.cla_inc /= 0.999;
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // placeholder slot 0
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut cref = confl as usize;
        let mut idx = self.trail.len();
        let mut to_clear: Vec<usize> = Vec::new();
        loop {
            if self.clauses[cref].is_learnt() {
                self.bump_clause(cref);
            }
            let start = usize::from(p.is_some()); // skip lits[0] for reasons
            for k in start..self.clauses[cref].lits.len() {
                let q = self.clauses[cref].lits[k];
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Pick the next seen literal from the trail.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let pl = self.trail[idx];
            p = Some(pl);
            counter -= 1;
            if counter == 0 {
                break;
            }
            cref = self.reason[pl.var().index()].expect("non-decision on path") as usize;
        }
        learnt[0] = !p.expect("UIP literal");
        // Clause minimization: drop literals implied by the rest.
        self.minimize(&mut learnt);
        // Compute backjump level and move its literal to slot 1.
        let blevel = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        for v in to_clear {
            self.seen[v] = false;
        }
        (learnt, blevel)
    }

    /// Local clause minimization: removes a literal whose reason clause's
    /// other literals are all already in the learnt clause (self-subsuming
    /// resolution, non-recursive variant).
    fn minimize(&mut self, learnt: &mut Vec<Lit>) {
        let mut i = 1;
        while i < learnt.len() {
            let v = learnt[i].var().index();
            let redundant = match self.reason[v] {
                None => false,
                Some(cref) => self.clauses[cref as usize].lits[1..]
                    .iter()
                    .all(|q| self.seen[q.var().index()] || self.level[q.var().index()] == 0),
            };
            if redundant {
                learnt.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for k in (lim..self.trail.len()).rev() {
            let l = self.trail[k];
            let v = l.var().index();
            self.phase[v] = l.is_positive();
            self.assign[v] = None;
            self.reason[v] = None;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<usize> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assign[v].is_none() {
                return Some(v);
            }
        }
        None
    }

    /// Deletes the lower-activity half of the learnt clauses (except those
    /// locked as reasons).
    fn reduce_db(&mut self) {
        let mut learnt_refs: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| {
                let c = &self.clauses[i];
                c.is_learnt() && !c.is_deleted() && c.lits.len() > 2 && !self.is_locked(i)
            })
            .collect();
        learnt_refs.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let to_delete = learnt_refs.len() / 2;
        for &i in &learnt_refs[..to_delete] {
            self.clauses[i].flags |= CLAUSE_DELETED;
            self.clauses[i].lits.clear();
            self.clauses[i].lits.shrink_to_fit();
            self.num_learnts -= 1;
        }
        // Deleted clauses are purged from watch lists lazily in propagate.
    }

    fn is_locked(&self, cref: usize) -> bool {
        let first = self.clauses[cref].lits[0];
        self.assign[first.var().index()].is_some()
            && self.reason[first.var().index()] == Some(cref as u32)
    }

    /// Runs the CDCL search to completion.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_limited()
            .expect("no conflict budget set, solve cannot be indeterminate")
    }

    /// Incremental solving: decides the formula **under the given
    /// assumptions** (extra unit constraints for this call only). The
    /// solver — including everything it has learnt — remains usable
    /// afterwards, so a sequence of related queries shares work, MiniSat
    /// style.
    ///
    /// `Unsat` means *unsatisfiable under the assumptions*; the formula
    /// itself may still be satisfiable.
    ///
    /// # Panics
    ///
    /// Panics if the conflict budget is exhausted mid-call (use
    /// [`solve_assuming_limited`](Solver::solve_assuming_limited)) or an
    /// assumption literal is out of range.
    pub fn solve_assuming(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_assuming_limited(assumptions)
            .expect("no conflict budget set, solve cannot be indeterminate")
    }

    /// Like [`solve`](Solver::solve) but returns `None` when the configured
    /// conflict budget (see [`set_conflict_budget`](Solver::set_conflict_budget))
    /// is exhausted.
    pub fn solve_limited(&mut self) -> Option<SolveResult> {
        self.solve_assuming_limited(&[])
    }

    /// Budgeted incremental solving; see [`solve_assuming`](Solver::solve_assuming).
    pub fn solve_assuming_limited(&mut self, assumptions: &[Lit]) -> Option<SolveResult> {
        if !self.ok {
            self.log_proof_step(&[]);
            return Some(SolveResult::Unsat);
        }
        for l in assumptions {
            assert!(
                l.var().index() < self.assign.len(),
                "assumption out of range"
            );
        }
        self.externally_aborted = false;
        let mut luby_index = 0u64;
        let mut restart_limit = 100 * luby(luby_index);
        let mut conflicts_since_restart = 0u64;
        loop {
            let propagated = self.propagate();
            if self.externally_aborted {
                // The external probe fired mid-propagation. Unwind to the
                // root; the preserved queue head means a later call resumes
                // propagation without missing implications.
                self.cancel_until(0);
                return None;
            }
            if let Some(confl) = propagated {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if let Some(budget) = self.conflict_budget {
                    if self.stats.conflicts > budget {
                        self.cancel_until(0);
                        return None;
                    }
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.log_proof_step(&[]);
                    return Some(SolveResult::Unsat);
                }
                let (learnt, blevel) = self.analyze(confl);
                self.log_proof_step(&learnt);
                self.cancel_until(blevel);
                if learnt.len() == 1 {
                    // A literal forced at the root — but only enqueue at
                    // level 0; after an assumption-scoped backjump the
                    // current level may be deeper.
                    if self.decision_level() == 0 {
                        self.enqueue(learnt[0], None);
                    } else {
                        self.cancel_until(0);
                        self.enqueue(learnt[0], None);
                    }
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach_clause(learnt, true);
                    self.bump_clause(cref as usize);
                    self.enqueue(asserting, Some(cref));
                }
                self.decay_var_activity();
                self.decay_clause_activity();
            } else {
                if conflicts_since_restart >= restart_limit {
                    self.stats.restarts += 1;
                    luby_index += 1;
                    restart_limit = 100 * luby(luby_index);
                    conflicts_since_restart = 0;
                    self.cancel_until(0);
                    continue;
                }
                if self.num_learnts > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts += self.max_learnts / 2;
                }
                // Re-establish pending assumptions as pseudo-decisions.
                if (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.value(p) {
                        Some(true) => {
                            // Already implied: open an empty level so the
                            // remaining assumptions line up with levels.
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            // Conflicts with level-0 knowledge or earlier
                            // assumptions.
                            self.cancel_until(0);
                            return Some(SolveResult::Unsat);
                        }
                        None => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(p, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        // Complete assignment: extract model.
                        let model = self
                            .assign
                            .iter()
                            .enumerate()
                            .map(|(v, a)| a.unwrap_or(self.phase[v]))
                            .collect();
                        self.cancel_until(0);
                        return Some(SolveResult::Sat(model));
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(v as u32, self.phase[v]);
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }

    /// The current level-0 value of a variable, if forced.
    pub fn fixed_value(&self, v: Var) -> Option<bool> {
        let idx = v.index();
        match self.assign[idx] {
            Some(val) if self.level[idx] == 0 => Some(val),
            _ => None,
        }
    }
}

/// Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index i and its position.
    let mut k = 1u32;
    loop {
        let seq_len = (1u64 << k) - 1;
        if i + 1 == seq_len {
            return 1 << (k - 1);
        }
        if i + 1 < seq_len {
            // Recurse into the subsequence: strip the prefix of length
            // 2^(k−1) − 1 and scan again.
            k -= 1;
            i -= (1u64 << k) - 1;
            return luby(i);
        }
        k += 1;
    }
}

/// Binary max-heap over variable indices ordered by activity, with
/// positions for O(log n) updates.
struct IndexedHeap {
    heap: Vec<usize>,
    pos: Vec<Option<usize>>,
}

impl IndexedHeap {
    /// Heap initially containing all of `0..n` (equal activities).
    fn full(n: usize) -> IndexedHeap {
        IndexedHeap {
            heap: (0..n).collect(),
            pos: (0..n).map(Some).collect(),
        }
    }

    fn insert(&mut self, v: usize, act: &[f64]) {
        if self.pos[v].is_some() {
            return;
        }
        self.pos[v] = Some(self.heap.len());
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn update(&mut self, v: usize, act: &[f64]) {
        if let Some(i) = self.pos[v] {
            self.sift_up(i, act);
        }
    }

    fn pop(&mut self, act: &[f64]) -> Option<usize> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top] = None;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last] = Some(0);
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i]] <= act[self.heap[parent]] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l]] > act[self.heap[best]] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r]] > act[self.heap[best]] {
                best = r;
            }
            if best == i {
                return;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i]] = Some(i);
        self.pos[self.heap[j]] = Some(j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(xs: &[i32]) -> Vec<Lit> {
        xs.iter()
            .map(|&x| Lit::new(x.unsigned_abs() - 1, x > 0))
            .collect()
    }

    fn solver_with(nvars: u32, clauses: &[&[i32]]) -> Solver {
        let mut s = Solver::new(nvars);
        for c in clauses {
            s.add_clause(lits(c));
        }
        s
    }

    #[test]
    fn trivial_sat() {
        let mut s = solver_with(1, &[&[1]]);
        let r = s.solve();
        assert_eq!(r, SolveResult::Sat(vec![true]));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new(3);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new(1);
        assert!(!s.add_clause(std::iter::empty()));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn implication_chain_propagates() {
        // 1, 1→2, 2→3, 3→4
        let mut s = solver_with(4, &[&[1], &[-1, 2], &[-2, 3], &[-3, 4]]);
        match s.solve() {
            SolveResult::Sat(m) => assert!(m.iter().all(|&b| b)),
            SolveResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn pigeonhole_two_in_one_is_unsat() {
        // Two pigeons, one hole: p1h1, p2h1, ¬p1h1∨¬p2h1.
        let mut s = solver_with(2, &[&[1], &[2], &[-1, -2]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_pigeons_2_holes() {
        // Variables p_{i,j} = pigeon i in hole j, i∈{0,1,2}, j∈{0,1}.
        // var(i,j) = 2i + j + 1 (1-based DIMACS style for the helper).
        let v = |i: i32, j: i32| 2 * i + j + 1;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![v(i, 0), v(i, 1)]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    clauses.push(vec![-v(a, j), -v(b, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(6, &refs);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let clauses: &[&[i32]] = &[&[1, 2, -3], &[-1, 3], &[2, 3], &[-2, -3, 4], &[1, -4]];
        let mut s = solver_with(4, clauses);
        let SolveResult::Sat(m) = s.solve() else {
            panic!("should be sat")
        };
        for c in clauses {
            assert!(
                c.iter()
                    .any(|&x| m[(x.unsigned_abs() - 1) as usize] == (x > 0)),
                "clause {c:?} falsified"
            );
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses_ignored() {
        let mut s = Solver::new(2);
        assert!(s.add_clause(lits(&[1, 1, 2])));
        assert!(s.add_clause(lits(&[1, -1])));
        assert!(s.solve().is_sat());
    }

    #[test]
    fn fixed_value_after_unit() {
        let s = solver_with(2, &[&[-1]]);
        assert_eq!(s.fixed_value(Var(0)), Some(false));
        assert_eq!(s.fixed_value(Var(1)), None);
    }

    #[test]
    fn conflict_budget_returns_none_on_hard_instance() {
        // A PHP-style instance large enough to need > 1 conflict.
        let v = |i: i32, j: i32| 4 * i + j + 1;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..5 {
            clauses.push((0..4).map(|j| v(i, j)).collect());
        }
        for j in 0..4 {
            for a in 0..5 {
                for b in (a + 1)..5 {
                    clauses.push(vec![-v(a, j), -v(b, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(20, &refs);
        s.set_conflict_budget(1);
        assert_eq!(s.solve_limited(), None);
    }

    #[test]
    fn assumptions_restrict_without_committing() {
        // x1 ∨ x2; assuming ¬x1 forces x2, assuming ¬x1 ∧ ¬x2 is unsat,
        // and the solver stays usable afterwards.
        let mut s = solver_with(2, &[&[1, 2]]);
        let SolveResult::Sat(m) = s.solve_assuming(&lits(&[-1])) else {
            panic!("sat under ¬x1");
        };
        assert!(!m[0] && m[1]);
        assert_eq!(s.solve_assuming(&lits(&[-1, -2])), SolveResult::Unsat);
        // Not committed: still globally satisfiable.
        assert!(s.solve().is_sat());
        let SolveResult::Sat(m) = s.solve_assuming(&lits(&[1])) else {
            panic!("sat under x1");
        };
        assert!(m[0]);
    }

    #[test]
    fn assumptions_conflicting_with_level0_are_unsat() {
        let mut s = solver_with(2, &[&[-1]]);
        assert_eq!(s.solve_assuming(&lits(&[1])), SolveResult::Unsat);
        assert!(s.solve().is_sat(), "solver not poisoned");
    }

    #[test]
    fn assumptions_on_implied_literals_are_free() {
        // Unit x1 at level 0; assuming x1 must not break anything.
        let mut s = solver_with(3, &[&[1], &[-1, 2]]);
        let SolveResult::Sat(m) = s.solve_assuming(&lits(&[1, 2])) else {
            panic!("sat");
        };
        assert!(m[0] && m[1]);
    }

    #[test]
    fn incremental_queries_share_learnt_clauses() {
        // A mildly hard instance queried twice: the second call should not
        // redo all conflicts.
        let v = |i: i32, j: i32| 3 * i + j + 1;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..4 {
            clauses.push((0..3).map(|j| v(i, j)).collect());
        }
        for j in 0..3 {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    clauses.push(vec![-v(a, j), -v(b, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(12, &refs);
        assert_eq!(s.solve_assuming(&[]), SolveResult::Unsat);
        let after_first = s.stats().conflicts;
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Global unsat was established; the second call is free.
        assert_eq!(s.stats().conflicts, after_first);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn solve_is_repeatable() {
        let mut s = solver_with(3, &[&[1, 2], &[-1, 3], &[-2, -3]]);
        let r1 = s.solve();
        let r2 = s.solve();
        assert_eq!(r1.is_sat(), r2.is_sat());
    }

    /// PHP(5,4), unsat, no unit clauses — propagation happens only inside
    /// solve, so the budget callback is polled there.
    fn php_5_4() -> Solver {
        let v = |i: i32, j: i32| 4 * i + j + 1;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..5 {
            clauses.push((0..4).map(|j| v(i, j)).collect());
        }
        for j in 0..4 {
            for a in 0..5 {
                for b in (a + 1)..5 {
                    clauses.push(vec![-v(a, j), -v(b, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        solver_with(20, &refs)
    }

    #[test]
    fn budget_callback_aborts_and_solver_stays_usable() {
        let mut s = php_5_4();
        s.set_budget_callback(Some(Box::new(|| true)));
        assert_eq!(s.solve_limited(), None, "probe must abort the search");
        assert!(s.was_interrupted());
        // Removing the probe lets the same solver finish the proof.
        s.set_budget_callback(None);
        assert!(!s.was_interrupted());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn quiet_budget_callback_does_not_change_results() {
        let mut s = php_5_4();
        s.set_budget_callback(Some(Box::new(|| false)));
        assert_eq!(s.solve_limited(), Some(SolveResult::Unsat));
        assert!(!s.was_interrupted());
    }
}
