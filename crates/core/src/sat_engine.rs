//! The row-wise SAT baseline (Section 3 of the paper; the approach of
//! \[9\]/\[22\] that quantified synthesis improves on).
//!
//! The cascade constraints are instantiated **once per truth-table row**:
//! for each of the `2ⁿ` input rows, a separate copy of the `d`-level
//! network is built over row-specific value literals, all sharing the
//! gate-select variables. The instance therefore grows exponentially with
//! the number of lines — exactly the weakness the QBF formulation removes.
//!
//! Two gate-select encodings are provided: one-hot (as in the original
//! exact SAT synthesis \[9\]) and binary (the improvement direction of \[22\]).

use crate::encode::{decode_circuit, select_bits};
use crate::error::SynthesisError;
use crate::options::{SatSelectEncoding, SynthesisOptions};
use crate::session::{ResourceGovernor, SynthesisSession};
use crate::solutions::SolutionSet;
use qsyn_revlogic::{Circuit, Gate, Spec};
use qsyn_sat::{CnfBuilder, Lit, SolveResult, Solver};

/// SAT-baseline depth oracle; see the module docs.
pub struct SatEngine {
    spec: Spec,
    options: SynthesisOptions,
    gates: Vec<Gate>,
    sbits: u32,
    governor: ResourceGovernor,
    /// Size (vars, clauses) of the last generated instance.
    last_instance_size: (u32, usize),
}

impl std::fmt::Debug for SatEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SatEngine")
            .field("lines", &self.spec.lines())
            .field("gates", &self.gates.len())
            .finish_non_exhaustive()
    }
}

/// Which literals select each gate at one level.
enum Selects {
    /// `one_hot[k]` true ⇔ gate `k` chosen.
    OneHot(Vec<Lit>),
    /// Binary-encoded index, LSB first.
    Binary(Vec<Lit>),
}

impl SatEngine {
    /// Prepares an engine for `spec` under `options` with a throwaway
    /// session (see [`new_in`](Self::new_in) for the recycling entry
    /// point).
    pub fn new(spec: &Spec, options: &SynthesisOptions) -> SatEngine {
        SatEngine::new_in(spec, options, &mut SynthesisSession::new())
    }

    /// Prepares an engine inside `session`. The SAT baseline keeps no BDD
    /// state, so the session only contributes its [`ResourceGovernor`]
    /// wiring; the parameter keeps the three engines' construction
    /// uniform.
    pub fn new_in(
        spec: &Spec,
        options: &SynthesisOptions,
        _session: &mut SynthesisSession,
    ) -> SatEngine {
        let gates = options.library.enumerate(spec.lines());
        let sbits = select_bits(gates.len());
        let governor = ResourceGovernor::from_options(options);
        governor.arm();
        SatEngine {
            spec: spec.clone(),
            options: options.clone(),
            gates,
            sbits,
            governor,
            last_instance_size: (0, 0),
        }
    }

    /// Size `(variables, clauses)` of the most recently generated instance
    /// — grows with `2ⁿ`, unlike the QBF engine's.
    pub fn last_instance_size(&self) -> (u32, usize) {
        self.last_instance_size
    }

    /// Select-variable block width per level under the configured encoding.
    fn select_width(&self) -> u32 {
        match self.options.sat_encoding {
            SatSelectEncoding::OneHot => self.gates.len() as u32,
            SatSelectEncoding::Binary => self.sbits,
        }
    }

    /// Builds the row-wise instance for depth `d`.
    pub fn encode(&self, d: u32) -> qsyn_sat::CnfFormula {
        let q = self.gates.len();
        let n = self.spec.lines();
        // Select variables, shared across all rows.
        let select_width = self.select_width();
        let mut b = CnfBuilder::new(d * select_width);
        let mut levels: Vec<Selects> = Vec::with_capacity(d as usize);
        for level in 0..d {
            let base = level * select_width;
            let lits: Vec<Lit> = (base..base + select_width).map(|i| b.input(i)).collect();
            match self.options.sat_encoding {
                SatSelectEncoding::OneHot => {
                    b.assert_at_least_one(&lits);
                    b.assert_at_most_one(&lits);
                    levels.push(Selects::OneHot(lits));
                }
                SatSelectEncoding::Binary => {
                    // Forbid the identity padding slots ≥ q (a minimal-depth
                    // network never uses them, and excluding them keeps the
                    // two encodings equivalent).
                    forbid_padding(&mut b, &lits, q);
                    levels.push(Selects::Binary(lits));
                }
            }
        }
        // One copy of the cascade per truth-table row — the exponential
        // part of this encoding.
        for row in 0..self.spec.num_rows() as u32 {
            let spec_row = self.spec.row(row);
            if spec_row.care == 0 {
                continue; // fully unconstrained row adds nothing
            }
            let mut state: Vec<Lit> = (0..n)
                .map(|l| {
                    if (row >> l) & 1 == 1 {
                        b.constant_true()
                    } else {
                        b.constant_false()
                    }
                })
                .collect();
            for sel in &levels {
                state = self.level_outputs(&mut b, &state, sel);
            }
            for l in 0..n {
                let bit = 1u32 << l;
                if spec_row.care & bit != 0 {
                    let lit = state[l as usize];
                    b.assert_lit(if spec_row.value & bit != 0 { lit } else { !lit });
                }
            }
        }

        b.into_formula()
    }

    /// Decides whether a `d`-gate realization exists.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::BudgetExceeded`] when the conflict budget runs
    /// out; cancellation errors from the governor, which is polled between
    /// conflict chunks *and* inside the solver's propagation loop, so a
    /// long depth is interruptible mid-solve.
    pub fn solve_depth(&mut self, d: u32) -> Result<Option<SolutionSet>, SynthesisError> {
        self.governor.check(d)?;
        let formula = self.encode(d);
        // Debug builds re-check the generated instance against the CNF
        // well-formedness invariants (see `qsyn_audit`).
        #[cfg(debug_assertions)]
        if let Err(e) = qsyn_audit::formula_audit::audit_cnf(&formula) {
            panic!("row-wise SAT instance for depth {d} failed the formula audit: {e}");
        }
        self.last_instance_size = (formula.num_vars(), formula.len());
        let mut solver = Solver::from_formula(&formula);
        match solve_chunked(&mut solver, &self.governor, d)? {
            SolveResult::Unsat => Ok(None),
            SolveResult::Sat(model) => {
                let circuit = self.decode(d, self.select_width(), &model)?;
                debug_assert!(
                    self.spec.is_realized_by(&circuit),
                    "SAT model decodes to a circuit violating the spec"
                );
                Ok(Some(SolutionSet::single(circuit)))
            }
        }
    }

    /// Produces a **checkable refutation** of "a `d`-gate realization
    /// exists": the row-wise instance for depth `d` together with a clausal
    /// proof of its unsatisfiability (verify with
    /// [`qsyn_sat::proof::check_rup`]). Returns `None` when depth `d` is in
    /// fact realizable. Running this for every `d` below a synthesis
    /// result's depth yields a machine-checkable minimality certificate.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::BudgetExceeded`] when the conflict budget runs out.
    pub fn refutation_for_depth(
        &mut self,
        d: u32,
    ) -> Result<Option<(qsyn_sat::CnfFormula, qsyn_sat::proof::Proof)>, SynthesisError> {
        let formula = self.encode(d);
        let mut solver = Solver::from_formula(&formula);
        solver.enable_proof_logging();
        match solve_chunked(&mut solver, &self.governor, d)? {
            SolveResult::Sat(_) => Ok(None),
            SolveResult::Unsat => {
                let proof = solver.take_proof().ok_or(SynthesisError::Internal {
                    what: "proof logging was enabled but the solver produced no proof",
                })?;
                Ok(Some((formula, proof)))
            }
        }
    }

    /// Applies one universal-gate level to a row's state literals.
    fn level_outputs(&self, b: &mut CnfBuilder, state: &[Lit], sel: &Selects) -> Vec<Lit> {
        let n = state.len();
        match sel {
            Selects::OneHot(one_hot) => {
                // out_j = OR_k (o_k ∧ gate_k(state)_j), encoded implication-
                // wise: o_k → (out_j ↔ gate_k_out_j).
                let mut slot_outs: Vec<Vec<Lit>> = vec![state.to_vec(); self.gates.len()];
                for (k, g) in self.gates.iter().enumerate() {
                    apply_gate_netlist(b, g, state, &mut slot_outs[k]);
                }
                (0..n)
                    .map(|j| {
                        let out = b.new_aux();
                        for (k, slot) in slot_outs.iter().enumerate() {
                            let o = one_hot[k];
                            let g_out = slot[j];
                            // o ∧ g_out → out;  o ∧ ¬g_out → ¬out.
                            b.add_clause([!o, !g_out, out]);
                            b.add_clause([!o, g_out, !out]);
                        }
                        out
                    })
                    .collect()
            }
            Selects::Binary(bits) => {
                let slot_count = 1usize << self.sbits;
                let mut slots: Vec<Vec<Lit>> = vec![state.to_vec(); slot_count];
                for (k, g) in self.gates.iter().enumerate() {
                    apply_gate_netlist(b, g, state, &mut slots[k]);
                }
                (0..n)
                    .map(|j| {
                        let mut layer: Vec<Lit> = slots.iter().map(|s| s[j]).collect();
                        for &y in bits {
                            let mut next = Vec::with_capacity(layer.len() / 2);
                            for pair in layer.chunks(2) {
                                next.push(if pair[0] == pair[1] {
                                    pair[0]
                                } else {
                                    b.mux(y, pair[1], pair[0])
                                });
                            }
                            layer = next;
                        }
                        layer[0]
                    })
                    .collect()
            }
        }
    }

    fn decode(&self, d: u32, select_width: u32, model: &[bool]) -> Result<Circuit, SynthesisError> {
        let n = self.spec.lines();
        let mut c = Circuit::new(n);
        for level in 0..d as usize {
            let base = level * select_width as usize;
            match self.options.sat_encoding {
                SatSelectEncoding::OneHot => {
                    let k = (0..self.gates.len()).find(|&k| model[base + k]).ok_or(
                        SynthesisError::Internal {
                            what: "SAT model selects no gate despite the at-least-one clause",
                        },
                    )?;
                    c.push(self.gates[k]);
                }
                SatSelectEncoding::Binary => {
                    let bits: Vec<bool> =
                        (0..self.sbits as usize).map(|b| model[base + b]).collect();
                    let sub = decode_circuit(n, &self.gates, self.sbits, &bits);
                    for g in sub.gates() {
                        c.push(*g);
                    }
                }
            }
        }
        Ok(c)
    }
}

/// First cumulative conflict budget handed to the solver before the token
/// is re-polled; subsequent chunks double.
pub(crate) const FIRST_CONFLICT_CHUNK: u64 = 2_000;

/// Runs the solver to completion under the governor's conflict limit,
/// polling the governor between doubling budget chunks and installing its
/// abort probe inside the solver's propagation loop (so even a single
/// conflict-free chunk is interruptible). The solver keeps its learnt
/// clauses and heuristic state across chunks (its budget is cumulative), so
/// chunking costs nothing beyond the poll itself. Shared with the QBF
/// engine's expansion path.
///
/// # Errors
///
/// [`SynthesisError::BudgetExceeded`] once the limit's conflicts are spent
/// without an answer; cancellation/deadline errors from the governor.
pub(crate) fn solve_chunked(
    solver: &mut Solver,
    governor: &ResourceGovernor,
    d: u32,
) -> Result<SolveResult, SynthesisError> {
    let limit = governor.conflict_limit();
    solver.set_budget_callback(Some(governor.sat_abort_probe()));
    let mut budget = FIRST_CONFLICT_CHUNK.min(limit);
    loop {
        governor.check(d)?;
        solver.set_conflict_budget(budget);
        if let Some(result) = solver.solve_limited() {
            return Ok(result);
        }
        // `None` is either the probe firing (the governor check above
        // reports it next iteration) or the chunk budget running dry.
        if !solver.was_interrupted() && budget >= limit {
            return Err(governor.conflicts_exceeded(d, solver.stats().conflicts));
        }
        budget = budget.saturating_mul(2).min(limit);
    }
}

/// Blocks the binary select codes `q ≤ k < 2^s`.
fn forbid_padding(b: &mut CnfBuilder, bits: &[Lit], q: usize) {
    let slot_count = 1usize << bits.len();
    for k in q..slot_count {
        // ¬(bits == k)
        let clause: Vec<Lit> = bits
            .iter()
            .enumerate()
            .map(|(i, &l)| if (k >> i) & 1 == 1 { !l } else { l })
            .collect();
        b.add_clause(clause);
    }
}

/// Identical to the QBF engine's netlist application (duplicated locally to
/// keep the engines independent).
fn apply_gate_netlist(b: &mut CnfBuilder, g: &Gate, state: &[Lit], slot: &mut [Lit]) {
    match *g {
        Gate::Toffoli {
            controls,
            negative_controls,
            target,
        } => {
            let ctrl: Vec<Lit> = controls
                .iter()
                .map(|c| state[c as usize])
                .chain(negative_controls.iter().map(|c| !state[c as usize]))
                .collect();
            let cond = b.and_all(&ctrl);
            slot[target as usize] = b.xor(state[target as usize], cond);
        }
        Gate::Fredkin { controls, targets } => {
            let ctrl: Vec<Lit> = controls.iter().map(|c| state[c as usize]).collect();
            let cond = b.and_all(&ctrl);
            let a = state[targets.0 as usize];
            let t = state[targets.1 as usize];
            slot[targets.0 as usize] = b.mux(cond, t, a);
            slot[targets.1 as usize] = b.mux(cond, a, t);
        }
        Gate::Peres { control, targets } => {
            let c = state[control as usize];
            let a = state[targets.0 as usize];
            let t = state[targets.1 as usize];
            slot[targets.0 as usize] = b.xor(c, a);
            let ca = b.and(c, a);
            slot[targets.1 as usize] = b.xor(ca, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Engine;
    use qsyn_revlogic::{GateLibrary, LineSet, Permutation};

    fn opts(enc: SatSelectEncoding) -> SynthesisOptions {
        SynthesisOptions::new(GateLibrary::mct(), Engine::Sat).with_sat_encoding(enc)
    }

    #[test]
    fn depth_zero_identity_both_encodings() {
        let id = Spec::from_permutation(&Permutation::identity(2));
        let other = Spec::from_permutation(&Permutation::from_map(2, vec![1, 0, 2, 3]));
        for enc in [SatSelectEncoding::OneHot, SatSelectEncoding::Binary] {
            assert!(SatEngine::new(&id, &opts(enc))
                .solve_depth(0)
                .unwrap()
                .is_some());
            assert!(SatEngine::new(&other, &opts(enc))
                .solve_depth(0)
                .unwrap()
                .is_none());
        }
    }

    #[test]
    fn finds_single_cnot_both_encodings() {
        let spec = Spec::from_permutation(&Permutation::from_fn(2, |v| v ^ ((v & 1) << 1)));
        for enc in [SatSelectEncoding::OneHot, SatSelectEncoding::Binary] {
            let mut e = SatEngine::new(&spec, &opts(enc));
            assert!(e.solve_depth(0).unwrap().is_none(), "{enc:?}");
            let sols = e.solve_depth(1).unwrap().expect("CNOT realizes it");
            assert_eq!(
                sols.circuits()[0].gates()[0],
                Gate::toffoli(LineSet::from_iter([0]), 1),
                "{enc:?}"
            );
        }
    }

    #[test]
    fn encodings_agree_on_unsat_depths() {
        // SWAP needs 3 CNOTs; both encodings must prove 1 and 2 unsat.
        let spec = Spec::from_permutation(&Permutation::from_fn(2, |v| {
            ((v & 1) << 1) | ((v >> 1) & 1)
        }));
        for enc in [SatSelectEncoding::OneHot, SatSelectEncoding::Binary] {
            let mut e = SatEngine::new(&spec, &opts(enc));
            assert!(e.solve_depth(1).unwrap().is_none(), "{enc:?} depth 1");
            assert!(e.solve_depth(2).unwrap().is_none(), "{enc:?} depth 2");
            assert!(e.solve_depth(3).unwrap().is_some(), "{enc:?} depth 3");
        }
    }

    #[test]
    fn instance_grows_with_row_count() {
        // The baseline's defining weakness: clauses scale with 2ⁿ.
        let spec2 = Spec::from_permutation(&Permutation::identity(2));
        let spec3 = Spec::from_permutation(&Permutation::identity(3));
        let mut e2 = SatEngine::new(&spec2, &opts(SatSelectEncoding::OneHot));
        let mut e3 = SatEngine::new(&spec3, &opts(SatSelectEncoding::OneHot));
        let _ = e2.solve_depth(1).unwrap();
        let _ = e3.solve_depth(1).unwrap();
        let (_, c2) = e2.last_instance_size();
        let (_, c3) = e3.last_instance_size();
        // 3 lines has 2× the rows of 2 lines (and more gates): the instance
        // must grow super-linearly.
        assert!(c3 > 2 * c2, "rows don't dominate: {c2} vs {c3}");
    }

    #[test]
    fn incomplete_spec_skips_unconstrained_rows() {
        let spec = qsyn_revlogic::embedding::Embedding {
            lines: 3,
            input_lines: vec![0, 1],
            constants: vec![(2, false)],
            output_lines: vec![2],
        }
        .embed(|ab| (ab & 1) & (ab >> 1))
        .unwrap();
        let mut e = SatEngine::new(&spec, &opts(SatSelectEncoding::OneHot));
        assert!(e.solve_depth(0).unwrap().is_none());
        let sols = e.solve_depth(1).unwrap().expect("Toffoli suffices");
        assert!(spec.is_realized_by(&sols.circuits()[0]));
    }

    #[test]
    fn cancelled_token_stops_solve_depth() {
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![3, 0, 1, 2]));
        let token = crate::CancelToken::new();
        let mut e = SatEngine::new(
            &spec,
            &opts(SatSelectEncoding::OneHot).with_cancel_token(token.clone()),
        );
        assert!(e.solve_depth(0).unwrap().is_none());
        token.cancel();
        assert_eq!(
            e.solve_depth(1).unwrap_err(),
            SynthesisError::Cancelled { depth: 1 }
        );
    }

    #[test]
    fn conflict_budget_trips_on_tiny_limit() {
        let spec = Spec::from_permutation(&Permutation::from_map(3, vec![7, 1, 4, 3, 0, 2, 6, 5]));
        let mut e = SatEngine::new(
            &spec,
            &opts(SatSelectEncoding::OneHot).with_conflict_limit(1),
        );
        // Some depth in 1..4 must exceed one conflict.
        let tripped = (1..5).any(|d| {
            matches!(
                e.solve_depth(d),
                Err(SynthesisError::BudgetExceeded {
                    resource: crate::Resource::SatConflicts,
                    limit: 1,
                    ..
                })
            )
        });
        assert!(tripped);
    }
}
