//! The QBF-solver synthesis engine (Section 5.1 of the paper).
//!
//! The cascade `F_d = f` is built as a gate netlist and translated to CNF
//! with the Tseitin transformation \[20\] — linear in the circuit size. The
//! full instance is the prenex formula `∃Y ∀X ∃A . CNF(F_d = f)` with `A`
//! the Tseitin auxiliaries. Unlike the row-wise SAT encoding, the network
//! constraints appear **once**; the specification is enforced by the
//! universal quantification of the inputs.

use crate::encode::{decode_circuit, select_bits};
use crate::error::SynthesisError;
use crate::options::{QbfBackend, SynthesisOptions};
use crate::sat_engine::{solve_chunked, FIRST_CONFLICT_CHUNK};
use crate::session::{ResourceGovernor, SynthesisSession};
use crate::solutions::SolutionSet;
use qsyn_qbf::{ExpansionSolver, QbfFormula, QdpllSolver, Quantifier};
use qsyn_revlogic::{Circuit, Gate, Spec};
use qsyn_sat::{CnfBuilder, Lit, SolveResult, Solver};

/// QBF-based depth oracle; see the module docs.
pub struct QbfEngine {
    spec: Spec,
    options: SynthesisOptions,
    gates: Vec<Gate>,
    sbits: u32,
    governor: ResourceGovernor,
    /// Size (vars, clauses) of the last generated instance.
    last_instance_size: (u32, usize),
}

impl std::fmt::Debug for QbfEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QbfEngine")
            .field("lines", &self.spec.lines())
            .field("gates", &self.gates.len())
            .finish_non_exhaustive()
    }
}

impl QbfEngine {
    /// Prepares an engine for `spec` under `options` with a throwaway
    /// session (see [`new_in`](Self::new_in)).
    pub fn new(spec: &Spec, options: &SynthesisOptions) -> QbfEngine {
        QbfEngine::new_in(spec, options, &mut SynthesisSession::new())
    }

    /// Prepares an engine inside `session`. Like the SAT baseline, the
    /// QBF engine keeps no BDD state; the session contributes the
    /// [`ResourceGovernor`] wiring and keeps construction uniform across
    /// engines.
    pub fn new_in(
        spec: &Spec,
        options: &SynthesisOptions,
        _session: &mut SynthesisSession,
    ) -> QbfEngine {
        let gates = options.library.enumerate(spec.lines());
        let sbits = select_bits(gates.len());
        let governor = ResourceGovernor::from_options(options);
        governor.arm();
        QbfEngine {
            spec: spec.clone(),
            options: options.clone(),
            gates,
            sbits,
            governor,
            last_instance_size: (0, 0),
        }
    }

    /// Size `(variables, clauses)` of the most recently generated QBF
    /// instance — the paper's polynomial-size claim is observable here.
    pub fn last_instance_size(&self) -> (u32, usize) {
        self.last_instance_size
    }

    /// Generates the prenex `∃Y ∀X ∃A` instance for depth `d`.
    pub fn instance(&self, d: u32) -> QbfFormula {
        let n = self.spec.lines();
        let y_count = d * self.sbits;
        // Variable layout: X = 0..n, Y = n..n+y_count, A = the rest.
        let mut b = CnfBuilder::new(n + y_count);
        let x_lits: Vec<Lit> = (0..n).map(|l| b.input(l)).collect();
        let y_lits: Vec<Lit> = (0..y_count).map(|i| b.input(n + i)).collect();

        // Cascade of universal gates.
        let mut state = x_lits.clone();
        for level in 0..d as usize {
            let selects = &y_lits[level * self.sbits as usize..(level + 1) * self.sbits as usize];
            state = self.universal_gate(&mut b, &state, selects);
        }

        // Row minterms over X, shared by all output constraints.
        let minterms: Vec<Lit> = (0..self.spec.num_rows() as u32)
            .map(|row| {
                let lits: Vec<Lit> = (0..n)
                    .map(|l| {
                        if (row >> l) & 1 == 1 {
                            x_lits[l as usize]
                        } else {
                            !x_lits[l as usize]
                        }
                    })
                    .collect();
                b.and_all(&lits)
            })
            .collect();
        // Per line: dc_l ∨ (F_{d,l} ⊙ on_l).
        for l in 0..n {
            let on_rows = self.spec.on_set(l);
            let on_lits: Vec<Lit> = on_rows.iter().map(|&r| minterms[r as usize]).collect();
            let f_l = b.or_all(&on_lits);
            let agree = b.xnor(state[l as usize], f_l);
            let dc_rows = self.spec.dc_set(l);
            if dc_rows.is_empty() {
                b.assert_lit(agree);
            } else {
                let dc_lits: Vec<Lit> = dc_rows.iter().map(|&r| minterms[r as usize]).collect();
                let dc = b.or_all(&dc_lits);
                let ok = b.or(dc, agree);
                b.assert_lit(ok);
            }
        }

        let aux: Vec<u32> = b.aux_vars().to_vec();
        let mut qbf = QbfFormula::new(b.num_vars());
        qbf.add_block(Quantifier::Exists, n..n + y_count);
        qbf.add_block(Quantifier::Forall, 0..n);
        qbf.add_block(Quantifier::Exists, aux);
        for c in b.formula().clauses() {
            qbf.add_clause(c.lits().iter().copied());
        }
        qbf
    }

    /// One universal gate `U_G(state, selects)` as a netlist: every library
    /// gate applied to `state`, multiplexed by the select literals.
    fn universal_gate(&self, b: &mut CnfBuilder, state: &[Lit], selects: &[Lit]) -> Vec<Lit> {
        let slot_count = 1usize << self.sbits;
        let n = state.len();
        let mut slots: Vec<Vec<Lit>> = vec![state.to_vec(); slot_count];
        for (k, g) in self.gates.iter().enumerate() {
            apply_gate_netlist(b, g, state, &mut slots[k]);
        }
        // Mux tree per line over the select bits, LSB first.
        let mut outputs = Vec::with_capacity(n);
        for j in 0..n {
            let mut layer: Vec<Lit> = slots.iter().map(|s| s[j]).collect();
            for &y in selects {
                let mut next = Vec::with_capacity(layer.len() / 2);
                for pair in layer.chunks(2) {
                    next.push(if pair[0] == pair[1] {
                        pair[0]
                    } else {
                        b.mux(y, pair[1], pair[0])
                    });
                }
                layer = next;
            }
            debug_assert_eq!(layer.len(), 1);
            outputs.push(layer[0]);
        }
        outputs
    }

    /// Decides whether a `d`-gate realization exists.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::BudgetExceeded`] when the decision/conflict budget
    /// runs out; cancellation errors from the governor, polled between
    /// budget chunks of both backends.
    pub fn solve_depth(&mut self, d: u32) -> Result<Option<SolutionSet>, SynthesisError> {
        self.governor.check(d)?;
        let qbf = self.instance(d);
        // Debug builds re-check the instance's prefix and matrix invariants,
        // including closure — every matrix variable must be quantified (see
        // `qsyn_audit`).
        #[cfg(debug_assertions)]
        if let Err(e) = qsyn_audit::formula_audit::audit_qbf(&qbf, true) {
            panic!("QBF instance for depth {d} failed the formula audit: {e}");
        }
        self.last_instance_size = (qbf.num_vars(), qbf.matrix().len());
        // The QDPLL backend decides truth first (the measured solver); the
        // witness for circuit extraction always comes from expansion.
        if self.options.qbf_backend == QbfBackend::Qdpll && !qdpll_chunked(&qbf, &self.governor, d)?
        {
            return Ok(None);
        }
        // Drive the backend SAT solve of the expansion ourselves so the
        // governor is polled between conflict chunks.
        let mut expansion = ExpansionSolver::new(&qbf);
        let cnf = expansion.expanded_cnf();
        let mut solver = Solver::from_formula(&cnf);
        let witness = match solve_chunked(&mut solver, &self.governor, d)? {
            SolveResult::Unsat => return Ok(None),
            // Original variables keep their indices in the expanded CNF, so
            // the model's prefix is the ∃Y witness (see
            // `ExpansionSolver::expanded_cnf`).
            SolveResult::Sat(model) => model[..qbf.num_vars() as usize].to_vec(),
        };
        let n = self.spec.lines();
        let circuit = if self.sbits == 0 {
            Circuit::from_gates(n, std::iter::repeat_n(self.gates[0], d as usize))
        } else {
            let y_count = (d * self.sbits) as usize;
            let bits: Vec<bool> = (0..y_count).map(|i| witness[n as usize + i]).collect();
            decode_circuit(n, &self.gates, self.sbits, &bits)
        };
        debug_assert!(
            self.spec.is_realized_by(&circuit),
            "QBF witness decodes to a circuit violating the spec"
        );
        Ok(Some(SolutionSet::single(circuit)))
    }
}

/// Decides `qbf` with QDPLL under the governor's decision limit, polling
/// the governor between doubling budget chunks. The solver's decision
/// counter is cumulative while its search restarts per call, so doubling
/// amortizes the restarted work to a constant factor.
///
/// # Errors
///
/// [`SynthesisError::BudgetExceeded`] once the limit's decisions are
/// spent; cancellation/deadline errors from the governor.
fn qdpll_chunked(
    qbf: &QbfFormula,
    governor: &ResourceGovernor,
    d: u32,
) -> Result<bool, SynthesisError> {
    let limit = governor.conflict_limit();
    let mut solver = QdpllSolver::new(qbf);
    let mut budget = FIRST_CONFLICT_CHUNK.min(limit);
    loop {
        governor.check(d)?;
        governor.qbf_fault_probe(d, budget)?;
        solver.set_decision_budget(budget);
        if let Some(verdict) = solver.solve_limited() {
            return Ok(verdict);
        }
        if budget >= limit {
            return Err(governor.decisions_exceeded(d, budget));
        }
        budget = budget.saturating_mul(2).min(limit);
    }
}

/// Applies a concrete gate to `state`, writing the changed lines into
/// `slot` (which starts as a copy of `state`).
fn apply_gate_netlist(b: &mut CnfBuilder, g: &Gate, state: &[Lit], slot: &mut [Lit]) {
    match *g {
        Gate::Toffoli {
            controls,
            negative_controls,
            target,
        } => {
            let ctrl: Vec<Lit> = controls
                .iter()
                .map(|c| state[c as usize])
                .chain(negative_controls.iter().map(|c| !state[c as usize]))
                .collect();
            let cond = b.and_all(&ctrl);
            slot[target as usize] = b.xor(state[target as usize], cond);
        }
        Gate::Fredkin { controls, targets } => {
            let ctrl: Vec<Lit> = controls.iter().map(|c| state[c as usize]).collect();
            let cond = b.and_all(&ctrl);
            let a = state[targets.0 as usize];
            let t = state[targets.1 as usize];
            slot[targets.0 as usize] = b.mux(cond, t, a);
            slot[targets.1 as usize] = b.mux(cond, a, t);
        }
        Gate::Peres { control, targets } => {
            let c = state[control as usize];
            let a = state[targets.0 as usize];
            let t = state[targets.1 as usize];
            slot[targets.0 as usize] = b.xor(c, a);
            let ca = b.and(c, a);
            slot[targets.1 as usize] = b.xor(ca, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Engine;
    use qsyn_revlogic::{GateLibrary, LineSet, Permutation};

    fn opts() -> SynthesisOptions {
        SynthesisOptions::new(GateLibrary::mct(), Engine::Qbf)
    }

    #[test]
    fn depth_zero_identity() {
        let spec = Spec::from_permutation(&Permutation::identity(2));
        let mut e = QbfEngine::new(&spec, &opts());
        assert!(e.solve_depth(0).unwrap().is_some());
        let not_id = Spec::from_permutation(&Permutation::from_map(2, vec![1, 0, 2, 3]));
        let mut e2 = QbfEngine::new(&not_id, &opts());
        assert!(e2.solve_depth(0).unwrap().is_none());
    }

    #[test]
    fn finds_single_cnot() {
        let spec = Spec::from_permutation(&Permutation::from_fn(2, |v| v ^ ((v & 1) << 1)));
        let mut e = QbfEngine::new(&spec, &opts());
        assert!(e.solve_depth(0).unwrap().is_none());
        let sols = e.solve_depth(1).unwrap().expect("CNOT realizes it");
        assert_eq!(
            sols.circuits()[0].gates()[0],
            Gate::toffoli(LineSet::from_iter([0]), 1)
        );
    }

    #[test]
    fn qdpll_backend_agrees_on_tiny_instances() {
        let spec = Spec::from_permutation(&Permutation::from_map(1, vec![1, 0]));
        let mut exp = QbfEngine::new(&spec, &opts());
        let mut qd = QbfEngine::new(&spec, &opts().with_qbf_backend(QbfBackend::Qdpll));
        for d in 0..2 {
            assert_eq!(
                exp.solve_depth(d).unwrap().is_some(),
                qd.solve_depth(d).unwrap().is_some(),
                "depth {d}"
            );
        }
    }

    #[test]
    fn cancelled_token_stops_solve_depth() {
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![3, 0, 1, 2]));
        let token = crate::CancelToken::new();
        let mut e = QbfEngine::new(&spec, &opts().with_cancel_token(token.clone()));
        assert!(e.solve_depth(0).unwrap().is_none());
        token.cancel();
        assert_eq!(
            e.solve_depth(1).unwrap_err(),
            SynthesisError::Cancelled { depth: 1 }
        );
    }

    #[test]
    fn instance_grows_linearly_with_depth() {
        // The headline property: the encoding is polynomial — one cascade,
        // not one per truth-table row. Doubling d roughly doubles the
        // instance, and the per-level increment is row-count independent.
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![3, 0, 1, 2]));
        let e = QbfEngine::new(&spec, &opts());
        let c1 = e.instance(1).matrix().len();
        let c2 = e.instance(2).matrix().len();
        let c3 = e.instance(3).matrix().len();
        assert_eq!(c3 - c2, c2 - c1, "per-level clause increment is constant");
    }

    #[test]
    fn incomplete_spec_synthesizes() {
        let spec = qsyn_revlogic::embedding::Embedding {
            lines: 3,
            input_lines: vec![0, 1],
            constants: vec![(2, false)],
            output_lines: vec![2],
        }
        .embed(|ab| (ab & 1) & (ab >> 1))
        .unwrap();
        let mut e = QbfEngine::new(&spec, &opts());
        assert!(e.solve_depth(0).unwrap().is_none());
        let sols = e.solve_depth(1).unwrap().expect("Toffoli suffices");
        assert!(spec.is_realized_by(&sols.circuits()[0]));
    }

    #[test]
    fn prefix_is_exists_forall_exists() {
        let spec = Spec::from_permutation(&Permutation::identity(2));
        let e = QbfEngine::new(&spec, &opts());
        let qbf = e.instance(1);
        let prefix = qbf.prefix();
        assert_eq!(prefix.len(), 3);
        assert_eq!(prefix[0].0, Quantifier::Exists); // Y
        assert_eq!(prefix[1].0, Quantifier::Forall); // X
        assert_eq!(prefix[2].0, Quantifier::Exists); // A
        assert_eq!(prefix[1].1.len(), 2);
    }
}
