//! Synthesis with output permutation — the follow-up direction of the same
//! group ("Reversible Logic Synthesis with Output Permutation"): since
//! output lines are just signal names, a realization is also acceptable if
//! its outputs match the specification *up to a permutation of the lines*.
//! Exploiting this freedom often saves gates (a SWAP costs three CNOTs if
//! it has to be realized, but nothing if it can be absorbed into the
//! output labeling).
//!
//! The implementation follows the iterative-deepening flow of Figure 1,
//! but each depth is checked against every line permutation of the
//! specification (the search is minimal in the gate count, and among the
//! depth-minimal options the identity permutation is preferred).
//!
//! # Permutation-space pruning
//!
//! A blind search drives `n!` independent engines in lock-step. This
//! module prunes that probe set three ways (DESIGN.md §14):
//!
//! 1. **Class collapse.** Two permuted specifications with the same table
//!    are one probe, and so are two specifications related by a
//!    *simultaneous* relabeling of the circuit lines (conjugation): every
//!    gate library here is closed under line relabeling, so relabeling the
//!    wires of a depth-`d` realization of one member yields a depth-`d`
//!    realization of any other. One engine per class decides SAT/UNSAT for
//!    all of its members at once.
//! 2. **Transferred depth floors.** The driver's
//!    [`depth_lower_bound`](crate::depth_lower_bound) counts lines whose
//!    function differs from their input projection — a count that is
//!    invariant under conjugation, so the bound proven for a class
//!    representative applies to every sibling probe in the class. Each
//!    class enters the lock-step at its transferred floor instead of depth
//!    0, and the whole search starts at the smallest floor.
//! 3. **First-SAT cancellation.** All probe engines run under one merged
//!    [`CancelToken`]; the first SAT hit cancels it, so sibling probes
//!    (and their pooled managers) stop and unwind immediately instead of
//!    finishing their depth.
//!
//! The winning class's own solutions are returned directly (its
//! representative *is* the first — identity-preferring — member of the
//! class), so no re-synthesis pass is needed.

use crate::driver::{depth_lower_bound, synthesize_in, SynthesisResult};
use crate::error::SynthesisError;
use crate::options::{Engine, SynthesisOptions};
use crate::session::{ResourceGovernor, SynthesisSession};
use crate::solutions::SolutionSet;
use crate::{BddEngine, CancelToken, DepthSolver, QbfEngine, SatEngine};
use qsyn_revlogic::{Spec, SpecError, SpecRow};
use std::collections::HashMap;
use std::time::Instant;

/// Counters describing how much of the `n!` probe space a pruned
/// output-permutation search actually visited. Deterministic for a given
/// specification and options (they gate the PR 8 bench trajectory).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PermutedSearchStats {
    /// `n!` — the probes the blind lock-step would have driven.
    pub permutations: u64,
    /// Equivalence classes after table-identity + conjugation grouping.
    pub classes: u64,
    /// Probe engines actually constructed (classes whose floor was
    /// reached before the winner).
    pub engines_built: u64,
    /// Per-depth probe calls actually issued across all classes.
    pub probes_run: u64,
    /// Per-depth probe calls skipped because a class's transferred lower
    /// bound proved the depth UNSAT without running an engine.
    pub depth_floor_skips: u64,
}

/// A successful output-permutation synthesis.
#[derive(Clone, Debug)]
pub struct PermutedSynthesisResult {
    /// The synthesis result for the permuted specification.
    pub result: SynthesisResult,
    /// `permutation[j]` = circuit output line that drives specification
    /// line `j` (identity when no permutation was needed).
    pub permutation: Vec<u32>,
    /// Probe-space accounting for this search (all zeros for replayed or
    /// plain results — no probes ran).
    pub stats: PermutedSearchStats,
}

impl PermutedSynthesisResult {
    /// `true` if the identity permutation was used.
    pub fn is_identity_permutation(&self) -> bool {
        self.permutation
            .iter()
            .enumerate()
            .all(|(i, &p)| i as u32 == p)
    }

    /// Wraps a plain (no permutation search) synthesis result with the
    /// identity permutation, so `--no-permute` workloads flow through the
    /// same reporting, journal and store paths as permuted ones.
    pub fn plain(result: SynthesisResult, lines: u32) -> PermutedSynthesisResult {
        PermutedSynthesisResult {
            result,
            permutation: (0..lines).collect(),
            stats: PermutedSearchStats::default(),
        }
    }
}

/// All permutations of `0..n` in lexicographic order (identity first).
fn permutations(n: u32) -> Vec<Vec<u32>> {
    let mut all = Vec::new();
    let mut current: Vec<u32> = (0..n).collect();
    let mut used = vec![false; n as usize];
    fn rec(
        n: u32,
        pos: usize,
        current: &mut Vec<u32>,
        used: &mut Vec<bool>,
        all: &mut Vec<Vec<u32>>,
    ) {
        if pos == n as usize {
            all.push(current.clone());
            return;
        }
        for v in 0..n {
            if !used[v as usize] {
                used[v as usize] = true;
                current[pos] = v;
                rec(n, pos + 1, current, used, all);
                used[v as usize] = false;
            }
        }
    }
    rec(n, 0, &mut current, &mut used, &mut all);
    all
}

/// The specification a circuit must meet so that wiring its output line
/// `permutation[j]` to specification line `j` realizes `spec`.
///
/// # Errors
///
/// [`SpecError`] if the permuted table is detectably unrealizable (cannot
/// happen for permutations of realizable specs; surfaced for robustness).
pub fn permute_spec(spec: &Spec, permutation: &[u32]) -> Result<Spec, SpecError> {
    let n = spec.lines();
    assert_eq!(permutation.len(), n as usize, "permutation length mismatch");
    let rows = (0..spec.num_rows() as u32)
        .map(|i| {
            let r = spec.row(i);
            let mut value = 0u32;
            let mut care = 0u32;
            for (j, &p) in permutation.iter().enumerate() {
                let bit = 1u32 << j;
                if r.care & bit != 0 {
                    care |= 1 << p;
                    value |= ((r.value >> j) & 1) << p;
                }
            }
            qsyn_revlogic::SpecRow { value, care }
        })
        .collect();
    Spec::new_incomplete(n, rows)
}

/// One pruned probe: the lexicographically first member of an equivalence
/// class of permuted specifications, standing in for all of them.
struct ProbeClass {
    /// First (identity-preferring) member permutation of the class.
    permutation: Vec<u32>,
    /// That member's permuted specification — what the engine solves.
    spec: Spec,
    /// How many of the `n!` permutations collapsed into this class.
    members: u64,
    /// Transferred depth floor: [`depth_lower_bound`] of the
    /// representative, valid for every member (conjugation-invariant).
    floor: u32,
    /// Lazily built engine; `None` until the lock-step reaches `floor`.
    engine: Option<Box<dyn DepthSolver>>,
}

/// Bit-permutation lookup tables for one line relabeling `σ`: `fwd[v]`
/// moves bit `j` of `v` to line `σ[j]`; `inv` is the inverse table.
struct SigmaLut {
    fwd: Vec<u32>,
    inv: Vec<u32>,
}

fn sigma_luts(perms: &[Vec<u32>], n: u32) -> Vec<SigmaLut> {
    let rows = 1usize << n;
    perms
        .iter()
        .map(|sigma| {
            let mut fwd = vec![0u32; rows];
            for (v, slot) in fwd.iter_mut().enumerate() {
                let mut out = 0u32;
                for (j, &s) in sigma.iter().enumerate() {
                    out |= ((v as u32 >> j) & 1) << s;
                }
                *slot = out;
            }
            let mut inv = vec![0u32; rows];
            for (v, &w) in fwd.iter().enumerate() {
                inv[w as usize] = v as u32;
            }
            SigmaLut { fwd, inv }
        })
        .collect()
}

/// Lexicographically minimal row table over all simultaneous line
/// relabelings (conjugations) of `rows` — the grouping key of the class
/// collapse. Conjugating by `σ` maps row `r` to row `σ(r)` with value and
/// care bits relabeled, and maps any realizing circuit gate-for-gate, so
/// every spec sharing a key shares its minimal depth.
fn conjugation_key(rows: &[SpecRow], luts: &[SigmaLut]) -> Vec<SpecRow> {
    let mut best: Vec<SpecRow> = rows.to_vec();
    let mut scratch: Vec<SpecRow> = Vec::with_capacity(rows.len());
    for lut in luts {
        // Build the conjugated table in row order, comparing against the
        // current best as we go so non-minimal candidates abort early.
        scratch.clear();
        let mut ordering = std::cmp::Ordering::Equal;
        for r2 in 0..rows.len() {
            let src = rows[lut.inv[r2] as usize];
            let row = SpecRow {
                value: lut.fwd[src.value as usize],
                care: lut.fwd[src.care as usize],
            };
            let b = best[r2];
            ordering = (row.value, row.care).cmp(&(b.value, b.care));
            if ordering != std::cmp::Ordering::Equal {
                if ordering == std::cmp::Ordering::Less {
                    scratch.push(row);
                }
                break;
            }
            scratch.push(row);
        }
        if ordering == std::cmp::Ordering::Less {
            // Finish materializing the smaller candidate.
            for r2 in scratch.len()..rows.len() {
                let src = rows[lut.inv[r2] as usize];
                scratch.push(SpecRow {
                    value: lut.fwd[src.value as usize],
                    care: lut.fwd[src.care as usize],
                });
            }
            std::mem::swap(&mut best, &mut scratch);
        }
    }
    best
}

/// Conjugation canonicalization costs `n!` relabelings per probe; beyond
/// 6 lines fall back to identical-table grouping only (exact synthesis is
/// out of reach there anyway, and the table-identity collapse is free).
const CONJUGATION_LINE_CAP: u32 = 6;

/// Groups the `n!` permuted specifications of `spec` into probe classes,
/// in first-member order (so the identity permutation leads the first
/// class it belongs to, preserving the identity-on-ties preference).
fn build_probe_classes(
    spec: &Spec,
    perms: &[Vec<u32>],
    options: &SynthesisOptions,
) -> Vec<ProbeClass> {
    let n = spec.lines();
    let luts = if n <= CONJUGATION_LINE_CAP {
        sigma_luts(perms, n)
    } else {
        Vec::new()
    };
    let mut classes: Vec<ProbeClass> = Vec::new();
    let mut by_key: HashMap<Vec<SpecRow>, usize> = HashMap::new();
    for p in perms {
        let Ok(permuted) = permute_spec(spec, p) else {
            continue;
        };
        let key = if luts.is_empty() {
            permuted.rows().to_vec()
        } else {
            conjugation_key(permuted.rows(), &luts)
        };
        if let Some(&idx) = by_key.get(&key) {
            classes[idx].members += 1;
            continue;
        }
        by_key.insert(key, classes.len());
        let floor = depth_lower_bound(&permuted, options);
        classes.push(ProbeClass {
            permutation: p.clone(),
            spec: permuted,
            members: 1,
            floor,
            engine: None,
        });
    }
    classes
}

fn build_engine(
    spec: &Spec,
    options: &SynthesisOptions,
    session: &mut SynthesisSession,
) -> Box<dyn DepthSolver> {
    match options.engine {
        Engine::Bdd => Box::new(BddEngine::new_in(spec, options, session)),
        Engine::Qbf => Box::new(QbfEngine::new_in(spec, options, session)),
        Engine::Sat => Box::new(SatEngine::new_in(spec, options, session)),
    }
}

/// Iterative-deepening synthesis over all output permutations: returns a
/// gate-count-minimal circuit together with the permutation under which it
/// realizes `spec`.
///
/// The returned depth is ≤ the plain [`crate::synthesize`] depth — output
/// relabeling can only help.
///
/// # Errors
///
/// As for [`crate::synthesize`]. The depth/time budgets apply to the run
/// as a whole.
pub fn synthesize_with_output_permutation(
    spec: &Spec,
    options: &SynthesisOptions,
) -> Result<PermutedSynthesisResult, SynthesisError> {
    synthesize_with_output_permutation_in(spec, options, &mut SynthesisSession::new())
}

/// [`synthesize_with_output_permutation`], but borrowing a caller-owned
/// [`SynthesisSession`]. Probe engines are built lazily — one per
/// equivalence class, only once the lock-step reaches the class's depth
/// floor — and draw their BDD managers from the session's pool.
///
/// # Errors
///
/// See [`synthesize_with_output_permutation`].
pub fn synthesize_with_output_permutation_in(
    spec: &Spec,
    options: &SynthesisOptions,
    session: &mut SynthesisSession,
) -> Result<PermutedSynthesisResult, SynthesisError> {
    if spec.lines() > 8 {
        return Err(SynthesisError::SpecTooLarge {
            lines: spec.lines(),
        });
    }
    session.begin_job();
    let start = Instant::now();
    let perms = permutations(spec.lines());
    let mut stats = PermutedSearchStats {
        permutations: perms.len() as u64,
        ..PermutedSearchStats::default()
    };
    let mut classes = build_probe_classes(spec, &perms, options);
    stats.classes = classes.len() as u64;
    // The caller's governor arms the run-wide deadline once; probe engines
    // run under a merged token so the first SAT hit cancels the siblings
    // without touching the caller's token (which the winner's result and
    // any retry still use).
    let governor = ResourceGovernor::from_options(options);
    governor.arm();
    let probe_token = CancelToken::new();
    let probe_options = options
        .clone()
        .with_cancel_token(CancelToken::merged([&options.cancel, &probe_token]));
    let use_floors = options.start_at_lower_bound;
    let first_depth = if use_floors {
        classes
            .iter()
            .map(|c| c.floor)
            .min()
            .unwrap_or(0)
            .min(options.max_depth)
    } else {
        0
    };
    let mut winner: Option<(usize, u32, SolutionSet)> = None;
    let mut depth_times = Vec::new();
    'deepen: for d in first_depth..=options.max_depth {
        governor.check(d)?;
        let depth_start = Instant::now();
        for (idx, class) in classes.iter_mut().enumerate() {
            if use_floors && class.floor > d {
                // The transferred lower bound already proves this depth
                // UNSAT for every member of the class.
                stats.depth_floor_skips += 1;
                continue;
            }
            let engine = match &mut class.engine {
                Some(e) => e,
                None => {
                    stats.engines_built += 1;
                    class
                        .engine
                        .insert(build_engine(&class.spec, &probe_options, session))
                }
            };
            stats.probes_run += 1;
            match engine.solve_depth(d) {
                Ok(Some(solutions)) => {
                    winner = Some((idx, d, solutions));
                    depth_times.push(depth_start.elapsed());
                    break 'deepen;
                }
                Ok(None) => {}
                Err(e) => {
                    probe_token.cancel();
                    return Err(e);
                }
            }
        }
        depth_times.push(depth_start.elapsed());
    }
    let Some((idx, d, solutions)) = winner else {
        return Err(SynthesisError::DepthLimitReached {
            max_depth: options.max_depth,
        });
    };
    // First SAT at depth d: cancel the sibling probes (any engine state
    // polling the merged token observes it), then tear them down so their
    // pooled managers return to the session.
    probe_token.cancel();
    let class = classes.swap_remove(idx);
    let engine = class.engine.expect("winning class has an engine");
    let (name, manager_stats) = (engine.name(), engine.manager_stats());
    drop(engine);
    drop(classes);
    // Debug builds lint every materialized circuit, exactly as the plain
    // driver does after a SAT depth — see `qsyn_audit`.
    #[cfg(debug_assertions)]
    for c in solutions.circuits() {
        if let Err(e) = qsyn_audit::circuit_audit::audit_circuit(c, Some(&options.library)) {
            panic!("permuted synthesis at depth {d} failed its audit: {e}");
        }
    }
    debug_assert!(
        solutions
            .circuits()
            .iter()
            .all(|c| class.spec.is_realized_by(c)),
        "winning solutions must realize the class representative"
    );
    session.note_permuted_search(&stats);
    let result = SynthesisResult::from_parts(
        solutions,
        d,
        name,
        depth_times,
        start.elapsed(),
        manager_stats,
    );
    Ok(PermutedSynthesisResult {
        result,
        permutation: class.permutation,
        stats,
    })
}

/// The pre-pruning reference search: one engine per permutation, all `n!`
/// built up front and driven in lock-step from depth 0, the winner
/// re-synthesized through the stock driver.
///
/// Kept (test-only) as the oracle the pruned path is validated against —
/// property tests and the `gen_bench_pr8` A/B compare minimal depths and
/// winning permutations between the two. Do not use in production paths:
/// this is exactly the `n!` blowup the pruned search exists to avoid.
///
/// # Errors
///
/// See [`synthesize_with_output_permutation`].
#[doc(hidden)]
pub fn synthesize_with_output_permutation_brute_in(
    spec: &Spec,
    options: &SynthesisOptions,
    session: &mut SynthesisSession,
) -> Result<PermutedSynthesisResult, SynthesisError> {
    if spec.lines() > 8 {
        return Err(SynthesisError::SpecTooLarge {
            lines: spec.lines(),
        });
    }
    session.begin_job();
    let perms = permutations(spec.lines());
    let mut candidates: Vec<(Vec<u32>, Spec)> = perms
        .into_iter()
        .filter_map(|p| permute_spec(spec, &p).ok().map(|s| (p, s)))
        .collect();
    let mut engines: Vec<Box<dyn DepthSolver>> = candidates
        .iter()
        .map(|(_, s)| build_engine(s, options, session))
        .collect();
    let governor = ResourceGovernor::from_options(options);
    governor.arm();
    let mut winner: Option<(usize, u32)> = None;
    'deepen: for d in 0..=options.max_depth {
        governor.check(d)?;
        for (idx, engine) in engines.iter_mut().enumerate() {
            if engine.solve_depth(d)?.is_some() {
                winner = Some((idx, d));
                break 'deepen;
            }
        }
    }
    let Some((idx, d)) = winner else {
        return Err(SynthesisError::DepthLimitReached {
            max_depth: options.max_depth,
        });
    };
    let (permutation, permuted_spec) = candidates.swap_remove(idx);
    // Drop the probe engines first so their pooled managers return to the
    // session before the winner re-runs.
    drop(engines);
    let result = {
        let mut capped = options.clone();
        capped.max_depth = d;
        synthesize_in(&permuted_spec, &capped, session)?
    };
    debug_assert_eq!(result.depth(), d);
    Ok(PermutedSynthesisResult {
        result,
        permutation,
        stats: PermutedSearchStats::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Engine;
    use qsyn_revlogic::{GateLibrary, Permutation};

    fn opts() -> SynthesisOptions {
        SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_depth(8)
    }

    #[test]
    fn permutations_enumerate_factorially() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(2).len(), 2);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        assert_eq!(permutations(2)[0], vec![0, 1]); // identity first
    }

    #[test]
    fn swap_becomes_free_with_output_permutation() {
        // SWAP needs 3 CNOTs normally, 0 gates with output relabeling.
        let spec = Spec::from_permutation(&Permutation::from_fn(2, |v| ((v & 1) << 1) | (v >> 1)));
        let plain = crate::synthesize(&spec, &opts()).unwrap();
        assert_eq!(plain.depth(), 3);
        let permuted = synthesize_with_output_permutation(&spec, &opts()).unwrap();
        assert_eq!(permuted.result.depth(), 0);
        assert!(!permuted.is_identity_permutation());
        assert_eq!(permuted.permutation, vec![1, 0]);
    }

    #[test]
    fn identity_permutation_preferred_when_depths_tie() {
        // CNOT: already minimal at depth 1 with identity labeling.
        let spec = Spec::from_permutation(&Permutation::from_fn(2, |v| v ^ ((v & 1) << 1)));
        let permuted = synthesize_with_output_permutation(&spec, &opts()).unwrap();
        assert_eq!(permuted.result.depth(), 1);
        assert!(permuted.is_identity_permutation());
    }

    #[test]
    fn permuted_depth_never_exceeds_plain_depth() {
        use qsyn_revlogic::benchmarks::random_permutation;
        for seed in 0..5u64 {
            let spec = Spec::from_permutation(&random_permutation(2, seed + 11));
            let plain = crate::synthesize(&spec, &opts()).unwrap();
            let permuted = synthesize_with_output_permutation(&spec, &opts()).unwrap();
            assert!(
                permuted.result.depth() <= plain.depth(),
                "seed {seed}: {} > {}",
                permuted.result.depth(),
                plain.depth()
            );
        }
    }

    #[test]
    fn solutions_realize_the_permuted_spec() {
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![2, 0, 3, 1]));
        let permuted = synthesize_with_output_permutation(&spec, &opts()).unwrap();
        let pspec = permute_spec(&spec, &permuted.permutation).unwrap();
        for c in permuted.result.solutions().circuits() {
            assert!(pspec.is_realized_by(c));
            // And routing output line permutation[j] to spec line j yields
            // the original function on every cared bit.
            for row in 0..spec.num_rows() as u32 {
                let out = c.simulate(row);
                let r = spec.row(row);
                for (j, &p) in permuted.permutation.iter().enumerate() {
                    let bit = 1u32 << j;
                    if r.care & bit != 0 {
                        assert_eq!((out >> p) & 1, (r.value >> j) & 1, "row {row} line {j}");
                    }
                }
            }
        }
    }

    #[test]
    fn permute_spec_roundtrip_under_inverse() {
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![2, 0, 3, 1]));
        let p = vec![1u32, 0];
        let permuted = permute_spec(&spec, &p).unwrap();
        let back = permute_spec(&permuted, &p).unwrap();
        assert_eq!(back.rows(), spec.rows());
    }

    #[test]
    fn classes_collapse_and_stats_account_for_the_probe_space() {
        // hwb4 is conjugation-symmetric under line rotation: its 24
        // permuted specs collapse to 10 classes (all distinct as tables).
        let spec = qsyn_revlogic::benchmarks::by_name("hwb4").unwrap().spec;
        let options = opts();
        let classes = build_probe_classes(&spec, &permutations(4), &options);
        assert_eq!(classes.len(), 10);
        assert_eq!(classes.iter().map(|c| c.members).sum::<u64>(), 24);
        // The identity permutation leads the first class.
        assert_eq!(classes[0].permutation, vec![0, 1, 2, 3]);
        // Fully don't-care output lines are interchangeable: an embedded
        // single-output function on 4 lines collapses much further.
        let rd32 = qsyn_revlogic::benchmarks::by_name("rd32-v0").unwrap().spec;
        let classes = build_probe_classes(&rd32, &permutations(4), &options);
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn floors_transfer_across_class_members() {
        // Every member of a class shares the representative's lower bound:
        // the differing-line count is conjugation-invariant.
        let spec = qsyn_revlogic::benchmarks::by_name("hwb4").unwrap().spec;
        let options = opts();
        let luts = sigma_luts(&permutations(4), 4);
        for p in permutations(4) {
            let permuted = permute_spec(&spec, &p).unwrap();
            let direct = depth_lower_bound(&permuted, &options);
            let key = conjugation_key(permuted.rows(), &luts);
            let canonical = Spec::new_incomplete(4, key).unwrap();
            assert_eq!(direct, depth_lower_bound(&canonical, &options), "{p:?}");
        }
    }

    #[test]
    fn pruned_search_reports_probe_savings() {
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![2, 0, 3, 1]));
        let permuted = synthesize_with_output_permutation(&spec, &opts()).unwrap();
        let s = permuted.stats;
        assert_eq!(s.permutations, 2);
        assert!(s.classes <= s.permutations);
        assert!(s.engines_built <= s.classes);
        assert!(s.probes_run >= 1);
    }

    proptest::proptest! {
        // Each case runs a pruned AND a brute-force n! search; keep the
        // count modest and the specs small (n ≤ 4, sparse cares at n=4).
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        #[test]
        fn prop_pruned_matches_brute_force(lines in 2u32..=4, seed in 0u64..5000) {
            use proptest::prelude::{prop_assert, prop_assert_eq};
            use qsyn_revlogic::benchmarks::{random_incomplete_spec, random_permutation};
            // Complete random permutations on 4 lines can be deep; keep
            // them for n ≤ 3 and exercise n = 4 through sparse
            // incompletely-specified functions (always realizable).
            let spec = match lines {
                4 => random_incomplete_spec(4, seed, 350),
                _ => {
                    if seed % 2 == 0 {
                        Spec::from_permutation(&random_permutation(lines, seed))
                    } else {
                        random_incomplete_spec(lines, seed, 600)
                    }
                }
            };
            let options = opts();
            let mut session = SynthesisSession::new();
            let pruned =
                synthesize_with_output_permutation_in(&spec, &options, &mut session).unwrap();
            let brute =
                synthesize_with_output_permutation_brute_in(&spec, &options, &mut session)
                    .unwrap();
            prop_assert_eq!(pruned.result.depth(), brute.result.depth());
            prop_assert_eq!(&pruned.permutation, &brute.permutation);
            let pspec = permute_spec(&spec, &pruned.permutation).unwrap();
            for c in pruned.result.solutions().circuits() {
                prop_assert!(pspec.is_realized_by(c));
            }
        }
    }

    #[test]
    fn pruned_agrees_with_brute_force_on_small_specs() {
        use qsyn_revlogic::benchmarks::{random_incomplete_spec, random_permutation};
        let options = opts();
        let mut session = SynthesisSession::new();
        let mut specs = Vec::new();
        for seed in 0..4u64 {
            specs.push(Spec::from_permutation(&random_permutation(3, seed)));
            specs.push(random_incomplete_spec(3, seed, 700));
        }
        for spec in &specs {
            let pruned =
                synthesize_with_output_permutation_in(spec, &options, &mut session).unwrap();
            let brute =
                synthesize_with_output_permutation_brute_in(spec, &options, &mut session).unwrap();
            assert_eq!(pruned.result.depth(), brute.result.depth());
            assert_eq!(pruned.permutation, brute.permutation);
            assert!(
                pruned.stats.probes_run
                    <= pruned.stats.permutations * (brute.result.depth() as u64 + 1)
            );
        }
    }
}
