//! Synthesis with output permutation — the follow-up direction of the same
//! group ("Reversible Logic Synthesis with Output Permutation"): since
//! output lines are just signal names, a realization is also acceptable if
//! its outputs match the specification *up to a permutation of the lines*.
//! Exploiting this freedom often saves gates (a SWAP costs three CNOTs if
//! it has to be realized, but nothing if it can be absorbed into the
//! output labeling).
//!
//! The implementation follows the iterative-deepening flow of Figure 1,
//! but each depth is checked against every line permutation of the
//! specification (the search is minimal in the gate count, and among the
//! depth-minimal options the identity permutation is preferred).

use crate::driver::{synthesize_in, SynthesisResult};
use crate::error::SynthesisError;
use crate::options::{Engine, SynthesisOptions};
use crate::session::{ResourceGovernor, SynthesisSession};
use crate::{BddEngine, DepthSolver, QbfEngine, SatEngine};
use qsyn_revlogic::{Spec, SpecError};

/// A successful output-permutation synthesis.
#[derive(Clone, Debug)]
pub struct PermutedSynthesisResult {
    /// The synthesis result for the permuted specification.
    pub result: SynthesisResult,
    /// `permutation[j]` = circuit output line that drives specification
    /// line `j` (identity when no permutation was needed).
    pub permutation: Vec<u32>,
}

impl PermutedSynthesisResult {
    /// `true` if the identity permutation was used.
    pub fn is_identity_permutation(&self) -> bool {
        self.permutation
            .iter()
            .enumerate()
            .all(|(i, &p)| i as u32 == p)
    }
}

/// All permutations of `0..n` in lexicographic order (identity first).
fn permutations(n: u32) -> Vec<Vec<u32>> {
    let mut all = Vec::new();
    let mut current: Vec<u32> = (0..n).collect();
    let mut used = vec![false; n as usize];
    fn rec(
        n: u32,
        pos: usize,
        current: &mut Vec<u32>,
        used: &mut Vec<bool>,
        all: &mut Vec<Vec<u32>>,
    ) {
        if pos == n as usize {
            all.push(current.clone());
            return;
        }
        for v in 0..n {
            if !used[v as usize] {
                used[v as usize] = true;
                current[pos] = v;
                rec(n, pos + 1, current, used, all);
                used[v as usize] = false;
            }
        }
    }
    rec(n, 0, &mut current, &mut used, &mut all);
    all
}

/// The specification a circuit must meet so that wiring its output line
/// `permutation[j]` to specification line `j` realizes `spec`.
///
/// # Errors
///
/// [`SpecError`] if the permuted table is detectably unrealizable (cannot
/// happen for permutations of realizable specs; surfaced for robustness).
pub fn permute_spec(spec: &Spec, permutation: &[u32]) -> Result<Spec, SpecError> {
    let n = spec.lines();
    assert_eq!(permutation.len(), n as usize, "permutation length mismatch");
    let rows = (0..spec.num_rows() as u32)
        .map(|i| {
            let r = spec.row(i);
            let mut value = 0u32;
            let mut care = 0u32;
            for (j, &p) in permutation.iter().enumerate() {
                let bit = 1u32 << j;
                if r.care & bit != 0 {
                    care |= 1 << p;
                    value |= ((r.value >> j) & 1) << p;
                }
            }
            qsyn_revlogic::SpecRow { value, care }
        })
        .collect();
    Spec::new_incomplete(n, rows)
}

/// Iterative-deepening synthesis over all output permutations: returns a
/// gate-count-minimal circuit together with the permutation under which it
/// realizes `spec`.
///
/// The returned depth is ≤ the plain [`crate::synthesize`] depth — output
/// relabeling can only help.
///
/// # Errors
///
/// As for [`crate::synthesize`]. The depth/time budgets apply to the run
/// as a whole.
pub fn synthesize_with_output_permutation(
    spec: &Spec,
    options: &SynthesisOptions,
) -> Result<PermutedSynthesisResult, SynthesisError> {
    synthesize_with_output_permutation_in(spec, options, &mut SynthesisSession::new())
}

/// [`synthesize_with_output_permutation`], but borrowing a caller-owned
/// [`SynthesisSession`]. All `n!` per-permutation engines draw their BDD
/// managers from the session's pool, which grows to the lock-step
/// high-water mark once and recycles managers thereafter.
///
/// # Errors
///
/// See [`synthesize_with_output_permutation`].
pub fn synthesize_with_output_permutation_in(
    spec: &Spec,
    options: &SynthesisOptions,
    session: &mut SynthesisSession,
) -> Result<PermutedSynthesisResult, SynthesisError> {
    if spec.lines() > 8 {
        return Err(SynthesisError::SpecTooLarge {
            lines: spec.lines(),
        });
    }
    session.begin_job();
    let perms = permutations(spec.lines());
    // One engine per permutation so the incremental BDD state is reused
    // across depths within each permutation.
    let mut candidates: Vec<(Vec<u32>, Spec)> = perms
        .into_iter()
        .filter_map(|p| permute_spec(spec, &p).ok().map(|s| (p, s)))
        .collect();
    // Per-permutation single-depth probing, all permutations advancing in
    // lock-step so the first hit is depth-minimal. Each engine builds its
    // own governor from `options` (arming the shared deadline once — see
    // `ResourceGovernor::arm`) and checks a manager out of the session
    // pool.
    let mut engines: Vec<Box<dyn DepthSolver>> = candidates
        .iter()
        .map(|(_, s)| -> Box<dyn DepthSolver> {
            match options.engine {
                Engine::Bdd => Box::new(BddEngine::new_in(s, options, session)),
                Engine::Qbf => Box::new(QbfEngine::new_in(s, options, session)),
                Engine::Sat => Box::new(SatEngine::new_in(s, options, session)),
            }
        })
        .collect();
    let governor = ResourceGovernor::from_options(options);
    governor.arm();
    let mut winner: Option<(usize, u32)> = None;
    'deepen: for d in 0..=options.max_depth {
        governor.check(d)?;
        for (idx, engine) in engines.iter_mut().enumerate() {
            if engine.solve_depth(d)?.is_some() {
                winner = Some((idx, d));
                break 'deepen;
            }
        }
    }
    let Some((idx, d)) = winner else {
        return Err(SynthesisError::DepthLimitReached {
            max_depth: options.max_depth,
        });
    };
    let (permutation, permuted_spec) = candidates.swap_remove(idx);
    // Drop the probe engines first so their pooled managers return to the
    // session before the winner re-runs.
    drop(engines);
    // Re-run the stock driver on the winning spec to get a fully-populated
    // result (timings, engine label); its minimal depth is d by
    // construction.
    let result = {
        let mut capped = options.clone();
        capped.max_depth = d;
        synthesize_in(&permuted_spec, &capped, session)?
    };
    debug_assert_eq!(result.depth(), d);
    Ok(PermutedSynthesisResult {
        result,
        permutation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Engine;
    use qsyn_revlogic::{GateLibrary, Permutation};

    fn opts() -> SynthesisOptions {
        SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_depth(8)
    }

    #[test]
    fn permutations_enumerate_factorially() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(2).len(), 2);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        assert_eq!(permutations(2)[0], vec![0, 1]); // identity first
    }

    #[test]
    fn swap_becomes_free_with_output_permutation() {
        // SWAP needs 3 CNOTs normally, 0 gates with output relabeling.
        let spec = Spec::from_permutation(&Permutation::from_fn(2, |v| ((v & 1) << 1) | (v >> 1)));
        let plain = crate::synthesize(&spec, &opts()).unwrap();
        assert_eq!(plain.depth(), 3);
        let permuted = synthesize_with_output_permutation(&spec, &opts()).unwrap();
        assert_eq!(permuted.result.depth(), 0);
        assert!(!permuted.is_identity_permutation());
        assert_eq!(permuted.permutation, vec![1, 0]);
    }

    #[test]
    fn identity_permutation_preferred_when_depths_tie() {
        // CNOT: already minimal at depth 1 with identity labeling.
        let spec = Spec::from_permutation(&Permutation::from_fn(2, |v| v ^ ((v & 1) << 1)));
        let permuted = synthesize_with_output_permutation(&spec, &opts()).unwrap();
        assert_eq!(permuted.result.depth(), 1);
        assert!(permuted.is_identity_permutation());
    }

    #[test]
    fn permuted_depth_never_exceeds_plain_depth() {
        use qsyn_revlogic::benchmarks::random_permutation;
        for seed in 0..5u64 {
            let spec = Spec::from_permutation(&random_permutation(2, seed + 11));
            let plain = crate::synthesize(&spec, &opts()).unwrap();
            let permuted = synthesize_with_output_permutation(&spec, &opts()).unwrap();
            assert!(
                permuted.result.depth() <= plain.depth(),
                "seed {seed}: {} > {}",
                permuted.result.depth(),
                plain.depth()
            );
        }
    }

    #[test]
    fn solutions_realize_the_permuted_spec() {
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![2, 0, 3, 1]));
        let permuted = synthesize_with_output_permutation(&spec, &opts()).unwrap();
        let pspec = permute_spec(&spec, &permuted.permutation).unwrap();
        for c in permuted.result.solutions().circuits() {
            assert!(pspec.is_realized_by(c));
            // And routing output line permutation[j] to spec line j yields
            // the original function on every cared bit.
            for row in 0..spec.num_rows() as u32 {
                let out = c.simulate(row);
                let r = spec.row(row);
                for (j, &p) in permuted.permutation.iter().enumerate() {
                    let bit = 1u32 << j;
                    if r.care & bit != 0 {
                        assert_eq!((out >> p) & 1, (r.value >> j) & 1, "row {row} line {j}");
                    }
                }
            }
        }
    }

    #[test]
    fn permute_spec_roundtrip_under_inverse() {
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![2, 0, 3, 1]));
        let p = vec![1u32, 0];
        let permuted = permute_spec(&spec, &p).unwrap();
        let back = permute_spec(&permuted, &p).unwrap();
        assert_eq!(back.rows(), spec.rows());
    }
}
