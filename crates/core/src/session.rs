//! Per-worker synthesis sessions: recyclable BDD managers and a unified
//! resource governor.
//!
//! # Why sessions
//!
//! A `qsyn batch` run multiplies the paper's per-depth oracle calls into
//! thousands of engine constructions, and until this module existed every
//! one of them built its state — BDD [`Manager`], solver, scratch — from
//! scratch, then threw the grown hash tables away. A [`SynthesisSession`]
//! is the per-worker context that survives across jobs: it owns a
//! [`ManagerPool`] of recyclable managers ([`Manager::reset`] clears
//! contents but keeps allocated capacity, so the unique table, computed
//! table and arena stay warm), and a job counter for reporting.
//!
//! # Why a pool and not a single manager
//!
//! The permuted search drives up to `n!` engines in lock step, each
//! needing its own manager at the same time. The pool starts empty, grows
//! to the high-water mark of simultaneously live managers on the first
//! job, and recycles them all afterwards — steady-state batch work
//! allocates no new arenas at all.
//!
//! # Resource governance
//!
//! A [`ResourceGovernor`] is the *only* component that raises
//! [`SynthesisError::BudgetExceeded`]: it folds the wall-clock deadline,
//! the live-BDD-node budget, the SAT-conflict/QBF-decision budget and the
//! [`CancelToken`] behind one [`check`](ResourceGovernor::check) surface.
//! Engines never hand-roll a deadline, node-limit or cancellation test —
//! they ask their governor, so every engine reports exhaustion
//! identically and a future budget kind needs exactly one new method
//! here.

use crate::cancel::CancelToken;
use crate::error::{Resource, SynthesisError};
use crate::options::SynthesisOptions;
use qsyn_bdd::Manager;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Unified budget enforcement for one synthesis run; see the module docs.
///
/// Cheap to clone: clones share the underlying [`CancelToken`], so a
/// governor handed to an engine observes the same stop conditions as the
/// driver's.
#[derive(Clone, Debug)]
pub struct ResourceGovernor {
    cancel: CancelToken,
    time_budget: Option<Duration>,
    node_limit: usize,
    conflict_limit: u64,
}

impl ResourceGovernor {
    /// A governor enforcing the budgets configured in `options`, polling
    /// the options' [`CancelToken`].
    pub fn from_options(options: &SynthesisOptions) -> ResourceGovernor {
        ResourceGovernor {
            cancel: options.cancel.clone(),
            time_budget: options.time_budget,
            node_limit: options.bdd_node_limit,
            conflict_limit: options.conflict_limit,
        }
    }

    /// Starts the wall-clock budget, once: if the token already carries a
    /// deadline (an outer driver armed it, or the batch scheduler set a
    /// per-job deadline), the earlier arming stands — re-entering the
    /// driver must never extend a run's budget.
    pub fn arm(&self) {
        if let Some(budget) = self.time_budget {
            if !self.cancel.has_deadline() {
                self.cancel.set_deadline(Instant::now() + budget);
            }
        }
    }

    /// Polls the cancel flag and the deadline, attributing a failure to
    /// `depth`.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::Cancelled`], or [`SynthesisError::BudgetExceeded`]
    /// with [`Resource::WallClock`].
    pub fn check(&self, depth: u32) -> Result<(), SynthesisError> {
        self.cancel.check(depth)
    }

    /// The live-BDD-node budget.
    pub fn node_limit(&self) -> usize {
        self.node_limit
    }

    /// The per-depth SAT-conflict / QBF-decision budget.
    pub fn conflict_limit(&self) -> u64 {
        self.conflict_limit
    }

    /// The governed token (for merging into sub-tokens).
    pub fn token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The node budget ran out at `depth` with `spent` live nodes.
    pub fn nodes_exceeded(&self, depth: u32, spent: usize) -> SynthesisError {
        SynthesisError::BudgetExceeded {
            depth,
            resource: Resource::BddNodes,
            spent: spent as u64,
            limit: self.node_limit as u64,
        }
    }

    /// The conflict budget ran out at `depth` after `spent` conflicts.
    pub fn conflicts_exceeded(&self, depth: u32, spent: u64) -> SynthesisError {
        SynthesisError::BudgetExceeded {
            depth,
            resource: Resource::SatConflicts,
            spent,
            limit: self.conflict_limit,
        }
    }

    /// The QDPLL decision budget ran out at `depth` after `spent`
    /// decisions.
    pub fn decisions_exceeded(&self, depth: u32, spent: u64) -> SynthesisError {
        SynthesisError::BudgetExceeded {
            depth,
            resource: Resource::QbfDecisions,
            spent,
            limit: self.conflict_limit,
        }
    }

    /// An abort probe for [`Manager::set_interrupt_poll`]: fires when the
    /// governed token is cancelled or its deadline has passed, so a single
    /// giant BDD operation stops mid-recursion instead of running to
    /// completion. The manager latches the interrupt and collapses results
    /// to ⊥; the engine's next [`check`](Self::check) turns that into the
    /// structured error.
    ///
    /// Carries the fault-plane site `bdd.gc-sweep`, polled at the BDD
    /// safe points (garbage-collection entry and the construction-stride
    /// poll): an injected fault expires the governed token's deadline, so
    /// the interrupt latches and the engine reports a wall-clock budget
    /// trip exactly as a real deadline would — never the fatal
    /// "interrupted without a tripped token" invariant error.
    pub fn interrupt_probe(&self) -> Box<dyn Fn() -> bool + Send> {
        let token = self.cancel.clone();
        Box::new(move || {
            if qsyn_faults::hit(qsyn_faults::Site::BddGcSweep).is_some() {
                token.set_deadline(Instant::now());
            }
            token.is_cancelled() || token.deadline_expired()
        })
    }

    /// The same probe shaped for
    /// [`Solver::set_budget_callback`](qsyn_sat::Solver::set_budget_callback):
    /// aborts CDCL propagation when the run is cancelled or out of time.
    ///
    /// Carries the fault-plane site `sat.propagate`: an injected fault
    /// expires the governed token's deadline, so the abort latches and the
    /// engine's next check reports a wall-clock budget trip exactly as a
    /// real deadline would.
    pub fn sat_abort_probe(&self) -> Box<dyn FnMut() -> bool + Send> {
        let token = self.cancel.clone();
        Box::new(move || {
            if qsyn_faults::hit(qsyn_faults::Site::SatPropagate).is_some() {
                token.set_deadline(Instant::now());
            }
            token.is_cancelled() || token.deadline_expired()
        })
    }

    /// Polls the fault-plane site `qbf.decision` between QDPLL
    /// decision-budget chunks; an injected fault reports the decision
    /// budget as exhausted at `spent` decisions.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::BudgetExceeded`] with [`Resource::QbfDecisions`]
    /// when the armed plan fires here.
    pub fn qbf_fault_probe(&self, depth: u32, spent: u64) -> Result<(), SynthesisError> {
        if qsyn_faults::hit(qsyn_faults::Site::QbfDecision).is_some() {
            return Err(self.decisions_exceeded(depth, spent));
        }
        Ok(())
    }
}

/// A shared pool of recyclable BDD managers; see the module docs.
///
/// Clones share the pool. [`checkout`](ManagerPool::checkout) pops a
/// retired manager (resetting it to the requested variable count, keeping
/// its allocated capacity) or allocates a fresh one; dropping the returned
/// [`PooledManager`] checks the manager back in.
///
/// # Quarantine
///
/// A manager is **quarantined** — dropped on the floor instead of checked
/// back in — when its loan ends during a panic unwind (the job that held
/// it crashed mid-build, so its arena state is suspect), when the holder
/// calls [`PooledManager::quarantine`] explicitly, or when the post-job
/// structural audit fails at check-in. Quarantined managers are counted in
/// [`SessionStats::quarantined`] and are never re-issued: the next
/// checkout allocates fresh.
#[derive(Clone, Debug, Default)]
pub struct ManagerPool {
    inner: Arc<Mutex<PoolState>>,
}

#[derive(Debug, Default)]
struct PoolState {
    idle: Vec<Manager>,
    quarantined: u64,
    retries: u64,
}

/// Largest manager the check-in audit will walk; beyond this the audit is
/// skipped rather than stalling the worker between jobs.
const CHECK_IN_AUDIT_NODE_CAP: usize = 100_000;

impl ManagerPool {
    /// An empty pool.
    pub fn new() -> ManagerPool {
        ManagerPool::default()
    }

    /// A manager over `num_vars` variables: recycled if one is available,
    /// freshly allocated otherwise.
    ///
    /// # Panics
    ///
    /// Only under fault injection: the fault-plane site
    /// `session.checkout` models a poisoned manager surfacing while a
    /// worker prepares a job.
    pub fn checkout(&self, num_vars: u32) -> PooledManager {
        if qsyn_faults::hit(qsyn_faults::Site::SessionCheckout).is_some() {
            panic!("fault-plane: injected panic at session.checkout");
        }
        let recycled = self.inner.lock().expect("manager pool lock").idle.pop();
        let m = match recycled {
            Some(mut m) => {
                m.reset(num_vars);
                m
            }
            None => Manager::new(num_vars),
        };
        PooledManager {
            m: Some(m),
            pool: self.clone(),
        }
    }

    /// Number of managers currently checked in.
    pub fn idle(&self) -> usize {
        self.inner.lock().expect("manager pool lock").idle.len()
    }

    /// Managers quarantined so far (never re-issued).
    pub fn quarantined(&self) -> u64 {
        self.inner.lock().expect("manager pool lock").quarantined
    }

    /// Records one supervised retry attempt (see
    /// [`SessionStats::retries`]); called by the batch scheduler.
    pub fn note_retry(&self) {
        self.inner.lock().expect("manager pool lock").retries += 1;
    }

    /// Sums the cumulative counters of every checked-in manager.
    fn stats(&self) -> SessionStats {
        let pool = self.inner.lock().expect("manager pool lock");
        let mut agg = SessionStats {
            managers: pool.idle.len() as u64,
            quarantined: pool.quarantined,
            retries: pool.retries,
            ..SessionStats::default()
        };
        for m in pool.idle.iter() {
            // concheck resolves `m.stats()` by bare name and merges it
            // with this very function, inferring a self.inner re-lock.
            // `m` is a `Manager`, whose `stats()` reads plain counters
            // and takes no lock.
            let s = m.stats(); // lint: allow(lock-order)
            agg.resets += s.resets;
            agg.peak_live = agg.peak_live.max(s.peak_live);
            agg.cache_hits += s.cache_hits;
            agg.cache_misses += s.cache_misses;
            agg.cache_evictions += s.cache_evictions;
            agg.gc_runs += s.gc_runs;
            agg.gc_freed += s.gc_freed;
        }
        agg
    }

    fn check_in(&self, mut m: Manager) {
        // A returning manager must pass the structural audit before it can
        // serve another job; a corrupted arena is quarantined, not
        // recycled. Walking the arena costs O(nodes) — enough to dominate
        // small jobs — so release builds only pay it while the fault plane
        // is *armed* (injected faults are what can leave an arena torn,
        // and the chaos harness depends on the quarantine); debug builds
        // always audit.
        let audit = (cfg!(debug_assertions) || qsyn_faults::FaultPlane::armed())
            && m.node_count() <= CHECK_IN_AUDIT_NODE_CAP;
        if audit && qsyn_audit::bdd_audit::audit_manager(&m).is_err() {
            self.note_quarantine();
            return;
        }
        // Never retain a caller's abort probe across jobs: the closure
        // captures a token whose lifetime ends with the job.
        m.set_interrupt_poll(None);
        self.inner.lock().expect("manager pool lock").idle.push(m);
    }

    fn note_quarantine(&self) {
        // The manager itself is dropped by the caller going out of scope.
        self.inner.lock().expect("manager pool lock").quarantined += 1;
    }
}

/// A [`Manager`] on loan from a [`ManagerPool`]; derefs to the manager
/// and checks itself back in on drop — unless the drop happens during a
/// panic unwind, in which case the manager is quarantined (see
/// [`ManagerPool`]).
#[derive(Debug)]
pub struct PooledManager {
    m: Option<Manager>,
    pool: ManagerPool,
}

impl PooledManager {
    /// Quarantines the manager explicitly: it is dropped, counted in
    /// [`SessionStats::quarantined`], and never returns to the pool. Use
    /// when the holder knows the manager's state is suspect (a failed
    /// audit, an inconsistent result) without a panic in flight.
    pub fn quarantine(mut self) {
        if self.m.take().is_some() {
            self.pool.note_quarantine();
        }
    }
}

impl std::ops::Deref for PooledManager {
    type Target = Manager;
    fn deref(&self) -> &Manager {
        self.m.as_ref().expect("manager present until drop")
    }
}

impl std::ops::DerefMut for PooledManager {
    fn deref_mut(&mut self) -> &mut Manager {
        self.m.as_mut().expect("manager present until drop")
    }
}

impl Drop for PooledManager {
    fn drop(&mut self) {
        if let Some(m) = self.m.take() {
            // A loan ending mid-unwind means the owning job panicked with
            // the manager possibly half-updated; poison it out of the pool
            // instead of handing the wreckage to the next job.
            if std::thread::panicking() {
                drop(m);
                self.pool.note_quarantine();
            } else {
                self.pool.check_in(m);
            }
        }
    }
}

/// Aggregated per-session counters, for `qsyn batch --stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Jobs run through the session.
    pub jobs: u64,
    /// Managers the pool owns (its high-water mark of simultaneous use).
    pub managers: u64,
    /// Total manager recycles ([`Manager::reset`] calls).
    pub resets: u64,
    /// Highest live-node count any manager reached.
    pub peak_live: usize,
    /// Computed-table hits, summed.
    pub cache_hits: u64,
    /// Computed-table misses, summed.
    pub cache_misses: u64,
    /// Computed-table evictions, summed.
    pub cache_evictions: u64,
    /// Garbage collections, summed.
    pub gc_runs: u64,
    /// Nodes reclaimed by collections, summed.
    pub gc_freed: u64,
    /// Managers quarantined (dropped after a panic, an explicit
    /// quarantine, or a failed check-in audit) — never re-issued.
    pub quarantined: u64,
    /// Supervised retry attempts recorded by the batch scheduler.
    pub retries: u64,
    /// Output-permutation probe calls actually issued by pruned searches
    /// (vs the `perm_space` a blind `n!` lock-step would have driven).
    pub perm_probes: u64,
    /// Permutations the pruned searches covered (`Σ n!` over jobs).
    pub perm_space: u64,
    /// Probe equivalence classes those permutations collapsed into.
    pub perm_classes: u64,
    /// Per-depth probes skipped via transferred lower-bound floors.
    pub perm_floor_skips: u64,
}

impl SessionStats {
    /// Merges another session's counters into this one (for aggregating
    /// across batch workers).
    pub fn merge(&mut self, other: &SessionStats) {
        self.jobs += other.jobs;
        self.managers += other.managers;
        self.resets += other.resets;
        self.peak_live = self.peak_live.max(other.peak_live);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.gc_runs += other.gc_runs;
        self.gc_freed += other.gc_freed;
        self.quarantined += other.quarantined;
        self.retries += other.retries;
        self.perm_probes += other.perm_probes;
        self.perm_space += other.perm_space;
        self.perm_classes += other.perm_classes;
        self.perm_floor_skips += other.perm_floor_skips;
    }

    /// Computed-table hit rate in percent (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            100.0 * self.cache_hits as f64 / lookups as f64
        }
    }
}

impl std::fmt::Display for SessionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} jobs, {} managers, {} resets, peak {} live nodes, \
             cache {} hits / {} misses ({:.1}% hit rate, {} evictions), \
             {} GCs freeing {} nodes, {} retries, {} quarantined",
            self.jobs,
            self.managers,
            self.resets,
            self.peak_live,
            self.cache_hits,
            self.cache_misses,
            self.hit_rate(),
            self.cache_evictions,
            self.gc_runs,
            self.gc_freed,
            self.retries,
            self.quarantined,
        )?;
        if self.perm_space > 0 {
            write!(
                f,
                ", perm search: {} probes over {} classes from {} permutations \
                 ({} floor skips)",
                self.perm_probes, self.perm_classes, self.perm_space, self.perm_floor_skips,
            )?;
        }
        Ok(())
    }
}

/// Per-worker synthesis context; see the module docs.
///
/// Create one per worker thread, pass it to the `*_in` entry points
/// ([`synthesize_in`](crate::synthesize_in),
/// [`synthesize_with_output_permutation_in`](crate::permuted::synthesize_with_output_permutation_in))
/// for every job the worker runs, and read [`stats`](Self::stats) at the
/// end. A session is deliberately cheap when unused: the pool starts
/// empty.
#[derive(Debug, Default)]
pub struct SynthesisSession {
    pool: ManagerPool,
    jobs: u64,
    perm: crate::permuted::PermutedSearchStats,
}

impl SynthesisSession {
    /// A fresh session with an empty manager pool.
    pub fn new() -> SynthesisSession {
        SynthesisSession::default()
    }

    /// The session's manager pool (a shared handle).
    pub fn pool(&self) -> ManagerPool {
        self.pool.clone()
    }

    /// Records the start of a job (for [`stats`](Self::stats)).
    pub fn begin_job(&mut self) {
        self.jobs += 1;
    }

    /// Accumulates one pruned permutation search's probe-space counters
    /// (surfaced through [`SessionStats`] for `qsyn batch --stats`).
    pub fn note_permuted_search(&mut self, s: &crate::permuted::PermutedSearchStats) {
        self.perm.permutations += s.permutations;
        self.perm.classes += s.classes;
        self.perm.engines_built += s.engines_built;
        self.perm.probes_run += s.probes_run;
        self.perm.depth_floor_skips += s.depth_floor_skips;
    }

    /// Aggregated counters over everything this session has run. Call
    /// between jobs: managers still checked out are not counted.
    pub fn stats(&self) -> SessionStats {
        let mut s = self.pool.stats();
        s.jobs = self.jobs;
        s.perm_probes = self.perm.probes_run;
        s.perm_space = self.perm.permutations;
        s.perm_classes = self.perm.classes;
        s.perm_floor_skips = self.perm.depth_floor_skips;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Engine;
    use qsyn_revlogic::GateLibrary;

    fn opts() -> SynthesisOptions {
        SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd)
    }

    #[test]
    fn pool_recycles_managers() {
        let pool = ManagerPool::new();
        let stamp;
        {
            let mut m = pool.checkout(4);
            let a = m.var(0);
            let b = m.var(1);
            let _ = m.and(a, b);
            stamp = m.stats().allocated;
            assert!(stamp > 0);
        }
        assert_eq!(pool.idle(), 1);
        let m2 = pool.checkout(6);
        assert_eq!(pool.idle(), 0);
        assert_eq!(m2.stats().resets, 1, "checkout reuses the retired manager");
        assert_eq!(m2.node_count(), 2, "reset manager starts empty");
    }

    #[test]
    fn pool_grows_under_simultaneous_checkout() {
        let pool = ManagerPool::new();
        let a = pool.checkout(2);
        let b = pool.checkout(2);
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 2);
        let c = pool.checkout(2);
        let d = pool.checkout(2);
        assert_eq!(pool.idle(), 0);
        drop(c);
        drop(d);
        assert_eq!(pool.idle(), 2, "steady state allocates no new managers");
    }

    #[test]
    fn session_stats_aggregate_cumulative_counters() {
        let mut session = SynthesisSession::new();
        let pool = session.pool();
        for _ in 0..3 {
            session.begin_job();
            let mut m = pool.checkout(3);
            let x = m.var(0);
            let y = m.var(1);
            let _ = m.xor(x, y);
        }
        let s = session.stats();
        assert_eq!(s.jobs, 3);
        assert_eq!(s.managers, 1, "one worker at a time needs one manager");
        assert_eq!(s.resets, 2, "first job allocates, later jobs recycle");
        assert!(s.cache_misses > 0, "counters survive recycling");
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn governor_reports_each_resource_kind() {
        let g = ResourceGovernor::from_options(&opts());
        assert_eq!(
            g.nodes_exceeded(2, 42),
            SynthesisError::BudgetExceeded {
                depth: 2,
                resource: Resource::BddNodes,
                spent: 42,
                limit: opts().bdd_node_limit as u64,
            }
        );
        assert!(matches!(
            g.conflicts_exceeded(1, 7),
            SynthesisError::BudgetExceeded {
                resource: Resource::SatConflicts,
                ..
            }
        ));
        assert!(matches!(
            g.decisions_exceeded(1, 7),
            SynthesisError::BudgetExceeded {
                resource: Resource::QbfDecisions,
                ..
            }
        ));
    }

    #[test]
    fn governor_arm_is_idempotent() {
        let options = opts().with_time_budget(Duration::from_secs(3600));
        let g = ResourceGovernor::from_options(&options);
        g.arm();
        assert!(options.cancel.has_deadline());
        assert!(g.check(0).is_ok());
        // A second arming (the permuted winner re-run) must not move the
        // deadline: expire it manually and re-arm.
        options
            .cancel
            .set_deadline(Instant::now() - Duration::from_millis(1));
        g.arm();
        assert!(g.check(0).is_err(), "re-arming must not extend the budget");
    }

    #[test]
    fn interrupt_probe_tracks_token() {
        let options = opts();
        let g = ResourceGovernor::from_options(&options);
        let probe = g.interrupt_probe();
        assert!(!probe());
        options.cancel.cancel();
        assert!(probe());
    }

    #[test]
    fn panicking_job_quarantines_its_manager() {
        let pool = ManagerPool::new();
        let p = pool.clone();
        let worker = std::thread::spawn(move || {
            let mut m = p.checkout(3);
            let a = m.var(0);
            let b = m.var(1);
            let _ = m.and(a, b);
            panic!("job crashed mid-build");
        });
        assert!(worker.join().is_err());
        assert_eq!(
            pool.idle(),
            0,
            "a panicking job's manager must never reach the next job"
        );
        assert_eq!(pool.quarantined(), 1);
        // The next checkout allocates fresh rather than recycling wreckage.
        let m = pool.checkout(3);
        assert_eq!(m.stats().resets, 0);
    }

    #[test]
    fn explicit_quarantine_never_reissues() {
        let pool = ManagerPool::new();
        let m = pool.checkout(2);
        m.quarantine();
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.quarantined(), 1);
        let m2 = pool.checkout(2);
        assert_eq!(m2.stats().resets, 0, "quarantined manager is not recycled");
    }

    #[test]
    fn stats_carry_quarantine_and_retry_counters() {
        let session = SynthesisSession::new();
        let pool = session.pool();
        pool.checkout(2).quarantine();
        pool.note_retry();
        pool.note_retry();
        let s = session.stats();
        assert_eq!(s.quarantined, 1);
        assert_eq!(s.retries, 2);
        let mut merged = SessionStats::default();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.quarantined, 2);
        assert_eq!(merged.retries, 4);
        let text = s.to_string();
        assert!(text.contains("2 retries") && text.contains("1 quarantined"));
    }

    #[test]
    fn checked_in_manager_loses_its_interrupt_probe() {
        let pool = ManagerPool::new();
        {
            let mut m = pool.checkout(2);
            m.set_interrupt_poll(Some(Box::new(|| true)));
        }
        let m = pool.checkout(2);
        assert!(!m.is_interrupted());
    }
}
