//! Cross-engine tests: all three engines must agree on minimal depths, and
//! every returned circuit must realize its specification.

use crate::driver::synthesize;
use crate::options::{Engine, QbfBackend, SatSelectEncoding, SynthesisOptions, VarOrder};
use proptest::prelude::*;
use qsyn_revlogic::benchmarks::random_permutation;
use qsyn_revlogic::{GateLibrary, Permutation, Spec};

fn mct_opts(engine: Engine) -> SynthesisOptions {
    SynthesisOptions::new(GateLibrary::mct(), engine).with_max_depth(8)
}

proptest! {
    // Exact synthesis is expensive; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_random_2_line_functions(seed in 0u64..5000) {
        let spec = Spec::from_permutation(&random_permutation(2, seed));
        let bdd = synthesize(&spec, &mct_opts(Engine::Bdd)).unwrap();
        let qbf = synthesize(&spec, &mct_opts(Engine::Qbf)).unwrap();
        let sat = synthesize(&spec, &mct_opts(Engine::Sat)).unwrap();
        prop_assert_eq!(bdd.depth(), qbf.depth());
        prop_assert_eq!(bdd.depth(), sat.depth());
        for r in [&bdd, &qbf, &sat] {
            for c in r.solutions().circuits() {
                prop_assert!(spec.is_realized_by(c));
            }
        }
    }

    #[test]
    fn bdd_solution_count_matches_brute_force(seed in 0u64..2000) {
        // Enumerate all MCT cascades (base-q counting) on 2 lines and
        // compare the count of minimal realizations with the BDD #SOL.
        let perm = random_permutation(2, seed);
        let spec = Spec::from_permutation(&perm);
        let gates = GateLibrary::mct().enumerate(2);
        let q = gates.len();
        let mut minimal: Option<(u32, u128)> = None;
        for d in 0..=6u32 {
            let total = (q as u64).pow(d);
            let mut count: u128 = 0;
            for code in 0..total {
                let mut rest = code;
                let circuit = qsyn_revlogic::Circuit::from_gates(
                    2,
                    (0..d).map(|_| {
                        let g = gates[(rest % q as u64) as usize];
                        rest /= q as u64;
                        g
                    }),
                );
                if spec.is_realized_by(&circuit) {
                    count += 1;
                }
            }
            if count > 0 {
                minimal = Some((d, count));
                break;
            }
        }
        let (min_d, brute_count) = minimal.expect("every 2-line function needs ≤ 6 MCT gates");
        let r = synthesize(&spec, &mct_opts(Engine::Bdd)).unwrap();
        prop_assert_eq!(r.depth(), min_d);
        prop_assert_eq!(r.solutions().count(), brute_count);
        prop_assert!(r.solutions().is_exhaustive());
    }

    #[test]
    fn engines_agree_on_random_incomplete_specs(
        seed in 0u64..3000,
        care in 200u32..900,
    ) {
        let spec = qsyn_revlogic::benchmarks::random_incomplete_spec(2, seed, care);
        let bdd = synthesize(&spec, &mct_opts(Engine::Bdd)).unwrap();
        let qbf = synthesize(&spec, &mct_opts(Engine::Qbf)).unwrap();
        let sat = synthesize(&spec, &mct_opts(Engine::Sat)).unwrap();
        prop_assert_eq!(bdd.depth(), qbf.depth());
        prop_assert_eq!(bdd.depth(), sat.depth());
        for r in [&bdd, &qbf, &sat] {
            for c in r.solutions().circuits() {
                prop_assert!(spec.is_realized_by(c));
            }
        }
        // Relaxing constraints can only help: the complete base function
        // bounds the incomplete spec's depth from above.
        let base = qsyn_revlogic::benchmarks::random_permutation(2, seed);
        let full = synthesize(
            &Spec::from_permutation(&base),
            &mct_opts(Engine::Bdd),
        )
        .unwrap();
        prop_assert!(bdd.depth() <= full.depth());
    }

    #[test]
    fn sat_encodings_agree(seed in 0u64..2000) {
        let spec = Spec::from_permutation(&random_permutation(2, seed));
        let one_hot = synthesize(
            &spec,
            &mct_opts(Engine::Sat).with_sat_encoding(SatSelectEncoding::OneHot),
        )
        .unwrap();
        let binary = synthesize(
            &spec,
            &mct_opts(Engine::Sat).with_sat_encoding(SatSelectEncoding::Binary),
        )
        .unwrap();
        prop_assert_eq!(one_hot.depth(), binary.depth());
    }

    #[test]
    fn bdd_ablations_agree(seed in 0u64..2000) {
        let spec = Spec::from_permutation(&random_permutation(2, seed));
        let base = synthesize(&spec, &mct_opts(Engine::Bdd)).unwrap();
        let flipped = synthesize(
            &spec,
            &mct_opts(Engine::Bdd).with_var_order(VarOrder::YThenX),
        )
        .unwrap();
        let scratch = synthesize(
            &spec,
            &mct_opts(Engine::Bdd).with_incremental(false),
        )
        .unwrap();
        prop_assert_eq!(base.depth(), flipped.depth());
        prop_assert_eq!(base.solutions().count(), flipped.solutions().count());
        prop_assert_eq!(base.depth(), scratch.depth());
        prop_assert_eq!(base.solutions().count(), scratch.solutions().count());
    }
}

#[test]
fn three_line_spot_check_across_engines() {
    // A 3-line function with a small minimal depth: Toffoli ∘ NOT.
    let perm = Permutation::from_fn(3, |v| {
        let after_not = v ^ 0b001;
        if after_not & 0b011 == 0b011 {
            after_not ^ 0b100
        } else {
            after_not
        }
    });
    let spec = Spec::from_permutation(&perm);
    let bdd = synthesize(&spec, &mct_opts(Engine::Bdd)).unwrap();
    let sat = synthesize(&spec, &mct_opts(Engine::Sat)).unwrap();
    let qbf = synthesize(&spec, &mct_opts(Engine::Qbf)).unwrap();
    assert_eq!(bdd.depth(), 2);
    assert_eq!(sat.depth(), 2);
    assert_eq!(qbf.depth(), 2);
}

#[test]
fn qdpll_backend_agrees_on_one_line() {
    let spec = Spec::from_permutation(&Permutation::from_map(1, vec![1, 0]));
    let exp = synthesize(&spec, &mct_opts(Engine::Qbf)).unwrap();
    let qd = synthesize(
        &spec,
        &mct_opts(Engine::Qbf).with_qbf_backend(QbfBackend::Qdpll),
    )
    .unwrap();
    assert_eq!(exp.depth(), qd.depth());
    assert_eq!(exp.depth(), 1);
}

#[test]
fn extended_library_never_increases_depth() {
    for seed in 0..8u64 {
        let spec = Spec::from_permutation(&random_permutation(3, seed));
        let mct = synthesize(
            &spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_depth(10),
        )
        .unwrap();
        let all = synthesize(
            &spec,
            &SynthesisOptions::new(GateLibrary::all(), Engine::Bdd).with_max_depth(10),
        )
        .unwrap();
        assert!(
            all.depth() <= mct.depth(),
            "seed {seed}: extended library worsened depth {} -> {}",
            mct.depth(),
            all.depth()
        );
        for c in all.solutions().circuits() {
            assert!(spec.is_realized_by(c));
        }
    }
}

#[test]
fn mixed_polarity_library_shortens_negative_control_functions() {
    // f flips line 1 iff line 0 is 0 — one mixed-polarity gate, but two
    // positive-control MCT gates (x₂ ⊕ ¬x₁ = CNOT then NOT).
    let perm = Permutation::from_fn(2, |v| if v & 1 == 0 { v ^ 2 } else { v });
    let spec = Spec::from_permutation(&perm);
    let plain = synthesize(&spec, &mct_opts(Engine::Bdd)).unwrap();
    let mixed = synthesize(
        &spec,
        &SynthesisOptions::new(GateLibrary::mct().with_mixed_polarity(), Engine::Bdd)
            .with_max_depth(8),
    )
    .unwrap();
    assert_eq!(plain.depth(), 2);
    assert_eq!(mixed.depth(), 1);
    for c in mixed.solutions().circuits() {
        assert!(spec.is_realized_by(c));
    }
}

#[test]
fn mixed_polarity_agrees_across_engines() {
    let spec = Spec::from_permutation(&random_permutation(2, 99));
    let lib = GateLibrary::mct().with_mixed_polarity();
    let mut depths = Vec::new();
    for engine in [Engine::Bdd, Engine::Qbf, Engine::Sat] {
        let r = synthesize(&spec, &SynthesisOptions::new(lib, engine).with_max_depth(8)).unwrap();
        assert!(spec.is_realized_by(&r.solutions().circuits()[0]));
        depths.push(r.depth());
    }
    assert!(depths.windows(2).all(|w| w[0] == w[1]), "{depths:?}");
}

#[test]
fn benchmark_3_17_minimal_depth_and_all_solutions() {
    let spec = qsyn_revlogic::benchmarks::spec_3_17();
    let r = synthesize(
        &spec,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_depth(8),
    )
    .unwrap();
    assert_eq!(r.depth(), 6, "3_17 needs six MCT gates");
    assert!(r.solutions().count() >= 1);
    assert!(r.solutions().is_exhaustive());
    let (min_qc, max_qc) = r.solutions().quantum_cost_range();
    assert!(min_qc <= max_qc);
    for c in r.solutions().circuits() {
        assert!(spec.is_realized_by(c));
    }
}

#[test]
fn wall_clock_budget_surfaces_identically_through_all_engines() {
    // A zero wall-clock budget must trip as `BudgetExceeded { WallClock }`
    // regardless of which engine is doing the work — the governor is the
    // single enforcement point.
    let spec = Spec::from_permutation(&Permutation::from_map(2, vec![3, 0, 1, 2]));
    for engine in [Engine::Bdd, Engine::Qbf, Engine::Sat] {
        let err = synthesize(
            &spec,
            &mct_opts(engine).with_time_budget(std::time::Duration::ZERO),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                crate::SynthesisError::BudgetExceeded {
                    resource: crate::Resource::WallClock,
                    ..
                }
            ),
            "{engine:?}: {err:?}"
        );
    }
}

#[test]
fn per_engine_budgets_surface_as_budget_exceeded() {
    // Each engine's own bottleneck resource reports through the same
    // variant, tagged with the engine-specific resource kind.
    let spec = Spec::from_permutation(&Permutation::from_map(3, vec![7, 1, 4, 3, 0, 2, 6, 5]));
    let cases: [(Engine, crate::Resource, SynthesisOptions); 3] = [
        (
            Engine::Bdd,
            crate::Resource::BddNodes,
            mct_opts(Engine::Bdd).with_bdd_node_limit(50),
        ),
        (
            Engine::Sat,
            crate::Resource::SatConflicts,
            mct_opts(Engine::Sat).with_conflict_limit(1),
        ),
        (
            Engine::Qbf,
            crate::Resource::SatConflicts,
            mct_opts(Engine::Qbf).with_conflict_limit(1),
        ),
    ];
    for (engine, resource, opts) in cases {
        let err = synthesize(&spec, &opts).unwrap_err();
        match err {
            crate::SynthesisError::BudgetExceeded {
                resource: got,
                spent,
                limit,
                ..
            } => {
                assert_eq!(got, resource, "{engine:?}");
                assert!(spent >= limit, "{engine:?}: spent {spent} < limit {limit}");
            }
            other => panic!("{engine:?}: expected BudgetExceeded, got {other:?}"),
        }
    }
}

#[test]
fn incomplete_rd32_synthesizes_with_dont_cares() {
    let spec = qsyn_revlogic::benchmarks::spec_rd32_v0();
    let r = synthesize(
        &spec,
        &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_depth(8),
    )
    .unwrap();
    assert!(r.depth() <= 6);
    for c in r.solutions().circuits() {
        assert!(spec.is_realized_by(c));
    }
}
