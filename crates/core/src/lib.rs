//! Exact synthesis of reversible logic via quantified Boolean formulas.
//!
//! This crate implements the contribution of *"Quantified Synthesis of
//! Reversible Logic"* (R. Wille, H. M. Le, G. W. Dueck, D. Große —
//! DATE 2008): minimal-gate-count synthesis of (incompletely specified)
//! reversible functions, formulated as
//!
//! ```text
//! ∃ y₁₁ … y_d⌈log q⌉  ∀ x₁ … x_n .  (F_d = f)
//! ```
//!
//! where `F_d` is a cascade of `d` *universal gates* — multiplexers over
//! every gate of the chosen [`GateLibrary`] — and `f` is the specification.
//! The iterative-deepening driver (Figure 1 of the paper) raises `d` from 0
//! until the formula holds, which guarantees minimality.
//!
//! Three interchangeable engines decide the per-depth question:
//!
//! * [`Engine::Bdd`] — the paper's Section 5.2: build `F_d = f` as a BDD
//!   with variable order `X, Y`, universally quantify the inputs, and read
//!   **all** minimal networks off the remaining BDD over the gate-select
//!   variables (enabling quantum-cost selection, Tables 2/3).
//! * [`Engine::Qbf`] — Section 5.1: Tseitin-transform the cascade and hand
//!   the prenex `∃Y ∀X ∃A` instance to a QBF solver.
//! * [`Engine::Sat`] — the baseline of \[9\]/\[22\]: instantiate the cascade
//!   constraints once per truth-table row and solve with CDCL (exponential
//!   encoding; the approach the paper improves on).
//!
//! # Example
//!
//! ```
//! use qsyn_core::{synthesize, Engine, SynthesisOptions};
//! use qsyn_revlogic::{benchmarks, GateLibrary};
//!
//! let spec = benchmarks::spec_3_17();
//! let result = synthesize(
//!     &spec,
//!     &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
//! )
//! .expect("3_17 is synthesizable");
//! assert_eq!(result.depth(), 6); // known minimal MCT gate count
//! // Every returned circuit realizes the specification:
//! for c in result.solutions().circuits() {
//!     assert!(spec.is_realized_by(c));
//! }
//! ```

#![warn(missing_docs)]

mod bdd_engine;
mod cancel;
mod driver;
mod encode;
pub mod equivalence;
mod error;
mod options;
pub mod permuted;
mod qbf_engine;
pub mod retry;
mod sat_engine;
mod session;
mod solutions;
pub mod transform;

pub use bdd_engine::BddEngine;
pub use cancel::CancelToken;
pub use driver::{
    depth_lower_bound, synthesize, synthesize_in, DepthOutcome, DepthSolver, SynthesisResult,
};
pub use error::{Resource, SynthesisError};
pub use options::{Engine, QbfBackend, SatSelectEncoding, SynthesisOptions, VarOrder};
pub use qbf_engine::QbfEngine;
pub use retry::{run_with_retry, Attempt, FailureKind, RetryOutcome, RetryPolicy};
pub use sat_engine::SatEngine;
pub use session::{ManagerPool, PooledManager, ResourceGovernor, SessionStats, SynthesisSession};
pub use solutions::SolutionSet;

// Re-export the domain types users need to drive the API.
pub use qsyn_revlogic::{Circuit, Gate, GateLibrary, Spec};

#[cfg(test)]
mod engine_tests;
