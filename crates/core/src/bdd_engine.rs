//! The BDD-based synthesis engine (Section 5.2 of the paper).
//!
//! The cascade `F_d` is maintained as a vector of output BDDs over the
//! inputs `X` and the gate-select variables `Y`, built incrementally as
//! `F_d = U_G(F_{d−1}, Y_d)`. For the per-depth check, `F_d = f` is
//! conjoined (with don't-care relaxation for incompletely specified
//! functions), the inputs are universally quantified, and the surviving
//! BDD over `Y` encodes **every** minimal network at once: each model is
//! one realization.

use crate::encode::{decode_circuit, select_bits};
use crate::error::SynthesisError;
use crate::options::{SynthesisOptions, VarOrder};
use crate::session::{ManagerPool, PooledManager, ResourceGovernor, SynthesisSession};
use crate::solutions::SolutionSet;
use qsyn_bdd::Bdd;
use qsyn_revlogic::{Circuit, Gate, Spec};

/// BDD-based depth oracle; see the module docs.
pub struct BddEngine {
    spec: Spec,
    options: SynthesisOptions,
    gates: Vec<Gate>,
    sbits: u32,
    governor: ResourceGovernor,
    pool: ManagerPool,
    built: Built,
}

/// The mutable BDD state of a (possibly partial) cascade construction.
struct Built {
    m: PooledManager,
    /// Variable index of each input line.
    x_vars: Vec<u32>,
    /// Select variables so far, level-major, LSB first.
    y_vars: Vec<u32>,
    /// Cascade outputs `F_d` per line, over `X ∪ Y`.
    state: Vec<Bdd>,
    /// ON-set and don't-care-set BDDs of the spec per line (over `X`).
    spec_on: Vec<Bdd>,
    spec_dc: Vec<Bdd>,
    depth: u32,
    /// Per-line gate-slot scratch for `extend_one_level`, reused across
    /// depths to avoid reallocating `n · 2^sbits` slot tables every level.
    slot_scratch: Vec<Vec<Bdd>>,
    /// Live-node count right after the last garbage collection (or after
    /// construction); the opportunistic trigger compares against it.
    last_gc_live: usize,
}

/// Below this arena size an opportunistic collection is never worth its
/// mandatory computed-table flush.
const GC_MIN_NODES: usize = 8_192;
/// Opportunistic-GC trigger: collect once the arena has grown past this
/// multiple of its size right after the previous collection (CUDD's
/// growth-based heuristic — it bounds both sweep frequency and the
/// fraction of time spent re-deriving flushed cache entries).
const GC_GROWTH_FACTOR: usize = 2;

impl std::fmt::Debug for BddEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BddEngine")
            .field("lines", &self.spec.lines())
            .field("gates", &self.gates.len())
            .field("depth", &self.built.depth)
            .finish_non_exhaustive()
    }
}

impl BddEngine {
    /// Prepares an engine for `spec` under `options` with a throwaway
    /// session (see [`new_in`](Self::new_in) for the recycling entry
    /// point).
    pub fn new(spec: &Spec, options: &SynthesisOptions) -> BddEngine {
        BddEngine::new_in(spec, options, &mut SynthesisSession::new())
    }

    /// Prepares an engine inside `session`: its manager is checked out of
    /// the session's [`ManagerPool`] (recycled with warm table capacity
    /// when a retired one is available) and all budgets are enforced
    /// through a [`ResourceGovernor`] built from `options`.
    pub fn new_in(
        spec: &Spec,
        options: &SynthesisOptions,
        session: &mut SynthesisSession,
    ) -> BddEngine {
        let gates = options.library.enumerate(spec.lines());
        let sbits = select_bits(gates.len());
        let governor = ResourceGovernor::from_options(options);
        governor.arm();
        let pool = session.pool();
        let built = Built::fresh(spec, options, sbits, &pool, &governor);
        BddEngine {
            spec: spec.clone(),
            options: options.clone(),
            gates,
            sbits,
            governor,
            pool,
            built,
        }
    }

    /// Nodes currently live in the BDD manager (for the benchmark
    /// harness and the variable-order ablation).
    pub fn bdd_nodes(&self) -> usize {
        self.built.m.node_count()
    }

    /// Full manager counters — live/peak nodes, GC activity, computed-table
    /// hit rate — for the CLI's `--stats` report and the benchmark emitter.
    pub fn manager_stats(&self) -> qsyn_bdd::ManagerStats {
        self.built.m.stats()
    }

    /// Decides whether a `d`-gate realization exists and, if so, returns
    /// all of them (up to `options.max_solutions` materialized circuits).
    ///
    /// Depths must be queried in increasing order when the engine is
    /// incremental.
    ///
    /// # Errors
    ///
    /// * [`SynthesisError::BudgetExceeded`] when the BDD node budget runs
    ///   out (and, via the governor, when the wall clock does).
    /// * [`SynthesisError::Cancelled`] when the governed token trips; it is
    ///   polled between cascade levels, between quantification steps, and
    ///   (through the manager's interrupt probe) inside long node
    ///   constructions, so cancellation is observed even mid-operation.
    pub fn solve_depth(&mut self, d: u32) -> Result<Option<SolutionSet>, SynthesisError> {
        self.governor.check(d)?;
        if self.built.m.is_overflowed() {
            // A previous depth ran out of nodes; the incremental state is
            // unusable.
            return Err(self.governor.nodes_exceeded(d, self.built.m.node_count()));
        }
        if !self.options.incremental {
            self.built = Built::fresh(
                &self.spec,
                &self.options,
                self.sbits,
                &self.pool,
                &self.governor,
            );
        }
        assert!(
            self.built.depth <= d,
            "depths must be queried in increasing order (at {}, asked {d})",
            self.built.depth
        );
        while self.built.depth < d {
            self.governor.check(d)?;
            self.built
                .extend_one_level(&self.gates, self.sbits, &self.options)?;
            // The budget counts *live* nodes: garbage from earlier depths
            // and checks is collected before concluding it is exhausted.
            self.built.enforce_budget(&self.governor, &[], d)?;
        }
        // Depth boundary is a GC safe point: every handle the engine still
        // needs is in the root set (state, spec). Collect opportunistically
        // so dead intermediates from previous checks never pile up.
        self.built.maybe_collect();
        let solutions_bdd =
            self.built
                .check(&self.governor, d, self.options.fused_quantification)?;
        if solutions_bdd.is_zero() {
            return Ok(None);
        }
        // Debug builds re-check the manager's structural invariants (unique
        // table, ordering, cache coherence; see `qsyn_audit`) once per
        // successful synthesis — on the SAT depth, where the whole cascade
        // construction is live in the arena. Auditing every UNSAT probe, or
        // arenas past the size cap below, would multiply the debug-test
        // wall clock without adding coverage: corruption in a big arena is
        // overwhelmingly also visible in a small one.
        #[cfg(debug_assertions)]
        {
            const AUDIT_NODE_CAP: usize = 100_000;
            if self.built.m.node_count() <= AUDIT_NODE_CAP {
                if let Err(e) = qsyn_audit::bdd_audit::audit_manager(&self.built.m) {
                    panic!("BDD manager failed its audit after depth {d}: {e}");
                }
            }
        }
        Ok(Some(self.materialize(solutions_bdd, d)))
    }

    /// Turns the final BDD over `Y` into circuits — "each path to the
    /// 1-terminal represents an assignment to all variables `y_ij`".
    fn materialize(&self, solutions: Bdd, d: u32) -> SolutionSet {
        let b = &self.built;
        if self.sbits == 0 {
            // Single-gate library: there is exactly one candidate cascade.
            let circuit = Circuit::from_gates(
                self.spec.lines(),
                std::iter::repeat_n(self.gates[0], d as usize),
            );
            debug_assert!(self.spec.is_realized_by(&circuit));
            return SolutionSet::new(vec![circuit], 1, true);
        }
        let total = b.m.count_models(solutions, &b.y_vars);
        let cap = self.options.max_solutions;
        let mut circuits = Vec::new();
        for model in b.m.models(solutions, &b.y_vars).take(cap) {
            let c = decode_circuit(self.spec.lines(), &self.gates, self.sbits, &model);
            debug_assert!(
                self.spec.is_realized_by(&c),
                "decoded circuit violates the spec"
            );
            // When d is the minimal depth (the iterative-deepening driver's
            // invariant), no model selects an identity padding slot — that
            // would imply a shorter realization. Queried beyond the minimal
            // depth, shorter circuits are legitimately among the models.
            circuits.push(c);
        }
        let exhaustive = total <= circuits.len() as u128;
        SolutionSet::new(circuits, total, exhaustive)
    }
}

impl Built {
    /// Fresh depth-0 state: `F_0 = (x_1, …, x_n)`, over a manager checked
    /// out of `pool` (recycled when one is available) and wired to the
    /// governor's interrupt probe.
    fn fresh(
        spec: &Spec,
        options: &SynthesisOptions,
        sbits: u32,
        pool: &ManagerPool,
        governor: &ResourceGovernor,
    ) -> Built {
        let n = spec.lines();
        let (mut m, x_vars): (PooledManager, Vec<u32>) = match options.var_order {
            VarOrder::XThenY => {
                let m = pool.checkout(n);
                (m, (0..n).collect())
            }
            VarOrder::YThenX => {
                // Pre-allocate the select block for the worst-case depth so
                // that every Y variable sits above every X variable.
                let y_total = options.max_depth * sbits;
                let m = pool.checkout(y_total + n);
                (m, (y_total..y_total + n).collect())
            }
        };
        // Hard caps: a single apply/quantify call must not allocate nodes
        // or memoization entries past the budget (out-of-memory
        // containment; see Manager::set_node_cap / set_cache_cap).
        m.set_node_cap(options.bdd_node_limit.saturating_add(1_000));
        m.set_cache_cap(options.bdd_node_limit.saturating_mul(2));
        // Long node constructions poll this probe and collapse to ⊥ when
        // the run is cancelled or out of time; `enforce_budget` turns the
        // latched interrupt into the structured error before any ⊥ can be
        // misread as UNSAT.
        m.set_interrupt_poll(Some(governor.interrupt_probe()));
        let state: Vec<Bdd> = x_vars.iter().map(|&v| m.var(v)).collect();
        // Row minterms over X, shared by the per-line ON/DC set BDDs.
        let minterms: Vec<Bdd> = (0..spec.num_rows() as u32)
            .map(|row| {
                let lits: Vec<Bdd> = (0..n)
                    .map(|l| m.literal(x_vars[l as usize], (row >> l) & 1 == 1))
                    .collect();
                m.and_all(lits)
            })
            .collect();
        let spec_on: Vec<Bdd> = (0..n)
            .map(|l| {
                let rows = spec.on_set(l);
                m.or_all(rows.iter().map(|&r| minterms[r as usize]))
            })
            .collect();
        let spec_dc: Vec<Bdd> = (0..n)
            .map(|l| {
                let rows = spec.dc_set(l);
                m.or_all(rows.iter().map(|&r| minterms[r as usize]))
            })
            .collect();
        let last_gc_live = m.node_count();
        Built {
            m,
            x_vars,
            y_vars: Vec::new(),
            state,
            spec_on,
            spec_dc,
            depth: 0,
            slot_scratch: Vec::new(),
            last_gc_live,
        }
    }

    /// The engine's GC root set: every handle that must survive a
    /// collection at a safe point — the cascade state `F_d` and the
    /// per-line spec ON/DC sets. (Projection BDDs of bare variables are
    /// deliberately not rooted: `Manager::var` re-creates them on demand.)
    fn gc_roots(&self) -> Vec<Bdd> {
        let mut roots = Vec::with_capacity(self.state.len() * 3);
        roots.extend_from_slice(&self.state);
        roots.extend_from_slice(&self.spec_on);
        roots.extend_from_slice(&self.spec_dc);
        roots
    }

    /// Mark-and-sweep with the engine roots plus `extra` (handles a caller
    /// mid-computation still needs, e.g. the check() accumulator).
    fn collect(&mut self, extra: &[Bdd]) -> usize {
        let mut roots = self.gc_roots();
        roots.extend_from_slice(extra);
        let freed = self.m.collect_garbage(&roots);
        self.last_gc_live = self.m.node_count();
        freed
    }

    /// Opportunistic collection at a depth boundary: only once the arena
    /// has outgrown `GC_GROWTH_FACTOR` times its post-GC size (and is big
    /// enough for the sweep to beat its computed-table flush).
    fn maybe_collect(&mut self) {
        let live = self.m.node_count();
        if live >= GC_MIN_NODES && live >= self.last_gc_live.saturating_mul(GC_GROWTH_FACTOR) {
            self.collect(&[]);
        }
    }

    /// Budget enforcement at a GC safe point: when the live-node count
    /// overshoots, collect (rooting `extra` besides the engine state) and
    /// only report [`SynthesisError::BudgetExceeded`] if the overshoot
    /// survives the collection — garbage must never exhaust the budget.
    fn enforce_budget(
        &mut self,
        governor: &ResourceGovernor,
        extra: &[Bdd],
        d: u32,
    ) -> Result<(), SynthesisError> {
        // An interrupted manager has been collapsing results to ⊥ since
        // its probe fired: surface the structured stop reason before any
        // ⊥ can be mistaken for UNSAT. Cancellation and deadlines are
        // sticky, so the governor check cannot miss.
        if self.m.is_interrupted() {
            governor.check(d)?;
            return Err(SynthesisError::Internal {
                what: "BDD manager interrupted without a tripped token",
            });
        }
        // Overflow must be ruled out before trusting any ⊥ result; GC
        // cannot repair an overflowed manager.
        if self.m.is_overflowed() {
            return Err(governor.nodes_exceeded(d, self.m.node_count()));
        }
        if self.m.node_count() > governor.node_limit() {
            self.collect(extra);
            if self.m.node_count() > governor.node_limit() {
                return Err(governor.nodes_exceeded(d, self.m.node_count()));
            }
        }
        Ok(())
    }

    /// Applies one universal gate: `F_{d+1} = U_G(F_d, Y_{d+1})`.
    fn extend_one_level(
        &mut self,
        gates: &[Gate],
        sbits: u32,
        options: &SynthesisOptions,
    ) -> Result<(), SynthesisError> {
        let n = self.state.len();
        let level_vars: Vec<u32> = match options.var_order {
            VarOrder::XThenY => {
                let base = self.m.add_vars(sbits);
                (base..base + sbits).collect()
            }
            VarOrder::YThenX => {
                if self.depth >= options.max_depth {
                    return Err(SynthesisError::BudgetExceeded {
                        depth: self.depth + 1,
                        resource: crate::Resource::SelectVarBlock,
                        spent: u64::from(self.depth + 1),
                        limit: u64::from(options.max_depth),
                    });
                }
                let base = self.depth * sbits;
                (base..base + sbits).collect()
            }
        };
        // Slot table: per line, the output of each of the 2^s gate slots
        // (identity for the padding slots beyond q). The per-line buffers
        // live on the engine and are reused across depths.
        let slot_count = 1usize << sbits;
        self.slot_scratch.resize(n, Vec::new());
        for j in 0..n {
            let identity = self.state[j];
            let buf = &mut self.slot_scratch[j];
            buf.clear();
            buf.resize(slot_count, identity);
        }
        for (k, g) in gates.iter().enumerate() {
            for (line, out) in self.apply_gate(g) {
                self.slot_scratch[line as usize][k] = out;
            }
        }
        // Multiplexer reduction over the select bits, LSB first, halving
        // the slot table in place.
        for j in 0..n {
            let mut len = slot_count;
            for &yv in &level_vars {
                let y = self.m.var(yv);
                len /= 2;
                for i in 0..len {
                    let lo = self.slot_scratch[j][2 * i];
                    let hi = self.slot_scratch[j][2 * i + 1];
                    self.slot_scratch[j][i] = self.m.ite(y, hi, lo);
                }
            }
            debug_assert_eq!(len.max(1), 1);
            self.state[j] = self.slot_scratch[j][0];
        }
        self.y_vars.extend(level_vars);
        self.depth += 1;
        Ok(())
    }

    /// Symbolic application of a concrete gate to the current state,
    /// returning only the changed lines.
    fn apply_gate(&mut self, g: &Gate) -> Vec<(u32, Bdd)> {
        match *g {
            Gate::Toffoli {
                controls,
                negative_controls,
                target,
            } => {
                let mut cond = self.control_conjunction(controls.iter());
                for c in negative_controls.iter() {
                    let nc = {
                        let s = self.state[c as usize];
                        self.m.not(s)
                    };
                    cond = self.m.and(cond, nc);
                }
                let out = {
                    let t = self.state[target as usize];
                    self.m.xor(t, cond)
                };
                vec![(target, out)]
            }
            Gate::Fredkin { controls, targets } => {
                let cond = self.control_conjunction(controls.iter());
                let a = self.state[targets.0 as usize];
                let b = self.state[targets.1 as usize];
                let out_a = self.m.ite(cond, b, a);
                let out_b = self.m.ite(cond, a, b);
                vec![(targets.0, out_a), (targets.1, out_b)]
            }
            Gate::Peres { control, targets } => {
                let c = self.state[control as usize];
                let a = self.state[targets.0 as usize];
                let b = self.state[targets.1 as usize];
                let out_a = self.m.xor(c, a);
                let ca = self.m.and(c, a);
                let out_b = self.m.xor(ca, b);
                vec![(targets.0, out_a), (targets.1, out_b)]
            }
        }
    }

    fn control_conjunction(&mut self, controls: impl Iterator<Item = u32>) -> Bdd {
        let parts: Vec<Bdd> = controls.map(|c| self.state[c as usize]).collect();
        self.m.and_all(parts)
    }

    /// Computes `∀X ⋀_l (f_l^dc ∨ (F_{d,l} ⊙ f_l^on))` — the quantified
    /// formula of Section 4 — and returns the BDD over `Y`.
    ///
    /// With `fused` (the default), the conjunction is **quantified as it is
    /// built**: the accumulator is folded through the fused ∀-AND kernel
    /// one line at a time, so it is always free of `X` and the full
    /// unquantified product `⋀_l` — the peak-live-node bottleneck of the
    /// whole synthesis — is never materialized. This is sound because ∀
    /// distributes over ∧ (it would *not* be for ∃). The node budget and
    /// the cancellation token are still enforced between lines.
    ///
    /// Without `fused` (legacy ablation path), the conjunction is built
    /// first and `∀` applied one input variable at a time afterwards.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::BudgetExceeded`] when the node budget runs out
    /// mid-construction; cancellation errors from the governor.
    fn check(
        &mut self,
        governor: &ResourceGovernor,
        d: u32,
        fused: bool,
    ) -> Result<Bdd, SynthesisError> {
        let n = self.state.len();
        if fused {
            let mut oks = Vec::with_capacity(n);
            for l in 0..n {
                governor.check(d)?;
                let agree = self.m.xnor(self.state[l], self.spec_on[l]);
                let ok = self.m.or(self.spec_dc[l], agree);
                oks.push(ok);
                // Between lines is a safe point: root the agreement
                // functions built so far.
                self.enforce_budget(governor, &oks, d)?;
            }
            // Quantify the conjunction as it is built: the fused descent
            // walks the X block across all lines at once, so the
            // conjunction over X is never materialized and the first
            // failing input row aborts the whole check.
            let acc = self.m.forall_and_all(&oks, &self.x_vars);
            self.enforce_budget(governor, &[acc], d)?;
            return Ok(acc);
        }
        let mut eq = self.m.one();
        for l in 0..n {
            governor.check(d)?;
            let agree = self.m.xnor(self.state[l], self.spec_on[l]);
            let ok = self.m.or(self.spec_dc[l], agree);
            eq = self.m.and(eq, ok);
            self.enforce_budget(governor, &[eq], d)?;
            if eq.is_zero() {
                return Ok(eq);
            }
        }
        // X sits on top of the order, so quantifying from the innermost
        // (largest) X variable upward strips one top level at a time.
        for i in (0..self.x_vars.len()).rev() {
            governor.check(d)?;
            let v = self.x_vars[i];
            eq = self.m.forall_var(eq, v);
            self.enforce_budget(governor, &[eq], d)?;
            if eq.is_zero() {
                return Ok(eq);
            }
        }
        Ok(eq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Engine;
    use qsyn_revlogic::{GateLibrary, LineSet, Permutation};

    fn opts(lib: GateLibrary) -> SynthesisOptions {
        SynthesisOptions::new(lib, Engine::Bdd)
    }

    #[test]
    fn depth_zero_accepts_identity() {
        let spec = Spec::from_permutation(&Permutation::identity(2));
        let mut e = BddEngine::new(&spec, &opts(GateLibrary::mct()));
        let sols = e.solve_depth(0).unwrap().expect("identity needs 0 gates");
        assert_eq!(sols.depth(), 0);
        assert_eq!(sols.count(), 1);
    }

    #[test]
    fn depth_zero_rejects_non_identity() {
        let spec = Spec::from_permutation(&Permutation::from_map(1, vec![1, 0]));
        let mut e = BddEngine::new(&spec, &opts(GateLibrary::mct()));
        assert!(e.solve_depth(0).unwrap().is_none());
        // …and a single NOT gate realizes it at depth 1.
        let sols = e.solve_depth(1).unwrap().expect("NOT realizes it");
        assert_eq!(sols.depth(), 1);
        assert_eq!(sols.circuits()[0].gates()[0], Gate::not(0));
    }

    #[test]
    fn single_gate_library_uses_no_select_vars() {
        // 1 line: MCT library = {NOT(0)} only. NOT∘NOT = identity.
        let spec = Spec::from_permutation(&Permutation::from_map(1, vec![1, 0]));
        let mut e = BddEngine::new(&spec, &opts(GateLibrary::mct()));
        assert!(e.solve_depth(0).unwrap().is_none());
        let sols = e.solve_depth(1).unwrap().unwrap();
        assert_eq!(sols.count(), 1);
        assert_eq!(sols.circuits()[0].len(), 1);
    }

    #[test]
    fn cnot_spec_found_at_depth_one_with_all_solutions() {
        // x2 ^= x1 on 2 lines.
        let spec = Spec::from_permutation(&Permutation::from_fn(2, |v| v ^ ((v & 1) << 1)));
        let mut e = BddEngine::new(&spec, &opts(GateLibrary::mct()));
        assert!(e.solve_depth(0).unwrap().is_none());
        let sols = e.solve_depth(1).unwrap().expect("CNOT realizes it");
        assert_eq!(sols.count(), 1, "only one 1-gate MCT realization");
        assert!(sols.is_exhaustive());
        assert_eq!(
            sols.circuits()[0].gates()[0],
            Gate::toffoli(LineSet::from_iter([0]), 1)
        );
    }

    #[test]
    fn swap_needs_three_mct_but_one_fredkin() {
        let spec = Spec::from_permutation(&Permutation::from_fn(2, |v| {
            ((v & 1) << 1) | ((v >> 1) & 1)
        }));
        // MCT: 3 CNOTs.
        let mut e = BddEngine::new(&spec, &opts(GateLibrary::mct()));
        assert!(e.solve_depth(0).unwrap().is_none());
        assert!(e.solve_depth(1).unwrap().is_none());
        assert!(e.solve_depth(2).unwrap().is_none());
        let sols = e.solve_depth(3).unwrap().expect("swap = 3 CNOTs");
        assert_eq!(sols.depth(), 3);
        // Two orders: (a→b)(b→a)(a→b) and (b→a)(a→b)(b→a).
        assert_eq!(sols.count(), 2);
        // MCT+MCF: a single controlled-free swap.
        let mut e2 = BddEngine::new(&spec, &opts(GateLibrary::mct_mcf()));
        assert!(e2.solve_depth(0).unwrap().is_none());
        let sols2 = e2.solve_depth(1).unwrap().expect("one swap gate");
        assert_eq!(sols2.depth(), 1);
        // Ordered Fredkin targets make the same swap selectable twice.
        assert_eq!(sols2.count(), 2);
    }

    #[test]
    fn all_returned_circuits_realize_the_spec() {
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![3, 0, 1, 2]));
        let mut e = BddEngine::new(&spec, &opts(GateLibrary::mct()));
        for d in 0..=6 {
            if let Some(sols) = e.solve_depth(d).unwrap() {
                assert!(sols.is_exhaustive());
                for c in sols.circuits() {
                    assert!(spec.is_realized_by(c));
                    assert_eq!(c.len(), d as usize);
                }
                return;
            }
        }
        panic!("no realization found up to depth 6");
    }

    #[test]
    fn incomplete_spec_exploits_dont_cares() {
        // Output line 2 must be a AND b; line 0/1 garbage; constant 0 on
        // line 2 — a single Toffoli satisfies it.
        let spec = qsyn_revlogic::embedding::Embedding {
            lines: 3,
            input_lines: vec![0, 1],
            constants: vec![(2, false)],
            output_lines: vec![2],
        }
        .embed(|ab| (ab & 1) & (ab >> 1))
        .unwrap();
        let mut e = BddEngine::new(&spec, &opts(GateLibrary::mct()));
        assert!(e.solve_depth(0).unwrap().is_none());
        let sols = e.solve_depth(1).unwrap().expect("one Toffoli suffices");
        assert!(sols
            .circuits()
            .iter()
            .any(|c| c.gates()[0] == Gate::toffoli(LineSet::from_iter([0, 1]), 2)));
    }

    #[test]
    fn y_then_x_order_gives_same_answers() {
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![1, 2, 3, 0]));
        let mut normal = BddEngine::new(&spec, &opts(GateLibrary::mct()));
        let mut flipped = BddEngine::new(
            &spec,
            &opts(GateLibrary::mct()).with_var_order(VarOrder::YThenX),
        );
        for d in 0..4 {
            let a = normal.solve_depth(d).unwrap().map(|s| s.count());
            let b = flipped.solve_depth(d).unwrap().map(|s| s.count());
            assert_eq!(a, b, "depth {d}");
            if a.is_some() {
                return;
            }
        }
        panic!("no realization found up to depth 3");
    }

    #[test]
    fn legacy_quantification_gives_same_answers() {
        // The fused ∀-AND check() (default) and the legacy build-then-
        // quantify path must agree bit for bit: same minimal depth, same
        // exact solution count.
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![1, 2, 3, 0]));
        let mut fused = BddEngine::new(&spec, &opts(GateLibrary::mct()));
        let mut legacy = BddEngine::new(
            &spec,
            &opts(GateLibrary::mct()).with_fused_quantification(false),
        );
        for d in 0..4 {
            let a = fused.solve_depth(d).unwrap().map(|s| s.count());
            let b = legacy.solve_depth(d).unwrap().map(|s| s.count());
            assert_eq!(a, b, "depth {d}");
            if a.is_some() {
                return;
            }
        }
        panic!("no realization found up to depth 3");
    }

    #[test]
    fn gc_stats_are_reported_and_peak_tracks_live() {
        let spec = Spec::from_permutation(&Permutation::from_map(3, {
            let mut ident: Vec<u32> = (0..8).collect();
            ident.swap(6, 7); // a Toffoli away from identity
            ident
        }));
        let mut e = BddEngine::new(&spec, &opts(GateLibrary::mct()));
        for d in 0..3 {
            if e.solve_depth(d).unwrap().is_some() {
                break;
            }
        }
        let stats = e.manager_stats();
        assert!(stats.nodes > 0);
        assert!(stats.peak_live >= stats.nodes);
        assert!(stats.cache_hits + stats.cache_misses > 0);
    }

    #[test]
    fn non_incremental_mode_gives_same_answers() {
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![2, 3, 1, 0]));
        let mut inc = BddEngine::new(&spec, &opts(GateLibrary::mct()));
        let mut scratch = BddEngine::new(&spec, &opts(GateLibrary::mct()).with_incremental(false));
        for d in 0..5 {
            let a = inc.solve_depth(d).unwrap().map(|s| s.count());
            let b = scratch.solve_depth(d).unwrap().map(|s| s.count());
            assert_eq!(a, b, "depth {d}");
            if a.is_some() {
                return;
            }
        }
        panic!("no realization found");
    }

    #[test]
    fn node_limit_aborts() {
        let spec = Spec::from_permutation(&Permutation::from_map(3, vec![7, 1, 4, 3, 0, 2, 6, 5]));
        let mut e = BddEngine::new(&spec, &opts(GateLibrary::mct()).with_bdd_node_limit(50));
        let err = (0..8)
            .find_map(|d| e.solve_depth(d).err())
            .expect("tiny node budget must trip");
        assert!(matches!(
            err,
            SynthesisError::BudgetExceeded {
                resource: crate::Resource::BddNodes,
                ..
            }
        ));
    }

    #[test]
    fn cancelled_token_stops_solve_depth() {
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![3, 0, 1, 2]));
        let token = crate::CancelToken::new();
        let mut e = BddEngine::new(
            &spec,
            &opts(GateLibrary::mct()).with_cancel_token(token.clone()),
        );
        assert!(e.solve_depth(0).unwrap().is_none());
        token.cancel();
        assert_eq!(
            e.solve_depth(1).unwrap_err(),
            SynthesisError::Cancelled { depth: 1 }
        );
    }

    #[test]
    fn max_solutions_truncates_but_counts_exactly() {
        // The identity at depth 2 has many realizations (g then g⁻¹ for
        // every self-inverse gate). Cap materialization at 3.
        let spec = Spec::from_permutation(&Permutation::identity(2));
        let mut e = BddEngine::new(&spec, &opts(GateLibrary::mct()).with_max_solutions(3));
        // Depth 0 finds the identity; force depth-2 query via fresh engine
        // semantics: ask directly.
        let sols0 = e.solve_depth(0).unwrap().unwrap();
        assert_eq!(sols0.count(), 1);
        let sols2 = e.solve_depth(2).unwrap().expect("g·g⁻¹ realizations");
        assert!(sols2.count() > 3);
        assert_eq!(sols2.circuits().len(), 3);
        assert!(!sols2.is_exhaustive());
    }
}
