//! Equivalence checking of reversible circuits.
//!
//! A companion technique from the same research group ("Equivalence
//! Checking of Reversible Circuits"): two cascades are functionally
//! equivalent iff their output functions agree on every input. Three
//! decision procedures are provided, mirroring the synthesis engines:
//!
//! * [`equivalent_bdd`] — build both circuits' output BDDs over shared
//!   input variables; by canonicity, equivalence is handle equality.
//! * [`counterexample_sat`] — a *miter*: both netlists are
//!   Tseitin-transformed over shared inputs and the CDCL solver searches
//!   for an input where some output differs.
//! * [`Circuit::equivalent`] (in `qsyn-revlogic`) — exhaustive simulation,
//!   the reference the other two are tested against.

use qsyn_bdd::{Bdd, Manager};
use qsyn_revlogic::{Circuit, Gate};
use qsyn_sat::{CnfBuilder, Lit, SolveResult, Solver};

/// Symbolically executes a cascade on a vector of BDDs.
fn run_circuit_bdd(m: &mut Manager, circuit: &Circuit, inputs: &[Bdd]) -> Vec<Bdd> {
    let mut state = inputs.to_vec();
    for g in circuit.gates() {
        match *g {
            Gate::Toffoli {
                controls,
                negative_controls,
                target,
            } => {
                let mut cond = {
                    let parts: Vec<Bdd> = controls.iter().map(|c| state[c as usize]).collect();
                    m.and_all(parts)
                };
                for c in negative_controls.iter() {
                    let nc = m.not(state[c as usize]);
                    cond = m.and(cond, nc);
                }
                state[target as usize] = m.xor(state[target as usize], cond);
            }
            Gate::Fredkin { controls, targets } => {
                let parts: Vec<Bdd> = controls.iter().map(|c| state[c as usize]).collect();
                let cond = m.and_all(parts);
                let a = state[targets.0 as usize];
                let b = state[targets.1 as usize];
                state[targets.0 as usize] = m.ite(cond, b, a);
                state[targets.1 as usize] = m.ite(cond, a, b);
            }
            Gate::Peres { control, targets } => {
                let c = state[control as usize];
                let a = state[targets.0 as usize];
                let b = state[targets.1 as usize];
                state[targets.0 as usize] = m.xor(c, a);
                let ca = m.and(c, a);
                state[targets.1 as usize] = m.xor(ca, b);
            }
        }
    }
    state
}

/// BDD-based equivalence check: both circuits' outputs are built over the
/// same input variables; canonicity reduces equivalence to handle equality
/// per line.
///
/// # Panics
///
/// Panics if the circuits have different line counts.
pub fn equivalent_bdd(c1: &Circuit, c2: &Circuit) -> bool {
    assert_eq!(c1.lines(), c2.lines(), "line counts differ");
    let n = c1.lines();
    let mut m = Manager::new(n);
    let inputs: Vec<Bdd> = (0..n).map(|v| m.var(v)).collect();
    let out1 = run_circuit_bdd(&mut m, c1, &inputs);
    let out2 = run_circuit_bdd(&mut m, c2, &inputs);
    out1 == out2
}

/// Symbolically executes a cascade on a vector of literals in a CNF
/// builder.
fn run_circuit_netlist(b: &mut CnfBuilder, circuit: &Circuit, inputs: &[Lit]) -> Vec<Lit> {
    let mut state = inputs.to_vec();
    for g in circuit.gates() {
        match *g {
            Gate::Toffoli {
                controls,
                negative_controls,
                target,
            } => {
                let ctrl: Vec<Lit> = controls
                    .iter()
                    .map(|c| state[c as usize])
                    .chain(negative_controls.iter().map(|c| !state[c as usize]))
                    .collect();
                let cond = b.and_all(&ctrl);
                state[target as usize] = b.xor(state[target as usize], cond);
            }
            Gate::Fredkin { controls, targets } => {
                let ctrl: Vec<Lit> = controls.iter().map(|c| state[c as usize]).collect();
                let cond = b.and_all(&ctrl);
                let a = state[targets.0 as usize];
                let t = state[targets.1 as usize];
                state[targets.0 as usize] = b.mux(cond, t, a);
                state[targets.1 as usize] = b.mux(cond, a, t);
            }
            Gate::Peres { control, targets } => {
                let c = state[control as usize];
                let a = state[targets.0 as usize];
                let t = state[targets.1 as usize];
                state[targets.0 as usize] = b.xor(c, a);
                let ca = b.and(c, a);
                state[targets.1 as usize] = b.xor(ca, t);
            }
        }
    }
    state
}

/// SAT-based miter check: returns `None` if the circuits are equivalent,
/// or `Some(input)` — a packed input assignment on which some output
/// differs.
///
/// # Panics
///
/// Panics if the circuits have different line counts.
pub fn counterexample_sat(c1: &Circuit, c2: &Circuit) -> Option<u32> {
    assert_eq!(c1.lines(), c2.lines(), "line counts differ");
    let n = c1.lines();
    let mut b = CnfBuilder::new(n);
    let inputs: Vec<Lit> = (0..n).map(|l| b.input(l)).collect();
    let out1 = run_circuit_netlist(&mut b, c1, &inputs);
    let out2 = run_circuit_netlist(&mut b, c2, &inputs);
    let diffs: Vec<Lit> = out1.iter().zip(&out2).map(|(&a, &c)| b.xor(a, c)).collect();
    let any_diff = b.or_all(&diffs);
    b.assert_lit(any_diff);
    let mut solver = Solver::from_formula(b.formula());
    match solver.solve() {
        SolveResult::Unsat => None,
        SolveResult::Sat(model) => {
            let mut input = 0u32;
            for l in 0..n {
                if model[l as usize] {
                    input |= 1 << l;
                }
            }
            Some(input)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_revlogic::LineSet;

    fn peres_circuit() -> Circuit {
        Circuit::from_gates(3, [Gate::peres(0, 1, 2)])
    }

    fn peres_expansion() -> Circuit {
        Circuit::from_gates(
            3,
            [
                Gate::toffoli(LineSet::from_iter([0, 1]), 2),
                Gate::cnot(0, 1),
            ],
        )
    }

    #[test]
    fn peres_equals_its_expansion() {
        let (p, e) = (peres_circuit(), peres_expansion());
        assert!(p.equivalent(&e));
        assert!(equivalent_bdd(&p, &e));
        assert_eq!(counterexample_sat(&p, &e), None);
    }

    #[test]
    fn different_circuits_are_caught_with_counterexample() {
        let p = peres_circuit();
        let almost = Circuit::from_gates(
            3,
            [
                Gate::toffoli(LineSet::from_iter([0, 1]), 2),
                Gate::cnot(1, 0), // wrong direction
            ],
        );
        assert!(!p.equivalent(&almost));
        assert!(!equivalent_bdd(&p, &almost));
        let cex = counterexample_sat(&p, &almost).expect("must find a witness");
        assert_ne!(p.simulate(cex), almost.simulate(cex));
    }

    #[test]
    fn identity_checks() {
        let empty = Circuit::new(4);
        let nop = Circuit::from_gates(4, [Gate::not(2), Gate::not(2)]);
        assert!(equivalent_bdd(&empty, &nop));
        assert_eq!(counterexample_sat(&empty, &nop), None);
        let not_nop = Circuit::from_gates(4, [Gate::not(2)]);
        assert!(!equivalent_bdd(&empty, &not_nop));
        assert!(counterexample_sat(&empty, &not_nop).is_some());
    }

    #[test]
    fn all_three_procedures_agree_on_random_pairs() {
        use qsyn_revlogic::GateLibrary;
        let gates = GateLibrary::all().with_mixed_polarity().enumerate(3);
        // Deterministic pseudo-random circuit pairs.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..30 {
            let mk = |len: u64, next: &mut dyn FnMut() -> u64| {
                Circuit::from_gates(
                    3,
                    (0..len).map(|_| gates[(next() % gates.len() as u64) as usize]),
                )
            };
            let c1 = mk(1 + next() % 4, &mut next);
            let c2 = mk(1 + next() % 4, &mut next);
            let sim = c1.equivalent(&c2);
            assert_eq!(equivalent_bdd(&c1, &c2), sim);
            assert_eq!(counterexample_sat(&c1, &c2).is_none(), sim);
        }
    }

    #[test]
    fn inverse_composition_is_identity_by_all_checks() {
        let c = Circuit::from_gates(
            3,
            [
                Gate::peres(2, 0, 1),
                Gate::fredkin(LineSet::from_iter([0]), 1, 2),
                Gate::toffoli_mixed(LineSet::from_iter([1]), LineSet::from_iter([0]), 2),
            ],
        );
        let mut both = c.clone();
        both.extend_with(&c.inverse());
        let empty = Circuit::new(3);
        assert!(equivalent_bdd(&both, &empty));
        assert_eq!(counterexample_sat(&both, &empty), None);
    }

    #[test]
    #[should_panic(expected = "line counts differ")]
    fn mismatched_lines_panic() {
        let _ = equivalent_bdd(&Circuit::new(2), &Circuit::new(3));
    }
}
