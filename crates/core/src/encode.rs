//! Shared pieces of the universal-gate encoding (Definition 2 of the
//! paper): gate-select dimensioning and select-index decoding.

use qsyn_revlogic::{Circuit, Gate};

/// Number of gate-select inputs `⌈log₂ q⌉` for a library of `q` gates.
/// A single-gate library needs no select input.
pub(crate) fn select_bits(q: usize) -> u32 {
    assert!(q > 0, "empty gate library");
    usize::BITS - (q - 1).leading_zeros().min(usize::BITS)
}

/// The gate a select index `k` denotes: `gates[k]` for `k < q`, identity
/// (`None`) for the padding slots `q ≤ k < 2^s` (Definition 2 extends `G`
/// with identity gates when `q` is not a power of two).
pub(crate) fn gate_for_index(gates: &[Gate], k: usize) -> Option<&Gate> {
    gates.get(k)
}

/// Decodes one level's select-bit assignment into an index.
/// `bits[b]` is the value of `y_{i,b}` (LSB first).
pub(crate) fn index_from_bits(bits: &[bool]) -> usize {
    bits.iter()
        .enumerate()
        .fold(0usize, |acc, (b, &v)| acc | (usize::from(v) << b))
}

/// Reconstructs a circuit from a full assignment to all `d·s` select
/// variables (level-major, LSB first within a level). Identity slots are
/// skipped.
pub(crate) fn decode_circuit(
    lines: u32,
    gates: &[Gate],
    sbits: u32,
    assignment: &[bool],
) -> Circuit {
    let mut c = Circuit::new(lines);
    if sbits == 0 {
        // Single-gate library: the number of levels cannot be recovered
        // from an empty assignment; callers handle this case themselves.
        return c;
    }
    assert_eq!(
        assignment.len() % sbits as usize,
        0,
        "assignment length must be a multiple of the select width"
    );
    for level in assignment.chunks(sbits as usize) {
        let k = index_from_bits(level);
        if let Some(g) = gate_for_index(gates, k) {
            c.push(*g);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_revlogic::GateLibrary;

    #[test]
    fn select_bits_is_ceil_log2() {
        assert_eq!(select_bits(1), 0);
        assert_eq!(select_bits(2), 1);
        assert_eq!(select_bits(3), 2);
        assert_eq!(select_bits(4), 2);
        assert_eq!(select_bits(5), 3);
        assert_eq!(select_bits(12), 4);
        assert_eq!(select_bits(24), 5);
        assert_eq!(select_bits(64), 6);
        assert_eq!(select_bits(65), 7);
    }

    #[test]
    fn index_round_trips_through_bits() {
        for k in 0usize..16 {
            let bits: Vec<bool> = (0..4).map(|b| (k >> b) & 1 == 1).collect();
            assert_eq!(index_from_bits(&bits), k);
        }
    }

    #[test]
    fn padding_slots_are_identity() {
        let gates = GateLibrary::mct().enumerate(3); // 12 gates, 16 slots
        assert_eq!(select_bits(gates.len()), 4);
        assert!(gate_for_index(&gates, 11).is_some());
        assert!(gate_for_index(&gates, 12).is_none());
        assert!(gate_for_index(&gates, 15).is_none());
    }

    #[test]
    fn decode_skips_identity_slots() {
        let gates = GateLibrary::mct().enumerate(3);
        let sbits = select_bits(gates.len());
        // Level 1 selects gate 0, level 2 selects slot 15 (identity).
        let mut assignment = vec![false; (sbits * 2) as usize];
        for b in sbits..2 * sbits {
            assignment[b as usize] = true;
        }
        let c = decode_circuit(3, &gates, sbits, &assignment);
        assert_eq!(c.len(), 1);
        assert_eq!(c.gates()[0], gates[0]);
    }
}
