//! Sets of minimal realizations and their quantum-cost statistics.

use qsyn_revlogic::{cost, Circuit};

/// All (or a truncated prefix of all) minimal networks found for one
/// specification, plus the exact model count.
///
/// The BDD engine finds *every* minimal network in one step (the paper's
/// second headline improvement); the QBF and SAT engines return a single
/// one. The `#SOL` and `QC` columns of Tables 2 and 3 come from here.
#[derive(Clone, Debug)]
pub struct SolutionSet {
    circuits: Vec<Circuit>,
    total: u128,
    exhaustive: bool,
    exact_count: bool,
}

impl SolutionSet {
    /// Builds a solution set with an **exact** model count (the BDD engine
    /// counts the select-variable BDD even when it truncates enumeration).
    ///
    /// # Panics
    ///
    /// Panics if `circuits` is empty, or `total < circuits.len()`.
    pub fn new(circuits: Vec<Circuit>, total: u128, exhaustive: bool) -> SolutionSet {
        assert!(
            !circuits.is_empty(),
            "a solution set holds at least one circuit"
        );
        assert!(
            total >= circuits.len() as u128,
            "total count below materialized circuits"
        );
        SolutionSet {
            circuits,
            total,
            exhaustive,
            exact_count: true,
        }
    }

    /// A set holding one known solution of an unknown-size space (the
    /// QBF/SAT engines stop at the first model). Its [`count`](Self::count)
    /// of 1 is a **lower bound**, not the minimal-network count —
    /// [`count_is_exact`](Self::count_is_exact) reports `false` and
    /// [`count_display`](Self::count_display) renders it as `≥1`.
    pub fn single(circuit: Circuit) -> SolutionSet {
        SolutionSet {
            circuits: vec![circuit],
            total: 1,
            exhaustive: false,
            exact_count: false,
        }
    }

    /// Rebuilds a set from one persisted circuit plus its recorded count,
    /// for replaying a stored result without re-running an engine. The
    /// store keeps only the quantum-cost-minimal circuit, so the set is
    /// exhaustive exactly when that one circuit is provably the whole
    /// solution space (`exact && total == 1`).
    ///
    /// # Panics
    ///
    /// Panics if `total == 0` (a stored result holds at least the circuit
    /// it persisted).
    pub fn replayed(circuit: Circuit, total: u128, exact: bool) -> SolutionSet {
        assert!(total >= 1, "a replayed result counts its own circuit");
        SolutionSet {
            circuits: vec![circuit],
            total,
            exhaustive: exact && total == 1,
            exact_count: exact,
        }
    }

    /// The materialized circuits.
    pub fn circuits(&self) -> &[Circuit] {
        &self.circuits
    }

    /// Number of minimal networks (`#SOL`). May exceed `circuits().len()`
    /// when enumeration was truncated. Exact only when
    /// [`count_is_exact`](Self::count_is_exact) holds; single-solution
    /// engines report the lower bound 1.
    pub fn count(&self) -> u128 {
        self.total
    }

    /// `true` when [`count`](Self::count) is the exact number of minimal
    /// networks (BDD model counting); `false` when it is merely a lower
    /// bound (an engine that stops at the first model).
    pub fn count_is_exact(&self) -> bool {
        self.exact_count
    }

    /// [`count`](Self::count) rendered for reports: `"N"` when exact,
    /// `"≥N"` when only a lower bound is known.
    pub fn count_display(&self) -> String {
        if self.exact_count {
            self.total.to_string()
        } else {
            format!("≥{}", self.total)
        }
    }

    /// `true` if `circuits()` contains every minimal network.
    pub fn is_exhaustive(&self) -> bool {
        self.exhaustive
    }

    /// The circuit with the smallest quantum cost among the materialized
    /// ones — the paper's Table 2 selection step.
    pub fn best_by_quantum_cost(&self) -> &Circuit {
        self.circuits
            .iter()
            .min_by_key(|c| cost::circuit_cost(c))
            .expect("non-empty by construction")
    }

    /// `(min, max)` quantum cost over the materialized circuits (the `QC`
    /// column of Tables 2 and 3).
    pub fn quantum_cost_range(&self) -> (u64, u64) {
        let costs = self.circuits.iter().map(cost::circuit_cost);
        let mut min = u64::MAX;
        let mut max = 0;
        for c in costs {
            min = min.min(c);
            max = max.max(c);
        }
        (min, max)
    }

    /// Gate count of the (uniform-depth) solutions.
    pub fn depth(&self) -> usize {
        self.circuits[0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_revlogic::{Gate, LineSet};

    fn toffoli_circuit() -> Circuit {
        Circuit::from_gates(3, [Gate::toffoli(LineSet::from_iter([0, 1]), 2)])
    }

    fn peres_like() -> Circuit {
        Circuit::from_gates(3, [Gate::toffoli(LineSet::from_iter([0, 1]), 2)])
    }

    #[test]
    fn single_solution_set() {
        let s = SolutionSet::single(toffoli_circuit());
        assert_eq!(s.count(), 1);
        assert!(!s.is_exhaustive());
        assert_eq!(s.depth(), 1);
        assert_eq!(s.quantum_cost_range(), (5, 5));
    }

    #[test]
    fn single_counts_are_lower_bounds_exact_counts_are_not() {
        let single = SolutionSet::single(toffoli_circuit());
        assert!(!single.count_is_exact());
        assert_eq!(single.count_display(), "≥1");
        // A truncated BDD set still carries an exact model count.
        let truncated = SolutionSet::new(vec![toffoli_circuit()], 42, false);
        assert!(truncated.count_is_exact());
        assert_eq!(truncated.count_display(), "42");
        let full = SolutionSet::new(vec![toffoli_circuit()], 1, true);
        assert!(full.count_is_exact());
        assert_eq!(full.count_display(), "1");
    }

    #[test]
    fn best_by_cost_prefers_cheaper() {
        let cheap = Circuit::from_gates(3, [Gate::peres(0, 1, 2)]); // QC 4
        let costly = toffoli_circuit(); // QC 5
        let s = SolutionSet::new(vec![costly, cheap.clone()], 2, true);
        assert_eq!(s.best_by_quantum_cost(), &cheap);
        assert_eq!(s.quantum_cost_range(), (4, 5));
    }

    #[test]
    fn truncated_sets_report_exact_total() {
        let s = SolutionSet::new(vec![toffoli_circuit(), peres_like()], 77, false);
        assert_eq!(s.count(), 77);
        assert_eq!(s.circuits().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one circuit")]
    fn empty_set_rejected() {
        let _ = SolutionSet::new(Vec::new(), 0, true);
    }

    #[test]
    #[should_panic(expected = "below materialized")]
    fn inconsistent_total_rejected() {
        let _ = SolutionSet::new(vec![toffoli_circuit()], 0, true);
    }
}
