//! Supervised retry and graceful degradation.
//!
//! Exact synthesis is an iterative-deepening search whose cost is hard to
//! predict, so budget trips are a normal outcome, not an anomaly. A
//! [`RetryPolicy`] turns them into a recovery plan instead of a dead job:
//! a budget-tripped attempt is retried with an **escalated budget**
//! (node / conflict / decision / wall-clock limits scaled by the policy's
//! factor, compounding per attempt) and, when an engine ladder is
//! configured, **degraded down the ladder** — the paper's BDD engine
//! falling back to the SAT baseline, say — before giving up with the last
//! structured error. Exponential backoff between attempts keeps a sick
//! machine (the usual cause of repeated panics) from being hammered.
//!
//! What is retryable is deliberately narrow (see [`FailureKind`]):
//! resource exhaustion and worker panics are; an explicit cancellation is
//! the caller's intent and a deterministic failure (unsatisfiable depth
//! bound, oversized spec) would only fail identically again.
//!
//! The policy itself is pure bookkeeping — [`RetryPolicy::next`] maps an
//! attempt and a failure class to the follow-up attempt, if any — so the
//! single-job driver path ([`run_with_retry`]) and the batch scheduler
//! (which adds panic capture and manager quarantine on top) share one
//! definition of the ladder semantics.

use crate::error::SynthesisError;
use crate::options::Engine;
use std::time::Duration;

/// Recovery plan for budget-tripped or panicked synthesis attempts; see
/// the module docs.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed, including the first (minimum 1).
    pub max_attempts: u32,
    /// Budget multiplier applied on each budget-trip retry, compounding:
    /// attempt `k` runs at `budget_escalation^(k-1)` times the configured
    /// budgets.
    pub budget_escalation: f64,
    /// Engines to degrade through on budget-trip retries, in order. The
    /// first attempt always uses the job's own engine; rung `i` of the
    /// ladder serves the `i+1`-th budget-tripped attempt. Empty means
    /// retry on the same engine.
    pub engine_ladder: Vec<Engine>,
    /// Base backoff slept before the second attempt; doubles per further
    /// attempt.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// One attempt, no recovery — the behaviour before this module
    /// existed.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            budget_escalation: 1.0,
            engine_ladder: Vec::new(),
            backoff: Duration::ZERO,
        }
    }

    /// `max_attempts` tries with doubled budgets per retry, degrading
    /// down `ladder` on budget trips.
    pub fn escalating(max_attempts: u32, ladder: Vec<Engine>) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            budget_escalation: 2.0,
            engine_ladder: ladder,
            backoff: Duration::from_millis(25),
        }
    }

    /// The first attempt: the job's own engine at its configured budgets.
    pub fn first(&self) -> Attempt {
        Attempt {
            number: 1,
            budget_scale: 1.0,
            engine: None,
            rung: 0,
        }
    }

    /// The follow-up to `prev` ending in `failure`, or `None` when the
    /// failure is not retryable or the attempts are exhausted.
    ///
    /// Budget trips escalate the budget scale and advance one ladder rung
    /// when rungs remain; panics retry the same configuration (the crash
    /// was environmental, not a budget misfit).
    pub fn next(&self, prev: &Attempt, failure: FailureKind) -> Option<Attempt> {
        if prev.number >= self.max_attempts {
            return None;
        }
        match failure {
            FailureKind::Fatal => None,
            FailureKind::Panic => Some(Attempt {
                number: prev.number + 1,
                ..prev.clone()
            }),
            FailureKind::Budget => {
                let (engine, rung) = match self.engine_ladder.get(prev.rung) {
                    Some(&next_engine) => (Some(next_engine), prev.rung + 1),
                    None => (prev.engine, prev.rung),
                };
                Some(Attempt {
                    number: prev.number + 1,
                    budget_scale: prev.budget_scale * self.budget_escalation,
                    engine,
                    rung,
                })
            }
        }
    }

    /// Exponential backoff to sleep before `attempt` runs: zero for the
    /// first attempt, `backoff * 2^(n-2)` for attempt `n ≥ 2`.
    pub fn backoff_before(&self, attempt: &Attempt) -> Duration {
        if attempt.number < 2 || self.backoff.is_zero() {
            return Duration::ZERO;
        }
        self.backoff
            .saturating_mul(1u32 << (attempt.number - 2).min(16))
    }
}

/// One scheduled try of a job: attempt number, compound budget scale, and
/// the ladder's engine override (when the job has been degraded).
#[derive(Clone, Debug, PartialEq)]
pub struct Attempt {
    /// 1-based attempt number.
    pub number: u32,
    /// Compound budget multiplier for this attempt.
    pub budget_scale: f64,
    /// Engine override from the degradation ladder; `None` runs the job's
    /// own engine.
    pub engine: Option<Engine>,
    /// Next ladder rung to consume on a further budget trip.
    rung: usize,
}

impl Attempt {
    /// Scales an integral budget by this attempt's compound factor,
    /// saturating.
    pub fn scale_budget(&self, budget: u64) -> u64 {
        if self.budget_scale <= 1.0 {
            return budget;
        }
        let scaled = (budget as f64) * self.budget_scale;
        if scaled >= u64::MAX as f64 {
            u64::MAX
        } else {
            scaled as u64
        }
    }

    /// Scales a wall-clock budget by this attempt's compound factor.
    pub fn scale_duration(&self, budget: Duration) -> Duration {
        if self.budget_scale <= 1.0 {
            return budget;
        }
        budget.mul_f64(self.budget_scale)
    }
}

/// How a failed attempt is classified for retry purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A resource budget tripped — retry with escalation / degradation.
    Budget,
    /// The attempt panicked — retry unchanged.
    Panic,
    /// Deterministic or intentional failure — never retried.
    Fatal,
}

/// Classifies a synthesis error: only [`SynthesisError::BudgetExceeded`]
/// is retryable. Cancellation is caller intent; everything else would
/// fail identically on a second run.
pub fn classify(error: &SynthesisError) -> FailureKind {
    match error {
        SynthesisError::BudgetExceeded { .. } => FailureKind::Budget,
        _ => FailureKind::Fatal,
    }
}

/// Outcome of a supervised run: the final result plus the recovery
/// trail — how many attempts ran and which ladder engines they used.
#[derive(Clone, Debug)]
pub struct RetryOutcome<R> {
    /// The last attempt's result.
    pub result: Result<R, SynthesisError>,
    /// Attempts actually run (1 when the first try settled it).
    pub attempts: u32,
    /// Engines the degradation ladder routed retries through, in order;
    /// empty when no attempt was degraded.
    pub ladder_path: Vec<Engine>,
}

impl<R> RetryOutcome<R> {
    /// `true` when the job needed more than one attempt to produce its
    /// result — i.e. it recovered rather than ran clean.
    pub fn degraded(&self) -> bool {
        self.attempts > 1
    }
}

/// Runs `attempt_fn` under `policy`: retries budget trips with escalated
/// budgets down the engine ladder, sleeping the policy's backoff between
/// attempts, until an attempt settles (success or fatal error) or the
/// policy is exhausted. Panics are **not** caught here — that is the
/// batch scheduler's job (`catch_unwind` is confined there by the repo
/// lint); this is the single-job driver path.
pub fn run_with_retry<R>(
    policy: &RetryPolicy,
    mut attempt_fn: impl FnMut(&Attempt) -> Result<R, SynthesisError>,
) -> RetryOutcome<R> {
    let mut attempt = policy.first();
    let mut ladder_path = Vec::new();
    loop {
        let backoff = policy.backoff_before(&attempt);
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        if let Some(engine) = attempt.engine {
            if ladder_path.last() != Some(&engine) {
                ladder_path.push(engine);
            }
        }
        let result = attempt_fn(&attempt);
        let failure = match &result {
            Ok(_) => None,
            Err(e) => Some(classify(e)),
        };
        match failure.and_then(|f| policy.next(&attempt, f)) {
            Some(next) => attempt = next,
            None => {
                return RetryOutcome {
                    result,
                    attempts: attempt.number,
                    ladder_path,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Resource;

    fn budget_error() -> SynthesisError {
        SynthesisError::BudgetExceeded {
            depth: 3,
            resource: Resource::BddNodes,
            spent: 10,
            limit: 10,
        }
    }

    #[test]
    fn none_policy_never_retries() {
        let p = RetryPolicy::none();
        let first = p.first();
        assert_eq!(p.next(&first, FailureKind::Budget), None);
        assert_eq!(p.next(&first, FailureKind::Panic), None);
    }

    #[test]
    fn budget_trips_escalate_and_degrade() {
        let p = RetryPolicy::escalating(3, vec![Engine::Sat]);
        let a1 = p.first();
        assert_eq!(a1.engine, None);
        let a2 = p.next(&a1, FailureKind::Budget).expect("second attempt");
        assert_eq!(a2.number, 2);
        assert_eq!(a2.engine, Some(Engine::Sat), "first rung degrades");
        assert_eq!(a2.scale_budget(1_000), 2_000);
        let a3 = p.next(&a2, FailureKind::Budget).expect("third attempt");
        assert_eq!(a3.engine, Some(Engine::Sat), "ladder exhausted, stay put");
        assert_eq!(a3.scale_budget(1_000), 4_000, "escalation compounds");
        assert_eq!(p.next(&a3, FailureKind::Budget), None, "attempts spent");
    }

    #[test]
    fn panics_retry_without_escalation() {
        let p = RetryPolicy::escalating(3, vec![Engine::Sat]);
        let a2 = p.next(&p.first(), FailureKind::Panic).expect("retry");
        assert_eq!(a2.engine, None, "panic retry keeps the engine");
        assert_eq!(a2.scale_budget(1_000), 1_000, "and the budget");
    }

    #[test]
    fn fatal_failures_never_retry() {
        let p = RetryPolicy::escalating(5, vec![]);
        assert_eq!(p.next(&p.first(), FailureKind::Fatal), None);
        assert_eq!(
            classify(&SynthesisError::Cancelled { depth: 0 }),
            FailureKind::Fatal
        );
        assert_eq!(classify(&budget_error()), FailureKind::Budget);
    }

    #[test]
    fn backoff_is_exponential_from_the_second_attempt() {
        let p = RetryPolicy {
            backoff: Duration::from_millis(10),
            ..RetryPolicy::escalating(4, vec![])
        };
        let a1 = p.first();
        assert_eq!(p.backoff_before(&a1), Duration::ZERO);
        let a2 = p.next(&a1, FailureKind::Budget).expect("a2");
        assert_eq!(p.backoff_before(&a2), Duration::from_millis(10));
        let a3 = p.next(&a2, FailureKind::Budget).expect("a3");
        assert_eq!(p.backoff_before(&a3), Duration::from_millis(20));
    }

    #[test]
    fn run_with_retry_recovers_from_budget_trips() {
        let p = RetryPolicy {
            backoff: Duration::ZERO,
            ..RetryPolicy::escalating(3, vec![Engine::Sat])
        };
        let mut seen = Vec::new();
        let outcome = run_with_retry(&p, |attempt| {
            seen.push((attempt.number, attempt.engine));
            if attempt.number < 3 {
                Err(budget_error())
            } else {
                Ok(attempt.scale_budget(100))
            }
        });
        assert_eq!(outcome.attempts, 3);
        assert_eq!(outcome.result.as_ref().copied(), Ok(400));
        assert!(outcome.degraded());
        assert_eq!(outcome.ladder_path, vec![Engine::Sat]);
        assert_eq!(
            seen,
            vec![(1, None), (2, Some(Engine::Sat)), (3, Some(Engine::Sat))]
        );
    }

    #[test]
    fn run_with_retry_gives_up_with_the_last_error() {
        let p = RetryPolicy {
            backoff: Duration::ZERO,
            ..RetryPolicy::escalating(2, vec![])
        };
        let outcome: RetryOutcome<()> = run_with_retry(&p, |_| Err(budget_error()));
        assert_eq!(outcome.attempts, 2);
        assert!(matches!(
            outcome.result,
            Err(SynthesisError::BudgetExceeded { .. })
        ));
    }
}
