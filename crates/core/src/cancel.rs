//! Cooperative cancellation for synthesis runs.
//!
//! A [`CancelToken`] is a cheap, clonable handle shared between a synthesis
//! run and whoever supervises it (the portfolio racer, the batch scheduler,
//! a signal handler). It carries two independent stop conditions:
//!
//! * an explicit **cancel flag**, raised with [`CancelToken::cancel`] —
//!   surfaces as [`SynthesisError::Cancelled`];
//! * an optional **deadline**, armed by the
//!   [`ResourceGovernor`](crate::ResourceGovernor) from
//!   [`SynthesisOptions::time_budget`](crate::SynthesisOptions) — surfaces
//!   as [`SynthesisError::BudgetExceeded`] with
//!   [`Resource::WallClock`](crate::Resource).
//!
//! Engines poll the token inside their per-depth inner loops (between BDD
//! levels and quantification steps, between solver conflict chunks), so a
//! single runaway depth no longer ignores the budget and a losing portfolio
//! racer stops promptly instead of running to completion.

use crate::error::{Resource, SynthesisError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shared cancellation handle; see the module docs.
///
/// Clones share state: cancelling any clone cancels them all. The default
/// token is never cancelled and has no deadline, so polling it is free of
/// side effects and cheap (one relaxed atomic load on the fast path).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    /// Armed lazily (the budget is relative to the run's start, which is
    /// only known once the driver begins). Stores `(armed_at, deadline)` so
    /// expiry can report elapsed-vs-budget. `Mutex` rather than an atomic:
    /// `Instant` is opaque, and the poll rate is bounded by chunk sizes.
    deadline: Mutex<Option<(Instant, Instant)>>,
    has_deadline: AtomicBool,
    /// Upstream tokens (see [`CancelToken::merged`]): this token also
    /// reports cancelled/expired when any of them does.
    parents: Vec<Arc<Inner>>,
}

impl CancelToken {
    /// A fresh, uncancelled token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A fresh token that expires `budget` from now.
    pub fn with_timeout(budget: Duration) -> CancelToken {
        let t = CancelToken::new();
        t.set_deadline(Instant::now() + budget);
        t
    }

    /// A token that additionally trips whenever any of `sources` trips
    /// (cancel flag or deadline), while cancelling *it* leaves the sources
    /// untouched. This is how a portfolio racer obeys both its private
    /// "you lost" token and a caller's run-wide token with a single poll.
    pub fn merged<'a>(sources: impl IntoIterator<Item = &'a CancelToken>) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                parents: sources.into_iter().map(|t| Arc::clone(&t.inner)).collect(),
                ..Inner::default()
            }),
        }
    }

    /// Raises the cancel flag on every clone of this token (parents of a
    /// merged token are unaffected).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// `true` once [`cancel`](Self::cancel) has been called on this token
    /// or any of its merge sources (deadline expiry is *not* reported
    /// here; use [`check`](Self::check)).
    pub fn is_cancelled(&self) -> bool {
        fn walk(inner: &Inner) -> bool {
            inner.cancelled.load(Ordering::Acquire) || inner.parents.iter().any(|p| walk(p))
        }
        walk(&self.inner)
    }

    /// Arms (or re-arms) the wall-clock deadline, measuring the budget
    /// from now.
    pub fn set_deadline(&self, at: Instant) {
        *self.inner.deadline.lock().expect("deadline lock") = Some((Instant::now(), at));
        self.inner.has_deadline.store(true, Ordering::Release);
    }

    /// `true` if a deadline is armed on this token itself (merge sources
    /// are not consulted). The [`ResourceGovernor`](crate::ResourceGovernor)
    /// uses this to arm a run's budget exactly once, so re-entering the
    /// driver (e.g. the permuted search re-running its winner) never
    /// extends the budget.
    pub fn has_deadline(&self) -> bool {
        self.inner.has_deadline.load(Ordering::Acquire)
    }

    /// `true` if a deadline is armed and has passed, on this token or any
    /// of its merge sources.
    pub fn deadline_expired(&self) -> bool {
        self.expired_budget().is_some()
    }

    /// If an armed deadline (on this token or a merge source) has passed,
    /// the elapsed and budgeted wall-clock milliseconds of the first such
    /// deadline found.
    fn expired_budget(&self) -> Option<(u64, u64)> {
        fn walk(inner: &Inner, now: Instant) -> Option<(u64, u64)> {
            if inner.has_deadline.load(Ordering::Acquire) {
                if let Some((armed_at, at)) = *inner.deadline.lock().expect("deadline lock") {
                    if now >= at {
                        let spent = now.duration_since(armed_at).as_millis() as u64;
                        let limit = at.duration_since(armed_at).as_millis() as u64;
                        return Some((spent, limit));
                    }
                }
            }
            inner.parents.iter().find_map(|p| walk(p, now))
        }
        walk(&self.inner, Instant::now())
    }

    /// Polls both stop conditions, attributing a failure to `depth`.
    ///
    /// # Errors
    ///
    /// * [`SynthesisError::Cancelled`] when the flag is raised,
    /// * [`SynthesisError::BudgetExceeded`] with [`Resource::WallClock`]
    ///   when the deadline passed.
    pub fn check(&self, depth: u32) -> Result<(), SynthesisError> {
        if self.is_cancelled() {
            return Err(SynthesisError::Cancelled { depth });
        }
        if let Some((spent, limit)) = self.expired_budget() {
            return Err(SynthesisError::BudgetExceeded {
                depth,
                resource: Resource::WallClock,
                spent,
                limit,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_trips() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.deadline_expired());
        assert_eq!(t.check(3), Ok(()));
    }

    #[test]
    fn cancel_propagates_to_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.check(5), Err(SynthesisError::Cancelled { depth: 5 }));
    }

    #[test]
    fn expired_deadline_reports_wall_clock_budget() {
        let t = CancelToken::with_timeout(Duration::ZERO);
        assert!(t.deadline_expired());
        assert!(t.has_deadline());
        match t.check(2) {
            Err(SynthesisError::BudgetExceeded {
                depth: 2,
                resource: Resource::WallClock,
                limit: 0,
                ..
            }) => {}
            other => panic!("expected wall-clock budget error, got {other:?}"),
        }
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let t = CancelToken::new();
        t.set_deadline(Instant::now() + Duration::from_secs(3600));
        assert_eq!(t.check(0), Ok(()));
    }

    #[test]
    fn cancel_takes_precedence_over_deadline() {
        let t = CancelToken::with_timeout(Duration::ZERO);
        t.cancel();
        assert_eq!(t.check(1), Err(SynthesisError::Cancelled { depth: 1 }));
    }

    #[test]
    fn merged_token_observes_every_source() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        let m = CancelToken::merged([&a, &b]);
        assert!(!m.is_cancelled());
        b.cancel();
        assert!(m.is_cancelled());
        assert!(!a.is_cancelled(), "sources stay independent");
    }

    #[test]
    fn cancelling_a_merged_token_spares_the_sources() {
        let a = CancelToken::new();
        let m = CancelToken::merged([&a]);
        m.cancel();
        assert!(m.is_cancelled());
        assert!(!a.is_cancelled());
    }

    #[test]
    fn merged_token_inherits_source_deadlines() {
        let a = CancelToken::with_timeout(Duration::ZERO);
        let m = CancelToken::merged([&a]);
        assert!(m.deadline_expired());
        assert!(!m.has_deadline(), "has_deadline reports the token itself");
        assert!(matches!(
            m.check(3),
            Err(SynthesisError::BudgetExceeded {
                depth: 3,
                resource: Resource::WallClock,
                ..
            })
        ));
    }

    #[test]
    fn rearming_moves_the_deadline() {
        let t = CancelToken::with_timeout(Duration::ZERO);
        assert!(t.deadline_expired());
        t.set_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.deadline_expired());
    }
}
