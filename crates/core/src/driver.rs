//! The iterative-deepening synthesis driver (Figure 1 of the paper).
//!
//! Starting from `d = 0`, the per-depth question *"is there a network with
//! `d` gates realizing `f`?"* is posed to the configured engine; `d` is
//! incremented on every UNSAT answer. The first SAT answer is minimal by
//! construction.

use crate::bdd_engine::BddEngine;
use crate::error::SynthesisError;
use crate::options::{Engine, SynthesisOptions};
use crate::qbf_engine::QbfEngine;
use crate::sat_engine::SatEngine;
use crate::session::SynthesisSession;
use crate::solutions::SolutionSet;
use qsyn_revlogic::Spec;
use std::time::{Duration, Instant};

/// Answer of one per-depth oracle call.
#[derive(Clone, Debug)]
pub enum DepthOutcome {
    /// No `d`-gate realization exists.
    Unsat,
    /// Realizations found.
    Sat(SolutionSet),
}

/// Per-depth oracle: the common face of the three engines.
///
/// Depths must be queried in ascending order (the incremental BDD engine
/// relies on it).
pub trait DepthSolver {
    /// Engine label for reports.
    fn name(&self) -> &'static str;

    /// Decides depth `d`.
    ///
    /// # Errors
    ///
    /// [`SynthesisError`] when a resource budget is exhausted.
    fn solve_depth(&mut self, d: u32) -> Result<Option<SolutionSet>, SynthesisError>;

    /// BDD manager counters, for engines backed by one (`None` otherwise).
    fn manager_stats(&self) -> Option<qsyn_bdd::ManagerStats> {
        None
    }
}

impl DepthSolver for BddEngine {
    fn name(&self) -> &'static str {
        "BDD"
    }

    fn solve_depth(&mut self, d: u32) -> Result<Option<SolutionSet>, SynthesisError> {
        BddEngine::solve_depth(self, d)
    }

    fn manager_stats(&self) -> Option<qsyn_bdd::ManagerStats> {
        Some(BddEngine::manager_stats(self))
    }
}

impl DepthSolver for QbfEngine {
    fn name(&self) -> &'static str {
        "QBF"
    }

    fn solve_depth(&mut self, d: u32) -> Result<Option<SolutionSet>, SynthesisError> {
        QbfEngine::solve_depth(self, d)
    }
}

impl DepthSolver for SatEngine {
    fn name(&self) -> &'static str {
        "SAT"
    }

    fn solve_depth(&mut self, d: u32) -> Result<Option<SolutionSet>, SynthesisError> {
        SatEngine::solve_depth(self, d)
    }
}

/// Result of a successful synthesis run.
#[derive(Clone, Debug)]
pub struct SynthesisResult {
    solutions: SolutionSet,
    depth: u32,
    engine: &'static str,
    depth_times: Vec<Duration>,
    total_time: Duration,
    bdd_stats: Option<qsyn_bdd::ManagerStats>,
}

impl SynthesisResult {
    /// Rebuilds a result from persisted parts (circuit store hits), so a
    /// replayed answer flows through the same reporting paths as a live
    /// one. No engine ran: `depth_times` is empty, `total_time` is zero
    /// and there are no BDD counters — `engine` should name the replay
    /// source (e.g. `"store"`) so reports stay honest about provenance.
    pub fn replayed(solutions: SolutionSet, depth: u32, engine: &'static str) -> SynthesisResult {
        SynthesisResult {
            solutions,
            depth,
            engine,
            depth_times: Vec::new(),
            total_time: Duration::ZERO,
            bdd_stats: None,
        }
    }

    /// Assembles a result from a live engine's outcome — used by drivers
    /// (like the pruned permutation search) that run the per-depth loop
    /// themselves instead of going through [`drive`].
    pub(crate) fn from_parts(
        solutions: SolutionSet,
        depth: u32,
        engine: &'static str,
        depth_times: Vec<Duration>,
        total_time: Duration,
        bdd_stats: Option<qsyn_bdd::ManagerStats>,
    ) -> SynthesisResult {
        SynthesisResult {
            solutions,
            depth,
            engine,
            depth_times,
            total_time,
            bdd_stats,
        }
    }

    /// Minimal number of gates (the `D` column of the paper's tables).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// All minimal realizations found (all of them for the BDD engine, one
    /// for QBF/SAT).
    pub fn solutions(&self) -> &SolutionSet {
        &self.solutions
    }

    /// Label of the engine that produced the result.
    pub fn engine(&self) -> &'static str {
        self.engine
    }

    /// Wall-clock time spent on each depth `0..=depth`.
    pub fn depth_times(&self) -> &[Duration] {
        &self.depth_times
    }

    /// Total wall-clock time (the `TIME` column of the paper's tables).
    pub fn total_time(&self) -> Duration {
        self.total_time
    }

    /// BDD manager counters at the end of the run — live/peak nodes, GC
    /// activity, computed-table hit rate. `None` for engines not backed by
    /// a BDD manager (SAT, QBF, mocks).
    pub fn bdd_stats(&self) -> Option<qsyn_bdd::ManagerStats> {
        self.bdd_stats
    }
}

/// A sound lower bound on the minimal gate count: every output line whose
/// function differs from its input projection must be targeted by at least
/// one gate, and a gate of the library targets at most `t` lines (1 for
/// MCT, 2 once Fredkin or Peres gates are allowed). Hence
/// `D ≥ ⌈differing / t⌉`. Iterative deepening may start there instead of
/// at 0 without losing minimality.
pub fn depth_lower_bound(spec: &Spec, options: &SynthesisOptions) -> u32 {
    let n = spec.lines();
    let mut differing = 0u32;
    for l in 0..n {
        let bit = 1u32 << l;
        let differs = (0..spec.num_rows() as u32).any(|row| {
            let r = spec.row(row);
            r.care & bit != 0 && (r.value ^ row) & bit != 0
        });
        if differs {
            differing += 1;
        }
    }
    let max_targets = if options.library.has_mcf() || options.library.has_peres() {
        2
    } else {
        1
    };
    differing.div_ceil(max_targets)
}

/// Runs the full iterative-deepening flow of Figure 1 with the engine named
/// in `options`.
///
/// # Errors
///
/// * [`SynthesisError::SpecTooLarge`] for specifications beyond 8 lines
///   (the universal-gate table alone would be astronomically large).
/// * [`SynthesisError::DepthLimitReached`] when `options.max_depth` is
///   exhausted — every depth up to the cap is then *proven* unrealizable.
/// * [`SynthesisError::BudgetExceeded`] when any resource budget (wall
///   clock, BDD nodes, SAT conflicts, QBF decisions) runs out.
/// * [`SynthesisError::Cancelled`] when the options'
///   [`CancelToken`](crate::CancelToken) is cancelled by a supervisor.
pub fn synthesize(
    spec: &Spec,
    options: &SynthesisOptions,
) -> Result<SynthesisResult, SynthesisError> {
    synthesize_in(spec, options, &mut SynthesisSession::new())
}

/// [`synthesize`], but borrowing a caller-owned [`SynthesisSession`] so the
/// BDD manager pool (and its warmed unique/computed tables) survives across
/// jobs. Batch drivers and portfolio workers call this once per job on a
/// long-lived session; `synthesize` itself is the one-shot special case.
///
/// # Errors
///
/// See [`synthesize`].
pub fn synthesize_in(
    spec: &Spec,
    options: &SynthesisOptions,
    session: &mut SynthesisSession,
) -> Result<SynthesisResult, SynthesisError> {
    session.begin_job();
    match options.engine {
        Engine::Bdd => {
            let mut engine = BddEngine::new_in(spec, options, session);
            drive(spec, options, &mut engine)
        }
        Engine::Qbf => {
            let mut engine = QbfEngine::new_in(spec, options, session);
            drive(spec, options, &mut engine)
        }
        Engine::Sat => {
            let mut engine = SatEngine::new_in(spec, options, session);
            drive(spec, options, &mut engine)
        }
    }
}

/// Drives any [`DepthSolver`] through the iterative checks.
///
/// # Errors
///
/// See [`synthesize`].
pub fn drive<S: DepthSolver>(
    spec: &Spec,
    options: &SynthesisOptions,
    engine: &mut S,
) -> Result<SynthesisResult, SynthesisError> {
    if spec.lines() > 8 {
        return Err(SynthesisError::SpecTooLarge {
            lines: spec.lines(),
        });
    }
    let start = Instant::now();
    // The wall-clock deadline is armed by the engine's `ResourceGovernor`
    // at construction (`ResourceGovernor::arm`), so it is enforced inside
    // the per-depth loops. Callers driving a bare `DepthSolver` that never
    // built a governor arm one here so `drive` honours the budget too.
    let governor = crate::session::ResourceGovernor::from_options(options);
    governor.arm();
    let mut depth_times = Vec::new();
    let first_depth = if options.start_at_lower_bound {
        depth_lower_bound(spec, options).min(options.max_depth)
    } else {
        0
    };
    for d in first_depth..=options.max_depth {
        governor.check(d)?;
        let depth_start = Instant::now();
        let outcome = engine.solve_depth(d)?;
        depth_times.push(depth_start.elapsed());
        if let Some(solutions) = outcome {
            // Debug builds lint every materialized circuit: line bounds,
            // control/target disjointness, library membership and (for
            // small line counts) reversibility — see `qsyn_audit`.
            #[cfg(debug_assertions)]
            for c in solutions.circuits() {
                if let Err(e) = qsyn_audit::circuit_audit::audit_circuit(c, Some(&options.library))
                {
                    panic!("synthesized circuit at depth {d} failed its audit: {e}");
                }
            }
            return Ok(SynthesisResult {
                solutions,
                depth: d,
                engine: engine.name(),
                depth_times,
                total_time: start.elapsed(),
                bdd_stats: engine.manager_stats(),
            });
        }
    }
    Err(SynthesisError::DepthLimitReached {
        max_depth: options.max_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_revlogic::{GateLibrary, Permutation};
    use std::time::Duration;

    #[test]
    fn driver_finds_minimal_depth() {
        // SWAP needs exactly 3 MCT gates. Both output lines differ from
        // their inputs, so the lower bound lets the driver start at d = 2.
        let spec = Spec::from_permutation(&Permutation::from_fn(2, |v| ((v & 1) << 1) | (v >> 1)));
        let options = SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd);
        assert_eq!(depth_lower_bound(&spec, &options), 2);
        let r = synthesize(&spec, &options).unwrap();
        assert_eq!(r.depth(), 3);
        assert_eq!(r.engine(), "BDD");
        assert_eq!(r.depth_times().len(), 2); // depths 2..=3
        assert!(r.total_time() >= *r.depth_times().last().unwrap());
        // With the bound disabled, every depth from 0 is queried.
        let r0 = synthesize(&spec, &options.clone().with_lower_bound_start(false)).unwrap();
        assert_eq!(r0.depth(), 3);
        assert_eq!(r0.depth_times().len(), 4);
    }

    #[test]
    fn lower_bound_accounts_for_two_target_gates_and_dont_cares() {
        // Fredkin/Peres libraries target two lines per gate.
        let spec = Spec::from_permutation(&Permutation::from_fn(3, |v| {
            // rotate all three lines: every line differs.
            ((v << 1) | (v >> 2)) & 0b111
        }));
        let mct = SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd);
        let all = SynthesisOptions::new(GateLibrary::all(), Engine::Bdd);
        assert_eq!(depth_lower_bound(&spec, &mct), 3);
        assert_eq!(depth_lower_bound(&spec, &all), 2);
        // Don't-care outputs never count as differing.
        let dc = qsyn_revlogic::benchmarks::random_incomplete_spec(3, 1, 0);
        assert_eq!(depth_lower_bound(&dc, &mct), 0);
    }

    #[test]
    fn depth_limit_is_an_error() {
        let spec = Spec::from_permutation(&Permutation::from_fn(2, |v| ((v & 1) << 1) | (v >> 1)));
        let err = synthesize(
            &spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_depth(2),
        )
        .unwrap_err();
        assert_eq!(err, SynthesisError::DepthLimitReached { max_depth: 2 });
    }

    #[test]
    fn zero_time_budget_trips() {
        let spec = Spec::from_permutation(&Permutation::identity(2));
        let err = synthesize(
            &spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd)
                .with_time_budget(Duration::ZERO),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SynthesisError::BudgetExceeded {
                resource: crate::Resource::WallClock,
                ..
            }
        ));
    }

    #[test]
    fn oversized_spec_is_rejected() {
        let spec = Spec::from_permutation(&Permutation::identity(9));
        let err = synthesize(
            &spec,
            &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd),
        )
        .unwrap_err();
        assert_eq!(err, SynthesisError::SpecTooLarge { lines: 9 });
    }

    /// A scripted oracle: answers UNSAT until `sat_at`, then SAT.
    struct MockSolver {
        sat_at: u32,
        calls: Vec<u32>,
    }

    impl DepthSolver for MockSolver {
        fn name(&self) -> &'static str {
            "mock"
        }

        fn solve_depth(&mut self, d: u32) -> Result<Option<SolutionSet>, SynthesisError> {
            self.calls.push(d);
            if d >= self.sat_at {
                let c = qsyn_revlogic::Circuit::from_gates(
                    1,
                    std::iter::repeat_n(qsyn_revlogic::Gate::not(0), d as usize),
                );
                Ok(Some(SolutionSet::single(c)))
            } else {
                Ok(None)
            }
        }
    }

    #[test]
    fn drive_queries_depths_in_order_and_stops_at_first_sat() {
        let spec = Spec::from_permutation(&qsyn_revlogic::Permutation::identity(1));
        let mut mock = MockSolver {
            sat_at: 4,
            calls: Vec::new(),
        };
        let options =
            SynthesisOptions::new(GateLibrary::mct(), crate::Engine::Bdd).with_max_depth(10);
        let r = drive(&spec, &options, &mut mock).unwrap();
        assert_eq!(r.depth(), 4);
        assert_eq!(r.engine(), "mock");
        assert_eq!(mock.calls, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.depth_times().len(), 5);
    }

    #[test]
    fn drive_respects_max_depth_with_mock() {
        let spec = Spec::from_permutation(&qsyn_revlogic::Permutation::identity(1));
        let mut mock = MockSolver {
            sat_at: 100,
            calls: Vec::new(),
        };
        let options =
            SynthesisOptions::new(GateLibrary::mct(), crate::Engine::Bdd).with_max_depth(3);
        let err = drive(&spec, &options, &mut mock).unwrap_err();
        assert_eq!(err, SynthesisError::DepthLimitReached { max_depth: 3 });
        assert_eq!(mock.calls, vec![0, 1, 2, 3]);
    }

    #[test]
    fn all_three_engines_agree_on_minimal_depth() {
        let spec = Spec::from_permutation(&Permutation::from_map(2, vec![3, 0, 1, 2]));
        let mut depths = Vec::new();
        for engine in [Engine::Bdd, Engine::Qbf, Engine::Sat] {
            let r = synthesize(&spec, &SynthesisOptions::new(GateLibrary::mct(), engine)).unwrap();
            assert!(spec.is_realized_by(&r.solutions().circuits()[0]));
            depths.push(r.depth());
        }
        assert_eq!(depths[0], depths[1]);
        assert_eq!(depths[0], depths[2]);
    }
}
