//! Synthesis configuration.

use crate::cancel::CancelToken;
use qsyn_revlogic::GateLibrary;
use std::time::Duration;

/// Which decision procedure answers the per-depth question
/// *"is there a network of `d` gates realizing `f`?"*.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// BDD-based quantified synthesis (Section 5.2 — the paper's proposal).
    Bdd,
    /// Prenex-CNF QBF instance handed to a QBF solver (Section 5.1).
    Qbf,
    /// Row-wise SAT encoding, the baseline of \[9\]/\[22\] (Section 3).
    Sat,
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Bdd => write!(f, "BDD"),
            Engine::Qbf => write!(f, "QBF"),
            Engine::Sat => write!(f, "SAT"),
        }
    }
}

/// Backend for [`Engine::Qbf`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum QbfBackend {
    /// ∀-expansion to propositional SAT (the skizzo family; also yields the
    /// witness needed to reconstruct the circuit). Default.
    #[default]
    Expansion,
    /// Search-based QDPLL. Decides truth; the witness is still extracted by
    /// one expansion solve on success.
    Qdpll,
}

/// Gate-select encoding for [`Engine::Sat`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SatSelectEncoding {
    /// One variable per gate and level with an at-most-one constraint, as
    /// in the original exact SAT synthesis \[9\]. Default.
    #[default]
    OneHot,
    /// Binary-encoded select inputs (the universal-gate style), an ablation
    /// matching the improvements of \[22\].
    Binary,
}

/// BDD variable order (ablation knob).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum VarOrder {
    /// Inputs `X` above the gate-select variables `Y` — the paper's fixed
    /// order. Default.
    #[default]
    XThenY,
    /// `Y` above `X`. The paper predicts a blow-up: the sub-diagrams over
    /// `X` then enumerate every function synthesizable with ≤ d gates.
    YThenX,
}

/// All knobs of a synthesis run.
///
/// Construct with [`SynthesisOptions::new`] and adjust with the builder
/// methods.
///
/// # Example
///
/// ```
/// use qsyn_core::{Engine, SynthesisOptions};
/// use qsyn_revlogic::GateLibrary;
///
/// let opts = SynthesisOptions::new(GateLibrary::all(), Engine::Bdd)
///     .with_max_depth(10)
///     .with_max_solutions(1_000);
/// assert_eq!(opts.max_depth, 10);
/// ```
#[derive(Clone, Debug)]
pub struct SynthesisOptions {
    /// Gate types available to the synthesizer.
    pub library: GateLibrary,
    /// Decision engine.
    pub engine: Engine,
    /// Backend for the QBF engine.
    pub qbf_backend: QbfBackend,
    /// Select encoding for the SAT engine.
    pub sat_encoding: SatSelectEncoding,
    /// BDD variable order.
    pub var_order: VarOrder,
    /// Keep the cascade BDD/state across depth iterations (the incremental
    /// `F_d = U_G(F_{d−1}, Y_d)` construction). Turning this off rebuilds
    /// from scratch at every depth — an ablation.
    pub incremental: bool,
    /// Hard cap on the search depth; exceeding it is an error.
    pub max_depth: u32,
    /// Cap on the number of explicitly materialized circuits. The exact
    /// solution *count* is always reported; the circuit list is truncated
    /// at this many (quantum-cost statistics then cover the enumerated
    /// prefix only).
    pub max_solutions: usize,
    /// BDD node budget (counting **live** nodes — the engine garbage
    /// collects before concluding the budget is exhausted); exceeding it
    /// aborts with
    /// [`SynthesisError::BudgetExceeded`](crate::SynthesisError).
    pub bdd_node_limit: usize,
    /// Use the fused `∀X`-AND quantification kernel in the BDD engine's
    /// `check()` step, quantifying the equivalence conjunction as it is
    /// built instead of materializing `⋀_l` first (default). Disabling it
    /// restores the legacy build-then-quantify path — an A/B ablation and
    /// the oracle for agreement tests.
    pub fused_quantification: bool,
    /// SAT/QBF conflict budget per depth; exceeding it aborts with
    /// [`SynthesisError::BudgetExceeded`](crate::SynthesisError).
    pub conflict_limit: u64,
    /// Wall-clock budget for the whole run. The engine's
    /// [`ResourceGovernor`](crate::ResourceGovernor) arms the
    /// [`cancel`](Self::cancel) token's deadline from this at
    /// construction, so the budget is enforced both between depths and
    /// inside each engine's per-depth inner loops. The first arming wins:
    /// re-entering the driver with the same token never extends the
    /// deadline.
    pub time_budget: Option<Duration>,
    /// Cooperative cancellation handle, polled by the engines mid-depth.
    /// Defaults to a token that never trips. Clones of these options share
    /// the token, so a supervisor holding a clone can stop a run that is
    /// already executing on another thread.
    pub cancel: CancelToken,
    /// Start iterative deepening at the sound lower bound
    /// [`depth_lower_bound`](crate::depth_lower_bound) instead of 0
    /// (minimality is unaffected; the skipped depths are provably
    /// unrealizable).
    pub start_at_lower_bound: bool,
}

impl SynthesisOptions {
    /// Options with the given library and engine and conservative defaults
    /// everywhere else.
    pub fn new(library: GateLibrary, engine: Engine) -> SynthesisOptions {
        SynthesisOptions {
            library,
            engine,
            qbf_backend: QbfBackend::default(),
            sat_encoding: SatSelectEncoding::default(),
            var_order: VarOrder::default(),
            incremental: true,
            max_depth: 32,
            max_solutions: 200_000,
            bdd_node_limit: 20_000_000,
            fused_quantification: true,
            conflict_limit: 20_000_000,
            time_budget: None,
            cancel: CancelToken::new(),
            start_at_lower_bound: true,
        }
    }

    /// Selects the decision engine (the portfolio racer spawns one clone
    /// per engine this way).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> SynthesisOptions {
        self.engine = engine;
        self
    }

    /// Enables or disables starting at the depth lower bound (ablation).
    #[must_use]
    pub fn with_lower_bound_start(mut self, enabled: bool) -> SynthesisOptions {
        self.start_at_lower_bound = enabled;
        self
    }

    /// Sets the depth cap.
    #[must_use]
    pub fn with_max_depth(mut self, d: u32) -> SynthesisOptions {
        self.max_depth = d;
        self
    }

    /// Sets the materialized-solution cap.
    #[must_use]
    pub fn with_max_solutions(mut self, n: usize) -> SynthesisOptions {
        self.max_solutions = n;
        self
    }

    /// Sets the wall-clock budget.
    #[must_use]
    pub fn with_time_budget(mut self, budget: Duration) -> SynthesisOptions {
        self.time_budget = Some(budget);
        self
    }

    /// Installs a cancellation token (see [`CancelToken`]).
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> SynthesisOptions {
        self.cancel = token;
        self
    }

    /// Sets the BDD variable order (ablation).
    #[must_use]
    pub fn with_var_order(mut self, order: VarOrder) -> SynthesisOptions {
        self.var_order = order;
        self
    }

    /// Enables or disables the incremental cascade construction (ablation).
    #[must_use]
    pub fn with_incremental(mut self, incremental: bool) -> SynthesisOptions {
        self.incremental = incremental;
        self
    }

    /// Sets the QBF backend.
    #[must_use]
    pub fn with_qbf_backend(mut self, backend: QbfBackend) -> SynthesisOptions {
        self.qbf_backend = backend;
        self
    }

    /// Sets the SAT select encoding (ablation).
    #[must_use]
    pub fn with_sat_encoding(mut self, encoding: SatSelectEncoding) -> SynthesisOptions {
        self.sat_encoding = encoding;
        self
    }

    /// Sets the BDD node budget.
    #[must_use]
    pub fn with_bdd_node_limit(mut self, nodes: usize) -> SynthesisOptions {
        self.bdd_node_limit = nodes;
        self
    }

    /// Sets the SAT/QBF conflict budget per depth.
    #[must_use]
    pub fn with_conflict_limit(mut self, conflicts: u64) -> SynthesisOptions {
        self.conflict_limit = conflicts;
        self
    }

    /// Enables or disables the fused `∀`-AND quantification kernel in the
    /// BDD engine (ablation; default enabled).
    #[must_use]
    pub fn with_fused_quantification(mut self, fused: bool) -> SynthesisOptions {
        self.fused_quantification = fused;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd);
        assert_eq!(o.engine, Engine::Bdd);
        assert!(o.incremental);
        assert_eq!(o.var_order, VarOrder::XThenY);
        assert!(o.max_depth >= 16);
        assert!(o.time_budget.is_none());
        assert!(o.fused_quantification, "fused check() is the default");
    }

    #[test]
    fn builder_methods_compose() {
        let o = SynthesisOptions::new(GateLibrary::all(), Engine::Sat)
            .with_max_depth(5)
            .with_max_solutions(10)
            .with_var_order(VarOrder::YThenX)
            .with_incremental(false)
            .with_qbf_backend(QbfBackend::Qdpll)
            .with_sat_encoding(SatSelectEncoding::Binary)
            .with_bdd_node_limit(1000)
            .with_conflict_limit(99)
            .with_fused_quantification(false)
            .with_time_budget(Duration::from_secs(1));
        assert_eq!(o.max_depth, 5);
        assert_eq!(o.max_solutions, 10);
        assert_eq!(o.var_order, VarOrder::YThenX);
        assert!(!o.incremental);
        assert_eq!(o.qbf_backend, QbfBackend::Qdpll);
        assert_eq!(o.sat_encoding, SatSelectEncoding::Binary);
        assert_eq!(o.bdd_node_limit, 1000);
        assert_eq!(o.conflict_limit, 99);
        assert!(!o.fused_quantification);
        assert_eq!(o.time_budget, Some(Duration::from_secs(1)));
    }

    #[test]
    fn cloned_options_share_the_cancel_token() {
        let token = CancelToken::new();
        let o =
            SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_cancel_token(token.clone());
        let clone = o.clone();
        token.cancel();
        assert!(clone.cancel.is_cancelled());
    }

    #[test]
    fn engine_display() {
        assert_eq!(Engine::Bdd.to_string(), "BDD");
        assert_eq!(Engine::Qbf.to_string(), "QBF");
        assert_eq!(Engine::Sat.to_string(), "SAT");
    }
}
