//! Transformation-based heuristic synthesis (the unidirectional algorithm
//! of Miller, Maslov and Dueck — reference \[13\] of the paper).
//!
//! The paper's exact approach is contrasted against heuristics like this
//! one: fast, no minimality guarantee. The algorithm walks the truth table
//! in row order and applies Toffoli gates *to the output side* until the
//! function becomes the identity; the collected gates, reversed, realize
//! the original function. Row `i`'s repairs use controls on the ones of
//! the current output (when setting bits) or the ones of `i` (when
//! clearing), which provably never disturbs already-fixed rows.
//!
//! The result doubles as a cheap **upper bound** on the minimal gate count
//! for the exact engines.

use qsyn_revlogic::{Circuit, Gate, LineSet, Permutation};

/// Synthesizes `perm` with the unidirectional transformation-based
/// algorithm. The result realizes `perm` exactly but is generally **not**
/// minimal.
pub fn transformation_synthesis(perm: &Permutation) -> Circuit {
    let n = perm.lines();
    let rows = perm.num_rows() as u32;
    let mut f: Vec<u32> = perm.as_slice().to_vec();
    let mut gates: Vec<Gate> = Vec::new();
    let apply = |gates: &mut Vec<Gate>, f: &mut Vec<u32>, g: Gate| {
        for v in f.iter_mut() {
            *v = g.apply(*v);
        }
        gates.push(g);
    };
    for i in 0..rows {
        // Rows < i are fixed points, so f[i] ∈ {i, …, 2ⁿ−1}.
        debug_assert!(f[i as usize] >= i);
        if f[i as usize] == i {
            continue;
        }
        // (a) Set the bits of i missing from the current output, controlled
        // on the output's ones. Any earlier row j would need
        // ones(f[i]) ⊆ ones(j), i.e. f[i] ≤ j < i ≤ f[i] — impossible.
        for p in 0..n {
            let bit = 1u32 << p;
            let v = f[i as usize];
            if i & bit != 0 && v & bit == 0 {
                let controls = LineSet::from_mask(v);
                apply(&mut gates, &mut f, Gate::toffoli(controls, p));
            }
        }
        // (b) Clear the surplus bits, controlled on the ones of i. Earlier
        // rows j would need ones(i) ⊆ ones(j), i.e. i ≤ j < i — impossible.
        for p in 0..n {
            let bit = 1u32 << p;
            if i & bit == 0 && f[i as usize] & bit != 0 {
                let controls = LineSet::from_mask(i);
                apply(&mut gates, &mut f, Gate::toffoli(controls, p));
            }
        }
        debug_assert_eq!(f[i as usize], i, "row {i} not repaired");
    }
    debug_assert!(f.iter().enumerate().all(|(i, &v)| i as u32 == v));
    // The gates turned perm into the identity on the output side; applied
    // in reverse (each MCT is self-inverse) they realize perm itself.
    gates.reverse();
    Circuit::from_gates(n, gates)
}

/// A quick upper bound on the minimal MCT gate count of `perm`, from one
/// run of [`transformation_synthesis`].
pub fn gate_count_upper_bound(perm: &Permutation) -> u32 {
    transformation_synthesis(perm).len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, Engine, SynthesisOptions};
    use qsyn_revlogic::benchmarks::random_permutation;
    use qsyn_revlogic::{GateLibrary, Spec};

    #[test]
    fn identity_needs_no_gates() {
        let c = transformation_synthesis(&Permutation::identity(3));
        assert!(c.is_empty());
    }

    #[test]
    fn realizes_every_2_line_permutation() {
        // All 24 permutations of {0..3}.
        let items = [0u32, 1, 2, 3];
        let mut count = 0;
        for a in items {
            for b in items {
                for c in items {
                    for d in items {
                        let map = vec![a, b, c, d];
                        let mut sorted = map.clone();
                        sorted.sort_unstable();
                        if sorted != vec![0, 1, 2, 3] {
                            continue;
                        }
                        let p = Permutation::from_map(2, map);
                        let circuit = transformation_synthesis(&p);
                        assert_eq!(circuit.permutation(), p);
                        count += 1;
                    }
                }
            }
        }
        assert_eq!(count, 24);
    }

    #[test]
    fn realizes_random_permutations_up_to_6_lines() {
        for lines in 3..=6u32 {
            for seed in 0..8u64 {
                let p = random_permutation(lines, seed * 31 + u64::from(lines));
                let c = transformation_synthesis(&p);
                assert_eq!(c.permutation(), p, "lines {lines} seed {seed}");
            }
        }
    }

    #[test]
    fn known_benchmarks_realize() {
        for name in ["3_17", "hwb4", "graycode6", "mod5d1", "mod5d2"] {
            let b = qsyn_revlogic::benchmarks::by_name(name).unwrap();
            let p = b.spec.as_permutation().unwrap();
            let c = transformation_synthesis(&p);
            assert!(b.spec.is_realized_by(&c), "{name}");
        }
    }

    #[test]
    fn heuristic_is_an_upper_bound_for_exact() {
        for seed in 0..6u64 {
            let p = random_permutation(3, seed + 900);
            let heuristic = gate_count_upper_bound(&p);
            let exact = synthesize(
                &Spec::from_permutation(&p),
                &SynthesisOptions::new(GateLibrary::mct(), Engine::Bdd).with_max_depth(12),
            )
            .unwrap()
            .depth();
            assert!(
                exact <= heuristic,
                "seed {seed}: exact {exact} > heuristic {heuristic}"
            );
        }
    }

    #[test]
    fn heuristic_is_fast_on_large_functions() {
        // Exact synthesis is hopeless at 8 lines; the heuristic is instant.
        let p = random_permutation(8, 42);
        let c = transformation_synthesis(&p);
        assert_eq!(c.permutation(), p);
        assert!(!c.is_empty());
    }

    #[test]
    fn heuristic_gap_exists() {
        // The heuristic is not minimal: on 3_17 the exact answer is 6.
        let p = qsyn_revlogic::benchmarks::spec_3_17()
            .as_permutation()
            .unwrap();
        let heuristic = gate_count_upper_bound(&p);
        assert!(heuristic >= 6);
    }
}
