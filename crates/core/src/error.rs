//! Synthesis errors.

/// Reasons a synthesis run can fail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthesisError {
    /// No realization was found up to the configured depth cap.
    DepthLimitReached {
        /// The exhausted cap (every depth `0..=max_depth` is proven
        /// unrealizable).
        max_depth: u32,
    },
    /// A per-depth resource budget (BDD nodes, solver conflicts) ran out.
    ResourceLimit {
        /// Depth being solved when the budget ran out.
        depth: u32,
        /// Which budget was exhausted.
        what: &'static str,
    },
    /// The wall-clock budget ran out.
    TimeBudgetExceeded {
        /// First depth that was *not* fully solved.
        depth: u32,
    },
    /// The run was cancelled through its
    /// [`CancelToken`](crate::CancelToken) — e.g. a portfolio racer lost to
    /// a faster engine, or the batch scheduler is shutting down.
    Cancelled {
        /// First depth that was *not* fully solved when the cancellation
        /// was observed.
        depth: u32,
    },
    /// The specification's line count exceeds what exact synthesis
    /// supports here.
    SpecTooLarge {
        /// Offending line count.
        lines: u32,
    },
    /// An internal invariant did not hold — e.g. a solver reported SAT but
    /// produced no usable witness. Always a bug in this crate, never a
    /// property of the input.
    Internal {
        /// The violated invariant.
        what: &'static str,
    },
}

impl SynthesisError {
    /// The depth at which the run stopped, where applicable.
    pub fn depth(&self) -> Option<u32> {
        match *self {
            SynthesisError::DepthLimitReached { max_depth } => Some(max_depth),
            SynthesisError::ResourceLimit { depth, .. }
            | SynthesisError::TimeBudgetExceeded { depth }
            | SynthesisError::Cancelled { depth } => Some(depth),
            SynthesisError::SpecTooLarge { .. } | SynthesisError::Internal { .. } => None,
        }
    }
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::DepthLimitReached { max_depth } => {
                write!(f, "no realization with at most {max_depth} gates")
            }
            SynthesisError::ResourceLimit { depth, what } => {
                write!(f, "{what} budget exhausted while solving depth {depth}")
            }
            SynthesisError::TimeBudgetExceeded { depth } => {
                write!(f, "time budget exceeded before finishing depth {depth}")
            }
            SynthesisError::Cancelled { depth } => {
                write!(f, "synthesis cancelled before finishing depth {depth}")
            }
            SynthesisError::SpecTooLarge { lines } => {
                write!(
                    f,
                    "specification with {lines} lines is too large for exact synthesis"
                )
            }
            SynthesisError::Internal { what } => {
                write!(f, "internal invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SynthesisError::DepthLimitReached { max_depth: 4 }
            .to_string()
            .contains("4 gates"));
        assert!(SynthesisError::ResourceLimit {
            depth: 3,
            what: "BDD node"
        }
        .to_string()
        .contains("depth 3"));
        assert!(SynthesisError::TimeBudgetExceeded { depth: 2 }
            .to_string()
            .contains("time budget"));
        assert!(SynthesisError::Cancelled { depth: 5 }
            .to_string()
            .contains("cancelled"));
        assert!(SynthesisError::SpecTooLarge { lines: 20 }
            .to_string()
            .contains("20 lines"));
        assert!(SynthesisError::Internal { what: "no witness" }
            .to_string()
            .contains("no witness"));
    }

    #[test]
    fn depth_accessor() {
        assert_eq!(
            SynthesisError::DepthLimitReached { max_depth: 7 }.depth(),
            Some(7)
        );
        assert_eq!(SynthesisError::Cancelled { depth: 4 }.depth(), Some(4));
        assert_eq!(SynthesisError::SpecTooLarge { lines: 20 }.depth(), None);
        assert_eq!(SynthesisError::Internal { what: "x" }.depth(), None);
    }

    #[test]
    fn is_a_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(SynthesisError::Cancelled { depth: 0 });
        assert!(e.source().is_none());
        assert!(!e.to_string().is_empty());
    }
}
