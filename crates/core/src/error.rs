//! Synthesis errors.

/// The resource kinds a [`ResourceGovernor`](crate::ResourceGovernor)
/// budgets. Each maps to one limit knob on
/// [`SynthesisOptions`](crate::SynthesisOptions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Wall-clock time, measured in milliseconds
    /// ([`SynthesisOptions::time_budget`](crate::SynthesisOptions)).
    WallClock,
    /// Live BDD nodes
    /// ([`SynthesisOptions::bdd_node_limit`](crate::SynthesisOptions)).
    BddNodes,
    /// CDCL solver conflicts per depth
    /// ([`SynthesisOptions::conflict_limit`](crate::SynthesisOptions)).
    SatConflicts,
    /// QDPLL decisions per depth (shares
    /// [`SynthesisOptions::conflict_limit`](crate::SynthesisOptions)).
    QbfDecisions,
    /// Pre-allocated select-variable levels (only exhaustible under
    /// [`VarOrder::YThenX`](crate::VarOrder), whose select block is sized
    /// up front from `max_depth`).
    SelectVarBlock,
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Resource::WallClock => write!(f, "wall-clock (ms)"),
            Resource::BddNodes => write!(f, "live BDD node"),
            Resource::SatConflicts => write!(f, "SAT conflict"),
            Resource::QbfDecisions => write!(f, "QDPLL decision"),
            Resource::SelectVarBlock => write!(f, "pre-allocated select-level"),
        }
    }
}

/// Reasons a synthesis run can fail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthesisError {
    /// No realization was found up to the configured depth cap.
    DepthLimitReached {
        /// The exhausted cap (every depth `0..=max_depth` is proven
        /// unrealizable).
        max_depth: u32,
    },
    /// A resource budget ran out (wall clock, BDD nodes, solver
    /// conflicts/decisions). Raised exclusively by the
    /// [`ResourceGovernor`](crate::ResourceGovernor), so every engine
    /// reports exhaustion identically.
    BudgetExceeded {
        /// Depth being solved when the budget ran out.
        depth: u32,
        /// Which budget was exhausted.
        resource: Resource,
        /// How much had been spent when the governor tripped (same unit
        /// as `limit`).
        spent: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The run was cancelled through its
    /// [`CancelToken`](crate::CancelToken) — e.g. a portfolio racer lost to
    /// a faster engine, or the batch scheduler is shutting down.
    Cancelled {
        /// First depth that was *not* fully solved when the cancellation
        /// was observed.
        depth: u32,
    },
    /// The specification's line count exceeds what exact synthesis
    /// supports here.
    SpecTooLarge {
        /// Offending line count.
        lines: u32,
    },
    /// An internal invariant did not hold — e.g. a solver reported SAT but
    /// produced no usable witness. Always a bug in this crate, never a
    /// property of the input.
    Internal {
        /// The violated invariant.
        what: &'static str,
    },
}

impl SynthesisError {
    /// The depth at which the run stopped, where applicable.
    pub fn depth(&self) -> Option<u32> {
        match *self {
            SynthesisError::DepthLimitReached { max_depth } => Some(max_depth),
            SynthesisError::BudgetExceeded { depth, .. } | SynthesisError::Cancelled { depth } => {
                Some(depth)
            }
            SynthesisError::SpecTooLarge { .. } | SynthesisError::Internal { .. } => None,
        }
    }
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::DepthLimitReached { max_depth } => {
                write!(f, "no realization with at most {max_depth} gates")
            }
            SynthesisError::BudgetExceeded {
                depth,
                resource,
                spent,
                limit,
            } => {
                write!(
                    f,
                    "{resource} budget exhausted while solving depth {depth} \
                     ({spent} spent of {limit})"
                )
            }
            SynthesisError::Cancelled { depth } => {
                write!(f, "synthesis cancelled before finishing depth {depth}")
            }
            SynthesisError::SpecTooLarge { lines } => {
                write!(
                    f,
                    "specification with {lines} lines is too large for exact synthesis"
                )
            }
            SynthesisError::Internal { what } => {
                write!(f, "internal invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SynthesisError::DepthLimitReached { max_depth: 4 }
            .to_string()
            .contains("4 gates"));
        let budget = SynthesisError::BudgetExceeded {
            depth: 3,
            resource: Resource::BddNodes,
            spent: 1_234,
            limit: 1_000,
        };
        assert!(budget.to_string().contains("depth 3"));
        assert!(budget.to_string().contains("1234 spent of 1000"));
        assert!(SynthesisError::BudgetExceeded {
            depth: 2,
            resource: Resource::WallClock,
            spent: 10,
            limit: 5,
        }
        .to_string()
        .contains("wall-clock"));
        assert!(SynthesisError::Cancelled { depth: 5 }
            .to_string()
            .contains("cancelled"));
        assert!(SynthesisError::SpecTooLarge { lines: 20 }
            .to_string()
            .contains("20 lines"));
        assert!(SynthesisError::Internal { what: "no witness" }
            .to_string()
            .contains("no witness"));
    }

    #[test]
    fn depth_accessor() {
        assert_eq!(
            SynthesisError::DepthLimitReached { max_depth: 7 }.depth(),
            Some(7)
        );
        assert_eq!(SynthesisError::Cancelled { depth: 4 }.depth(), Some(4));
        assert_eq!(SynthesisError::SpecTooLarge { lines: 20 }.depth(), None);
        assert_eq!(SynthesisError::Internal { what: "x" }.depth(), None);
    }

    #[test]
    fn is_a_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(SynthesisError::Cancelled { depth: 0 });
        assert!(e.source().is_none());
        assert!(!e.to_string().is_empty());
    }
}
