//! Seeded fault injection at the `store.append` site.
//!
//! Built only with `--features faults` (a separate test binary so arming
//! the process-global fault plane cannot race the crate's unit tests).
//! The contract `cargo xtask chaos` relies on: a faulted write surfaces
//! as a **retryable** error before any byte reaches the log, a retry
//! succeeds, and the store stays fully consistent.

#![cfg(feature = "faults")]

use qsyn_faults::FaultPlane;
use qsyn_revlogic::{Permutation, Spec};
use qsyn_store::{PutOutcome, Store, StoreError, StoredCircuit};

/// Three distinct single-gate functions, each with its realizing circuit.
const JOBS: [(&[u32; 4], &str); 3] = [
    (&[0, 3, 2, 1], "t2 x1 x2"), // CNOT, control x1
    (&[0, 1, 3, 2], "t2 x2 x1"), // CNOT, control x2
    (&[1, 0, 3, 2], "t1 x1"),    // NOT x1
];

fn record(job: usize, name: &str) -> StoredCircuit {
    let (map, gate) = JOBS[job];
    let spec = Spec::from_permutation(&Permutation::from_map(2, map.to_vec()));
    StoredCircuit::for_spec(
        &spec,
        name,
        1,
        1,
        1,
        true,
        vec![0, 1],
        format!(".numvars 2\n.variables x1 x2\n.begin\n{gate}\n.end\n"),
    )
}

#[test]
fn injected_append_fault_is_retryable_and_never_corrupts() {
    let path =
        std::env::temp_dir().join(format!("qsyn-store-faults-{}.qstore", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let mut injected = 0usize;
    for seed in 1..=32u64 {
        let _ = std::fs::remove_file(&path);
        let mut store = Store::open(&path).expect("open fresh store");
        FaultPlane::arm(seed);
        for i in 0..JOBS.len() {
            let r = record(i, &format!("job-{i}"));
            let bytes_before = store.file_bytes();
            match store.put(r.clone()) {
                Ok(PutOutcome::Inserted) => {}
                Ok(PutOutcome::AlreadyPresent) => panic!("fresh record reported present"),
                Err(e) => {
                    assert!(
                        matches!(e, StoreError::Injected),
                        "seed {seed}: unexpected error {e}"
                    );
                    assert!(e.is_retryable(), "injected fault must be retryable");
                    // Nothing was written: the log is byte-for-byte where
                    // it was, and one retry lands the record.
                    assert_eq!(store.file_bytes(), bytes_before);
                    injected += 1;
                    assert_eq!(
                        store.put(r).expect("retry after injected fault"),
                        PutOutcome::Inserted
                    );
                }
            }
        }
        FaultPlane::disarm();
        store.verify().expect("store consistent after injection");
        assert_eq!(store.len(), 3);
        drop(store);
        // And a reopen sees a clean, whole log.
        let store = Store::open(&path).expect("reopen");
        assert_eq!(store.truncated_tail_bytes(), 0);
        assert_eq!(store.len(), 3);
        store.verify().expect("store consistent after reopen");
    }
    assert!(
        injected > 0,
        "no seed in 1..=32 fired the store.append site — trigger window drifted?"
    );
    let _ = std::fs::remove_file(&path);
}
